//! # elmrl-telemetry
//!
//! In-tree observability for the whole training/serving stack — the runtime
//! counterpart of the paper's offline read-outs (Figure 6 is a per-module
//! latency breakdown, Figure 5 a time-to-complete curve). Three pillars:
//!
//! 1. **Metric registry** ([`registry`]) — process-global, preallocated
//!    counters, gauges and log2-bucketed latency histograms (p50/p90/p99
//!    read-out). Every metric is sharded across [`registry::SHARDS`]
//!    cache-line-padded slots indexed by a per-thread id, so the PR-4 pool
//!    and the E-parallel driver record without cache-line contention.
//! 2. **Spans** ([`trace`]) — [`Histogram::span`] times a region into its
//!    histogram and, when tracing is on, pushes a duration event into a
//!    preallocated per-shard ring; [`trace::export_chrome_trace`] writes the
//!    events as chrome://tracing JSON (`trace.json`, openable in Perfetto).
//! 3. **No-perturbation contract** — when disabled every record call is a
//!    single relaxed load + branch and takes **no** timestamp; when enabled
//!    the steady state performs **zero heap allocations** (metrics are
//!    registered once and the trace ring is preallocated at
//!    [`trace::enable_tracing`]); telemetry never touches an RNG stream or
//!    an accumulation order, so golden artefacts stay byte-identical with
//!    telemetry on. The counting-allocator tests in `elmrl-core` /
//!    `elmrl-fpga` and the golden-`cmp` CI jobs enforce all three.
//!
//! Handles are `&'static`: [`histogram`]/[`counter()`](fn@counter)/[`gauge()`](fn@gauge) get-or-create
//! by name under a mutex (allocating only on first registration), and the
//! [`hist!`]/[`counter!`]/[`gauge!`] macros cache the handle in a per-call-site
//! `OnceLock` so hot paths never touch the registry lock.
//!
//! ```
//! elmrl_telemetry::set_enabled(true);
//! let h = elmrl_telemetry::hist!("env.step");
//! {
//!     let _guard = h.span(); // records on drop
//! }
//! assert_eq!(h.count(), 1);
//! elmrl_telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod registry;
pub mod trace;

pub use registry::{
    counter, gauge, histogram, snapshot, summary_table, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use trace::{
    dropped_events, enable_tracing, export_chrome_trace, tracing_enabled, SpanGuard,
    DEFAULT_TRACE_CAPACITY,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Serialises tests that toggle the process-global enabled flag.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Global on/off switch. `false` (the default) makes every record call a
/// relaxed load + branch — no timestamps, no atomics touched.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry recording is enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off. Tracing additionally requires
/// [`trace::enable_tracing`] (which implies `set_enabled(true)`).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable telemetry if the `ELMRL_TELEMETRY` environment variable is set to
/// anything but `0`/empty. Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("ELMRL_TELEMETRY") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    enabled()
}

/// Zero every registered metric and clear the trace ring (registrations and
/// preallocated buffers are kept). For benchmarks and tests; not a hot path.
pub fn reset() {
    registry::reset_values();
    trace::clear();
}

/// Cache a [`Histogram`] handle at the call site: the registry mutex is hit
/// once per call site, after which lookups are a single `OnceLock` load.
#[macro_export]
macro_rules! hist {
    ($name:expr) => {{
        static __ELMRL_HIST: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__ELMRL_HIST.get_or_init(|| $crate::histogram($name))
    }};
}

/// Cache a [`Counter`] handle at the call site (see [`hist!`]).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __ELMRL_CTR: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__ELMRL_CTR.get_or_init(|| $crate::counter($name))
    }};
}

/// Cache a [`Gauge`] handle at the call site (see [`hist!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __ELMRL_GAUGE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__ELMRL_GAUGE.get_or_init(|| $crate::gauge($name))
    }};
}
