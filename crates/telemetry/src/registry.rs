//! The process-global metric registry: counters, gauges and log2-bucketed
//! latency histograms, each sharded per thread so concurrent recorders never
//! contend on a cache line.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a mutex and allocates
//! the metric's shard array **once per name**; the returned handle is
//! `&'static` (the metric is leaked — process lifetime) and every subsequent
//! record is a shard-index lookup plus one relaxed atomic RMW. Recording is
//! gated on [`crate::enabled`] inside the metric itself, so instrumentation
//! sites stay one-liners and compile to a load + branch when telemetry is
//! off.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of per-thread shards of every metric (power of two). Threads hash
/// onto shards by an incrementing thread id, so up to `SHARDS` recorders
/// proceed without sharing a cache line.
pub const SHARDS: usize = 16;

/// Number of log2 latency buckets: bucket `b` covers `[2^b, 2^{b+1})` ns,
/// so 64 buckets span the full `u64` nanosecond range.
pub const BUCKETS: usize = 64;

/// One cache line worth of counter state (padded to avoid false sharing
/// between neighbouring shards).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// The calling thread's registration number. `const`-initialised so the
    /// first access performs no lazy-init allocation (the counting-allocator
    /// tests record from inside the measured region).
    static THREAD_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// A small dense id for the current thread (assigned on first use).
#[inline]
pub(crate) fn thread_id() -> usize {
    THREAD_ID.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

/// The current thread's metric shard.
#[inline]
pub(crate) fn shard_index() -> usize {
    thread_id() & (SHARDS - 1)
}

/// A monotonically increasing event counter.
pub struct Counter {
    name: &'static str,
    shards: Vec<PaddedU64>,
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            shards: (0..SHARDS).map(|_| PaddedU64::default()).collect(),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` events. No-op when telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() && n > 0 {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event. No-op when telemetry is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1)
    }

    /// Sum over all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-writer-wins instantaneous value (e.g. the current `max|P|` bound
/// of the fixed-point RLS guard).
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Store a new value. No-op when telemetry is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if it is larger than the current value.
    /// No-op when telemetry is disabled.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if crate::enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The last stored value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// One shard of a histogram: an event count, a nanosecond sum and the 64
/// log2 buckets. Larger than a cache line, so neighbouring shards do not
/// interfere on the hot fields.
struct HistShard {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistShard {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index of a nanosecond sample: `floor(log2(ns))`, with 0 ns mapped
/// into bucket 0.
#[inline]
fn bucket_of(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros()) as usize
}

/// Representative latency of bucket `b` (its geometric midpoint, ~`1.5·2^b`).
fn bucket_mid_ns(b: usize) -> u64 {
    if b == 0 {
        1
    } else {
        (1u64 << b) + (1u64 << (b - 1))
    }
}

/// A log2-bucketed latency histogram with per-thread shards. Records are
/// O(1) and allocation-free; quantiles are computed at read time from the
/// bucket counts (so p50/p90/p99 are accurate to within a factor of √2).
pub struct Histogram {
    name: &'static str,
    shards: Vec<HistShard>,
}

impl Histogram {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            shards: (0..SHARDS).map(|_| HistShard::new()).collect(),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample of `ns` nanoseconds. No-op when disabled.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if crate::enabled() {
            let shard = &self.shards[shard_index()];
            shard.count.fetch_add(1, Ordering::Relaxed);
            shard.sum_ns.fetch_add(ns, Ordering::Relaxed);
            shard.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one sample from a [`Duration`]. No-op when disabled.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if crate::enabled() {
            self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Record `n` operations that together took `total`: the count and sum
    /// advance by the batch, and the latency distribution receives `n`
    /// entries at the mean per-op latency (what batched recorders like
    /// `OpCounts::record_n` know). No-op when disabled or when `n == 0`.
    #[inline]
    pub fn record_batch(&self, n: u64, total: Duration) {
        if crate::enabled() && n > 0 {
            let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
            let shard = &self.shards[shard_index()];
            shard.count.fetch_add(n, Ordering::Relaxed);
            shard.sum_ns.fetch_add(total_ns, Ordering::Relaxed);
            shard.buckets[bucket_of(total_ns / n)].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Start a span over this histogram: the guard records the elapsed time
    /// on drop (and emits a trace event when tracing is enabled). When
    /// telemetry is disabled the guard is inert and takes no timestamp.
    #[inline]
    #[must_use = "the span records when the guard drops; binding it to `_` drops immediately"]
    pub fn span(&self) -> crate::trace::SpanGuard<'_> {
        crate::trace::SpanGuard::start(self)
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.sum_ns.load(Ordering::Relaxed))
            .sum()
    }

    /// Merged bucket counts over all shards.
    fn merged_buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for shard in &self.shards {
            for (b, bucket) in shard.buckets.iter().enumerate() {
                out[b] += bucket.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Approximate `q`-quantile (0 < q ≤ 1) in nanoseconds, from the log2
    /// buckets (nearest-rank over bucket midpoints). 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let buckets = self.merged_buckets();
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (b, &c) in buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_mid_ns(b);
            }
        }
        bucket_mid_ns(BUCKETS - 1)
    }

    fn reset(&self) {
        for shard in &self.shards {
            shard.count.store(0, Ordering::Relaxed);
            shard.sum_ns.store(0, Ordering::Relaxed);
            for b in &shard.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// The registry: name → leaked metric. One mutex, taken only at
/// registration / read-out time (never on the record path once the call
/// site caches its handle).
#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Get or create the counter registered under `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().expect("metric registry poisoned");
    reg.counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new(name))))
}

/// Get or create the gauge registered under `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metric registry poisoned");
    reg.gauges
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new(name))))
}

/// Get or create the histogram registered under `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metric registry poisoned");
    reg.histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new(name))))
}

/// Zero every registered metric (registrations are kept).
pub(crate) fn reset_values() {
    let reg = registry().lock().expect("metric registry poisoned");
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

/// Read-out of one histogram: count, total and nearest-rank quantiles.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded nanoseconds.
    pub total_ns: u64,
    /// Approximate median latency in nanoseconds.
    pub p50_ns: u64,
    /// Approximate 90th-percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// Approximate 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
}

/// A point-in-time read-out of the whole registry, in name order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// All counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// All gauges as `(name, value)`.
    pub gauges: Vec<(String, i64)>,
}

impl MetricsSnapshot {
    /// Serialise to a stable, pretty-printed JSON document (the
    /// `--metrics-out` file format; `version` guards against schema drift).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
                escape(&h.name),
                h.count,
                h.total_ns,
                h.p50_ns,
                h.p90_ns,
                h.p99_ns
            );
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"value\": {value}}}",
                escape(name)
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"value\": {value}}}",
                escape(name)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Snapshot every registered metric, in name order.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metric registry poisoned");
    MetricsSnapshot {
        histograms: reg
            .histograms
            .values()
            .map(|h| HistogramSnapshot {
                name: h.name().to_string(),
                count: h.count(),
                total_ns: h.total_ns(),
                p50_ns: h.quantile_ns(0.50),
                p90_ns: h.quantile_ns(0.90),
                p99_ns: h.quantile_ns(0.99),
            })
            .collect(),
        counters: reg
            .counters
            .values()
            .map(|c| (c.name().to_string(), c.value()))
            .collect(),
        gauges: reg
            .gauges
            .values()
            .map(|g| (g.name().to_string(), g.value()))
            .collect(),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The Fig-6-style per-module latency table (histograms sorted by total
/// time, then counters and gauges), ready to print on exit.
pub fn summary_table() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str("== telemetry: per-module latency ==\n");
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "module", "count", "total", "p50", "p90", "p99"
    );
    let mut hists: Vec<&HistogramSnapshot> =
        snap.histograms.iter().filter(|h| h.count > 0).collect();
    hists.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    for h in hists {
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>10} {:>10} {:>10}",
            h.name,
            h.count,
            fmt_ns(h.total_ns),
            fmt_ns(h.p50_ns),
            fmt_ns(h.p90_ns),
            fmt_ns(h.p99_ns)
        );
    }
    let counters: Vec<&(String, u64)> = snap.counters.iter().filter(|(_, v)| *v > 0).collect();
    if !counters.is_empty() {
        out.push_str("== telemetry: counters ==\n");
        for (name, value) in counters {
            let _ = writeln!(out, "{name:<40} {value:>12}");
        }
    }
    let gauges: Vec<&(String, i64)> = snap.gauges.iter().filter(|(_, v)| *v != 0).collect();
    if !gauges.is_empty() {
        out.push_str("== telemetry: gauges ==\n");
        for (name, value) in gauges {
            let _ = writeln!(out, "{name:<40} {value:>12}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::TEST_FLAG_LOCK as FLAG_LOCK;

    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::set_enabled(true);
        let out = f();
        crate::set_enabled(false);
        out
    }

    #[test]
    fn bucket_of_is_floor_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn disabled_records_are_no_ops() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let c = counter("test.disabled_counter");
        let h = histogram("test.disabled_hist");
        c.add(5);
        h.record_ns(100);
        assert_eq!(c.value(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn counter_and_gauge_record_when_enabled() {
        with_enabled(|| {
            let c = counter("test.counter");
            c.reset();
            c.add(3);
            c.inc();
            assert_eq!(c.value(), 4);
            let g = gauge("test.gauge");
            g.reset();
            g.set(7);
            g.set_max(3);
            assert_eq!(g.value(), 7);
            g.set_max(11);
            assert_eq!(g.value(), 11);
        });
    }

    #[test]
    fn histogram_quantiles_track_the_buckets() {
        with_enabled(|| {
            let h = histogram("test.hist");
            h.reset();
            // 90 fast samples (~1 us) and 10 slow ones (~1 ms).
            for _ in 0..90 {
                h.record_ns(1_000);
            }
            for _ in 0..10 {
                h.record_ns(1_000_000);
            }
            assert_eq!(h.count(), 100);
            assert_eq!(h.total_ns(), 90 * 1_000 + 10 * 1_000_000);
            let p50 = h.quantile_ns(0.50);
            assert!((512..2_048).contains(&p50), "p50 = {p50}");
            let p99 = h.quantile_ns(0.99);
            assert!((524_288..2_097_152).contains(&p99), "p99 = {p99}");
        });
    }

    #[test]
    fn record_batch_spreads_count_at_mean_latency() {
        with_enabled(|| {
            let h = histogram("test.batch_hist");
            h.reset();
            h.record_batch(8, Duration::from_nanos(8_000));
            assert_eq!(h.count(), 8);
            assert_eq!(h.total_ns(), 8_000);
            let p50 = h.quantile_ns(0.5);
            assert!((512..2_048).contains(&p50), "p50 = {p50}");
            h.record_batch(0, Duration::from_nanos(999));
            assert_eq!(h.count(), 8, "n = 0 batches must not record");
        });
    }

    #[test]
    fn registration_is_idempotent() {
        let a = counter("test.same") as *const Counter;
        let b = counter("test.same") as *const Counter;
        assert_eq!(a, b);
        let h1 = histogram("test.same_h") as *const Histogram;
        let h2 = histogram("test.same_h") as *const Histogram;
        assert_eq!(h1, h2);
    }

    #[test]
    fn snapshot_and_summary_cover_registered_metrics() {
        with_enabled(|| {
            let h = histogram("test.snap_hist");
            h.reset();
            h.record_ns(5_000);
            let c = counter("test.snap_counter");
            c.reset();
            c.add(2);
            let snap = snapshot();
            let hs = snap.histogram("test.snap_hist").expect("registered");
            assert_eq!(hs.count, 1);
            assert_eq!(hs.total_ns, 5_000);
            assert!(hs.p50_ns > 0 && hs.p99_ns >= hs.p50_ns);
            assert_eq!(snap.counter("test.snap_counter"), Some(2));
            let table = summary_table();
            assert!(table.contains("test.snap_hist"));
            assert!(table.contains("test.snap_counter"));
            let json = snap.to_json();
            assert!(json.contains("\"version\": 1"));
            assert!(json.contains("\"test.snap_hist\""));
        });
    }

    #[test]
    fn names_order_the_snapshot() {
        let _ = histogram("test.order_b");
        let _ = histogram("test.order_a");
        let snap = snapshot();
        let names: Vec<&str> = snap
            .histograms
            .iter()
            .map(|h| h.name.as_str())
            .filter(|n| n.starts_with("test.order_"))
            .collect();
        assert_eq!(names, vec!["test.order_a", "test.order_b"]);
    }
}
