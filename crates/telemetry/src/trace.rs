//! Lightweight spans and the chrome://tracing exporter.
//!
//! A span is started from a [`crate::Histogram`] (`hist.span()`): the guard
//! takes one timestamp at construction and, on drop, records the elapsed
//! time into the histogram and — when tracing is on — pushes a duration
//! event into a **preallocated** per-shard ring. When the ring is full,
//! events are dropped (and counted) rather than reallocating: the
//! steady-state-zero-allocation contract holds even with tracing on.
//!
//! [`export_chrome_trace`] writes the collected events in the Chrome Trace
//! Event JSON array format (`ph: "X"` complete events with microsecond
//! `ts`/`dur`), which chrome://tracing and <https://ui.perfetto.dev> open
//! directly.

use crate::registry::{shard_index, thread_id, Histogram, SHARDS};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-shard trace-event capacity (events beyond it are dropped and
/// counted in `trace.dropped`): 64Ki events ≈ 2 MiB per shard.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One completed span.
#[derive(Clone, Copy, Debug)]
struct TraceEvent {
    /// Span name (the histogram's registered name).
    name: &'static str,
    /// Start, nanoseconds since the trace epoch.
    ts_ns: u64,
    /// Duration in nanoseconds.
    dur_ns: u64,
    /// Dense id of the recording thread.
    tid: usize,
}

struct TraceState {
    shards: Vec<Mutex<Vec<TraceEvent>>>,
    capacity: usize,
}

static TRACE: OnceLock<TraceState> = OnceLock::new();
static TRACING: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// The instant all trace timestamps are measured from (fixed at the first
/// call — [`enable_tracing`] pins it before any span starts).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether span trace events are being collected.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Allocate the trace rings (`capacity` events per shard, preallocated so
/// recording never reallocates) and start collecting span events. Implies
/// [`crate::set_enabled`]`(true)`. Idempotent; the first call's capacity
/// wins.
pub fn enable_tracing(capacity: usize) {
    let _ = epoch();
    TRACE.get_or_init(|| TraceState {
        shards: (0..SHARDS)
            .map(|_| Mutex::new(Vec::with_capacity(capacity)))
            .collect(),
        capacity,
    });
    TRACING.store(true, Ordering::Relaxed);
    crate::set_enabled(true);
}

/// Number of events dropped because a shard ring was full.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clear collected events and the dropped counter (rings stay allocated).
pub(crate) fn clear() {
    if let Some(state) = TRACE.get() {
        for shard in &state.shards {
            shard.lock().expect("trace shard poisoned").clear();
        }
    }
    DROPPED.store(0, Ordering::Relaxed);
}

#[inline]
fn push(name: &'static str, ts_ns: u64, dur_ns: u64) {
    let Some(state) = TRACE.get() else { return };
    let mut shard = state.shards[shard_index()]
        .lock()
        .expect("trace shard poisoned");
    if shard.len() < state.capacity {
        shard.push(TraceEvent {
            name,
            ts_ns,
            dur_ns,
            tid: thread_id(),
        });
    } else {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// An in-flight span over a histogram. Created by [`Histogram::span`];
/// records on drop. Inert (no timestamp taken) when telemetry is disabled.
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    #[inline]
    pub(crate) fn start(hist: &'a Histogram) -> Self {
        Self {
            hist,
            start: crate::enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        self.hist.record_ns(dur_ns);
        if tracing_enabled() {
            let ts_ns = start
                .checked_duration_since(epoch())
                .unwrap_or_default()
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            push(self.hist.name(), ts_ns, dur_ns);
        }
    }
}

/// Render the collected events as a Chrome Trace Event JSON array (complete
/// `"X"` events sorted by start time, `ts`/`dur` in microseconds).
pub fn chrome_trace_json() -> String {
    let mut events: Vec<TraceEvent> = Vec::new();
    if let Some(state) = TRACE.get() {
        for shard in &state.shards {
            events.extend(shard.lock().expect("trace shard poisoned").iter().copied());
        }
    }
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        // Integer-nanosecond precision expressed in microseconds.
        let _ = write!(
            out,
            "{sep}\n{{\"name\": \"{}\", \"cat\": \"elmrl\", \"ph\": \"X\", \
             \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": 0, \"tid\": {}}}",
            e.name,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
            e.tid
        );
    }
    out.push_str("\n]\n");
    out
}

/// Write [`chrome_trace_json`] to `path` (the `--trace-out` file).
pub fn export_chrome_trace(path: &Path) -> Result<(), String> {
    std::fs::write(path, chrome_trace_json())
        .map_err(|e| format!("writing trace {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::histogram;

    #[test]
    fn spans_record_into_histogram_and_trace() {
        // One test drives the whole trace lifecycle: enable_tracing is
        // process-global and OnceLock'd, so splitting these into separate
        // tests would race on the shared ring.
        let _flag = crate::TEST_FLAG_LOCK.lock().unwrap();
        enable_tracing(64);
        let h = histogram("test.trace_span");
        {
            let _guard = h.span();
            std::hint::black_box(1 + 1);
        }
        assert_eq!(h.count(), 1);
        assert!(h.total_ns() > 0);

        let json = chrome_trace_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\": \"test.trace_span\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"pid\": 0"));

        // The ring never reallocates: past capacity events are dropped and
        // counted, not stored.
        for _ in 0..(64 * SHARDS + 16) {
            let _guard = h.span();
        }
        assert!(dropped_events() > 0);

        clear();
        assert_eq!(dropped_events(), 0);
        assert_eq!(chrome_trace_json().trim(), "[\n]");

        // Disabled spans are inert even with tracing structures allocated.
        TRACING.store(false, Ordering::Relaxed);
        crate::set_enabled(false);
        let before = h.count();
        {
            let _guard = h.span();
        }
        assert_eq!(h.count(), before);
    }
}
