//! Model persistence: snapshot an [`ElmModel`] into a serialisable form.
//!
//! On-device learning systems need to checkpoint the learned `β` (and the
//! frozen `α`, `b`) so a deployed model survives power cycles; the paper's
//! platform does this over the CPU side of the PYNQ. The snapshot stores all
//! parameters as `f64`, independent of the scalar backend in use, so an FPGA
//! fixed-point model and its float twin serialise identically up to
//! quantisation.

use crate::activation::HiddenActivation;
use crate::model::ElmModel;
use elmrl_linalg::{Matrix, Scalar};
use serde::{Deserialize, Serialize};

/// A backend-independent serialisable snapshot of an ELM/OS-ELM model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSnapshot {
    /// Input dimensionality `n`.
    pub input_dim: usize,
    /// Hidden dimensionality `Ñ`.
    pub hidden_dim: usize,
    /// Output dimensionality `m`.
    pub output_dim: usize,
    /// Hidden activation.
    pub activation: HiddenActivation,
    /// `α` in row-major order (`n·Ñ` values).
    pub alpha: Vec<f64>,
    /// Hidden bias (`Ñ` values).
    pub bias: Vec<f64>,
    /// `β` in row-major order (`Ñ·m` values).
    pub beta: Vec<f64>,
}

impl ModelSnapshot {
    /// Capture a snapshot of a model.
    pub fn capture<T: Scalar>(model: &ElmModel<T>) -> Self {
        let to_f64 = |m: &Matrix<T>| m.iter().map(|&v| v.to_f64()).collect::<Vec<f64>>();
        Self {
            input_dim: model.input_dim(),
            hidden_dim: model.hidden_dim(),
            output_dim: model.output_dim(),
            activation: model.activation(),
            alpha: to_f64(model.alpha()),
            bias: to_f64(model.bias()),
            beta: to_f64(model.beta()),
        }
    }

    /// Rebuild a model (in any scalar backend) from the snapshot.
    pub fn restore<T: Scalar>(&self) -> ElmModel<T> {
        let from_f64 = |data: &[f64], rows: usize, cols: usize| {
            Matrix::from_vec(rows, cols, data.iter().map(|&v| T::from_f64(v)).collect())
                .expect("snapshot data length matches recorded dimensions")
        };
        ElmModel::from_parts(
            from_f64(&self.alpha, self.input_dim, self.hidden_dim),
            from_f64(&self.bias, 1, self.hidden_dim),
            from_f64(&self.beta, self.hidden_dim, self.output_dim),
            self.activation,
        )
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialise from a JSON string.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

/// A serialisable snapshot of a complete [`crate::OsElm`] learner: the model
/// parameters plus the recursive-update state (`P`, call counters, δ). All
/// values are stored as `f64` — exact for the `f64` backend, and exact up to
/// the backend's own quantisation elsewhere — so for `OsElm<f64>`
/// `OsElm::from_snapshot(&os.snapshot())` resumes the RLS recursion
/// bit for bit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OsElmSnapshot {
    /// The model parameters (`α`, `b`, `β`, activation, dimensions).
    pub model: ModelSnapshot,
    /// `P` in row-major order (`Ñ·Ñ` values); `None` before initial training.
    pub p: Option<Vec<f64>>,
    /// ReOS-ELM regularisation strength `δ`.
    pub l2_delta: f64,
    /// Whether `δ` scales with the mean squared hidden activation.
    pub relative_l2: bool,
    /// How many times `init_train` has run.
    pub init_train_count: usize,
    /// How many sequential updates have run.
    pub seq_train_count: usize,
}

/// A serialisable snapshot of a batch-trained [`crate::Elm`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElmSnapshot {
    /// The model parameters.
    pub model: ModelSnapshot,
    /// Ridge regularisation strength used by `train`.
    pub l2_delta: f64,
    /// Whether `train` has run at least once.
    pub trained: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OsElmConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_model() -> ElmModel<f64> {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = OsElmConfig::new(3, 8, 2).with_init_range(-1.0, 1.0);
        let mut m = ElmModel::<f64>::new(&cfg, &mut rng);
        m.set_beta(Matrix::from_fn(8, 2, |i, j| (i as f64 - j as f64) * 0.1));
        m
    }

    #[test]
    fn capture_restore_round_trip_preserves_predictions() {
        let model = sample_model();
        let snap = ModelSnapshot::capture(&model);
        assert_eq!(snap.input_dim, 3);
        assert_eq!(snap.hidden_dim, 8);
        assert_eq!(snap.output_dim, 2);
        assert_eq!(snap.alpha.len(), 24);
        let restored: ElmModel<f64> = snap.restore();
        let x = Matrix::from_rows(&[vec![0.2, -0.4, 0.9]]);
        assert!(model.predict(&x).max_abs_diff(&restored.predict(&x)) < 1e-15);
    }

    #[test]
    fn json_round_trip() {
        let model = sample_model();
        let snap = ModelSnapshot::capture(&model);
        let json = snap.to_json().unwrap();
        assert!(json.contains("\"hidden_dim\":8"));
        let back = ModelSnapshot::from_json(&json).unwrap();
        // The serde_json shim writes shortest-round-trip floats and parses
        // them correctly rounded, so the round trip is bit-exact — the
        // property the checkpoint/resume determinism contract rests on.
        assert_eq!(snap, back);
    }

    #[test]
    fn restore_into_f32_backend() {
        let model = sample_model();
        let snap = ModelSnapshot::capture(&model);
        let restored: ElmModel<f32> = snap.restore();
        let x64 = Matrix::from_rows(&[vec![0.1, 0.5, -0.3]]);
        let x32 = Matrix::from_rows(&[vec![0.1_f32, 0.5, -0.3]]);
        let y64 = model.predict(&x64);
        let y32 = restored.predict(&x32);
        for c in 0..2 {
            assert!((y64[(0, c)] - y32[(0, c)] as f64).abs() < 1e-4);
        }
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(ModelSnapshot::from_json("{not json").is_err());
    }
}
