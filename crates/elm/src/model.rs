//! The single-hidden-layer network structure shared by ELM and OS-ELM.
//!
//! In the paper's notation (Figure 1 and Equation 1):
//! `y = G(x·α + b)·β` with `α ∈ R^{n×Ñ}`, `b ∈ R^{Ñ}`, `β ∈ R^{Ñ×m}`.
//! `α` and `b` are random and never trained; only `β` is learned.

use crate::activation::HiddenActivation;
use crate::config::OsElmConfig;
use crate::spectral;
use elmrl_linalg::random::uniform_matrix;
use elmrl_linalg::{Matrix, Scalar};
use rand::Rng;

/// The parameters of a single-hidden-layer ELM network.
#[derive(Clone, Debug)]
pub struct ElmModel<T: Scalar> {
    /// Input weight matrix `α` (`n × Ñ`), random and fixed after init.
    alpha: Matrix<T>,
    /// Hidden bias `b` stored as a `1 × Ñ` row.
    bias: Matrix<T>,
    /// Output weight matrix `β` (`Ñ × m`), the only trained parameter.
    beta: Matrix<T>,
    /// Hidden activation `G`.
    activation: HiddenActivation,
    /// σ_max(α) measured after any normalisation, kept for Lipschitz reports.
    alpha_sigma_max: f64,
}

impl<T: Scalar> ElmModel<T> {
    /// Initialise a model per Algorithm 1 line 1: `α`, `b` uniform in the
    /// configured range, `β = 0`, and (lines 2–3) spectrally normalise `α`
    /// when the config requests it.
    pub fn new<R: Rng + ?Sized>(config: &OsElmConfig, rng: &mut R) -> Self {
        let mut alpha: Matrix<T> = uniform_matrix(
            config.input_dim,
            config.hidden_dim,
            config.init_low,
            config.init_high,
            rng,
        );
        let mut bias: Matrix<T> =
            uniform_matrix(1, config.hidden_dim, config.init_low, config.init_high, rng);
        if config.spectral_normalize_alpha {
            // Normalise the augmented [α; b] so the ReLU activation pattern is
            // preserved while the input layer's Lipschitz factor is capped at 1
            // (see `spectral::normalize_alpha_bias`).
            let (na, nb) = spectral::normalize_alpha_bias(&alpha, &bias);
            alpha = na;
            bias = nb;
        }
        let alpha_sigma_max = spectral::sigma_max_f64(&alpha);
        Self {
            alpha,
            bias,
            beta: Matrix::zeros(config.hidden_dim, config.output_dim),
            activation: config.activation,
            alpha_sigma_max,
        }
    }

    /// Build a model from explicit parameter matrices (used by the FPGA
    /// simulator to mirror a float-trained model into fixed point).
    pub fn from_parts(
        alpha: Matrix<T>,
        bias: Matrix<T>,
        beta: Matrix<T>,
        activation: HiddenActivation,
    ) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a 1×Ñ row vector");
        assert_eq!(alpha.cols(), bias.cols(), "α and bias disagree on Ñ");
        assert_eq!(alpha.cols(), beta.rows(), "α and β disagree on Ñ");
        let alpha_sigma_max = spectral::sigma_max_f64(&alpha);
        Self {
            alpha,
            bias,
            beta,
            activation,
            alpha_sigma_max,
        }
    }

    /// Number of input nodes `n`.
    pub fn input_dim(&self) -> usize {
        self.alpha.rows()
    }

    /// Number of hidden nodes `Ñ`.
    pub fn hidden_dim(&self) -> usize {
        self.alpha.cols()
    }

    /// Number of output nodes `m`.
    pub fn output_dim(&self) -> usize {
        self.beta.cols()
    }

    /// The hidden activation.
    pub fn activation(&self) -> HiddenActivation {
        self.activation
    }

    /// Borrow `α`.
    pub fn alpha(&self) -> &Matrix<T> {
        &self.alpha
    }

    /// Borrow the hidden bias (1×Ñ).
    pub fn bias(&self) -> &Matrix<T> {
        &self.bias
    }

    /// Borrow `β`.
    pub fn beta(&self) -> &Matrix<T> {
        &self.beta
    }

    /// Mutably borrow `β` (the training algorithms update it in place).
    pub fn beta_mut(&mut self) -> &mut Matrix<T> {
        &mut self.beta
    }

    /// Replace `β` entirely.
    pub fn set_beta(&mut self, beta: Matrix<T>) {
        assert_eq!(beta.shape(), self.beta.shape(), "set_beta: shape mismatch");
        self.beta = beta;
    }

    /// σ_max(α) as measured at construction (after normalisation, if any).
    pub fn alpha_sigma_max(&self) -> f64 {
        self.alpha_sigma_max
    }

    /// Hidden-layer matrix `H = G(x·α + b)` for a batch `x` (`k × n`).
    pub fn hidden(&self, x: &Matrix<T>) -> Matrix<T> {
        let mut h = Matrix::zeros(x.rows(), self.hidden_dim());
        self.hidden_into(x, &mut h);
        h
    }

    /// [`ElmModel::hidden`] into a caller-owned matrix (reshaped via
    /// [`Matrix::resize_zeroed`], reusing its allocation) — the
    /// allocation-free form the per-step hot paths use. Bit-for-bit
    /// identical to `hidden`.
    pub fn hidden_into(&self, x: &Matrix<T>, out: &mut Matrix<T>) {
        assert_eq!(
            x.cols(),
            self.input_dim(),
            "hidden: input has {} features, expected {}",
            x.cols(),
            self.input_dim()
        );
        {
            let _span = elmrl_telemetry::hist!("elm.matmul_hidden").span();
            x.matmul_into(&self.alpha, out);
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                for (c, v) in row.iter_mut().enumerate() {
                    *v += self.bias[(0, c)];
                }
            }
        }
        let _span = elmrl_telemetry::hist!("elm.activation").span();
        self.activation.apply_matrix_inplace(out);
    }

    /// [`ElmModel::hidden_into`] with the input product routed through the
    /// size-dispatched packed/blocked kernel ([`Matrix::matmul_auto_into`]):
    /// wide inputs (the high-dim workloads) and big batches take the
    /// cache-blocked engine — and the work-sharing pool above the parallel
    /// threshold — while paper-scale shapes fall back to the naive loop.
    /// Every branch is bit-for-bit identical to [`ElmModel::hidden_into`];
    /// `pack` is the caller-owned panel buffer, so the sequential branches
    /// stay allocation-free at steady state.
    pub fn hidden_into_packed(&self, x: &Matrix<T>, pack: &mut Vec<T>, out: &mut Matrix<T>) {
        assert_eq!(
            x.cols(),
            self.input_dim(),
            "hidden: input has {} features, expected {}",
            x.cols(),
            self.input_dim()
        );
        {
            let _span = elmrl_telemetry::hist!("elm.matmul_hidden").span();
            x.matmul_auto_into(&self.alpha, pack, out);
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                for (c, v) in row.iter_mut().enumerate() {
                    *v += self.bias[(0, c)];
                }
            }
        }
        let _span = elmrl_telemetry::hist!("elm.activation").span();
        self.activation.apply_matrix_inplace(out);
    }

    /// Batch prediction `y = H·β` (`k × m`).
    pub fn predict(&self, x: &Matrix<T>) -> Matrix<T> {
        self.hidden(x).matmul(&self.beta)
    }

    /// [`ElmModel::predict`] through caller-owned hidden and output
    /// workspaces — zero heap allocations at steady state, bit-for-bit
    /// identical to `predict`. `h` receives `H`, `out` receives `y`.
    pub fn predict_into(&self, x: &Matrix<T>, h: &mut Matrix<T>, out: &mut Matrix<T>) {
        self.hidden_into(x, h);
        h.matmul_into(&self.beta, out);
    }

    /// Single-sample prediction from a slice.
    pub fn predict_single(&self, x: &[T]) -> Vec<T> {
        let out = self.predict(&Matrix::row_from_slice(x));
        out.row(0).to_vec()
    }

    /// Copy every parameter from another model of identical shape. This is
    /// the Q-learning target-network synchronisation `θ₂ ← θ₁`
    /// (Algorithm 1 line 24).
    pub fn copy_parameters_from(&mut self, other: &ElmModel<T>) {
        assert_eq!(
            self.alpha.shape(),
            other.alpha.shape(),
            "copy: α shape mismatch"
        );
        assert_eq!(
            self.beta.shape(),
            other.beta.shape(),
            "copy: β shape mismatch"
        );
        self.alpha = other.alpha.clone();
        self.bias = other.bias.clone();
        self.beta = other.beta.clone();
        self.activation = other.activation;
        self.alpha_sigma_max = other.alpha_sigma_max;
    }

    /// Convert the model to a different scalar backend via `f64` (e.g. float
    /// → Q20 for the FPGA core).
    pub fn cast<U: Scalar>(&self) -> ElmModel<U> {
        ElmModel {
            alpha: self.alpha.cast(),
            bias: self.bias.cast(),
            beta: self.beta.cast(),
            activation: self.activation,
            alpha_sigma_max: self.alpha_sigma_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config() -> OsElmConfig {
        OsElmConfig::new(3, 16, 2)
    }

    #[test]
    fn dimensions_follow_config() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = ElmModel::<f64>::new(&config(), &mut rng);
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.hidden_dim(), 16);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.alpha().shape(), (3, 16));
        assert_eq!(m.bias().shape(), (1, 16));
        assert_eq!(m.beta().shape(), (16, 2));
        assert_eq!(m.activation(), HiddenActivation::ReLU);
    }

    #[test]
    fn alpha_in_unit_range_without_normalization() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = ElmModel::<f64>::new(&config(), &mut rng);
        assert!(m.alpha().iter().all(|&v| (0.0..1.0).contains(&v)));
        assert!(m.bias().iter().all(|&v| (0.0..1.0).contains(&v)));
        assert!(
            m.alpha_sigma_max() > 1.0,
            "raw [0,1] α should have σ_max > 1 here"
        );
    }

    #[test]
    fn spectral_normalization_caps_sigma_max() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = config().with_spectral_normalization(true);
        let m = ElmModel::<f64>::new(&cfg, &mut rng);
        // α alone has σ_max ≤ 1; the augmented [α; b] is normalised to exactly 1.
        assert!(m.alpha_sigma_max() <= 1.0 + 1e-9);
        let augmented = m.alpha().vstack(m.bias()).unwrap();
        let sigma_aug = crate::spectral::sigma_max_f64(&augmented);
        assert!(
            (sigma_aug - 1.0).abs() < 1e-9,
            "σ_max([α; b]) = {sigma_aug}"
        );
        // bias is scaled by the same factor, so it is no longer in [0, 1)·1
        assert!(m.bias().iter().all(|&b| b.abs() <= 1.0));
    }

    #[test]
    fn zero_beta_predicts_zero() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = ElmModel::<f64>::new(&config(), &mut rng);
        let x = Matrix::<f64>::ones(5, 3);
        let y = m.predict(&x);
        assert_eq!(y.shape(), (5, 2));
        assert!(y.iter().all(|&v| v == 0.0));
        assert_eq!(m.predict_single(&[1.0, 1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn hidden_layer_applies_activation() {
        // With Identity activation and known parameters, H = x·α + b exactly.
        let alpha = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let bias = Matrix::from_rows(&[vec![0.5, -0.5]]);
        let beta = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let m = ElmModel::from_parts(alpha, bias, beta, HiddenActivation::Identity);
        let h = m.hidden(&Matrix::from_rows(&[vec![1.0, 2.0]]));
        assert_eq!(h[(0, 0)], 1.5);
        assert_eq!(h[(0, 1)], 1.5);
        let y = m.predict(&Matrix::from_rows(&[vec![1.0, 2.0]]));
        assert_eq!(y[(0, 0)], 3.0);

        // ReLU clips the negative pre-activation.
        let m_relu = ElmModel::from_parts(
            Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]),
            Matrix::from_rows(&[vec![-10.0, 0.0]]),
            Matrix::from_rows(&[vec![1.0], vec![1.0]]),
            HiddenActivation::ReLU,
        );
        let y = m_relu.predict(&Matrix::from_rows(&[vec![1.0, 2.0]]));
        assert_eq!(y[(0, 0)], 2.0);
    }

    #[test]
    fn copy_parameters_synchronises_models() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = ElmModel::<f64>::new(&config(), &mut rng);
        let mut b = ElmModel::<f64>::new(&config(), &mut rng);
        let x = Matrix::<f64>::ones(1, 3);
        b.copy_parameters_from(&a);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_eq!(a.alpha(), b.alpha());
    }

    #[test]
    fn cast_to_f32_and_back_is_close() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut m = ElmModel::<f64>::new(&config(), &mut rng);
        // give β some non-zero content
        m.set_beta(Matrix::from_fn(16, 2, |i, j| (i + j) as f64 * 0.01));
        let m32: ElmModel<f32> = m.cast();
        let x64 = Matrix::<f64>::ones(1, 3);
        let x32 = Matrix::<f32>::ones(1, 3);
        let y64 = m.predict(&x64);
        let y32 = m32.predict(&x32);
        for c in 0..2 {
            assert!((y64[(0, c)] - y32[(0, c)] as f64).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "input has 2 features, expected 3")]
    fn wrong_input_width_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = ElmModel::<f64>::new(&config(), &mut rng);
        let _ = m.predict(&Matrix::<f64>::ones(1, 2));
    }

    #[test]
    #[should_panic(expected = "α and β disagree")]
    fn from_parts_validates_shapes() {
        let _ = ElmModel::from_parts(
            Matrix::<f64>::ones(2, 3),
            Matrix::<f64>::ones(1, 3),
            Matrix::<f64>::ones(4, 1),
            HiddenActivation::ReLU,
        );
    }
}
