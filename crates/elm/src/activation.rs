//! Hidden-layer activation functions usable on both float and fixed point.
//!
//! The paper uses ReLU (§4.1). Because the FPGA datapath has no exponential
//! unit, every activation offered here is piecewise-linear — exactly the set
//! a fixed-point core can evaluate with compare/select logic — and each one
//! reports its Lipschitz constant for the §3.3 stability analysis.

use elmrl_linalg::{Matrix, Scalar};
use serde::{Deserialize, Serialize};

/// Piecewise-linear hidden-layer activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HiddenActivation {
    /// `max(0, x)` — the paper's choice.
    ReLU,
    /// `max(0.01·x, x)`.
    LeakyReLU,
    /// Hard tanh: clamp to `[-1, 1]`.
    HardTanh,
    /// Hard sigmoid: `clamp(0.25·x + 0.5, 0, 1)`.
    HardSigmoid,
    /// Identity (linear ELM, used in tests and ablations).
    Identity,
}

impl HiddenActivation {
    /// Apply to one scalar.
    #[inline]
    pub fn apply<T: Scalar>(self, x: T) -> T {
        match self {
            HiddenActivation::ReLU => {
                if x >= T::zero() {
                    x
                } else {
                    T::zero()
                }
            }
            HiddenActivation::LeakyReLU => {
                if x >= T::zero() {
                    x
                } else {
                    x * T::from_f64(0.01)
                }
            }
            HiddenActivation::HardTanh => x.clamp_val(-T::one(), T::one()),
            HiddenActivation::HardSigmoid => {
                let y = x * T::from_f64(0.25) + T::from_f64(0.5);
                y.clamp_val(T::zero(), T::one())
            }
            HiddenActivation::Identity => x,
        }
    }

    /// Apply element-wise to a matrix.
    pub fn apply_matrix<T: Scalar>(self, m: &Matrix<T>) -> Matrix<T> {
        m.map(|x| self.apply(x))
    }

    /// Apply element-wise in place — the allocation-free form used by the
    /// workspace (`*_into`) forward passes. Identical results to
    /// [`HiddenActivation::apply_matrix`].
    pub fn apply_matrix_inplace<T: Scalar>(self, m: &mut Matrix<T>) {
        m.map_inplace(|x| self.apply(x));
    }

    /// Lipschitz constant of the activation (≤ 1 for every variant here,
    /// which is what the §3.3 argument needs).
    pub fn lipschitz_constant(self) -> f64 {
        match self {
            HiddenActivation::ReLU
            | HiddenActivation::LeakyReLU
            | HiddenActivation::HardTanh
            | HiddenActivation::Identity => 1.0,
            HiddenActivation::HardSigmoid => 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmrl_fixed_like_check::*;

    /// A tiny helper module so the same assertions run on f64 "as if" they
    /// were a second scalar backend (the real fixed-point cross-checks live in
    /// the elmrl-fpga tests to avoid a dependency cycle).
    mod elmrl_fixed_like_check {
        pub const ALL: [super::HiddenActivation; 5] = [
            super::HiddenActivation::ReLU,
            super::HiddenActivation::LeakyReLU,
            super::HiddenActivation::HardTanh,
            super::HiddenActivation::HardSigmoid,
            super::HiddenActivation::Identity,
        ];
    }

    #[test]
    fn relu_definition_matches_paper() {
        let a = HiddenActivation::ReLU;
        assert_eq!(a.apply(2.5_f64), 2.5);
        assert_eq!(a.apply(-2.5_f64), 0.0);
        assert_eq!(a.apply(0.0_f64), 0.0);
    }

    #[test]
    fn hard_variants_saturate() {
        assert_eq!(HiddenActivation::HardTanh.apply(5.0_f64), 1.0);
        assert_eq!(HiddenActivation::HardTanh.apply(-5.0_f64), -1.0);
        assert_eq!(HiddenActivation::HardTanh.apply(0.3_f64), 0.3);
        assert_eq!(HiddenActivation::HardSigmoid.apply(10.0_f64), 1.0);
        assert_eq!(HiddenActivation::HardSigmoid.apply(-10.0_f64), 0.0);
        assert_eq!(HiddenActivation::HardSigmoid.apply(0.0_f64), 0.5);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_slope() {
        let y = HiddenActivation::LeakyReLU.apply(-2.0_f64);
        assert!((y + 0.02).abs() < 1e-12);
        assert_eq!(HiddenActivation::LeakyReLU.apply(2.0_f64), 2.0);
    }

    #[test]
    fn lipschitz_constants_bound_empirical_slopes() {
        for act in ALL {
            let k = act.lipschitz_constant();
            let xs: Vec<f64> = (-40..40).map(|i| i as f64 * 0.1).collect();
            for w in xs.windows(2) {
                let slope = (act.apply(w[1]) - act.apply(w[0])) / (w[1] - w[0]);
                assert!(
                    slope.abs() <= k + 1e-9,
                    "{act:?}: slope {slope} exceeds {k}"
                );
            }
        }
    }

    #[test]
    fn matrix_application_is_elementwise() {
        let m = Matrix::from_rows(&[vec![-1.0, 0.5], vec![2.0, -0.25]]);
        let r = HiddenActivation::ReLU.apply_matrix(&m);
        assert_eq!(r[(0, 0)], 0.0);
        assert_eq!(r[(0, 1)], 0.5);
        assert_eq!(r[(1, 0)], 2.0);
        assert_eq!(r[(1, 1)], 0.0);
        let i = HiddenActivation::Identity.apply_matrix(&m);
        assert_eq!(i, m);
    }
}
