//! Spectral normalization of `α` and Lipschitz-constant bookkeeping (§3.3).
//!
//! The paper's stability argument: the Lipschitz constant of the one-hidden-
//! layer network is at most `σ_max(α) · K_G · σ_max(β)` where `K_G ≤ 1` for
//! ReLU. Normalising `α` once at initialisation (it is never trained) caps
//! the first factor at 1, and the L2 regularisation of `β` (which bounds
//! `‖β‖_F ≥ σ_max(β)`, Relation 13) controls the last factor. Together the
//! network's output range stays within `σ_max(β)` of its input scale, which
//! is what keeps the Q-learning targets sane.

use crate::activation::HiddenActivation;
use elmrl_linalg::norms::{spectral_norm_exact, spectral_norm_power};
use elmrl_linalg::{Matrix, Scalar};

/// Divide `α` by its largest singular value so that `σ_max(α) ≤ 1`
/// (Algorithm 1, lines 2–3). A zero matrix is returned unchanged.
pub fn normalize_alpha<T: Scalar>(alpha: &Matrix<T>) -> Matrix<T> {
    let sigma = sigma_max_f64(alpha);
    if sigma <= 0.0 {
        return alpha.clone();
    }
    alpha.scale(T::from_f64(1.0 / sigma))
}

/// Spectral normalization of the *augmented* input weights `[α; b]` — the
/// hidden bias is treated as one more row of the weight matrix, exactly as an
/// implementation that feeds a constant-1 input feature would do.
///
/// Normalising the augmented matrix (rather than `α` alone) divides every
/// pre-activation `x·α + b` by the same positive constant, so the ReLU
/// activation pattern — which units are on for which `(state, action)` pairs,
/// i.e. the representational geometry the Q-network relies on — is preserved
/// while `σ_max([α; b]) ≤ 1` caps the Lipschitz constant contributed by the
/// input layer. Normalising `α` alone would instead shrink the input-driven
/// part of the pre-activation relative to the untouched bias and freeze most
/// ReLUs on, destroying the state–action interaction terms Q-learning needs.
///
/// Returns the scaled `(α, b)` pair.
pub fn normalize_alpha_bias<T: Scalar>(
    alpha: &Matrix<T>,
    bias: &Matrix<T>,
) -> (Matrix<T>, Matrix<T>) {
    assert_eq!(
        alpha.cols(),
        bias.cols(),
        "α and bias disagree on the hidden width"
    );
    assert_eq!(bias.rows(), 1, "bias must be a 1×Ñ row");
    let augmented = alpha.vstack(bias).expect("shapes checked above");
    let sigma = sigma_max_f64(&augmented);
    if sigma <= 0.0 {
        return (alpha.clone(), bias.clone());
    }
    let inv = T::from_f64(1.0 / sigma);
    (alpha.scale(inv), bias.scale(inv))
}

/// `σ_max` of a matrix computed in `f64` regardless of the storage scalar.
/// Going through `f64` keeps the measurement itself free of fixed-point
/// rounding (the paper computes the normalisation offline on the CPU).
pub fn sigma_max_f64<T: Scalar>(m: &Matrix<T>) -> f64 {
    let as_f64: Matrix<f64> = m.cast();
    // The exact Jacobi route is cheap at these sizes; fall back to power
    // iteration if the SVD fails to converge (it cannot for finite data, but
    // the fallback keeps this function total).
    spectral_norm_exact(&as_f64)
        .or_else(|_| spectral_norm_power(&as_f64, 1000, 1e-12))
        .unwrap_or(0.0)
}

/// Upper bound on the Lipschitz constant of the full network
/// `x ↦ G(x·α + b)·β` (§2.5 / §3.3): `σ_max(α) · K_G · σ_max(β)`.
pub fn lipschitz_upper_bound<T: Scalar>(
    alpha: &Matrix<T>,
    beta: &Matrix<T>,
    activation: HiddenActivation,
) -> f64 {
    sigma_max_f64(alpha) * activation.lipschitz_constant() * sigma_max_f64(beta)
}

/// The Frobenius norm of `β` in `f64` — the quantity the L2 regulariser
/// actually controls, and an upper bound on `σ_max(β)` (Relation 13).
pub fn beta_frobenius_f64<T: Scalar>(beta: &Matrix<T>) -> f64 {
    let as_f64: Matrix<f64> = beta.cast();
    as_f64.frobenius_norm()
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmrl_linalg::random::uniform_matrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normalized_alpha_has_unit_sigma_max() {
        let mut rng = SmallRng::seed_from_u64(1);
        let alpha = uniform_matrix::<f64, _>(5, 64, 0.0, 1.0, &mut rng);
        assert!(sigma_max_f64(&alpha) > 1.0);
        let normed = normalize_alpha(&alpha);
        let sigma = sigma_max_f64(&normed);
        assert!((sigma - 1.0).abs() < 1e-9, "σ_max = {sigma}");
    }

    #[test]
    fn normalizing_zero_matrix_is_a_no_op() {
        let z = Matrix::<f64>::zeros(4, 4);
        assert_eq!(normalize_alpha(&z), z);
        assert_eq!(sigma_max_f64(&z), 0.0);
        let zb = Matrix::<f64>::zeros(1, 4);
        let (a, b) = normalize_alpha_bias(&z, &zb);
        assert_eq!(a, z);
        assert_eq!(b, zb);
    }

    #[test]
    fn augmented_normalization_preserves_activation_pattern() {
        let mut rng = SmallRng::seed_from_u64(9);
        let alpha = uniform_matrix::<f64, _>(5, 32, 0.0, 1.0, &mut rng);
        let bias = uniform_matrix::<f64, _>(1, 32, 0.0, 1.0, &mut rng);
        let (na, nb) = normalize_alpha_bias(&alpha, &bias);
        // σ_max of the augmented matrix is 1, and of α alone is ≤ 1.
        let augmented = na.vstack(&nb).unwrap();
        assert!((sigma_max_f64(&augmented) - 1.0).abs() < 1e-9);
        assert!(sigma_max_f64(&na) <= 1.0 + 1e-9);
        // The sign of every pre-activation is unchanged for a probe input,
        // i.e. the ReLU on/off pattern is identical before and after.
        let x = uniform_matrix::<f64, _>(3, 5, -2.0, 2.0, &mut rng);
        let pre_raw = {
            let mut p = x.matmul(&alpha);
            for r in 0..p.rows() {
                for c in 0..p.cols() {
                    p[(r, c)] += bias[(0, c)];
                }
            }
            p
        };
        let pre_norm = {
            let mut p = x.matmul(&na);
            for r in 0..p.rows() {
                for c in 0..p.cols() {
                    p[(r, c)] += nb[(0, c)];
                }
            }
            p
        };
        for (a, b) in pre_raw.iter().zip(pre_norm.iter()) {
            assert_eq!(
                *a >= 0.0,
                *b >= 0.0,
                "ReLU pattern changed by normalization"
            );
        }
    }

    #[test]
    fn lipschitz_bound_composes_factors() {
        // α with σ_max = 2, β with σ_max = 3, ReLU (K = 1) → bound 6.
        let alpha = Matrix::from_diag(&[2.0, 1.0]);
        let beta = Matrix::from_diag(&[3.0, 0.5]);
        let bound = lipschitz_upper_bound(&alpha, &beta, HiddenActivation::ReLU);
        assert!((bound - 6.0).abs() < 1e-9);
        // HardSigmoid has K = 0.25 → bound 1.5.
        let bound2 = lipschitz_upper_bound(&alpha, &beta, HiddenActivation::HardSigmoid);
        assert!((bound2 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn lipschitz_bound_after_normalization_is_sigma_max_beta() {
        // §3.3's conclusion: with normalised α, the network's Lipschitz
        // constant is at most σ_max(β).
        let mut rng = SmallRng::seed_from_u64(2);
        let alpha = normalize_alpha(&uniform_matrix::<f64, _>(5, 32, 0.0, 1.0, &mut rng));
        let beta = uniform_matrix::<f64, _>(32, 1, -0.5, 0.5, &mut rng);
        let bound = lipschitz_upper_bound(&alpha, &beta, HiddenActivation::ReLU);
        let sigma_beta = sigma_max_f64(&beta);
        assert!(bound <= sigma_beta + 1e-9);
    }

    #[test]
    fn frobenius_dominates_sigma_max_for_beta() {
        // Relation 13: σ_max(β) ≤ ‖β‖_F, the justification for using L2
        // regularisation in place of spectral regularisation.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5 {
            let beta = uniform_matrix::<f64, _>(16, 2, -1.0, 1.0, &mut rng);
            assert!(sigma_max_f64(&beta) <= beta_frobenius_f64(&beta) + 1e-9);
        }
    }

    #[test]
    fn works_on_f32_storage() {
        let mut rng = SmallRng::seed_from_u64(4);
        let alpha = uniform_matrix::<f32, _>(4, 16, 0.0, 1.0, &mut rng);
        let normed = normalize_alpha(&alpha);
        assert!(sigma_max_f64(&normed) <= 1.0 + 1e-4);
    }
}
