//! # elmrl-elm
//!
//! ELM (Extreme Learning Machine), OS-ELM (Online Sequential ELM) and
//! ReOS-ELM (L2-regularised OS-ELM) learners — the training algorithms at the
//! heart of the paper (§2.1–2.3), together with the two ingredients the paper
//! adds for stability:
//!
//! * the **batch-size-1 fast path**, which replaces the `k×k` matrix
//!   inversion in the sequential update with a single scalar reciprocal
//!   (§2.2, following Tsukada et al.), and
//! * **spectral normalization of `α`** so the random input weights have
//!   `σ_max(α) ≤ 1` (§3.3, Algorithm 1 lines 2–3).
//!
//! Everything is generic over [`elmrl_linalg::Scalar`], so the same learner
//! runs in `f64` (the software designs of §4.3) and in Q20 fixed point (the
//! FPGA design of §4.2, driven by `elmrl-fpga`).
//!
//! ```
//! use elmrl_elm::{OsElm, OsElmConfig, HiddenActivation};
//! use elmrl_linalg::Matrix;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // Learn y = 2·x0 − x1 online, one sample at a time.
//! let mut rng = SmallRng::seed_from_u64(1);
//! let config = OsElmConfig::new(2, 32, 1)
//!     .with_activation(HiddenActivation::ReLU)
//!     .with_l2_delta(0.01);
//! let mut model = OsElm::<f64>::new(&config, &mut rng);
//!
//! let xs = Matrix::from_fn(64, 2, |i, j| ((i * 3 + j * 7) % 11) as f64 / 11.0);
//! let ts = Matrix::from_fn(64, 1, |i, _| 2.0 * xs[(i, 0)] - xs[(i, 1)]);
//! model.init_train(&xs.submatrix(0, 32, 0, 2).unwrap(),
//!                  &ts.submatrix(0, 32, 0, 1).unwrap()).unwrap();
//! for i in 32..64 {
//!     model.seq_train_single(xs.row(i), ts.row(i)).unwrap();
//! }
//! let pred = model.predict_single(&[0.5, 0.25]);
//! assert!((pred[0] - 0.75).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod activation;
pub mod config;
pub mod elm;
pub mod model;
pub mod os_elm;
pub mod persistence;
pub mod spectral;

pub use activation::HiddenActivation;
pub use config::OsElmConfig;
pub use elm::Elm;
pub use model::ElmModel;
pub use os_elm::OsElm;
pub use persistence::{ElmSnapshot, ModelSnapshot, OsElmSnapshot};
pub use spectral::{lipschitz_upper_bound, normalize_alpha, normalize_alpha_bias};
