//! Configuration shared by the ELM, OS-ELM and ReOS-ELM learners.

use crate::activation::HiddenActivation;
use serde::{Deserialize, Serialize};

/// Configuration of a single-hidden-layer ELM/OS-ELM network.
///
/// In the paper's notation: `n` = [`input_dim`](Self::input_dim),
/// `Ñ` = [`hidden_dim`](Self::hidden_dim), `m` = [`output_dim`](Self::output_dim);
/// `δ` = [`l2_delta`](Self::l2_delta) (Equation 8);
/// [`spectral_normalize_alpha`](Self::spectral_normalize_alpha) enables the
/// Algorithm 1 lines 2–3 normalisation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OsElmConfig {
    /// Number of input-layer nodes (`n`).
    pub input_dim: usize,
    /// Number of hidden-layer nodes (`Ñ`).
    pub hidden_dim: usize,
    /// Number of output-layer nodes (`m`).
    pub output_dim: usize,
    /// Hidden-layer activation `G`.
    pub activation: HiddenActivation,
    /// L2 regularisation strength `δ` of the initial training (0 = plain
    /// OS-ELM, > 0 = ReOS-ELM).
    pub l2_delta: f64,
    /// When true, `δ` is interpreted *relative to the feature scale*: the
    /// initial training multiplies it by the mean squared element of `H₀`.
    /// This keeps a given `δ` meaning "the same fraction of the signal
    /// energy" whether or not spectral normalization has shrunk the hidden
    /// activations (without it, δ = 0.5 next to features of magnitude ~0.1
    /// is a ~100× stronger penalty than the same δ next to features of
    /// magnitude ~1).
    pub relative_l2: bool,
    /// Whether to spectrally normalise the random input weights `α` so that
    /// `σ_max(α) ≤ 1`.
    pub spectral_normalize_alpha: bool,
    /// Range from which `α` and the hidden bias are drawn (the paper uses
    /// `R ∈ [0, 1]`, Algorithm 1 line 1).
    pub init_low: f64,
    /// Upper end of the initialisation range.
    pub init_high: f64,
}

impl OsElmConfig {
    /// Config with the paper's defaults: ReLU, no regularisation, no
    /// normalisation, `α, b ∈ [0, 1]`.
    pub fn new(input_dim: usize, hidden_dim: usize, output_dim: usize) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0 && output_dim > 0,
            "dimensions must be positive"
        );
        Self {
            input_dim,
            hidden_dim,
            output_dim,
            activation: HiddenActivation::ReLU,
            l2_delta: 0.0,
            relative_l2: false,
            spectral_normalize_alpha: false,
            init_low: 0.0,
            init_high: 1.0,
        }
    }

    /// Set the hidden activation.
    pub fn with_activation(mut self, activation: HiddenActivation) -> Self {
        self.activation = activation;
        self
    }

    /// Set the ReOS-ELM regularisation parameter `δ`.
    pub fn with_l2_delta(mut self, delta: f64) -> Self {
        assert!(delta >= 0.0, "δ must be non-negative");
        self.l2_delta = delta;
        self
    }

    /// Interpret `δ` relative to the feature scale (see the field docs).
    pub fn with_relative_l2(mut self, relative: bool) -> Self {
        self.relative_l2 = relative;
        self
    }

    /// Enable or disable spectral normalization of `α`.
    pub fn with_spectral_normalization(mut self, enabled: bool) -> Self {
        self.spectral_normalize_alpha = enabled;
        self
    }

    /// Set the uniform initialisation range for `α` and the hidden bias.
    pub fn with_init_range(mut self, low: f64, high: f64) -> Self {
        assert!(low < high, "init range must be non-empty");
        self.init_low = low;
        self.init_high = high;
        self
    }

    /// Number of stored parameters (α, bias, β) — the quantity that drives
    /// the FPGA BRAM requirement in Table 3.
    pub fn parameter_count(&self) -> usize {
        self.input_dim * self.hidden_dim + self.hidden_dim + self.hidden_dim * self.output_dim
    }

    /// Number of elements of the `P` matrix kept by OS-ELM sequential
    /// training (`Ñ × Ñ`), the other large BRAM consumer.
    pub fn p_matrix_elements(&self) -> usize {
        self.hidden_dim * self.hidden_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OsElmConfig::new(5, 64, 1);
        assert_eq!(c.activation, HiddenActivation::ReLU);
        assert_eq!(c.l2_delta, 0.0);
        assert!(!c.spectral_normalize_alpha);
        assert_eq!((c.init_low, c.init_high), (0.0, 1.0));
    }

    #[test]
    fn builder_methods_apply() {
        let c = OsElmConfig::new(4, 32, 2)
            .with_activation(HiddenActivation::HardTanh)
            .with_l2_delta(0.5)
            .with_spectral_normalization(true)
            .with_init_range(-1.0, 1.0);
        assert_eq!(c.activation, HiddenActivation::HardTanh);
        assert_eq!(c.l2_delta, 0.5);
        assert!(c.spectral_normalize_alpha);
        assert_eq!((c.init_low, c.init_high), (-1.0, 1.0));
    }

    #[test]
    fn parameter_counts() {
        let c = OsElmConfig::new(5, 64, 1);
        assert_eq!(c.parameter_count(), 5 * 64 + 64 + 64);
        assert_eq!(c.p_matrix_elements(), 64 * 64);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = OsElmConfig::new(0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "δ must be non-negative")]
    fn negative_delta_rejected() {
        let _ = OsElmConfig::new(1, 1, 1).with_l2_delta(-1.0);
    }

    #[test]
    #[should_panic(expected = "init range must be non-empty")]
    fn empty_init_range_rejected() {
        let _ = OsElmConfig::new(1, 1, 1).with_init_range(1.0, 1.0);
    }
}
