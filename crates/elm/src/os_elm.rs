//! OS-ELM: online sequential training (§2.2–2.3, Equations 5–8).
//!
//! After an *initial training* on a first chunk (`P₀`, `β₀`), the model is
//! updated one chunk at a time without revisiting old data:
//!
//! ```text
//! Pᵢ = Pᵢ₋₁ − Pᵢ₋₁Hᵢᵀ (I + HᵢPᵢ₋₁Hᵢᵀ)⁻¹ HᵢPᵢ₋₁
//! βᵢ = βᵢ₋₁ + PᵢHᵢᵀ (tᵢ − Hᵢβᵢ₋₁)
//! ```
//!
//! With batch size 1 the inverted matrix is `1×1`, so the whole update needs
//! only multiply–add plus **one reciprocal** — the observation (§2.2, after
//! Tsukada et al.) that makes the FPGA implementation feasible without an
//! SVD/QRD core. [`OsElm::seq_train_single`] is that fast path;
//! [`OsElm::seq_train`] is the general batched form, kept for equivalence
//! testing and for the ELM-vs-OS-ELM ablation.

use crate::config::OsElmConfig;
use crate::model::ElmModel;
use elmrl_linalg::decomp::{cholesky_into, solve_spd_into, Cholesky};
use elmrl_linalg::solve::inverse;
use elmrl_linalg::{LinalgError, Matrix, Scalar};
use rand::Rng;
use rayon::prelude::*;
use std::fmt;

/// Row-tile height of the fused P-update passes: the unit of work handed to
/// the work-sharing pool, and the stride of the sequential tile loop. 64
/// rows keep one tile of `P` (64·Ñ f64 = 512 KiB at Ñ = 1024) streaming
/// through L2 while `h`/`hp` stay L1-resident; swept against 16/32/128/256
/// in the `scaling_kernels` bench (flat within noise from 32 up, so the
/// value matters for scheduling granularity more than locality).
pub const P_UPDATE_TILE: usize = 64;

/// Errors produced by OS-ELM training.
#[derive(Debug, Clone, PartialEq)]
pub enum OsElmError {
    /// `seq_train` was called before `init_train`.
    NotInitialized,
    /// `init_train` was called twice.
    AlreadyInitialized,
    /// Input/target shapes disagree with the model configuration.
    ShapeMismatch(String),
    /// A linear-algebra failure (singular Gram matrix etc.).
    Linalg(LinalgError),
}

impl fmt::Display for OsElmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsElmError::NotInitialized => {
                write!(f, "sequential training requires init_train first")
            }
            OsElmError::AlreadyInitialized => write!(f, "init_train called twice"),
            OsElmError::ShapeMismatch(d) => write!(f, "shape mismatch: {d}"),
            OsElmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for OsElmError {}

impl From<LinalgError> for OsElmError {
    fn from(e: LinalgError) -> Self {
        OsElmError::Linalg(e)
    }
}

/// Reusable workspaces for the sequential-update hot paths — the batch-size-1
/// fast path and the chunked batch-B recursion. Every matrix keeps its
/// allocation across calls (see [`Matrix::resize_zeroed`]), so once the
/// workspaces have reached their steady size both paths perform **zero
/// matrix heap allocations** — the throughput property the paper's line-rate
/// claim rests on, asserted by the counting-allocator test in `elmrl-core`.
/// Workspace shapes are quoted for a chunk of `B` samples; the fast path is
/// the `B = 1` case.
#[derive(Clone, Debug)]
struct SeqScratch<T: Scalar> {
    /// `1 × n` staging row for the single-sample input.
    x: Matrix<T>,
    /// `B × Ñ` hidden activation `H`.
    h: Matrix<T>,
    /// `Ñ × B` — `P·Hᵀ` before the downdate, `P_new·Hᵀ` after.
    ph: Matrix<T>,
    /// `B × Ñ` — `H·P`.
    hp: Matrix<T>,
    /// `B × m` — the prediction `H·β`, overwritten in place by the residual
    /// `t − H·β` that drives the β update.
    pred: Matrix<T>,
    /// `B × B` — the innovation matrix `S = I + H·P·Hᵀ` (batch path only).
    s: Matrix<T>,
    /// `B × B` — the Cholesky factor of `S` (batch path only).
    l: Matrix<T>,
    /// `B × Ñ` — the solve `S⁻¹·(H·P)` (batch path only).
    sol: Matrix<T>,
    /// `1 × Ñ` — one row of the `P` downdate, recomputed per row inside the
    /// fused pass (batch path only). PR 9 replaced the former `Ñ × Ñ`
    /// full-downdate workspace with this row: the downdate is applied
    /// row-by-row while the row is hot, which removes an entire `Ñ²` write
    /// + read + subtract sweep from the chunk update.
    tmp: Matrix<T>,
    /// Pack buffer for the cache-blocked hidden-activation product.
    pack: Vec<T>,
}

// Manual impl: `derive(Default)` would demand `T: Default`, which `Scalar`
// does not promise; empty matrices need no such bound.
impl<T: Scalar> Default for SeqScratch<T> {
    fn default() -> Self {
        Self {
            x: Matrix::default(),
            h: Matrix::default(),
            ph: Matrix::default(),
            hp: Matrix::default(),
            pred: Matrix::default(),
            s: Matrix::default(),
            l: Matrix::default(),
            sol: Matrix::default(),
            tmp: Matrix::default(),
            pack: Vec::new(),
        }
    }
}

/// The collected row tiles of a fused P pass handed to the work-sharing
/// pool: (`P` rows, `ph` rows, `β` rows) per tile.
type RowTiles<'a, T> = Vec<((&'a mut [T], &'a mut [T]), &'a mut [T])>;

/// Fused pass 1 of the RLS update: one streamed read of `P` (row-major,
/// ascending rows) produces both `ph = P·Hᵀ` (Ñ×B) and `hp = H·P` (B×Ñ,
/// pre-zeroed by the caller). Per output element the accumulation order is
/// exactly the separate `matmul_t_into` / `matmul_into` kernels' — `ph[r][b]`
/// sums ascending `c`, `hp[b][c]` accumulates ascending `r` — so the fusion
/// changes memory traffic only, never a byte.
fn fused_ph_hp<T: Scalar>(p: &Matrix<T>, h: &Matrix<T>, ph: &mut Matrix<T>, hp: &mut Matrix<T>) {
    let n = p.rows();
    let b_rows = h.rows();
    if b_rows == 1 {
        fused_ph_hp_single(p, h.row(0), ph, hp.row_mut(0));
        return;
    }
    for r in 0..n {
        let p_row = p.row(r);
        let ph_row = ph.row_mut(r);
        // Four ph dots in flight: the chains are independent (one per
        // output element), so interleaving them hides the serial FP-add
        // latency of a lone ascending-order accumulation; each individual
        // accumulator still sums ascending `c`, so not a byte changes.
        let mut b = 0;
        while b + 4 <= b_rows {
            let (h0, h1, h2, h3) = (h.row(b), h.row(b + 1), h.row(b + 2), h.row(b + 3));
            let mut a0 = T::zero();
            let mut a1 = T::zero();
            let mut a2 = T::zero();
            let mut a3 = T::zero();
            for ((((&p_rc, &c0), &c1), &c2), &c3) in p_row.iter().zip(h0).zip(h1).zip(h2).zip(h3) {
                a0 += p_rc * c0;
                a1 += p_rc * c1;
                a2 += p_rc * c2;
                a3 += p_rc * c3;
            }
            ph_row[b] = a0;
            ph_row[b + 1] = a1;
            ph_row[b + 2] = a2;
            ph_row[b + 3] = a3;
            b += 4;
        }
        for (o, h_row) in ph_row[b..].iter_mut().zip((b..b_rows).map(|bb| h.row(bb))) {
            let mut acc = T::zero();
            for (&p_rc, &h_c) in p_row.iter().zip(h_row) {
                acc += p_rc * h_c;
            }
            *o = acc;
        }
        for bb in 0..b_rows {
            let h_br = h.row(bb)[r];
            let hp_row = hp.row_mut(bb);
            for (v, &p_rc) in hp_row.iter_mut().zip(p_row) {
                *v += h_br * p_rc;
            }
        }
    }
}

/// The `B = 1` specialisation of [`fused_ph_hp`]: four rows of `P` stream
/// together, giving four independent `ph` dot chains in flight while the
/// `hp` element picks up the same four terms in ascending row order — per
/// element, every operation and its order match the one-row-at-a-time loop
/// exactly, so the interleave is bit-identical and only buys instruction-
/// level parallelism.
fn fused_ph_hp_single<T: Scalar>(p: &Matrix<T>, h_row: &[T], ph: &mut Matrix<T>, hp_row: &mut [T]) {
    let n = p.rows();
    let mut r = 0;
    while r + 4 <= n {
        let (p0, p1, p2, p3) = (p.row(r), p.row(r + 1), p.row(r + 2), p.row(r + 3));
        let (h0, h1, h2, h3) = (h_row[r], h_row[r + 1], h_row[r + 2], h_row[r + 3]);
        let mut a0 = T::zero();
        let mut a1 = T::zero();
        let mut a2 = T::zero();
        let mut a3 = T::zero();
        for (((((&c0, &c1), &c2), &c3), &h_c), v) in p0
            .iter()
            .zip(p1)
            .zip(p2)
            .zip(p3)
            .zip(h_row)
            .zip(hp_row.iter_mut())
        {
            a0 += c0 * h_c;
            a1 += c1 * h_c;
            a2 += c2 * h_c;
            a3 += c3 * h_c;
            let mut acc = *v;
            acc += h0 * c0;
            acc += h1 * c1;
            acc += h2 * c2;
            acc += h3 * c3;
            *v = acc;
        }
        ph[(r, 0)] = a0;
        ph[(r + 1, 0)] = a1;
        ph[(r + 2, 0)] = a2;
        ph[(r + 3, 0)] = a3;
        r += 4;
    }
    while r < n {
        let p_row = p.row(r);
        let h_r = h_row[r];
        let mut acc = T::zero();
        for ((&p_rc, &h_c), v) in p_row.iter().zip(h_row).zip(hp_row.iter_mut()) {
            acc += p_rc * h_c;
            *v += h_r * p_rc;
        }
        ph[(r, 0)] = acc;
        r += 1;
    }
}

/// `ph = P·Hᵀ` with row tiles on the work-sharing pool. Each `ph` row is an
/// independent set of dots against `H`, so any tiling is bit-identical.
fn par_ph<T: Scalar>(p: &Matrix<T>, h: &Matrix<T>, ph: &mut Matrix<T>) {
    let b_rows = h.rows();
    let chunks: Vec<(usize, &mut [T])> = ph
        .as_mut_slice()
        .chunks_mut(P_UPDATE_TILE * b_rows)
        .enumerate()
        .collect();
    chunks.into_par_iter().for_each(|(ci, chunk)| {
        let r0 = ci * P_UPDATE_TILE;
        for (dr, ph_row) in chunk.chunks_mut(b_rows).enumerate() {
            let p_row = p.row(r0 + dr);
            for (b, o) in ph_row.iter_mut().enumerate() {
                let h_row = h.row(b);
                let mut acc = T::zero();
                for (&p_rc, &h_c) in p_row.iter().zip(h_row) {
                    acc += p_rc * h_c;
                }
                *o = acc;
            }
        }
    });
}

/// `hp = H·P` (pre-zeroed) with **rows of `hp`** on the pool — each row `b`
/// accumulates `Σ_r H[b][r]·P[r,:]` ascending `r` independently of the other
/// rows, which is exactly the `matmul_into` per-element order.
fn par_hp_rows<T: Scalar>(p: &Matrix<T>, h: &Matrix<T>, hp: &mut Matrix<T>) {
    let n = p.cols();
    let chunks: Vec<(usize, &mut [T])> = hp.as_mut_slice().chunks_mut(n).enumerate().collect();
    chunks.into_par_iter().for_each(|(b, hp_row)| {
        let h_row = h.row(b);
        for (r, &h_br) in h_row.iter().enumerate() {
            let p_row = p.row(r);
            for (v, &p_rc) in hp_row.iter_mut().zip(p_row) {
                *v += h_br * p_rc;
            }
        }
    });
}

/// `hp = h·P` for a single sample (pre-zeroed 1×Ñ row) with **column tiles**
/// on the pool: element `hp[c]` accumulates `Σ_r h[r]·P[r][c]` ascending `r`
/// within its tile, independent of every other column — the `matmul_into`
/// order again, so the column split is bit-identical.
fn par_hp_cols<T: Scalar>(p: &Matrix<T>, h_row: &[T], hp_row: &mut [T]) {
    let chunks: Vec<(usize, &mut [T])> = hp_row.chunks_mut(P_UPDATE_TILE).enumerate().collect();
    chunks.into_par_iter().for_each(|(ci, tile)| {
        let c0 = ci * P_UPDATE_TILE;
        for (r, &h_r) in h_row.iter().enumerate() {
            let p_slice = &p.row(r)[c0..c0 + tile.len()];
            for (v, &p_rc) in tile.iter_mut().zip(p_slice) {
                *v += h_r * p_rc;
            }
        }
    });
}

/// Fused pass 2 of the batch-B RLS update over a contiguous row range: for
/// each row `r` in the tile, (1) rebuild the downdate row
/// `(P·Hᵀ)[r]·S⁻¹·(H·P)` into `tmp` (ascending `b`, the `matmul_into`
/// order) and subtract it from `P[r]` in place, (2) recompute
/// `ph[r] = P_new[r]·Hᵀ` — legal because row `r` of `P` is final after its
/// own downdate — and (3) fold the β-row update `β[r] += ph_new[r]·e`.
/// Bit-identical to the former four-kernel sequence; `P` is read/written
/// once instead of four times.
fn rls_downdate_rows<T: Scalar>(
    p_rows: &mut [T],
    ph_rows: &mut [T],
    beta_rows: &mut [T],
    h: &Matrix<T>,
    sol: &Matrix<T>,
    resid: &Matrix<T>,
    tmp: &mut [T],
) {
    let n = h.cols();
    let b_rows = h.rows();
    let m_out = resid.cols();
    for ((p_row, ph_row), beta_row) in p_rows
        .chunks_mut(n)
        .zip(ph_rows.chunks_mut(b_rows))
        .zip(beta_rows.chunks_mut(m_out))
    {
        tmp.fill(T::zero());
        for (b, &ph_rb) in ph_row.iter().enumerate() {
            let sol_row = sol.row(b);
            for (v, &s_bc) in tmp.iter_mut().zip(sol_row) {
                *v += ph_rb * s_bc;
            }
        }
        for (p_rc, &u) in p_row.iter_mut().zip(tmp.iter()) {
            *p_rc -= u;
        }
        // ph[r] ← P_new[r]·Hᵀ, four dots in flight (independent chains, one
        // per output element; each still sums ascending `c` — bit-identical
        // to the one-at-a-time loop, see `fused_ph_hp`).
        let mut b = 0;
        while b + 4 <= b_rows {
            let (h0, h1, h2, h3) = (h.row(b), h.row(b + 1), h.row(b + 2), h.row(b + 3));
            let mut a0 = T::zero();
            let mut a1 = T::zero();
            let mut a2 = T::zero();
            let mut a3 = T::zero();
            for ((((&p_rc, &c0), &c1), &c2), &c3) in p_row.iter().zip(h0).zip(h1).zip(h2).zip(h3) {
                a0 += p_rc * c0;
                a1 += p_rc * c1;
                a2 += p_rc * c2;
                a3 += p_rc * c3;
            }
            ph_row[b] = a0;
            ph_row[b + 1] = a1;
            ph_row[b + 2] = a2;
            ph_row[b + 3] = a3;
            b += 4;
        }
        for (ph_rb, h_row) in ph_row[b..].iter_mut().zip((b..b_rows).map(|bb| h.row(bb))) {
            let mut acc = T::zero();
            for (&p_rc, &h_c) in p_row.iter().zip(h_row) {
                acc += p_rc * h_c;
            }
            *ph_rb = acc;
        }
        for (j, beta_rj) in beta_row.iter_mut().enumerate() {
            let mut acc = T::zero();
            for (b, &ph_rb) in ph_row.iter().enumerate() {
                acc += ph_rb * resid.row(b)[j];
            }
            *beta_rj += acc;
        }
    }
}

/// Fused pass 2 of the single-sample RLS update over a contiguous row
/// range: per row r, the rank-1 downdate `P[r] −= (ph[r]/denom)·hp`, the
/// recompute `ph[r] ← P_new[r]·hᵀ` (row r is final after its own
/// downdate), and the β-row update `β[r] += ph_new[r]·e` — fused per
/// element (each `P[r][c]` is downdated immediately before its use in the
/// dot, so the dot still sums the final values ascending `c`), and
/// processed four rows at a time so four independent dot chains are in
/// flight. Per element every operation and its order match the one-row
/// downdate-then-dot loop exactly; the interleave is bit-identical.
fn rank1_downdate_rows<T: Scalar>(
    p_rows: &mut [T],
    ph_rows: &mut [T],
    beta_rows: &mut [T],
    hp_row: &[T],
    h_row: &[T],
    resid: &[T],
    inv_denom: T,
) {
    let n = hp_row.len();
    let m = resid.len();
    for ((pb, phb), bb) in p_rows
        .chunks_mut(4 * n)
        .zip(ph_rows.chunks_mut(4))
        .zip(beta_rows.chunks_mut(4 * m))
    {
        if phb.len() == 4 {
            let (p01, p23) = pb.split_at_mut(2 * n);
            let (p0, p1) = p01.split_at_mut(n);
            let (p2, p3) = p23.split_at_mut(n);
            let s0 = phb[0] * inv_denom;
            let s1 = phb[1] * inv_denom;
            let s2 = phb[2] * inv_denom;
            let s3 = phb[3] * inv_denom;
            let mut a0 = T::zero();
            let mut a1 = T::zero();
            let mut a2 = T::zero();
            let mut a3 = T::zero();
            for (((((p0c, p1c), p2c), p3c), &hp_c), &h_c) in p0
                .iter_mut()
                .zip(p1.iter_mut())
                .zip(p2.iter_mut())
                .zip(p3.iter_mut())
                .zip(hp_row)
                .zip(h_row)
            {
                let sub0 = s0 * hp_c;
                *p0c -= sub0;
                a0 += *p0c * h_c;
                let sub1 = s1 * hp_c;
                *p1c -= sub1;
                a1 += *p1c * h_c;
                let sub2 = s2 * hp_c;
                *p2c -= sub2;
                a2 += *p2c * h_c;
                let sub3 = s3 * hp_c;
                *p3c -= sub3;
                a3 += *p3c * h_c;
            }
            phb[0] = a0;
            phb[1] = a1;
            phb[2] = a2;
            phb[3] = a3;
            for (r, acc) in [a0, a1, a2, a3].into_iter().enumerate() {
                for (beta_rc, &e_c) in bb[r * m..(r + 1) * m].iter_mut().zip(resid) {
                    let add = acc * e_c;
                    *beta_rc += add;
                }
            }
        } else {
            // Remainder rows (fewer than four left): the plain fused loop.
            for ((p_row, ph_r), beta_row) in
                pb.chunks_mut(n).zip(phb.iter_mut()).zip(bb.chunks_mut(m))
            {
                let scale = *ph_r * inv_denom;
                let mut acc = T::zero();
                for ((p_rc, &hp_c), &h_c) in p_row.iter_mut().zip(hp_row).zip(h_row) {
                    let sub = scale * hp_c;
                    *p_rc -= sub;
                    acc += *p_rc * h_c;
                }
                *ph_r = acc;
                for (beta_rc, &e_c) in beta_row.iter_mut().zip(resid) {
                    let add = acc * e_c;
                    *beta_rc += add;
                }
            }
        }
    }
}

/// An Online Sequential Extreme Learning Machine.
#[derive(Clone, Debug)]
pub struct OsElm<T: Scalar> {
    model: ElmModel<T>,
    /// `P` matrix of the recursive update; `None` until initial training.
    p: Option<Matrix<T>>,
    l2_delta: f64,
    relative_l2: bool,
    /// Counts of training calls, used by the harness timing model.
    init_train_count: usize,
    seq_train_count: usize,
    /// Workspaces of the single-sample fast path (never observable through
    /// the public API; cloned along with the learner, which is harmless).
    scratch: SeqScratch<T>,
}

impl<T: Scalar> OsElm<T> {
    /// Initialise the network (random `α`, `b`; zero `β`; no `P` yet).
    pub fn new<R: Rng + ?Sized>(config: &OsElmConfig, rng: &mut R) -> Self {
        Self {
            model: ElmModel::new(config, rng),
            p: None,
            l2_delta: config.l2_delta,
            relative_l2: config.relative_l2,
            init_train_count: 0,
            seq_train_count: 0,
            scratch: SeqScratch::default(),
        }
    }

    /// Wrap an existing model (used by the Q-network layer when it resets β
    /// but keeps α).
    pub fn from_model(model: ElmModel<T>, l2_delta: f64) -> Self {
        Self {
            model,
            p: None,
            l2_delta,
            relative_l2: false,
            init_train_count: 0,
            seq_train_count: 0,
            scratch: SeqScratch::default(),
        }
    }

    /// Borrow the underlying model.
    pub fn model(&self) -> &ElmModel<T> {
        &self.model
    }

    /// Mutable access to the underlying model.
    pub fn model_mut(&mut self) -> &mut ElmModel<T> {
        &mut self.model
    }

    /// The ReOS-ELM regularisation strength `δ` used at initial training.
    pub fn l2_delta(&self) -> f64 {
        self.l2_delta
    }

    /// Borrow the `P` matrix (None before initial training).
    pub fn p_matrix(&self) -> Option<&Matrix<T>> {
        self.p.as_ref()
    }

    /// `true` once initial training has run.
    pub fn is_initialized(&self) -> bool {
        self.p.is_some()
    }

    /// How many times `init_train` has run (0 or 1 unless `reset_training`).
    pub fn init_train_count(&self) -> usize {
        self.init_train_count
    }

    /// How many sequential updates have run.
    pub fn seq_train_count(&self) -> usize {
        self.seq_train_count
    }

    /// Discard `P` and `β` (keeping the random `α`, `b`) so the model can be
    /// re-initialised — the "reset unpromising weights" rule of §4.3.
    pub fn reset_training(&mut self) {
        self.p = None;
        let (rows, cols) = self.model.beta().shape();
        self.model.set_beta(Matrix::zeros(rows, cols));
    }

    /// Initial training (Equation 7 / Equation 8):
    /// `P₀ = (H₀ᵀH₀ + δI)⁻¹`, `β₀ = P₀H₀ᵀt₀`.
    ///
    /// With `δ = 0` this requires at least `Ñ` linearly independent rows in
    /// the chunk (the paper fills buffer `D` with `Ñ` samples first,
    /// Algorithm 1 lines 16–19); with `δ > 0` (ReOS-ELM) any chunk size works.
    pub fn init_train(&mut self, x0: &Matrix<T>, t0: &Matrix<T>) -> Result<(), OsElmError> {
        if self.p.is_some() {
            return Err(OsElmError::AlreadyInitialized);
        }
        self.check_shapes(x0, t0)?;
        let h0 = self.model.hidden(x0);
        let n_hidden = self.model.hidden_dim();
        let mut gram = h0.t_matmul(&h0);
        if self.l2_delta > 0.0 {
            // Relative mode scales δ by the mean squared hidden activation so
            // the penalty stays proportionate to the feature energy (see
            // `OsElmConfig::relative_l2`).
            let effective = if self.relative_l2 {
                let mean_sq =
                    h0.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>() / h0.len() as f64;
                self.l2_delta * mean_sq.max(f64::MIN_POSITIVE)
            } else {
                self.l2_delta
            };
            let delta = T::from_f64(effective);
            for i in 0..n_hidden {
                gram[(i, i)] += delta;
            }
        }
        let p0 = elmrl_linalg::solve::inverse_spd(&gram)?;
        let beta0 = p0.matmul(&h0.t_matmul(t0));
        self.model.set_beta(beta0);
        self.p = Some(p0);
        self.init_train_count += 1;
        Ok(())
    }

    /// General sequential update with an arbitrary chunk size (Equation 6),
    /// in the allocating reference form: every intermediate is a fresh
    /// matrix. The innovation matrix `S = I + H·P·Hᵀ` is symmetric positive
    /// definite (P is SPD by construction), so the solve goes through
    /// Cholesky — with an LU fallback for the rare case where rounding has
    /// pushed `S` off positive definiteness.
    ///
    /// [`OsElm::seq_train_batch`] performs the **same arithmetic** through
    /// reusable workspaces; the equivalence proptest pins the two paths
    /// bit for bit.
    pub fn seq_train(&mut self, x: &Matrix<T>, t: &Matrix<T>) -> Result<(), OsElmError> {
        self.check_shapes(x, t)?;
        let p = self.p.as_ref().ok_or(OsElmError::NotInitialized)?;
        let h = self.model.hidden(x);
        let k = h.rows();

        // S = I + H·P·Hᵀ  (k×k)
        let ph_t = p.matmul_t(&h); // P·Hᵀ (Ñ×k)
        let hp = h.matmul(p); // H·P (k×Ñ)
        let mut s = h.matmul(&ph_t); // H·P·Hᵀ
        for i in 0..k {
            s[(i, i)] += T::one();
        }
        let sol = match Cholesky::decompose(&s) {
            Ok(ch) => ch.solve(&hp)?, // S⁻¹·H·P (k×Ñ)
            Err(LinalgError::NotPositiveDefinite { .. }) => inverse(&s)?.matmul(&hp),
            Err(e) => return Err(e.into()),
        };

        // P ← P − P·Hᵀ·S⁻¹·H·P
        let update = ph_t.matmul(&sol);
        let new_p = p - &update;

        // β ← β + P·Hᵀ·(t − H·β)
        let residual = t - &h.matmul(self.model.beta());
        let delta_beta = new_p.matmul_t(&h).matmul(&residual);
        let new_beta = self.model.beta() + &delta_beta;

        self.p = Some(new_p);
        self.model.set_beta(new_beta);
        self.seq_train_count += 1;
        Ok(())
    }

    /// Batch-B sequential update — the Equation 6 chunked recursion rebuilt
    /// on the reusable `SeqScratch` workspaces, so the steady-state update
    /// performs **zero matrix heap allocations** for any chunk size. One
    /// B-chunk update equals B single-sample updates in exact arithmetic
    /// (the recursion is block-exact); in floating point the two drift only
    /// at rounding level, which the equivalence tests bound at `1e-9`.
    ///
    /// The arithmetic is operation-for-operation the allocating
    /// [`OsElm::seq_train`] (every `*_into` kernel and the Cholesky
    /// workspace kernels are bit-for-bit pinned against their allocating
    /// twins), so the two entry points return bit-identical `P` and `β` —
    /// the property the `elmrl-elm` proptest asserts.
    pub fn seq_train_batch(&mut self, x: &Matrix<T>, t: &Matrix<T>) -> Result<(), OsElmError> {
        self.check_shapes(x, t)?;
        let Self {
            model, p, scratch, ..
        } = self;
        let p = p.as_mut().ok_or(OsElmError::NotInitialized)?;
        let SeqScratch {
            h,
            ph,
            hp,
            pred,
            s,
            l,
            sol,
            tmp,
            pack,
            ..
        } = scratch;
        let k = x.rows();
        let n_hidden = model.hidden_dim();
        let m_out = model.output_dim();
        let _span = elmrl_telemetry::hist!("elm.batch_rls").span();

        // H = G(x·α + b) (B×Ñ), through the cache-blocked kernel (wide
        // inputs are the high-dim workload's hot shape).
        model.hidden_into_packed(x, pack, h);

        // The two P passes dominate the chunk update (everything else is
        // O(B²·Ñ) or smaller); route them through the work-sharing pool when
        // they clear the parallel threshold and the pool has workers.
        let parallel = rayon::current_num_threads() > 1
            && 2 * k * n_hidden * n_hidden >= elmrl_linalg::parallel_flop_threshold();

        // Fused pass 1 — one streamed read of P yields both P·Hᵀ (Ñ×B) and
        // H·P (B×Ñ). The old form (`matmul_t_into` + `matmul_into`) streamed
        // P B+1 times; per output element the accumulation order is
        // unchanged, so the results are bit-identical.
        ph.resize_zeroed(n_hidden, k);
        hp.resize_zeroed(k, n_hidden);
        if parallel {
            elmrl_telemetry::counter!("elm.batch_rls.par").add(1);
            par_ph(p, h, ph);
            par_hp_rows(p, h, hp);
        } else {
            elmrl_telemetry::counter!("elm.batch_rls.seq").add(1);
            fused_ph_hp(p, h, ph, hp);
        }

        // S = I + H·P·Hᵀ (B×B).
        h.matmul_into(ph, s);
        for i in 0..k {
            s[(i, i)] += T::one();
        }
        match cholesky_into(s, l) {
            Ok(()) => solve_spd_into(l, hp, sol).map_err(OsElmError::from)?,
            Err(LinalgError::NotPositiveDefinite { .. }) => {
                // Rounding pushed S off SPD — rare enough that the LU
                // fallback may allocate, exactly as `seq_train` does.
                inverse(s)?.matmul_into(hp, sol);
            }
            Err(e) => return Err(e.into()),
        }

        // Residual e = t − H·β (B×m), in place on the prediction buffer.
        // Depends only on H and the pre-update β, so hoisting it above the
        // downdate cannot change a byte.
        h.matmul_into(model.beta(), pred);
        for r in 0..k {
            let t_row = t.row(r);
            for (c, v) in pred.row_mut(r).iter_mut().enumerate() {
                *v = t_row[c] - *v;
            }
        }

        // Fused pass 2, tiled by `P_UPDATE_TILE` rows — per row r:
        //   P[r] ← P[r] − (P·Hᵀ)[r]·S⁻¹·(H·P)   (the Equation 6 downdate)
        //   ph[r] ← P_new[r]·Hᵀ                  (row r is final after its
        //                                         own downdate)
        //   β[r] ← β[r] + ph_new[r]·e
        // Row r of every operand is independent of the others, and each
        // element keeps the old kernels' ascending accumulation order, so
        // this is bit-identical to the former update/subtract/matmul_t/
        // matmul/add sequence while touching P once instead of four times.
        let resid: &Matrix<T> = pred;
        let beta = model.beta_mut();
        if parallel {
            let chunks: RowTiles<T> = p
                .as_mut_slice()
                .chunks_mut(P_UPDATE_TILE * n_hidden)
                .zip(ph.as_mut_slice().chunks_mut(P_UPDATE_TILE * k))
                .zip(beta.as_mut_slice().chunks_mut(P_UPDATE_TILE * m_out))
                .collect();
            chunks
                .into_par_iter()
                .for_each(|((p_rows, ph_rows), b_rows)| {
                    let mut tile_tmp = vec![T::zero(); n_hidden];
                    rls_downdate_rows(p_rows, ph_rows, b_rows, h, sol, resid, &mut tile_tmp);
                });
        } else {
            tmp.resize_zeroed(1, n_hidden);
            let tmp_row = tmp.row_mut(0);
            for r0 in (0..n_hidden).step_by(P_UPDATE_TILE) {
                let r1 = (r0 + P_UPDATE_TILE).min(n_hidden);
                rls_downdate_rows(
                    &mut p.as_mut_slice()[r0 * n_hidden..r1 * n_hidden],
                    &mut ph.as_mut_slice()[r0 * k..r1 * k],
                    &mut beta.as_mut_slice()[r0 * m_out..r1 * m_out],
                    h,
                    sol,
                    resid,
                    tmp_row,
                );
            }
        }

        self.seq_train_count += 1;
        Ok(())
    }

    /// Batch-size-1 fast path: the `(I + hPhᵀ)` term is a scalar, so the
    /// matrix inversion collapses to one reciprocal (§2.2). `x` and `t` are
    /// single samples given as slices.
    ///
    /// This path is **allocation-free at steady state**: `P` is downdated
    /// and `β` is updated in place, and every intermediate (`h`, `P·hᵀ`,
    /// `h·P`, `h·β`) lives in a reusable workspace. The arithmetic — and so
    /// the result — is bit-for-bit what the historical clone-based
    /// implementation produced, which `batch_one_fast_path_matches_general_
    /// update` below pins against the general chunked recursion.
    pub fn seq_train_single(&mut self, x: &[T], t: &[T]) -> Result<(), OsElmError> {
        if x.len() != self.model.input_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "input has {} features, expected {}",
                x.len(),
                self.model.input_dim()
            )));
        }
        if t.len() != self.model.output_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "target has {} outputs, expected {}",
                t.len(),
                self.model.output_dim()
            )));
        }
        let Self {
            model, p, scratch, ..
        } = self;
        let p = p.as_mut().ok_or(OsElmError::NotInitialized)?;
        let SeqScratch {
            x: staging,
            h,
            ph,
            hp,
            pred,
            ..
        } = scratch;
        let n_hidden = model.hidden_dim();
        let m = model.output_dim();
        let _span = elmrl_telemetry::hist!("elm.p_update").span();

        // h: 1×Ñ hidden activation of the sample (through the staging row).
        staging.resize_zeroed(1, model.input_dim());
        staging.set_row(0, x);
        model.hidden_into(staging, h);

        // The two O(Ñ²) P passes below go to the work-sharing pool when they
        // clear the parallel threshold (never on a 1-worker pool).
        let parallel = rayon::current_num_threads() > 1
            && 2 * n_hidden * n_hidden >= elmrl_linalg::parallel_flop_threshold();

        // Fused pass 1 — one streamed read of P yields both ph = P·hᵀ (Ñ×1)
        // and hp = h·P (1×Ñ); per element the accumulation order matches the
        // former `matmul_t_into` + `matmul_into` pair exactly.
        ph.resize_zeroed(n_hidden, 1);
        hp.resize_zeroed(1, n_hidden);
        if parallel {
            elmrl_telemetry::counter!("elm.p_update.par").add(1);
            par_ph(p, h, ph);
            par_hp_cols(p, h.row(0), hp.row_mut(0));
        } else {
            elmrl_telemetry::counter!("elm.p_update.seq").add(1);
            fused_ph_hp(p, h, ph, hp);
        }

        // denom = 1 + h·P·hᵀ (scalar); the §2.2 one-reciprocal observation.
        let mut denom = T::one();
        let h_row = h.row(0);
        for i in 0..n_hidden {
            denom += h_row[i] * ph[(i, 0)];
        }
        let inv_denom = T::one() / denom;

        // residual e = t − h·β (1×m), in place on the prediction buffer;
        // reads only h and the pre-update β, so computing it before the
        // downdate cannot change a byte (and hoisting the subtraction out
        // of the per-row β loop repeats the identical float op once
        // instead of Ñ times — same operands, same result, every row).
        h.matmul_into(model.beta(), pred);
        for (c, v) in pred.row_mut(0).iter_mut().enumerate() {
            *v = T::from_f64(t[c].to_f64()) - *v;
        }

        // Fused pass 2, tiled by `P_UPDATE_TILE` rows — per row r: the
        // rank-1 downdate `P[r] −= (ph[r]/denom)·hp`, then `ph[r] ←
        // P_new[r]·hᵀ` (row r is final after its own downdate), then the β
        // row update. Bit-identical to the former downdate / `matmul_t_into`
        // / β-loop sequence while touching P once instead of twice.
        let beta = model.beta_mut();
        let resid_row: &[T] = pred.row(0);
        let hp_row: &[T] = hp.row(0);
        let h_row: &[T] = h.row(0);
        if parallel {
            let chunks: RowTiles<T> = p
                .as_mut_slice()
                .chunks_mut(P_UPDATE_TILE * n_hidden)
                .zip(ph.as_mut_slice().chunks_mut(P_UPDATE_TILE))
                .zip(beta.as_mut_slice().chunks_mut(P_UPDATE_TILE * m))
                .collect();
            chunks
                .into_par_iter()
                .for_each(|((p_rows, ph_rows), b_rows)| {
                    rank1_downdate_rows(
                        p_rows, ph_rows, b_rows, hp_row, h_row, resid_row, inv_denom,
                    );
                });
        } else {
            rank1_downdate_rows(
                p.as_mut_slice(),
                ph.as_mut_slice(),
                beta.as_mut_slice(),
                hp_row,
                h_row,
                resid_row,
                inv_denom,
            );
        }

        self.seq_train_count += 1;
        Ok(())
    }

    /// Capture the complete learner state — model parameters plus the
    /// recursive-update state (`P`, call counters, δ) — into a serialisable
    /// snapshot. For the `f64` backend the capture is bit-exact.
    pub fn snapshot(&self) -> crate::persistence::OsElmSnapshot {
        crate::persistence::OsElmSnapshot {
            model: crate::persistence::ModelSnapshot::capture(&self.model),
            p: self
                .p
                .as_ref()
                .map(|p| p.iter().map(|&v| v.to_f64()).collect()),
            l2_delta: self.l2_delta,
            relative_l2: self.relative_l2,
            init_train_count: self.init_train_count,
            seq_train_count: self.seq_train_count,
        }
    }

    /// Rebuild a learner at the exact training position captured by
    /// [`OsElm::snapshot`]. The scratch workspaces start empty and regrow on
    /// the first update — they carry no observable state, so a restored
    /// `OsElm<f64>` continues the RLS recursion bit for bit.
    pub fn from_snapshot(snap: &crate::persistence::OsElmSnapshot) -> Self {
        let model: ElmModel<T> = snap.model.restore();
        let n_hidden = model.hidden_dim();
        let p = snap.p.as_ref().map(|data| {
            Matrix::from_vec(
                n_hidden,
                n_hidden,
                data.iter().map(|&v| T::from_f64(v)).collect(),
            )
            .expect("snapshot P length matches hidden_dim²")
        });
        Self {
            model,
            p,
            l2_delta: snap.l2_delta,
            relative_l2: snap.relative_l2,
            init_train_count: snap.init_train_count,
            seq_train_count: snap.seq_train_count,
            scratch: SeqScratch::default(),
        }
    }

    /// Batch prediction (delegates to the model).
    pub fn predict(&self, x: &Matrix<T>) -> Matrix<T> {
        self.model.predict(x)
    }

    /// Single-sample prediction.
    pub fn predict_single(&self, x: &[T]) -> Vec<T> {
        self.model.predict_single(x)
    }

    fn check_shapes(&self, x: &Matrix<T>, t: &Matrix<T>) -> Result<(), OsElmError> {
        if x.cols() != self.model.input_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "input has {} features, expected {}",
                x.cols(),
                self.model.input_dim()
            )));
        }
        if t.cols() != self.model.output_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "target has {} outputs, expected {}",
                t.cols(),
                self.model.output_dim()
            )));
        }
        if x.rows() != t.rows() {
            return Err(OsElmError::ShapeMismatch(format!(
                "{} samples vs {} targets",
                x.rows(),
                t.rows()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::HiddenActivation;
    use crate::elm::Elm;
    use elmrl_linalg::solve::ridge_solve;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> (Matrix<f64>, Matrix<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| (((i * 7 + j * 3) % 13) as f64) / 13.0);
        let t = Matrix::from_fn(n, 1, |i, _| (2.0 * x[(i, 0)] - 0.5 * x[(i, 1)]).sin());
        (x, t)
    }

    fn config(hidden: usize) -> OsElmConfig {
        // The wide init range keeps the random-feature matrix well conditioned
        // (kinks spread across the input domain), which the δ = 0 tests need.
        OsElmConfig::new(2, hidden, 1)
            .with_activation(HiddenActivation::HardTanh)
            .with_init_range(-4.0, 4.0)
    }

    #[test]
    fn init_then_seq_matches_full_ridge_solution() {
        // RLS equivalence: OS-ELM initialised on chunk 0 with δ and updated on
        // the remaining chunks equals the ridge solution over ALL data.
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = config(16).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(80);

        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        // chunks of varying sizes
        os.seq_train(
            &x.submatrix(30, 50, 0, 2).unwrap(),
            &t.submatrix(30, 50, 0, 1).unwrap(),
        )
        .unwrap();
        os.seq_train(
            &x.submatrix(50, 80, 0, 2).unwrap(),
            &t.submatrix(50, 80, 0, 1).unwrap(),
        )
        .unwrap();

        let h_all = os.model().hidden(&x);
        let beta_ridge = ridge_solve(&h_all, &t, 0.1).unwrap();
        assert!(
            os.model().beta().max_abs_diff(&beta_ridge) < 1e-8,
            "sequential OS-ELM deviates from the batch ridge solution"
        );
        assert_eq!(os.init_train_count(), 1);
        assert_eq!(os.seq_train_count(), 2);
    }

    #[test]
    fn batch_one_fast_path_matches_general_update() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = config(12).with_l2_delta(0.05);
        let (x, t) = dataset(40);

        let mut a = OsElm::<f64>::new(&cfg, &mut rng);
        let mut b = a.clone();
        a.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();
        b.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();

        for i in 20..40 {
            let xi = x.submatrix(i, i + 1, 0, 2).unwrap();
            let ti = t.submatrix(i, i + 1, 0, 1).unwrap();
            a.seq_train(&xi, &ti).unwrap();
            b.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        assert!(a.model().beta().max_abs_diff(b.model().beta()) < 1e-9);
        assert!(a.p_matrix().unwrap().max_abs_diff(b.p_matrix().unwrap()) < 1e-9);
    }

    #[test]
    fn batch_recursion_is_bit_identical_to_the_allocating_general_update() {
        let mut rng = SmallRng::seed_from_u64(21);
        let cfg = config(14).with_l2_delta(0.05);
        let (x, t) = dataset(90);

        let mut general = OsElm::<f64>::new(&cfg, &mut rng);
        let mut batch = general.clone();
        for os in [&mut general, &mut batch] {
            os.init_train(
                &x.submatrix(0, 30, 0, 2).unwrap(),
                &t.submatrix(0, 30, 0, 1).unwrap(),
            )
            .unwrap();
        }
        // Varying chunk sizes, including B = 1 through the batch entry point.
        let mut at = 30;
        for chunk in [1usize, 4, 7, 16, 32] {
            let xi = x.submatrix(at, at + chunk, 0, 2).unwrap();
            let ti = t.submatrix(at, at + chunk, 0, 1).unwrap();
            general.seq_train(&xi, &ti).unwrap();
            batch.seq_train_batch(&xi, &ti).unwrap();
            at += chunk;
            assert_eq!(
                general.model().beta(),
                batch.model().beta(),
                "β diverged at chunk {chunk}"
            );
            assert_eq!(
                general.p_matrix().unwrap(),
                batch.p_matrix().unwrap(),
                "P diverged at chunk {chunk}"
            );
        }
        assert_eq!(batch.seq_train_count(), 5);
    }

    #[test]
    fn batch_recursion_matches_consecutive_single_updates() {
        // Block-exactness of Eq. 6: one B-chunk equals B single-sample
        // updates up to floating-point rounding.
        let mut rng = SmallRng::seed_from_u64(22);
        let cfg = config(12).with_l2_delta(0.1);
        let (x, t) = dataset(60);

        let mut chunked = OsElm::<f64>::new(&cfg, &mut rng);
        let mut single = chunked.clone();
        for os in [&mut chunked, &mut single] {
            os.init_train(
                &x.submatrix(0, 20, 0, 2).unwrap(),
                &t.submatrix(0, 20, 0, 1).unwrap(),
            )
            .unwrap();
        }
        for start in (20..60).step_by(8) {
            let xi = x.submatrix(start, start + 8, 0, 2).unwrap();
            let ti = t.submatrix(start, start + 8, 0, 1).unwrap();
            chunked.seq_train_batch(&xi, &ti).unwrap();
            for i in start..start + 8 {
                single.seq_train_single(x.row(i), t.row(i)).unwrap();
            }
        }
        assert!(chunked.model().beta().max_abs_diff(single.model().beta()) < 1e-9);
        assert!(
            chunked
                .p_matrix()
                .unwrap()
                .max_abs_diff(single.p_matrix().unwrap())
                < 1e-9
        );
    }

    #[test]
    fn batch_recursion_reaches_the_full_ridge_solution() {
        // The RLS-equivalence sanity check of `seq_train`, through the
        // workspace path: init on chunk 0 + batch updates equals the ridge
        // solution over all data.
        let mut rng = SmallRng::seed_from_u64(23);
        let cfg = config(16).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(80);
        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        os.seq_train_batch(
            &x.submatrix(30, 55, 0, 2).unwrap(),
            &t.submatrix(30, 55, 0, 1).unwrap(),
        )
        .unwrap();
        os.seq_train_batch(
            &x.submatrix(55, 80, 0, 2).unwrap(),
            &t.submatrix(55, 80, 0, 1).unwrap(),
        )
        .unwrap();
        let h_all = os.model().hidden(&x);
        let beta_ridge = ridge_solve(&h_all, &t, 0.1).unwrap();
        assert!(os.model().beta().max_abs_diff(&beta_ridge) < 1e-8);
    }

    #[test]
    fn batch_recursion_misuse_errors_match_the_general_path() {
        let mut rng = SmallRng::seed_from_u64(24);
        let cfg = config(8).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(10);
        assert_eq!(
            os.seq_train_batch(&x, &t).unwrap_err(),
            OsElmError::NotInitialized
        );
        os.init_train(&x, &t).unwrap();
        assert!(matches!(
            os.seq_train_batch(&Matrix::<f64>::ones(4, 3), &Matrix::<f64>::ones(4, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
        assert!(matches!(
            os.seq_train_batch(&Matrix::<f64>::ones(4, 2), &Matrix::<f64>::ones(3, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn os_elm_matches_batch_elm_when_unregularised() {
        // With δ = 0 and an initial chunk of at least Ñ samples, OS-ELM over
        // all data equals the batch least-squares ELM solution. A hand-built
        // α with distinct kink positions guarantees H₀ᵀH₀ is non-singular so
        // the unregularised initial training is well-posed.
        let hidden = 8;
        let alpha = Matrix::from_fn(2, hidden, |i, j| {
            if i == 0 {
                1.0 + 0.35 * j as f64
            } else {
                -0.8 + 0.27 * j as f64
            }
        });
        let bias = Matrix::from_fn(1, hidden, |_, j| -0.9 + 0.23 * j as f64);
        let beta = Matrix::zeros(hidden, 1);
        let model =
            crate::model::ElmModel::from_parts(alpha, bias, beta, HiddenActivation::HardTanh);
        let (x, t) = {
            // scattered pseudo-random 2-D inputs (LCG), smooth target
            let mut state = 0x1234_5678_u64;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let x = Matrix::from_fn(60, 2, |_, _| next());
            let t = Matrix::from_fn(60, 1, |i, _| (2.0 * x[(i, 0)] - 0.5 * x[(i, 1)]).sin());
            (x, t)
        };

        let mut os = OsElm::from_model(model.clone(), 0.0);
        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        for i in 30..60 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }

        let mut batch = Elm::from_model(model, 0.0);
        batch.train(&x, &t).unwrap();
        assert!(os.model().beta().max_abs_diff(batch.model().beta()) < 1e-6);
    }

    #[test]
    fn sequential_training_reduces_prediction_error() {
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = config(24).with_l2_delta(0.01);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(200);
        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        let mse = |os: &OsElm<f64>| {
            let pred = os.predict(&x);
            (&pred - &t).iter().map(|&v| v * v).sum::<f64>() / t.len() as f64
        };
        let before = mse(&os);
        for i in 30..200 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        let after = mse(&os);
        assert!(after < before, "MSE should improve: {before} -> {after}");
        assert!(after < 5e-3, "final MSE too high: {after}");
    }

    #[test]
    fn errors_for_misuse() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = config(8).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(10);

        // seq before init
        assert_eq!(
            os.seq_train(&x, &t).unwrap_err(),
            OsElmError::NotInitialized
        );
        assert_eq!(
            os.seq_train_single(x.row(0), t.row(0)).unwrap_err(),
            OsElmError::NotInitialized
        );
        // bad shapes
        assert!(matches!(
            os.init_train(&Matrix::<f64>::ones(4, 3), &Matrix::<f64>::ones(4, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
        assert!(matches!(
            os.init_train(&Matrix::<f64>::ones(4, 2), &Matrix::<f64>::ones(3, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
        // double init
        os.init_train(&x, &t).unwrap();
        assert_eq!(
            os.init_train(&x, &t).unwrap_err(),
            OsElmError::AlreadyInitialized
        );
        // wrong single-sample widths
        assert!(matches!(
            os.seq_train_single(&[1.0], &[0.0]),
            Err(OsElmError::ShapeMismatch(_))
        ));
        assert!(matches!(
            os.seq_train_single(&[1.0, 2.0], &[0.0, 0.0]),
            Err(OsElmError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn unregularised_init_with_tiny_chunk_fails_cleanly() {
        // δ = 0 and fewer samples than hidden units ⇒ singular Gram matrix.
        let mut rng = SmallRng::seed_from_u64(6);
        let cfg = config(32); // δ = 0
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(4);
        let err = os.init_train(&x, &t).unwrap_err();
        assert!(matches!(err, OsElmError::Linalg(_)));
        // ReOS-ELM fixes it.
        let cfg_reg = config(32).with_l2_delta(0.5);
        let mut rng2 = SmallRng::seed_from_u64(6);
        let mut os_reg = OsElm::<f64>::new(&cfg_reg, &mut rng2);
        assert!(os_reg.init_train(&x, &t).is_ok());
    }

    #[test]
    fn reset_training_clears_beta_and_p_but_keeps_alpha() {
        let mut rng = SmallRng::seed_from_u64(7);
        let cfg = config(8).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let alpha_before = os.model().alpha().clone();
        let (x, t) = dataset(20);
        os.init_train(&x, &t).unwrap();
        assert!(os.is_initialized());
        os.reset_training();
        assert!(!os.is_initialized());
        assert!(os.model().beta().iter().all(|&v| v == 0.0));
        assert_eq!(os.model().alpha(), &alpha_before);
        // can initialise again after the reset
        assert!(os.init_train(&x, &t).is_ok());
    }

    #[test]
    fn snapshot_resumes_the_recursion_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(9);
        let cfg = config(10).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(60);
        os.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();
        for i in 20..40 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }

        let mut resumed = OsElm::<f64>::from_snapshot(&os.snapshot());
        assert_eq!(resumed.seq_train_count(), os.seq_train_count());
        for i in 40..60 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
            resumed.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        assert_eq!(os.model().beta(), resumed.model().beta());
        assert_eq!(os.p_matrix().unwrap(), resumed.p_matrix().unwrap());
    }

    #[test]
    fn snapshot_before_init_restores_uninitialised() {
        let mut rng = SmallRng::seed_from_u64(10);
        let cfg = config(8).with_l2_delta(0.1);
        let os = OsElm::<f64>::new(&cfg, &mut rng);
        let resumed = OsElm::<f64>::from_snapshot(&os.snapshot());
        assert!(!resumed.is_initialized());
        assert_eq!(resumed.model().alpha(), os.model().alpha());
    }

    #[test]
    fn p_matrix_stays_symmetric_under_single_updates() {
        let mut rng = SmallRng::seed_from_u64(8);
        let cfg = config(10).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(50);
        os.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();
        for i in 20..50 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        let p = os.p_matrix().unwrap();
        assert!(
            p.transpose().max_abs_diff(p) < 1e-9,
            "P must remain symmetric"
        );
    }
}
