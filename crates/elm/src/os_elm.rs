//! OS-ELM: online sequential training (§2.2–2.3, Equations 5–8).
//!
//! After an *initial training* on a first chunk (`P₀`, `β₀`), the model is
//! updated one chunk at a time without revisiting old data:
//!
//! ```text
//! Pᵢ = Pᵢ₋₁ − Pᵢ₋₁Hᵢᵀ (I + HᵢPᵢ₋₁Hᵢᵀ)⁻¹ HᵢPᵢ₋₁
//! βᵢ = βᵢ₋₁ + PᵢHᵢᵀ (tᵢ − Hᵢβᵢ₋₁)
//! ```
//!
//! With batch size 1 the inverted matrix is `1×1`, so the whole update needs
//! only multiply–add plus **one reciprocal** — the observation (§2.2, after
//! Tsukada et al.) that makes the FPGA implementation feasible without an
//! SVD/QRD core. [`OsElm::seq_train_single`] is that fast path;
//! [`OsElm::seq_train`] is the general batched form, kept for equivalence
//! testing and for the ELM-vs-OS-ELM ablation.

use crate::config::OsElmConfig;
use crate::model::ElmModel;
use elmrl_linalg::decomp::{cholesky_into, solve_spd_into, Cholesky};
use elmrl_linalg::solve::inverse;
use elmrl_linalg::{LinalgError, Matrix, Scalar};
use rand::Rng;
use std::fmt;

/// Errors produced by OS-ELM training.
#[derive(Debug, Clone, PartialEq)]
pub enum OsElmError {
    /// `seq_train` was called before `init_train`.
    NotInitialized,
    /// `init_train` was called twice.
    AlreadyInitialized,
    /// Input/target shapes disagree with the model configuration.
    ShapeMismatch(String),
    /// A linear-algebra failure (singular Gram matrix etc.).
    Linalg(LinalgError),
}

impl fmt::Display for OsElmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsElmError::NotInitialized => {
                write!(f, "sequential training requires init_train first")
            }
            OsElmError::AlreadyInitialized => write!(f, "init_train called twice"),
            OsElmError::ShapeMismatch(d) => write!(f, "shape mismatch: {d}"),
            OsElmError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for OsElmError {}

impl From<LinalgError> for OsElmError {
    fn from(e: LinalgError) -> Self {
        OsElmError::Linalg(e)
    }
}

/// Reusable workspaces for the sequential-update hot paths — the batch-size-1
/// fast path and the chunked batch-B recursion. Every matrix keeps its
/// allocation across calls (see [`Matrix::resize_zeroed`]), so once the
/// workspaces have reached their steady size both paths perform **zero
/// matrix heap allocations** — the throughput property the paper's line-rate
/// claim rests on, asserted by the counting-allocator test in `elmrl-core`.
/// Workspace shapes are quoted for a chunk of `B` samples; the fast path is
/// the `B = 1` case.
#[derive(Clone, Debug)]
struct SeqScratch<T: Scalar> {
    /// `1 × n` staging row for the single-sample input.
    x: Matrix<T>,
    /// `B × Ñ` hidden activation `H`.
    h: Matrix<T>,
    /// `Ñ × B` — `P·Hᵀ` before the downdate, `P_new·Hᵀ` after.
    ph: Matrix<T>,
    /// `B × Ñ` — `H·P`.
    hp: Matrix<T>,
    /// `B × m` — the prediction `H·β`, overwritten in place by the residual
    /// `t − H·β` that drives the β update.
    pred: Matrix<T>,
    /// `B × B` — the innovation matrix `S = I + H·P·Hᵀ` (batch path only).
    s: Matrix<T>,
    /// `B × B` — the Cholesky factor of `S` (batch path only).
    l: Matrix<T>,
    /// `B × Ñ` — the solve `S⁻¹·(H·P)` (batch path only).
    sol: Matrix<T>,
    /// `Ñ × Ñ` — the `P` downdate `(P·Hᵀ)·S⁻¹·(H·P)` (batch path only).
    update: Matrix<T>,
    /// `Ñ × m` — the β increment `(P_new·Hᵀ)·e` (batch path only).
    delta: Matrix<T>,
}

// Manual impl: `derive(Default)` would demand `T: Default`, which `Scalar`
// does not promise; empty matrices need no such bound.
impl<T: Scalar> Default for SeqScratch<T> {
    fn default() -> Self {
        Self {
            x: Matrix::default(),
            h: Matrix::default(),
            ph: Matrix::default(),
            hp: Matrix::default(),
            pred: Matrix::default(),
            s: Matrix::default(),
            l: Matrix::default(),
            sol: Matrix::default(),
            update: Matrix::default(),
            delta: Matrix::default(),
        }
    }
}

/// An Online Sequential Extreme Learning Machine.
#[derive(Clone, Debug)]
pub struct OsElm<T: Scalar> {
    model: ElmModel<T>,
    /// `P` matrix of the recursive update; `None` until initial training.
    p: Option<Matrix<T>>,
    l2_delta: f64,
    relative_l2: bool,
    /// Counts of training calls, used by the harness timing model.
    init_train_count: usize,
    seq_train_count: usize,
    /// Workspaces of the single-sample fast path (never observable through
    /// the public API; cloned along with the learner, which is harmless).
    scratch: SeqScratch<T>,
}

impl<T: Scalar> OsElm<T> {
    /// Initialise the network (random `α`, `b`; zero `β`; no `P` yet).
    pub fn new<R: Rng + ?Sized>(config: &OsElmConfig, rng: &mut R) -> Self {
        Self {
            model: ElmModel::new(config, rng),
            p: None,
            l2_delta: config.l2_delta,
            relative_l2: config.relative_l2,
            init_train_count: 0,
            seq_train_count: 0,
            scratch: SeqScratch::default(),
        }
    }

    /// Wrap an existing model (used by the Q-network layer when it resets β
    /// but keeps α).
    pub fn from_model(model: ElmModel<T>, l2_delta: f64) -> Self {
        Self {
            model,
            p: None,
            l2_delta,
            relative_l2: false,
            init_train_count: 0,
            seq_train_count: 0,
            scratch: SeqScratch::default(),
        }
    }

    /// Borrow the underlying model.
    pub fn model(&self) -> &ElmModel<T> {
        &self.model
    }

    /// Mutable access to the underlying model.
    pub fn model_mut(&mut self) -> &mut ElmModel<T> {
        &mut self.model
    }

    /// The ReOS-ELM regularisation strength `δ` used at initial training.
    pub fn l2_delta(&self) -> f64 {
        self.l2_delta
    }

    /// Borrow the `P` matrix (None before initial training).
    pub fn p_matrix(&self) -> Option<&Matrix<T>> {
        self.p.as_ref()
    }

    /// `true` once initial training has run.
    pub fn is_initialized(&self) -> bool {
        self.p.is_some()
    }

    /// How many times `init_train` has run (0 or 1 unless `reset_training`).
    pub fn init_train_count(&self) -> usize {
        self.init_train_count
    }

    /// How many sequential updates have run.
    pub fn seq_train_count(&self) -> usize {
        self.seq_train_count
    }

    /// Discard `P` and `β` (keeping the random `α`, `b`) so the model can be
    /// re-initialised — the "reset unpromising weights" rule of §4.3.
    pub fn reset_training(&mut self) {
        self.p = None;
        let (rows, cols) = self.model.beta().shape();
        self.model.set_beta(Matrix::zeros(rows, cols));
    }

    /// Initial training (Equation 7 / Equation 8):
    /// `P₀ = (H₀ᵀH₀ + δI)⁻¹`, `β₀ = P₀H₀ᵀt₀`.
    ///
    /// With `δ = 0` this requires at least `Ñ` linearly independent rows in
    /// the chunk (the paper fills buffer `D` with `Ñ` samples first,
    /// Algorithm 1 lines 16–19); with `δ > 0` (ReOS-ELM) any chunk size works.
    pub fn init_train(&mut self, x0: &Matrix<T>, t0: &Matrix<T>) -> Result<(), OsElmError> {
        if self.p.is_some() {
            return Err(OsElmError::AlreadyInitialized);
        }
        self.check_shapes(x0, t0)?;
        let h0 = self.model.hidden(x0);
        let n_hidden = self.model.hidden_dim();
        let mut gram = h0.t_matmul(&h0);
        if self.l2_delta > 0.0 {
            // Relative mode scales δ by the mean squared hidden activation so
            // the penalty stays proportionate to the feature energy (see
            // `OsElmConfig::relative_l2`).
            let effective = if self.relative_l2 {
                let mean_sq =
                    h0.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>() / h0.len() as f64;
                self.l2_delta * mean_sq.max(f64::MIN_POSITIVE)
            } else {
                self.l2_delta
            };
            let delta = T::from_f64(effective);
            for i in 0..n_hidden {
                gram[(i, i)] += delta;
            }
        }
        let p0 = elmrl_linalg::solve::inverse_spd(&gram)?;
        let beta0 = p0.matmul(&h0.t_matmul(t0));
        self.model.set_beta(beta0);
        self.p = Some(p0);
        self.init_train_count += 1;
        Ok(())
    }

    /// General sequential update with an arbitrary chunk size (Equation 6),
    /// in the allocating reference form: every intermediate is a fresh
    /// matrix. The innovation matrix `S = I + H·P·Hᵀ` is symmetric positive
    /// definite (P is SPD by construction), so the solve goes through
    /// Cholesky — with an LU fallback for the rare case where rounding has
    /// pushed `S` off positive definiteness.
    ///
    /// [`OsElm::seq_train_batch`] performs the **same arithmetic** through
    /// reusable workspaces; the equivalence proptest pins the two paths
    /// bit for bit.
    pub fn seq_train(&mut self, x: &Matrix<T>, t: &Matrix<T>) -> Result<(), OsElmError> {
        self.check_shapes(x, t)?;
        let p = self.p.as_ref().ok_or(OsElmError::NotInitialized)?;
        let h = self.model.hidden(x);
        let k = h.rows();

        // S = I + H·P·Hᵀ  (k×k)
        let ph_t = p.matmul_t(&h); // P·Hᵀ (Ñ×k)
        let hp = h.matmul(p); // H·P (k×Ñ)
        let mut s = h.matmul(&ph_t); // H·P·Hᵀ
        for i in 0..k {
            s[(i, i)] += T::one();
        }
        let sol = match Cholesky::decompose(&s) {
            Ok(ch) => ch.solve(&hp)?, // S⁻¹·H·P (k×Ñ)
            Err(LinalgError::NotPositiveDefinite { .. }) => inverse(&s)?.matmul(&hp),
            Err(e) => return Err(e.into()),
        };

        // P ← P − P·Hᵀ·S⁻¹·H·P
        let update = ph_t.matmul(&sol);
        let new_p = p - &update;

        // β ← β + P·Hᵀ·(t − H·β)
        let residual = t - &h.matmul(self.model.beta());
        let delta_beta = new_p.matmul_t(&h).matmul(&residual);
        let new_beta = self.model.beta() + &delta_beta;

        self.p = Some(new_p);
        self.model.set_beta(new_beta);
        self.seq_train_count += 1;
        Ok(())
    }

    /// Batch-B sequential update — the Equation 6 chunked recursion rebuilt
    /// on the reusable `SeqScratch` workspaces, so the steady-state update
    /// performs **zero matrix heap allocations** for any chunk size. One
    /// B-chunk update equals B single-sample updates in exact arithmetic
    /// (the recursion is block-exact); in floating point the two drift only
    /// at rounding level, which the equivalence tests bound at `1e-9`.
    ///
    /// The arithmetic is operation-for-operation the allocating
    /// [`OsElm::seq_train`] (every `*_into` kernel and the Cholesky
    /// workspace kernels are bit-for-bit pinned against their allocating
    /// twins), so the two entry points return bit-identical `P` and `β` —
    /// the property the `elmrl-elm` proptest asserts.
    pub fn seq_train_batch(&mut self, x: &Matrix<T>, t: &Matrix<T>) -> Result<(), OsElmError> {
        self.check_shapes(x, t)?;
        let Self {
            model, p, scratch, ..
        } = self;
        let p = p.as_mut().ok_or(OsElmError::NotInitialized)?;
        let k = x.rows();

        // H = G(x·α + b) (B×Ñ); P·Hᵀ (Ñ×B); H·P (B×Ñ).
        model.hidden_into(x, &mut scratch.h);
        p.matmul_t_into(&scratch.h, &mut scratch.ph);
        scratch.h.matmul_into(p, &mut scratch.hp);

        // S = I + H·P·Hᵀ (B×B).
        scratch.h.matmul_into(&scratch.ph, &mut scratch.s);
        for i in 0..k {
            scratch.s[(i, i)] += T::one();
        }
        match cholesky_into(&scratch.s, &mut scratch.l) {
            Ok(()) => solve_spd_into(&scratch.l, &scratch.hp, &mut scratch.sol)
                .map_err(OsElmError::from)?,
            Err(LinalgError::NotPositiveDefinite { .. }) => {
                // Rounding pushed S off SPD — rare enough that the LU
                // fallback may allocate, exactly as `seq_train` does.
                inverse(&scratch.s)?.matmul_into(&scratch.hp, &mut scratch.sol);
            }
            Err(e) => return Err(e.into()),
        }

        // P ← P − (P·Hᵀ)·S⁻¹·(H·P), downdated in place.
        scratch.ph.matmul_into(&scratch.sol, &mut scratch.update);
        *p -= &scratch.update;

        // Residual e = t − H·β (B×m), in place on the prediction buffer.
        scratch.h.matmul_into(model.beta(), &mut scratch.pred);
        for r in 0..k {
            let t_row = t.row(r);
            for (c, v) in scratch.pred.row_mut(r).iter_mut().enumerate() {
                *v = t_row[c] - *v;
            }
        }

        // β ← β + (P_new·Hᵀ)·e, accumulated in place.
        p.matmul_t_into(&scratch.h, &mut scratch.ph);
        scratch.ph.matmul_into(&scratch.pred, &mut scratch.delta);
        *model.beta_mut() += &scratch.delta;

        self.seq_train_count += 1;
        Ok(())
    }

    /// Batch-size-1 fast path: the `(I + hPhᵀ)` term is a scalar, so the
    /// matrix inversion collapses to one reciprocal (§2.2). `x` and `t` are
    /// single samples given as slices.
    ///
    /// This path is **allocation-free at steady state**: `P` is downdated
    /// and `β` is updated in place, and every intermediate (`h`, `P·hᵀ`,
    /// `h·P`, `h·β`) lives in a reusable workspace. The arithmetic — and so
    /// the result — is bit-for-bit what the historical clone-based
    /// implementation produced, which `batch_one_fast_path_matches_general_
    /// update` below pins against the general chunked recursion.
    pub fn seq_train_single(&mut self, x: &[T], t: &[T]) -> Result<(), OsElmError> {
        if x.len() != self.model.input_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "input has {} features, expected {}",
                x.len(),
                self.model.input_dim()
            )));
        }
        if t.len() != self.model.output_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "target has {} outputs, expected {}",
                t.len(),
                self.model.output_dim()
            )));
        }
        let Self {
            model, p, scratch, ..
        } = self;
        let p = p.as_mut().ok_or(OsElmError::NotInitialized)?;
        let n_hidden = model.hidden_dim();
        let m = model.output_dim();

        // h: 1×Ñ hidden activation of the sample (through the staging row).
        scratch.x.resize_zeroed(1, model.input_dim());
        scratch.x.set_row(0, x);
        model.hidden_into(&scratch.x, &mut scratch.h);
        let h = &scratch.h;

        // ph = P·hᵀ (Ñ×1), hp = h·P (1×Ñ), denom = 1 + h·P·hᵀ (scalar).
        p.matmul_t_into(h, &mut scratch.ph);
        h.matmul_into(p, &mut scratch.hp);
        let mut denom = T::one();
        for i in 0..n_hidden {
            denom += h[(0, i)] * scratch.ph[(i, 0)];
        }
        let inv_denom = T::one() / denom;

        // P ← P − (ph · hp) / denom   (rank-1 downdate, in place: the new
        // value of each element depends only on ph/hp, already computed).
        for r in 0..n_hidden {
            let scale = scratch.ph[(r, 0)] * inv_denom;
            let p_row = p.row_mut(r);
            for (c, p_rc) in p_row.iter_mut().enumerate().take(n_hidden) {
                let sub = scale * scratch.hp[(0, c)];
                *p_rc -= sub;
            }
        }

        // residual e = t − h·β (1×m)
        h.matmul_into(model.beta(), &mut scratch.pred);
        // β ← β + (P_new·hᵀ) · e   (P already holds P_new)
        p.matmul_t_into(h, &mut scratch.ph); // Ñ×1, reuses the ph workspace
        let beta = model.beta_mut();
        for r in 0..n_hidden {
            let beta_row = beta.row_mut(r);
            for (c, beta_rc) in beta_row.iter_mut().enumerate().take(m) {
                let add = scratch.ph[(r, 0)] * (T::from_f64(t[c].to_f64()) - scratch.pred[(0, c)]);
                *beta_rc += add;
            }
        }

        self.seq_train_count += 1;
        Ok(())
    }

    /// Capture the complete learner state — model parameters plus the
    /// recursive-update state (`P`, call counters, δ) — into a serialisable
    /// snapshot. For the `f64` backend the capture is bit-exact.
    pub fn snapshot(&self) -> crate::persistence::OsElmSnapshot {
        crate::persistence::OsElmSnapshot {
            model: crate::persistence::ModelSnapshot::capture(&self.model),
            p: self
                .p
                .as_ref()
                .map(|p| p.iter().map(|&v| v.to_f64()).collect()),
            l2_delta: self.l2_delta,
            relative_l2: self.relative_l2,
            init_train_count: self.init_train_count,
            seq_train_count: self.seq_train_count,
        }
    }

    /// Rebuild a learner at the exact training position captured by
    /// [`OsElm::snapshot`]. The scratch workspaces start empty and regrow on
    /// the first update — they carry no observable state, so a restored
    /// `OsElm<f64>` continues the RLS recursion bit for bit.
    pub fn from_snapshot(snap: &crate::persistence::OsElmSnapshot) -> Self {
        let model: ElmModel<T> = snap.model.restore();
        let n_hidden = model.hidden_dim();
        let p = snap.p.as_ref().map(|data| {
            Matrix::from_vec(
                n_hidden,
                n_hidden,
                data.iter().map(|&v| T::from_f64(v)).collect(),
            )
            .expect("snapshot P length matches hidden_dim²")
        });
        Self {
            model,
            p,
            l2_delta: snap.l2_delta,
            relative_l2: snap.relative_l2,
            init_train_count: snap.init_train_count,
            seq_train_count: snap.seq_train_count,
            scratch: SeqScratch::default(),
        }
    }

    /// Batch prediction (delegates to the model).
    pub fn predict(&self, x: &Matrix<T>) -> Matrix<T> {
        self.model.predict(x)
    }

    /// Single-sample prediction.
    pub fn predict_single(&self, x: &[T]) -> Vec<T> {
        self.model.predict_single(x)
    }

    fn check_shapes(&self, x: &Matrix<T>, t: &Matrix<T>) -> Result<(), OsElmError> {
        if x.cols() != self.model.input_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "input has {} features, expected {}",
                x.cols(),
                self.model.input_dim()
            )));
        }
        if t.cols() != self.model.output_dim() {
            return Err(OsElmError::ShapeMismatch(format!(
                "target has {} outputs, expected {}",
                t.cols(),
                self.model.output_dim()
            )));
        }
        if x.rows() != t.rows() {
            return Err(OsElmError::ShapeMismatch(format!(
                "{} samples vs {} targets",
                x.rows(),
                t.rows()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::HiddenActivation;
    use crate::elm::Elm;
    use elmrl_linalg::solve::ridge_solve;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> (Matrix<f64>, Matrix<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| (((i * 7 + j * 3) % 13) as f64) / 13.0);
        let t = Matrix::from_fn(n, 1, |i, _| (2.0 * x[(i, 0)] - 0.5 * x[(i, 1)]).sin());
        (x, t)
    }

    fn config(hidden: usize) -> OsElmConfig {
        // The wide init range keeps the random-feature matrix well conditioned
        // (kinks spread across the input domain), which the δ = 0 tests need.
        OsElmConfig::new(2, hidden, 1)
            .with_activation(HiddenActivation::HardTanh)
            .with_init_range(-4.0, 4.0)
    }

    #[test]
    fn init_then_seq_matches_full_ridge_solution() {
        // RLS equivalence: OS-ELM initialised on chunk 0 with δ and updated on
        // the remaining chunks equals the ridge solution over ALL data.
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = config(16).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(80);

        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        // chunks of varying sizes
        os.seq_train(
            &x.submatrix(30, 50, 0, 2).unwrap(),
            &t.submatrix(30, 50, 0, 1).unwrap(),
        )
        .unwrap();
        os.seq_train(
            &x.submatrix(50, 80, 0, 2).unwrap(),
            &t.submatrix(50, 80, 0, 1).unwrap(),
        )
        .unwrap();

        let h_all = os.model().hidden(&x);
        let beta_ridge = ridge_solve(&h_all, &t, 0.1).unwrap();
        assert!(
            os.model().beta().max_abs_diff(&beta_ridge) < 1e-8,
            "sequential OS-ELM deviates from the batch ridge solution"
        );
        assert_eq!(os.init_train_count(), 1);
        assert_eq!(os.seq_train_count(), 2);
    }

    #[test]
    fn batch_one_fast_path_matches_general_update() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = config(12).with_l2_delta(0.05);
        let (x, t) = dataset(40);

        let mut a = OsElm::<f64>::new(&cfg, &mut rng);
        let mut b = a.clone();
        a.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();
        b.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();

        for i in 20..40 {
            let xi = x.submatrix(i, i + 1, 0, 2).unwrap();
            let ti = t.submatrix(i, i + 1, 0, 1).unwrap();
            a.seq_train(&xi, &ti).unwrap();
            b.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        assert!(a.model().beta().max_abs_diff(b.model().beta()) < 1e-9);
        assert!(a.p_matrix().unwrap().max_abs_diff(b.p_matrix().unwrap()) < 1e-9);
    }

    #[test]
    fn batch_recursion_is_bit_identical_to_the_allocating_general_update() {
        let mut rng = SmallRng::seed_from_u64(21);
        let cfg = config(14).with_l2_delta(0.05);
        let (x, t) = dataset(90);

        let mut general = OsElm::<f64>::new(&cfg, &mut rng);
        let mut batch = general.clone();
        for os in [&mut general, &mut batch] {
            os.init_train(
                &x.submatrix(0, 30, 0, 2).unwrap(),
                &t.submatrix(0, 30, 0, 1).unwrap(),
            )
            .unwrap();
        }
        // Varying chunk sizes, including B = 1 through the batch entry point.
        let mut at = 30;
        for chunk in [1usize, 4, 7, 16, 32] {
            let xi = x.submatrix(at, at + chunk, 0, 2).unwrap();
            let ti = t.submatrix(at, at + chunk, 0, 1).unwrap();
            general.seq_train(&xi, &ti).unwrap();
            batch.seq_train_batch(&xi, &ti).unwrap();
            at += chunk;
            assert_eq!(
                general.model().beta(),
                batch.model().beta(),
                "β diverged at chunk {chunk}"
            );
            assert_eq!(
                general.p_matrix().unwrap(),
                batch.p_matrix().unwrap(),
                "P diverged at chunk {chunk}"
            );
        }
        assert_eq!(batch.seq_train_count(), 5);
    }

    #[test]
    fn batch_recursion_matches_consecutive_single_updates() {
        // Block-exactness of Eq. 6: one B-chunk equals B single-sample
        // updates up to floating-point rounding.
        let mut rng = SmallRng::seed_from_u64(22);
        let cfg = config(12).with_l2_delta(0.1);
        let (x, t) = dataset(60);

        let mut chunked = OsElm::<f64>::new(&cfg, &mut rng);
        let mut single = chunked.clone();
        for os in [&mut chunked, &mut single] {
            os.init_train(
                &x.submatrix(0, 20, 0, 2).unwrap(),
                &t.submatrix(0, 20, 0, 1).unwrap(),
            )
            .unwrap();
        }
        for start in (20..60).step_by(8) {
            let xi = x.submatrix(start, start + 8, 0, 2).unwrap();
            let ti = t.submatrix(start, start + 8, 0, 1).unwrap();
            chunked.seq_train_batch(&xi, &ti).unwrap();
            for i in start..start + 8 {
                single.seq_train_single(x.row(i), t.row(i)).unwrap();
            }
        }
        assert!(chunked.model().beta().max_abs_diff(single.model().beta()) < 1e-9);
        assert!(
            chunked
                .p_matrix()
                .unwrap()
                .max_abs_diff(single.p_matrix().unwrap())
                < 1e-9
        );
    }

    #[test]
    fn batch_recursion_reaches_the_full_ridge_solution() {
        // The RLS-equivalence sanity check of `seq_train`, through the
        // workspace path: init on chunk 0 + batch updates equals the ridge
        // solution over all data.
        let mut rng = SmallRng::seed_from_u64(23);
        let cfg = config(16).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(80);
        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        os.seq_train_batch(
            &x.submatrix(30, 55, 0, 2).unwrap(),
            &t.submatrix(30, 55, 0, 1).unwrap(),
        )
        .unwrap();
        os.seq_train_batch(
            &x.submatrix(55, 80, 0, 2).unwrap(),
            &t.submatrix(55, 80, 0, 1).unwrap(),
        )
        .unwrap();
        let h_all = os.model().hidden(&x);
        let beta_ridge = ridge_solve(&h_all, &t, 0.1).unwrap();
        assert!(os.model().beta().max_abs_diff(&beta_ridge) < 1e-8);
    }

    #[test]
    fn batch_recursion_misuse_errors_match_the_general_path() {
        let mut rng = SmallRng::seed_from_u64(24);
        let cfg = config(8).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(10);
        assert_eq!(
            os.seq_train_batch(&x, &t).unwrap_err(),
            OsElmError::NotInitialized
        );
        os.init_train(&x, &t).unwrap();
        assert!(matches!(
            os.seq_train_batch(&Matrix::<f64>::ones(4, 3), &Matrix::<f64>::ones(4, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
        assert!(matches!(
            os.seq_train_batch(&Matrix::<f64>::ones(4, 2), &Matrix::<f64>::ones(3, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn os_elm_matches_batch_elm_when_unregularised() {
        // With δ = 0 and an initial chunk of at least Ñ samples, OS-ELM over
        // all data equals the batch least-squares ELM solution. A hand-built
        // α with distinct kink positions guarantees H₀ᵀH₀ is non-singular so
        // the unregularised initial training is well-posed.
        let hidden = 8;
        let alpha = Matrix::from_fn(2, hidden, |i, j| {
            if i == 0 {
                1.0 + 0.35 * j as f64
            } else {
                -0.8 + 0.27 * j as f64
            }
        });
        let bias = Matrix::from_fn(1, hidden, |_, j| -0.9 + 0.23 * j as f64);
        let beta = Matrix::zeros(hidden, 1);
        let model =
            crate::model::ElmModel::from_parts(alpha, bias, beta, HiddenActivation::HardTanh);
        let (x, t) = {
            // scattered pseudo-random 2-D inputs (LCG), smooth target
            let mut state = 0x1234_5678_u64;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let x = Matrix::from_fn(60, 2, |_, _| next());
            let t = Matrix::from_fn(60, 1, |i, _| (2.0 * x[(i, 0)] - 0.5 * x[(i, 1)]).sin());
            (x, t)
        };

        let mut os = OsElm::from_model(model.clone(), 0.0);
        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        for i in 30..60 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }

        let mut batch = Elm::from_model(model, 0.0);
        batch.train(&x, &t).unwrap();
        assert!(os.model().beta().max_abs_diff(batch.model().beta()) < 1e-6);
    }

    #[test]
    fn sequential_training_reduces_prediction_error() {
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = config(24).with_l2_delta(0.01);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(200);
        os.init_train(
            &x.submatrix(0, 30, 0, 2).unwrap(),
            &t.submatrix(0, 30, 0, 1).unwrap(),
        )
        .unwrap();
        let mse = |os: &OsElm<f64>| {
            let pred = os.predict(&x);
            (&pred - &t).iter().map(|&v| v * v).sum::<f64>() / t.len() as f64
        };
        let before = mse(&os);
        for i in 30..200 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        let after = mse(&os);
        assert!(after < before, "MSE should improve: {before} -> {after}");
        assert!(after < 5e-3, "final MSE too high: {after}");
    }

    #[test]
    fn errors_for_misuse() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = config(8).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(10);

        // seq before init
        assert_eq!(
            os.seq_train(&x, &t).unwrap_err(),
            OsElmError::NotInitialized
        );
        assert_eq!(
            os.seq_train_single(x.row(0), t.row(0)).unwrap_err(),
            OsElmError::NotInitialized
        );
        // bad shapes
        assert!(matches!(
            os.init_train(&Matrix::<f64>::ones(4, 3), &Matrix::<f64>::ones(4, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
        assert!(matches!(
            os.init_train(&Matrix::<f64>::ones(4, 2), &Matrix::<f64>::ones(3, 1)),
            Err(OsElmError::ShapeMismatch(_))
        ));
        // double init
        os.init_train(&x, &t).unwrap();
        assert_eq!(
            os.init_train(&x, &t).unwrap_err(),
            OsElmError::AlreadyInitialized
        );
        // wrong single-sample widths
        assert!(matches!(
            os.seq_train_single(&[1.0], &[0.0]),
            Err(OsElmError::ShapeMismatch(_))
        ));
        assert!(matches!(
            os.seq_train_single(&[1.0, 2.0], &[0.0, 0.0]),
            Err(OsElmError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn unregularised_init_with_tiny_chunk_fails_cleanly() {
        // δ = 0 and fewer samples than hidden units ⇒ singular Gram matrix.
        let mut rng = SmallRng::seed_from_u64(6);
        let cfg = config(32); // δ = 0
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(4);
        let err = os.init_train(&x, &t).unwrap_err();
        assert!(matches!(err, OsElmError::Linalg(_)));
        // ReOS-ELM fixes it.
        let cfg_reg = config(32).with_l2_delta(0.5);
        let mut rng2 = SmallRng::seed_from_u64(6);
        let mut os_reg = OsElm::<f64>::new(&cfg_reg, &mut rng2);
        assert!(os_reg.init_train(&x, &t).is_ok());
    }

    #[test]
    fn reset_training_clears_beta_and_p_but_keeps_alpha() {
        let mut rng = SmallRng::seed_from_u64(7);
        let cfg = config(8).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let alpha_before = os.model().alpha().clone();
        let (x, t) = dataset(20);
        os.init_train(&x, &t).unwrap();
        assert!(os.is_initialized());
        os.reset_training();
        assert!(!os.is_initialized());
        assert!(os.model().beta().iter().all(|&v| v == 0.0));
        assert_eq!(os.model().alpha(), &alpha_before);
        // can initialise again after the reset
        assert!(os.init_train(&x, &t).is_ok());
    }

    #[test]
    fn snapshot_resumes_the_recursion_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(9);
        let cfg = config(10).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(60);
        os.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();
        for i in 20..40 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }

        let mut resumed = OsElm::<f64>::from_snapshot(&os.snapshot());
        assert_eq!(resumed.seq_train_count(), os.seq_train_count());
        for i in 40..60 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
            resumed.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        assert_eq!(os.model().beta(), resumed.model().beta());
        assert_eq!(os.p_matrix().unwrap(), resumed.p_matrix().unwrap());
    }

    #[test]
    fn snapshot_before_init_restores_uninitialised() {
        let mut rng = SmallRng::seed_from_u64(10);
        let cfg = config(8).with_l2_delta(0.1);
        let os = OsElm::<f64>::new(&cfg, &mut rng);
        let resumed = OsElm::<f64>::from_snapshot(&os.snapshot());
        assert!(!resumed.is_initialized());
        assert_eq!(resumed.model().alpha(), os.model().alpha());
    }

    #[test]
    fn p_matrix_stays_symmetric_under_single_updates() {
        let mut rng = SmallRng::seed_from_u64(8);
        let cfg = config(10).with_l2_delta(0.1);
        let mut os = OsElm::<f64>::new(&cfg, &mut rng);
        let (x, t) = dataset(50);
        os.init_train(
            &x.submatrix(0, 20, 0, 2).unwrap(),
            &t.submatrix(0, 20, 0, 1).unwrap(),
        )
        .unwrap();
        for i in 20..50 {
            os.seq_train_single(x.row(i), t.row(i)).unwrap();
        }
        let p = os.p_matrix().unwrap();
        assert!(
            p.transpose().max_abs_diff(p) < 1e-9,
            "P must remain symmetric"
        );
    }
}
