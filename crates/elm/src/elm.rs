//! Batch ELM training (§2.1).
//!
//! ELM solves for the output weights in one shot: `β̂ = H⁺·t` (Equation 3),
//! or the ridge-regularised variant `β̂ = (HᵀH + δI)⁻¹Hᵀt` when `δ > 0`.
//! Retraining requires the whole dataset, which is exactly the limitation
//! (noted at the end of §2.1) that motivates OS-ELM for reinforcement
//! learning.

use crate::config::OsElmConfig;
use crate::model::ElmModel;
use elmrl_linalg::solve::{lstsq, ridge_solve};
use elmrl_linalg::{LinalgError, Matrix, Scalar};
use rand::Rng;

/// A batch-trained Extreme Learning Machine.
#[derive(Clone, Debug)]
pub struct Elm<T: Scalar> {
    model: ElmModel<T>,
    l2_delta: f64,
    trained: bool,
}

impl<T: Scalar> Elm<T> {
    /// Initialise the network (random `α`, `b`; zero `β`).
    pub fn new<R: Rng + ?Sized>(config: &OsElmConfig, rng: &mut R) -> Self {
        Self {
            model: ElmModel::new(config, rng),
            l2_delta: config.l2_delta,
            trained: false,
        }
    }

    /// Wrap an existing model (e.g. to retrain a Q-network's β from scratch).
    pub fn from_model(model: ElmModel<T>, l2_delta: f64) -> Self {
        Self {
            model,
            l2_delta,
            trained: false,
        }
    }

    /// Borrow the underlying model.
    pub fn model(&self) -> &ElmModel<T> {
        &self.model
    }

    /// Mutable access to the underlying model.
    pub fn model_mut(&mut self) -> &mut ElmModel<T> {
        &mut self.model
    }

    /// Whether [`Elm::train`] has been called successfully.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Capture the complete learner state into a serialisable snapshot.
    pub fn snapshot(&self) -> crate::persistence::ElmSnapshot {
        crate::persistence::ElmSnapshot {
            model: crate::persistence::ModelSnapshot::capture(&self.model),
            l2_delta: self.l2_delta,
            trained: self.trained,
        }
    }

    /// Rebuild a learner from an [`Elm::snapshot`] capture.
    pub fn from_snapshot(snap: &crate::persistence::ElmSnapshot) -> Self {
        Self {
            model: snap.model.restore(),
            l2_delta: snap.l2_delta,
            trained: snap.trained,
        }
    }

    /// One-shot batch training on `x` (`k × n`) against targets `t` (`k × m`):
    /// `β ← H⁺·t` (δ = 0) or the ridge solution (δ > 0).
    pub fn train(&mut self, x: &Matrix<T>, t: &Matrix<T>) -> Result<(), LinalgError> {
        if x.rows() != t.rows() {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("ELM train: {} samples vs {} targets", x.rows(), t.rows()),
            });
        }
        if t.cols() != self.model.output_dim() {
            return Err(LinalgError::ShapeMismatch {
                detail: format!(
                    "ELM train: targets have {} columns, model outputs {}",
                    t.cols(),
                    self.model.output_dim()
                ),
            });
        }
        let h = self.model.hidden(x);
        let beta = if self.l2_delta > 0.0 {
            ridge_solve(&h, t, T::from_f64(self.l2_delta))?
        } else {
            lstsq(&h, t, 1e-10)?
        };
        self.model.set_beta(beta);
        self.trained = true;
        Ok(())
    }

    /// Batch prediction (delegates to the model).
    pub fn predict(&self, x: &Matrix<T>) -> Matrix<T> {
        self.model.predict(x)
    }

    /// Single-sample prediction.
    pub fn predict_single(&self, x: &[T]) -> Vec<T> {
        self.model.predict_single(x)
    }

    /// Mean squared training error on a dataset (diagnostic helper).
    pub fn mse(&self, x: &Matrix<T>, t: &Matrix<T>) -> f64 {
        let pred = self.predict(x);
        let diff = &pred - t;
        let n = diff.len() as f64;
        diff.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>() / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::HiddenActivation;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A smooth 1-D regression task: y = sin(3x) on [0, 1].
    fn dataset(n: usize) -> (Matrix<f64>, Matrix<f64>) {
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 / n as f64);
        let t = Matrix::from_fn(n, 1, |i, _| (3.0 * x[(i, 0)]).sin());
        (x, t)
    }

    #[test]
    fn fits_a_smooth_function() {
        let mut rng = SmallRng::seed_from_u64(1);
        // A wide init range spreads the piecewise-linear kinks of HardTanh
        // over the input interval, giving the random features enough
        // expressive power to interpolate the sine.
        let config = OsElmConfig::new(1, 40, 1)
            .with_activation(HiddenActivation::HardTanh)
            .with_init_range(-4.0, 4.0);
        let mut elm = Elm::<f64>::new(&config, &mut rng);
        let (x, t) = dataset(100);
        assert!(!elm.is_trained());
        elm.train(&x, &t).unwrap();
        assert!(elm.is_trained());
        let mse = elm.mse(&x, &t);
        assert!(mse < 1e-3, "training MSE too high: {mse}");
    }

    #[test]
    fn ridge_variant_trains_when_underdetermined() {
        // Fewer samples than hidden units: the plain pseudo-inverse still
        // works (SVD route), and the ridge route must also work. The seed is
        // chosen so enough ReLU kinks fall inside the sample interval for the
        // 10×64 hidden matrix to reach full row rank — a prerequisite for the
        // interpolation assertion below.
        let mut rng = SmallRng::seed_from_u64(0);
        let (x, t) = dataset(10);
        let plain = {
            let config = OsElmConfig::new(1, 64, 1).with_init_range(-4.0, 4.0);
            let mut elm = Elm::<f64>::new(&config, &mut rng);
            elm.train(&x, &t).unwrap();
            elm.mse(&x, &t)
        };
        let ridge = {
            let config = OsElmConfig::new(1, 64, 1)
                .with_init_range(-4.0, 4.0)
                .with_l2_delta(0.1);
            let mut elm = Elm::<f64>::new(&config, &mut rng);
            elm.train(&x, &t).unwrap();
            elm.mse(&x, &t)
        };
        // Both interpolate well; ridge trades some training error for a
        // smaller β, so its fit is looser but still reasonable.
        assert!(plain < 1e-6, "plain ELM should interpolate: MSE {plain}");
        assert!(
            ridge < 5e-2,
            "ridge ELM should still fit loosely: MSE {ridge}"
        );
        assert!(
            ridge > plain,
            "regularisation should cost some training error"
        );
    }

    #[test]
    fn ridge_shrinks_beta_norm() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (x, t) = dataset(50);
        let beta_norm = |delta: f64, rng: &mut SmallRng| {
            let config = OsElmConfig::new(1, 32, 1)
                .with_init_range(-1.0, 1.0)
                .with_l2_delta(delta);
            let mut elm = Elm::<f64>::new(&config, rng);
            elm.train(&x, &t).unwrap();
            crate::spectral::beta_frobenius_f64(elm.model().beta())
        };
        let mut rng2 = SmallRng::seed_from_u64(3);
        let small = beta_norm(1e-6, &mut rng);
        let large = beta_norm(10.0, &mut rng2);
        assert!(large < small, "δ=10 should shrink ‖β‖ ({large} vs {small})");
    }

    #[test]
    fn predict_single_matches_batch() {
        let mut rng = SmallRng::seed_from_u64(4);
        let config = OsElmConfig::new(2, 16, 1).with_init_range(-1.0, 1.0);
        let mut elm = Elm::<f64>::new(&config, &mut rng);
        let x = Matrix::from_fn(30, 2, |i, j| ((i + j) % 7) as f64 / 7.0);
        let t = Matrix::from_fn(30, 1, |i, _| x[(i, 0)] + x[(i, 1)]);
        elm.train(&x, &t).unwrap();
        let single = elm.predict_single(&[0.3, 0.4]);
        let batch = elm.predict(&Matrix::from_rows(&[vec![0.3, 0.4]]));
        assert!((single[0] - batch[(0, 0)]).abs() < 1e-12);
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut rng = SmallRng::seed_from_u64(5);
        let config = OsElmConfig::new(2, 8, 1);
        let mut elm = Elm::<f64>::new(&config, &mut rng);
        // mismatched sample counts
        assert!(elm
            .train(&Matrix::<f64>::ones(4, 2), &Matrix::<f64>::ones(3, 1))
            .is_err());
        // wrong target width
        assert!(elm
            .train(&Matrix::<f64>::ones(4, 2), &Matrix::<f64>::ones(4, 2))
            .is_err());
    }

    #[test]
    fn from_model_preserves_random_weights() {
        let mut rng = SmallRng::seed_from_u64(6);
        let config = OsElmConfig::new(1, 8, 1);
        let base = ElmModel::<f64>::new(&config, &mut rng);
        let alpha_before = base.alpha().clone();
        let mut elm = Elm::from_model(base, 0.0);
        let (x, t) = dataset(20);
        elm.train(&x, &t).unwrap();
        assert_eq!(
            elm.model().alpha(),
            &alpha_before,
            "training must not touch α"
        );
    }
}
