//! Property tests for the batch-B OS-ELM recursion (Equation 6).
//!
//! Two invariants across random shapes (hidden width, chunk sizes, data
//! seeds):
//!
//! * `seq_train_batch` is **bit-for-bit** identical to the allocating
//!   `seq_train` — the workspace kernels must not change a single float;
//! * one B-chunk update matches B consecutive `seq_train_single` calls
//!   within `1e-9` — the block-exactness of the RLS recursion the batched
//!   training pipeline rests on.

use elmrl_elm::{HiddenActivation, OsElm, OsElmConfig};
use elmrl_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn dataset(n: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>) {
    // Scattered pseudo-random 2-D inputs (LCG), smooth target.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let x = Matrix::from_fn(n, 2, |_, _| next());
    let t = Matrix::from_fn(n, 1, |i, _| (2.0 * x[(i, 0)] - 0.5 * x[(i, 1)]).sin());
    (x, t)
}

fn initialised_pair(
    hidden: usize,
    seed: u64,
    init: usize,
) -> (OsElm<f64>, OsElm<f64>, Matrix<f64>, Matrix<f64>) {
    let cfg = OsElmConfig::new(2, hidden, 1)
        .with_activation(HiddenActivation::HardTanh)
        .with_init_range(-4.0, 4.0)
        .with_l2_delta(0.1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut a = OsElm::<f64>::new(&cfg, &mut rng);
    let mut b = a.clone();
    let (x, t) = dataset(init + 64, seed ^ 0xABCD);
    for os in [&mut a, &mut b] {
        os.init_train(
            &x.submatrix(0, init, 0, 2).unwrap(),
            &t.submatrix(0, init, 0, 1).unwrap(),
        )
        .unwrap();
    }
    (a, b, x, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batch_update_is_bit_identical_to_seq_train(
        hidden in 2usize..20,
        chunk in 1usize..17,
        seed in 0u64..500,
    ) {
        let init = hidden.max(4);
        let (mut general, mut batch, x, t) = initialised_pair(hidden, seed, init);
        let mut at = init;
        while at + chunk <= init + 64 {
            let xi = x.submatrix(at, at + chunk, 0, 2).unwrap();
            let ti = t.submatrix(at, at + chunk, 0, 1).unwrap();
            general.seq_train(&xi, &ti).unwrap();
            batch.seq_train_batch(&xi, &ti).unwrap();
            at += chunk;
        }
        prop_assert_eq!(general.model().beta(), batch.model().beta());
        prop_assert_eq!(general.p_matrix().unwrap(), batch.p_matrix().unwrap());
    }

    #[test]
    fn batch_update_matches_b_single_updates_within_tolerance(
        hidden in 2usize..16,
        chunk in 2usize..13,
        seed in 0u64..500,
    ) {
        let init = hidden.max(4);
        let (mut chunked, mut single, x, t) = initialised_pair(hidden, seed, init);
        let mut at = init;
        while at + chunk <= init + 48 {
            let xi = x.submatrix(at, at + chunk, 0, 2).unwrap();
            let ti = t.submatrix(at, at + chunk, 0, 1).unwrap();
            chunked.seq_train_batch(&xi, &ti).unwrap();
            for i in at..at + chunk {
                single.seq_train_single(x.row(i), t.row(i)).unwrap();
            }
            at += chunk;
        }
        prop_assert!(chunked.model().beta().max_abs_diff(single.model().beta()) < 1e-9);
        prop_assert!(
            chunked.p_matrix().unwrap().max_abs_diff(single.p_matrix().unwrap()) < 1e-9
        );
    }

    #[test]
    fn parallel_dispatch_is_bit_identical_to_sequential(
        hidden in 2usize..20,
        chunk in 1usize..9,
        seed in 0u64..200,
    ) {
        // The PR-9 contract: routing the fused P passes through the
        // work-sharing pool (any thread count, any tile split) must never
        // change a result byte. Force the parallel branch by dropping the
        // flop threshold to 1 and spinning a 4-worker pool.
        let init = hidden.max(4);
        let (mut seq, mut par, x, t) = initialised_pair(hidden, seed ^ 0x55AA, init);
        let mut at = init;
        while at + chunk <= init + 32 {
            let xi = x.submatrix(at, at + chunk, 0, 2).unwrap();
            let ti = t.submatrix(at, at + chunk, 0, 1).unwrap();
            seq.seq_train_batch(&xi, &ti).unwrap();
            seq.seq_train_single(x.row(at), t.row(at)).unwrap();

            elmrl_linalg::set_parallel_flop_threshold(1);
            rayon::set_num_threads(4);
            let r1 = par.seq_train_batch(&xi, &ti);
            let r2 = par.seq_train_single(x.row(at), t.row(at));
            rayon::set_num_threads(1);
            elmrl_linalg::set_parallel_flop_threshold(0);
            r1.unwrap();
            r2.unwrap();
            at += chunk;
        }
        prop_assert_eq!(seq.model().beta(), par.model().beta());
        prop_assert_eq!(seq.p_matrix().unwrap(), par.p_matrix().unwrap());
    }
}

/// Deterministic (non-proptest) pin at sizes straddling the row-tile edge:
/// `P_UPDATE_TILE − 1`, the tile itself, and one past it, driven far enough
/// that every tile boundary case (full tiles + remainder) is exercised.
#[test]
fn tile_boundary_hidden_sizes_stay_bit_identical() {
    for hidden in [
        elmrl_elm::os_elm::P_UPDATE_TILE - 1,
        elmrl_elm::os_elm::P_UPDATE_TILE,
        elmrl_elm::os_elm::P_UPDATE_TILE + 1,
    ] {
        let (mut general, mut batch, x, t) = initialised_pair(hidden, 42, hidden);
        for at in [hidden, hidden + 7] {
            let xi = x.submatrix(at, at + 7, 0, 2).unwrap();
            let ti = t.submatrix(at, at + 7, 0, 1).unwrap();
            general.seq_train(&xi, &ti).unwrap();
            batch.seq_train_batch(&xi, &ti).unwrap();
        }
        assert_eq!(general.model().beta(), batch.model().beta(), "Ñ={hidden}");
        assert_eq!(
            general.p_matrix().unwrap(),
            batch.p_matrix().unwrap(),
            "Ñ={hidden}"
        );
    }
}
