//! Property-based tests for the Q-format fixed-point type.

use elmrl_fixed::{Q16, Q20};
use elmrl_linalg::Scalar;
use proptest::prelude::*;

/// Values that fit comfortably in Q20 (|v| < 1000, leaving headroom for sums).
fn q20_value() -> impl Strategy<Value = f64> {
    -1000.0f64..1000.0
}

/// Values small enough that products also fit in Q20 (|v| < 32 → |product| < 1024).
fn q20_small() -> impl Strategy<Value = f64> {
    -32.0f64..32.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_is_within_one_lsb(v in q20_value()) {
        let q = Q20::from_f64(v);
        prop_assert!((q.to_f64() - v).abs() <= Q20::RESOLUTION);
        prop_assert!(!q.is_saturated());
    }

    #[test]
    fn addition_commutes(a in q20_value(), b in q20_value()) {
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        prop_assert_eq!(qa + qb, qb + qa);
    }

    #[test]
    fn addition_matches_float_within_two_lsb(a in q20_value(), b in q20_value()) {
        let sum = (Q20::from_f64(a) + Q20::from_f64(b)).to_f64();
        prop_assert!((sum - (a + b)).abs() <= 2.0 * Q20::RESOLUTION);
    }

    #[test]
    fn multiplication_matches_float(a in q20_small(), b in q20_small()) {
        let prod = (Q20::from_f64(a) * Q20::from_f64(b)).to_f64();
        // error ≈ |a|·lsb + |b|·lsb + lsb for the final rounding
        let bound = (a.abs() + b.abs() + 1.0) * Q20::RESOLUTION;
        prop_assert!((prod - a * b).abs() <= bound, "a={a} b={b} prod={prod}");
    }

    #[test]
    fn division_matches_float(a in q20_small(), b in q20_small()) {
        prop_assume!(b.abs() > 0.01);
        let quot = (Q20::from_f64(a) / Q20::from_f64(b)).to_f64();
        let bound = (a / b).abs() * 1e-3 + 1e-3;
        prop_assert!((quot - a / b).abs() <= bound, "a={a} b={b} quot={quot}");
    }

    #[test]
    fn negation_is_involutive(a in q20_value()) {
        let q = Q20::from_f64(a);
        prop_assert_eq!(-(-q), q);
    }

    #[test]
    fn abs_is_non_negative(a in q20_value()) {
        prop_assert!(Q20::from_f64(a).abs() >= Q20::ZERO);
    }

    #[test]
    fn sqrt_squares_back(a in 0.0f64..1000.0) {
        let s = Q20::from_f64(a).sqrt();
        let sq = (s * s).to_f64();
        // sqrt then square loses at most a few LSB-scaled-by-value
        prop_assert!((sq - a).abs() <= 2.0 * a.sqrt().max(1.0) * 1e-3 + 1e-3);
    }

    #[test]
    fn ordering_matches_float(a in q20_value(), b in q20_value()) {
        prop_assume!((a - b).abs() > 2.0 * Q20::RESOLUTION);
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        prop_assert_eq!(a < b, qa < qb);
    }

    #[test]
    fn saturation_never_wraps(a in -1.0e7f64..1.0e7, b in -1.0e7f64..1.0e7) {
        // Whatever the inputs, the result of any single op stays in range and
        // keeps the sign structure (no two's-complement wraparound).
        let (qa, qb) = (Q20::from_f64(a), Q20::from_f64(b));
        let results = [qa + qb, qa - qb, qa * qb, qa / qb];
        for r in results {
            prop_assert!(r >= Q20::MIN && r <= Q20::MAX);
        }
        if a > 0.0 && b > 0.0 {
            prop_assert!(qa * qb >= Q20::ZERO);
            prop_assert!(qa + qb >= Q20::ZERO);
        }
    }

    #[test]
    fn scalar_trait_clamp(a in q20_value()) {
        let q = Q20::from_f64(a);
        let clamped = q.clamp_val(Q20::from_f64(-1.0), Q20::from_f64(1.0));
        prop_assert!(clamped.to_f64() >= -1.0 - 1e-6 && clamped.to_f64() <= 1.0 + 1e-6);
    }

    #[test]
    fn q16_is_coarser_than_q20(v in -100.0f64..100.0) {
        let e16 = (Q16::from_f64(v).to_f64() - v).abs();
        let e20 = (Q20::from_f64(v).to_f64() - v).abs();
        prop_assert!(e16 <= Q16::RESOLUTION);
        prop_assert!(e20 <= Q20::RESOLUTION);
        prop_assert!(Q16::RESOLUTION > Q20::RESOLUTION);
    }
}
