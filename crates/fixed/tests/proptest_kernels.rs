//! Property-based pins of the raw-`i32` integer kernels against the generic
//! `Matrix<Q20>` arithmetic: same raws in, same raws out, **bit for bit** —
//! including operands at and near the `Q20::MAX`/`Q20::MIN` saturation
//! bounds and the `denom` reciprocal of the RLS update (saturating divide,
//! division by zero included).

use elmrl_fixed::kernels::{
    bias_relu_q_into, matmul_packed_q_into, matmul_q_into, matmul_t_q_into, q_add, q_div, q_mul,
    q_one, q_sub, seq_train_q_into, RlsScratch,
};
use elmrl_fixed::Q20;
use elmrl_linalg::Matrix;
use proptest::prelude::*;

/// Raw words biased towards the saturation bounds so mid-sum clipping
/// actually happens: exact `MAX`/`MIN`, near-bound values, moderate
/// magnitudes (|v| < 16.0, the trained core's regime) and fully arbitrary
/// words, mixed per element.
fn raw_any() -> impl Strategy<Value = i32> {
    (0u8..8, i32::MIN..i32::MAX, 0i32..1024).prop_map(|(sel, wide, near)| match sel {
        0 => i32::MAX,
        1 => i32::MIN,
        2 => i32::MAX - near,
        3 => i32::MIN + near,
        4 | 5 => wide % (16 << 20),
        _ => wide,
    })
}

fn to_matrix(rows: usize, cols: usize, raw: &[i32]) -> Matrix<Q20> {
    Matrix::from_fn(rows, cols, |i, j| Q20::from_raw(raw[i * cols + j]))
}

fn raws_of(m: &Matrix<Q20>) -> Vec<i32> {
    m.as_slice().iter().map(|q| q.to_raw()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn scalar_ops_match_fixed_semantics(a in raw_any(), b in raw_any()) {
        let (fa, fb) = (Q20::from_raw(a), Q20::from_raw(b));
        prop_assert_eq!(q_mul::<20>(a, b), fa.saturating_mul(fb).to_raw());
        prop_assert_eq!(q_add(a, b), fa.saturating_add(fb).to_raw());
        prop_assert_eq!(q_sub(a, b), fa.saturating_sub(fb).to_raw());
        prop_assert_eq!(q_div::<20>(a, b), fa.saturating_div(fb).to_raw());
    }

    #[test]
    fn reciprocal_edge_cases_match(b in raw_any()) {
        // The RLS `denom` reciprocal: 1/denom for every denominator class —
        // the sampled one plus the guarded-divider edge cases each round.
        let one = q_one::<20>();
        for denom in [b, 0, 1, -1, i32::MAX, i32::MIN, one] {
            prop_assert_eq!(
                q_div::<20>(one, denom),
                Q20::ONE.saturating_div(Q20::from_raw(denom)).to_raw()
            );
        }
    }

    #[test]
    fn matmul_kernels_match_generic_matrix_product(
        (m, k, n) in (1usize..6, 1usize..9, 1usize..6),
        a_raw in collection::vec(raw_any(), m * k),
        b_raw in collection::vec(raw_any(), k * n),
    ) {
        let a = to_matrix(m, k, &a_raw);
        let b = to_matrix(k, n, &b_raw);
        let expected = raws_of(&a.matmul(&b));

        let mut out = vec![0i32; m * n];
        matmul_q_into::<20>(m, k, n, &a_raw, &b_raw, &mut out);
        prop_assert_eq!(&out, &expected);

        let mut pack = Vec::new();
        let mut packed = vec![0i32; m * n];
        matmul_packed_q_into::<20>(m, k, n, &a_raw, &b_raw, &mut pack, &mut packed);
        prop_assert_eq!(&packed, &expected);
    }

    #[test]
    fn packed_kernel_handles_panel_remainders(
        m in 1usize..18, // crosses the PACK_MR = 8 panel boundary both ways
        k in 1usize..6,
        a_raw in collection::vec(raw_any(), m * k),
        b_raw in collection::vec(raw_any(), k * 3),
    ) {
        let mut naive = vec![0i32; m * 3];
        matmul_q_into::<20>(m, k, 3, &a_raw, &b_raw, &mut naive);
        let mut pack = Vec::new();
        let mut packed = vec![0i32; m * 3];
        matmul_packed_q_into::<20>(m, k, 3, &a_raw, &b_raw, &mut pack, &mut packed);
        prop_assert_eq!(packed, naive);
    }

    #[test]
    fn matmul_t_kernel_matches_generic_matmul_t(
        (m, k, n) in (1usize..6, 1usize..9, 1usize..6),
        a_raw in collection::vec(raw_any(), m * k),
        b_raw in collection::vec(raw_any(), n * k),
    ) {
        let a = to_matrix(m, k, &a_raw);
        let b = to_matrix(n, k, &b_raw);
        let expected = raws_of(&a.matmul_t(&b));

        let mut out = vec![0i32; m * n];
        matmul_t_q_into::<20>(m, k, n, &a_raw, &b_raw, &mut out);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn bias_relu_matches_generic_epilogue(
        (rows, n) in (1usize..5, 1usize..9),
        bias_raw in collection::vec(raw_any(), n),
        data_raw in collection::vec(raw_any(), rows * n),
    ) {
        // Generic path: pre += bias; pre < 0 → 0 (the FpgaCore hidden stage).
        let bias = to_matrix(1, n, &bias_raw);
        let mut pre = to_matrix(rows, n, &data_raw);
        for r in 0..rows {
            for c in 0..n {
                pre[(r, c)] += bias[(0, c)];
                if pre[(r, c)] < Q20::ZERO {
                    pre[(r, c)] = Q20::ZERO;
                }
            }
        }

        let mut data = data_raw.clone();
        bias_relu_q_into(rows, n, &bias_raw, &mut data);
        prop_assert_eq!(data, raws_of(&pre));
    }

    #[test]
    fn fused_rls_update_matches_generic_reference(
        (nh, m) in (1usize..20, 1usize..3),
        h1_sampled in collection::vec(raw_any(), nh),
        h2_sampled in collection::vec(raw_any(), nh),
        (relu_mask1, relu_mask2) in (0u32..65_536, 0u32..65_536),
        p_raw in collection::vec(raw_any(), nh * nh),
        beta_raw in collection::vec(raw_any(), nh * m),
        target_raw in collection::vec(raw_any(), m),
    ) {
        // ReLU output is non-negative with genuine zeros — mask some lanes to
        // zero and fold the rest positive, as the hidden stage would produce.
        let relu = |sampled: Vec<i32>, mask: u32| -> Vec<i32> {
            let mut h = sampled;
            for (i, v) in h.iter_mut().enumerate() {
                if mask & (1 << (i % 16)) != 0 {
                    *v = 0;
                } else if *v == i32::MIN {
                    *v = i32::MAX;
                } else if *v < 0 {
                    *v = -*v;
                }
            }
            h
        };
        let h1_raw = relu(h1_sampled, relu_mask1);
        let h2_raw = relu(h2_sampled, relu_mask2);

        let mut p_ref = to_matrix(nh, nh, &p_raw);
        let mut beta_ref = to_matrix(nh, m, &beta_raw);
        let target: Vec<Q20> = target_raw.iter().map(|&r| Q20::from_raw(r)).collect();

        // Generic Matrix<Q20> reference: the pre-PR7 FpgaCore::seq_train
        // body (post-hidden), verbatim.
        let reference_update =
            |h_raw: &[i32], p_ref: &mut Matrix<Q20>, beta_ref: &mut Matrix<Q20>| {
                let h = to_matrix(1, nh, h_raw);
                let ph = p_ref.matmul_t(&h);
                let hp = h.matmul(p_ref);
                let mut denom = Q20::ONE;
                for i in 0..nh {
                    denom += h[(0, i)] * ph[(i, 0)];
                }
                let inv_denom = Q20::ONE / denom;
                for r in 0..nh {
                    let scale = ph[(r, 0)] * inv_denom;
                    for c in 0..nh {
                        let sub = scale * hp[(0, c)];
                        p_ref[(r, c)] -= sub;
                    }
                }
                let pred = h.matmul(beta_ref);
                let ph_new = p_ref.matmul_t(&h);
                for r in 0..nh {
                    for c in 0..m {
                        let add = ph_new[(r, 0)] * (target[c] - pred[(0, c)]);
                        beta_ref[(r, c)] += add;
                    }
                }
            };

        // --- Fused integer kernel on the same raws: two successive updates
        // through one scratch. The first derives the saturation-freedom
        // bound by exact scan; the second consumes the incrementally
        // maintained bound — so both the saturation-free fast loops and the
        // exact saturating loops get exercised against the reference.
        let mut p = p_raw.clone();
        let mut beta = beta_raw.clone();
        let mut ws = RlsScratch::new();
        for h_raw in [&h1_raw, &h2_raw] {
            reference_update(h_raw, &mut p_ref, &mut beta_ref);
            seq_train_q_into::<20>(nh, m, h_raw, &target_raw, &mut p, &mut beta, &mut ws);

            prop_assert_eq!(&p, &raws_of(&p_ref));
            prop_assert_eq!(&beta, &raws_of(&beta_ref));
            // ws.ph holds the post-update P·hᵀ — check it as well.
            let ph_ref = raws_of(&p_ref.matmul_t(&to_matrix(1, nh, h_raw)));
            prop_assert_eq!(&ws.ph, &ph_ref);
        }
    }
}

/// Deterministic pin of the blocked packed kernel at shapes straddling every
/// tile edge — `PACK_MR` panel remainders, `PACK_KC` k-block boundaries and
/// `PACK_NC` column-block boundaries — including saturating operands (the
/// LCG stream crosses the clamp bounds), against the naive integer kernel.
#[test]
fn packed_kernel_is_bit_identical_across_tile_boundaries() {
    use elmrl_fixed::kernels::{PACK_KC, PACK_NC};
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Mostly moderate magnitudes, with an occasional near-bound word so
        // mid-sum saturation fires inside full and partial tiles alike.
        if state >> 61 == 0 {
            (state >> 32) as i32
        } else {
            ((state >> 32) as i32) % (16 << 20)
        }
    };
    for (m, k, n) in [
        (9, PACK_KC - 1, 3),
        (2, PACK_KC, 5),
        (3, PACK_KC + 1, 4),
        (17, 7, PACK_NC + 1),
        (5, PACK_KC + 44, PACK_NC + 3),
    ] {
        let a: Vec<i32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i32> = (0..k * n).map(|_| next()).collect();
        let mut naive = vec![0i32; m * n];
        matmul_q_into::<20>(m, k, n, &a, &b, &mut naive);
        let mut pack = Vec::new();
        let mut packed = vec![0i32; m * n];
        matmul_packed_q_into::<20>(m, k, n, &a, &b, &mut pack, &mut packed);
        assert_eq!(packed, naive, "shape ({m},{k},{n})");
    }
}
