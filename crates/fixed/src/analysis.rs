//! Quantisation-error analysis helpers.
//!
//! Used by the precision ablation (DESIGN.md experiment A2) to quantify how
//! far a Q-format computation drifts from the `f64` reference — the question
//! the paper answers implicitly by showing that its Q20 FPGA design still
//! solves CartPole.

use crate::fixed::Fixed;
use elmrl_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Summary statistics of the element-wise error between a reference matrix
/// and its fixed-point counterpart.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantizationReport {
    /// Maximum absolute element-wise error.
    pub max_abs_error: f64,
    /// Mean absolute element-wise error.
    pub mean_abs_error: f64,
    /// Root-mean-square error.
    pub rms_error: f64,
    /// Relative Frobenius-norm error `‖A − Ã‖_F / ‖A‖_F` (0 when `A` is 0).
    pub relative_frobenius_error: f64,
    /// Number of elements that saturated during quantisation.
    pub saturated_elements: usize,
    /// Total number of elements compared.
    pub total_elements: usize,
}

impl QuantizationReport {
    /// `true` when no element saturated and the max error is below `tol`.
    pub fn within_tolerance(&self, tol: f64) -> bool {
        self.saturated_elements == 0 && self.max_abs_error <= tol
    }
}

/// Quantise an `f64` matrix through the Q-format `FRAC` and report the error.
pub fn quantization_report<const FRAC: u32>(reference: &Matrix<f64>) -> QuantizationReport {
    let quantized: Matrix<Fixed<FRAC>> = reference.cast();
    compare_to_reference(reference, &quantized)
}

/// Compare an already-computed fixed-point matrix against its `f64` reference.
pub fn compare_to_reference<const FRAC: u32>(
    reference: &Matrix<f64>,
    fixed: &Matrix<Fixed<FRAC>>,
) -> QuantizationReport {
    assert_eq!(
        reference.shape(),
        fixed.shape(),
        "compare_to_reference: shape mismatch"
    );
    let n = reference.len();
    let mut max_abs = 0.0f64;
    let mut sum_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut saturated = 0usize;
    let mut ref_sq = 0.0f64;
    for (&r, &q) in reference.iter().zip(fixed.iter()) {
        let err = (r - q.to_f64()).abs();
        max_abs = max_abs.max(err);
        sum_abs += err;
        sum_sq += err * err;
        ref_sq += r * r;
        if q.is_saturated() {
            saturated += 1;
        }
    }
    let rel = if ref_sq > 0.0 {
        (sum_sq / ref_sq).sqrt()
    } else {
        0.0
    };
    QuantizationReport {
        max_abs_error: max_abs,
        mean_abs_error: sum_abs / n as f64,
        rms_error: (sum_sq / n as f64).sqrt(),
        relative_frobenius_error: rel,
        saturated_elements: saturated,
        total_elements: n,
    }
}

/// Theoretical worst-case round-off of a single quantisation for the format
/// (half an LSB when rounding to nearest).
pub fn half_lsb<const FRAC: u32>() -> f64 {
    Fixed::<FRAC>::RESOLUTION / 2.0
}

/// Error accumulated by a dot product of length `n` in the worst case: each
/// product contributes at most one LSB of rounding, plus the final rounding.
/// This is the bound the FPGA datapath's accumulator obeys (it keeps a wide
/// accumulator, so only the multiplier rounding matters).
pub fn dot_product_error_bound<const FRAC: u32>(n: usize) -> f64 {
    (n as f64 + 1.0) * Fixed::<FRAC>::RESOLUTION
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{Q16, Q20, Q8};

    fn sample() -> Matrix<f64> {
        Matrix::from_fn(8, 8, |i, j| ((i * 13 + j * 7) as f64 * 0.0371).sin())
    }

    #[test]
    fn q20_quantization_error_is_sub_lsb() {
        let report = quantization_report::<20>(&sample());
        assert!(report.max_abs_error <= Q20::RESOLUTION);
        assert!(report.mean_abs_error <= report.max_abs_error);
        assert!(report.rms_error <= report.max_abs_error);
        assert_eq!(report.saturated_elements, 0);
        assert_eq!(report.total_elements, 64);
        assert!(report.within_tolerance(Q20::RESOLUTION));
    }

    #[test]
    fn coarser_formats_have_larger_error() {
        let m = sample();
        let q8 = quantization_report::<8>(&m);
        let q16 = quantization_report::<16>(&m);
        let q20 = quantization_report::<20>(&m);
        assert!(q8.rms_error >= q16.rms_error);
        assert!(q16.rms_error >= q20.rms_error);
        assert!(q8.max_abs_error <= Q8::RESOLUTION);
        assert!(q16.max_abs_error <= Q16::RESOLUTION);
    }

    #[test]
    fn saturation_is_counted() {
        let m = Matrix::from_rows(&[vec![1e7, 0.0], vec![-1e7, 1.0]]);
        let report = quantization_report::<20>(&m);
        assert_eq!(report.saturated_elements, 2);
        assert!(!report.within_tolerance(1.0));
    }

    #[test]
    fn zero_matrix_has_zero_relative_error() {
        let z = Matrix::<f64>::zeros(3, 3);
        let report = quantization_report::<20>(&z);
        assert_eq!(report.relative_frobenius_error, 0.0);
        assert_eq!(report.max_abs_error, 0.0);
    }

    #[test]
    fn error_bounds_are_monotone_in_length_and_precision() {
        assert!(dot_product_error_bound::<20>(64) < dot_product_error_bound::<20>(256));
        assert!(dot_product_error_bound::<16>(64) > dot_product_error_bound::<20>(64));
        assert!(half_lsb::<20>() < half_lsb::<16>());
    }

    #[test]
    fn compare_to_reference_detects_computation_drift() {
        // Multiply two matrices in f64 and in Q20; the error should stay within
        // the analytic dot-product bound.
        let a = sample();
        let b = sample().transpose();
        let ref_prod = a.matmul(&b);
        let qa: Matrix<Q20> = a.cast();
        let qb: Matrix<Q20> = b.cast();
        let q_prod = qa.matmul(&qb);
        let report = compare_to_reference(&ref_prod, &q_prod);
        assert!(report.max_abs_error <= dot_product_error_bound::<20>(a.cols()) * 2.0);
        assert_eq!(report.saturated_elements, 0);
    }
}
