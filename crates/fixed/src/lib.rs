//! # elmrl-fixed
//!
//! Q-format fixed-point arithmetic modelling the FPGA datapath number format.
//!
//! The paper's OS-ELM core stores inputs, `α`, `β` and all intermediate
//! results as **32-bit Q20 fixed-point numbers** (§4.2): 20 fractional bits,
//! 11 integer bits and a sign bit. This crate provides that representation as
//! [`Fixed<FRAC>`] with saturating arithmetic (what a well-behaved HDL
//! datapath does on overflow), plus the error-analysis helpers used by the
//! precision ablation (DESIGN.md experiment A2).
//!
//! The type implements [`elmrl_linalg::Scalar`], so every kernel in
//! `elmrl-linalg` — and therefore the whole OS-ELM update — can run unchanged
//! on fixed-point data. That is exactly how the FPGA simulator in
//! `elmrl-fpga` reproduces the numerical behaviour of the Verilog core.
//!
//! The [`kernels`] module is the *fast* form of the same arithmetic: raw-`i32`
//! matmul/RLS kernels on caller-owned slices, bit-for-bit identical to the
//! generic `Matrix<Fixed<FRAC>>` path (proptested), which is what lets the
//! FPGA core run allocation-free at speed.
//!
//! ```
//! use elmrl_fixed::Q20;
//! use elmrl_linalg::Matrix;
//!
//! // Q20 round-trip: any value in range survives to within one LSB.
//! let q = Q20::from_f64(0.3);
//! assert!((q.to_f64() - 0.3).abs() <= Q20::RESOLUTION);
//!
//! let a = Matrix::<Q20>::from_rows(&[
//!     vec![Q20::from_f64(0.5), Q20::from_f64(-0.25)],
//!     vec![Q20::from_f64(1.0), Q20::from_f64(2.0)],
//! ]);
//! let b = a.matmul(&a);
//! assert!((b[(0, 0)].to_f64() - 0.0).abs() < 1e-4);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod fixed;
pub mod kernels;

pub use fixed::{Fixed, Q16, Q20, Q24, Q8};
