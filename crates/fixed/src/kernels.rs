//! Raw-integer kernels for the Q-format datapath.
//!
//! The generic [`Matrix<Fixed<FRAC>>`](elmrl_linalg::Matrix) path routes every
//! multiply–accumulate through the [`Fixed`](crate::Fixed) operator
//! overloads — correct, but each element access is bounds-checked and each hot
//! loop re-materialises small `Matrix`/`Vec` temporaries. These kernels are
//! the fast form of the *same arithmetic*: they operate directly on the raw
//! two's-complement `i32` words (what the FPGA's BRAMs hold) in caller-owned
//! slices, with widening `i64` products and per-term saturation to the 32-bit
//! lattice.
//!
//! **Bit-for-bit contract.** Every kernel reproduces the exact operation
//! sequence of its `Matrix<Fixed<FRAC>>` counterpart: per output element, the
//! inner dimension is accumulated in ascending order and every intermediate —
//! the shifted product *and* the running sum — saturates exactly like
//! [`Fixed::saturating_mul`](crate::Fixed::saturating_mul)/[`Fixed::saturating_add`](crate::Fixed::saturating_add) would. (A plain `i64`
//! accumulator with one saturate-on-store would diverge whenever a partial
//! sum clips mid-accumulation; the HDL clamps its accumulator every cycle, and
//! so do we.) Terms whose multiplicand is exactly zero contribute an exact
//! fixed-point zero and are skipped — saturating addition of zero is the
//! identity, so the skip is value-preserving while exploiting ReLU sparsity.
//! The fused RLS kernel goes one step further: it maintains magnitude
//! bounds on its operands and, whenever those bounds *prove* that no clamp
//! can fire, runs saturation-free loops whose plain integer arithmetic is
//! bit-identical to the saturating forms (see [`seq_train_q_into`] and
//! [`RlsScratch`]). The proptest suite (`tests/proptest_kernels.rs`) pins
//! all of this against the generic path, including saturated operands.

/// Saturate a 64-bit intermediate onto the 32-bit lattice — the raw form of
/// the clamp inside [`Fixed::saturating_mul`](crate::Fixed::saturating_mul).
#[inline]
fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// Raw Q-format multiply: widening `i64` product, arithmetic shift by `FRAC`,
/// saturate. Bit-identical to
/// [`Fixed::saturating_mul`](crate::Fixed::saturating_mul) on the same raws.
#[inline]
pub fn q_mul<const FRAC: u32>(a: i32, b: i32) -> i32 {
    clamp_i64(((a as i64) * (b as i64)) >> FRAC)
}

/// Raw Q-format saturating add — bit-identical to
/// [`Fixed::saturating_add`](crate::Fixed::saturating_add).
#[inline]
pub fn q_add(a: i32, b: i32) -> i32 {
    a.saturating_add(b)
}

/// Raw Q-format saturating subtract — bit-identical to
/// [`Fixed::saturating_sub`](crate::Fixed::saturating_sub).
#[inline]
pub fn q_sub(a: i32, b: i32) -> i32 {
    a.saturating_sub(b)
}

/// Raw Q-format divide (64-bit intermediate). Division by zero saturates to
/// `i32::MAX`/`i32::MIN` by dividend sign (`0/0 → 0`) — bit-identical to
/// [`Fixed::saturating_div`](crate::Fixed::saturating_div).
#[inline]
pub fn q_div<const FRAC: u32>(a: i32, b: i32) -> i32 {
    if b == 0 {
        return if a > 0 {
            i32::MAX
        } else if a < 0 {
            i32::MIN
        } else {
            0
        };
    }
    clamp_i64(((a as i64) << FRAC) / (b as i64))
}

/// The raw representation of 1.0 in a `FRAC`-bit format.
#[inline]
pub const fn q_one<const FRAC: u32>() -> i32 {
    1i32 << FRAC
}

/// Row-panel height of [`matmul_packed_q_into`] — mirrors
/// `elmrl_linalg::matmul::PACK_MR` so both packed kernels share the same
/// panel geometry (and therefore the same per-element accumulation order as
/// the naive kernel).
pub const PACK_MR: usize = 8;

/// Inner-dimension (`k`) tile of [`matmul_packed_q_into`] — mirrors
/// `elmrl_linalg::matmul::PACK_KC`. A packed `PACK_MR × PACK_KC` panel slice
/// of `i32` words is 8 KiB, comfortably L1-resident across the column sweep.
pub const PACK_KC: usize = 256;

/// Output-column tile of [`matmul_packed_q_into`] — mirrors
/// `elmrl_linalg::matmul::PACK_NC`; keeps the accumulator rows cache-hot
/// while the `PACK_KC × PACK_NC` rhs block streams from L2.
pub const PACK_NC: usize = 256;

/// `out (m×n) = a (m×k) · b (k×n)` on raw Q-format words, row-major slices.
///
/// Same `i-k-j` loop structure as `Matrix::matmul_into`, so each output
/// element accumulates the inner dimension in ascending order — bit-identical
/// to the generic `Matrix<Fixed<FRAC>>` product.
pub fn matmul_q_into<const FRAC: u32>(
    m: usize,
    k: usize,
    n: usize,
    a: &[i32],
    b: &[i32],
    out: &mut [i32],
) {
    assert_eq!(a.len(), m * k, "matmul_q: lhs size mismatch");
    assert_eq!(b.len(), k * n, "matmul_q: rhs size mismatch");
    assert_eq!(out.len(), m * n, "matmul_q: output size mismatch");
    out.fill(0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0 {
                continue; // exact zero terms are additive identities
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in o_row.iter_mut().zip(b_row.iter()) {
                *o = q_add(*o, q_mul::<FRAC>(a_ip, b_pj));
            }
        }
    }
}

/// `out (m×n) = a (m×k) · b (n×k)ᵀ` on raw Q-format words.
///
/// Dot-product form mirroring `Matrix::matmul_t_into`: ascending-`k`
/// accumulation per element, bit-identical to the generic path.
pub fn matmul_t_q_into<const FRAC: u32>(
    m: usize,
    k: usize,
    n: usize,
    a: &[i32],
    b: &[i32],
    out: &mut [i32],
) {
    assert_eq!(a.len(), m * k, "matmul_t_q: lhs size mismatch");
    assert_eq!(b.len(), n * k, "matmul_t_q: rhs size mismatch");
    assert_eq!(out.len(), m * n, "matmul_t_q: output size mismatch");
    // Dot products are latency-bound: every link of the running sum waits on
    // the previous saturating add. Four rows of `a` against the same `b` row
    // give four independent chains, hiding that latency; each chain still
    // accumulates ascending `k` with per-term saturation, so each output is
    // bit-identical to the single-row form.
    let mut i = 0;
    while i + 4 <= m {
        let (a0, rest) = a[i * k..(i + 4) * k].split_at(k);
        let (a1, rest) = rest.split_at(k);
        let (a2, a3) = rest.split_at(k);
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = [0i32; 4];
            for ((((&b_jp, &v0), &v1), &v2), &v3) in b_row.iter().zip(a0).zip(a1).zip(a2).zip(a3) {
                acc[0] = q_add(acc[0], q_mul::<FRAC>(v0, b_jp));
                acc[1] = q_add(acc[1], q_mul::<FRAC>(v1, b_jp));
                acc[2] = q_add(acc[2], q_mul::<FRAC>(v2, b_jp));
                acc[3] = q_add(acc[3], q_mul::<FRAC>(v3, b_jp));
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
        }
        i += 4;
    }
    while i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&a_ip, &b_jp) in a_row.iter().zip(b_row.iter()) {
                if a_ip != 0 {
                    acc = q_add(acc, q_mul::<FRAC>(a_ip, b_jp));
                }
            }
            *o = acc;
        }
        i += 1;
    }
}

/// Packed-panel variant of [`matmul_q_into`]: [`PACK_MR`] rows of `a` are
/// packed transposed into `pack`, the inner dimension is tiled by
/// [`PACK_KC`] and the output columns by [`PACK_NC`] — the integer twin of
/// `Matrix::matmul_packed_into`, blocked the same way. Per output element
/// the `k` terms still arrive in ascending order (k-blocks ascend, `p`
/// ascends within a block) with per-term saturation, so the result is
/// bit-identical to [`matmul_q_into`] (and therefore to the generic
/// `Matrix<Fixed<FRAC>>` product) no matter how the tiles fall.
pub fn matmul_packed_q_into<const FRAC: u32>(
    m: usize,
    k: usize,
    n: usize,
    a: &[i32],
    b: &[i32],
    pack: &mut Vec<i32>,
    out: &mut [i32],
) {
    assert_eq!(a.len(), m * k, "matmul_packed_q: lhs size mismatch");
    assert_eq!(b.len(), k * n, "matmul_packed_q: rhs size mismatch");
    assert_eq!(out.len(), m * n, "matmul_packed_q: output size mismatch");
    out.fill(0);
    pack.clear();
    pack.resize(PACK_MR * PACK_KC.min(k.max(1)), 0);
    for i0 in (0..m).step_by(PACK_MR) {
        let h = PACK_MR.min(m - i0);
        let panel = &mut out[i0 * n..(i0 + h) * n];
        for p0 in (0..k).step_by(PACK_KC) {
            let p_end = (p0 + PACK_KC).min(k);
            // Pack this panel's k-slice transposed: pack[(p-p0)·MR + r] =
            // A[i0+r, p], so the p-loop below reads one contiguous group.
            for r in 0..h {
                let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
                for (p, &v) in a_row.iter().enumerate().take(p_end).skip(p0) {
                    pack[(p - p0) * PACK_MR + r] = v;
                }
            }
            for j0 in (0..n).step_by(PACK_NC) {
                let j_end = (j0 + PACK_NC).min(n);
                for p in p0..p_end {
                    let b_row = &b[p * n + j0..p * n + j_end];
                    let group = &pack[(p - p0) * PACK_MR..(p - p0) * PACK_MR + h];
                    for (r, &a_rp) in group.iter().enumerate() {
                        if a_rp == 0 {
                            continue; // exact zero terms are additive identities
                        }
                        let o_row = &mut panel[r * n + j0..r * n + j_end];
                        for (o, &b_pj) in o_row.iter_mut().zip(b_row.iter()) {
                            *o = q_add(*o, q_mul::<FRAC>(a_rp, b_pj));
                        }
                    }
                }
            }
        }
    }
}

/// In-place bias-add + ReLU over `rows` stacked pre-activation rows of width
/// `n`: `data[r][j] = max(0, data[r][j] ⊕ bias[j])` with saturating add —
/// exactly the hidden-layer epilogue of the FPGA core's `hidden` stage.
pub fn bias_relu_q_into(rows: usize, n: usize, bias: &[i32], data: &mut [i32]) {
    assert_eq!(bias.len(), n, "bias_relu_q: bias size mismatch");
    assert_eq!(data.len(), rows * n, "bias_relu_q: data size mismatch");
    for r in 0..rows {
        let row = &mut data[r * n..(r + 1) * n];
        for (v, &b) in row.iter_mut().zip(bias.iter()) {
            let pre = q_add(*v, b);
            *v = if pre < 0 { 0 } else { pre };
        }
    }
}

/// How often [`seq_train_q_into`] re-derives the exact `max|P|` with a full
/// scan of `P` (one `Ñ²` read pass, amortised over `RESCAN_PERIOD` updates).
/// Between scans the bound is maintained incrementally and only ever
/// loosens, so a shorter period keeps the fast path engaged at the cost of
/// more scans. Public so the telemetry layer can report the rescan cadence
/// alongside the observed [`RlsStats::rescans`] count.
pub const RESCAN_PERIOD: u32 = 32;

/// Checkpoint interval of the saturation-checked dot chains: partial sums
/// are verified against [`chain_limit`] once per `CHUNK` terms, so between
/// checkpoints a chain can drift at most `CHUNK` term-bounds away from its
/// last verified value.
const CHUNK: usize = 16;

/// Per-term magnitude bound of a product chain: `|(a·b) >> frac| ≤
/// ((abs_a·abs_b) >> frac) + 1` when `|a| ≤ abs_a`, `|b| ≤ abs_b`
/// (arithmetic shift rounds toward −∞). Saturates on overflow — a huge
/// bound just disables the fast path.
fn term_bound(abs_a: i64, abs_b: i64, frac: u32) -> i64 {
    match abs_a.checked_mul(abs_b) {
        Some(prod) => (prod >> frac) + 1,
        None => i64::MAX,
    }
}

/// Checkpoint threshold for a chain with per-term bound `t`: if every
/// checkpointed partial sum has magnitude ≤ `chain_limit(t)`, then *every*
/// partial sum (checkpointed or not) stays within `i32` and no term clamps
/// (`t ≤ i32::MAX/CHUNK`), so the plain-arithmetic chain is bit-identical
/// to the saturating one. Conversely, if some partial sum would have
/// saturated, the next checkpoint is at most `CHUNK − 1` terms later and
/// still exceeds the limit — violations cannot slip through. A
/// non-positive result means the fast path cannot run at all.
fn chain_limit(t: i64) -> i64 {
    i32::MAX as i64 - t.saturating_mul(CHUNK as i64)
}

/// Exact saturating dot of one `P` row against the nonzero support of `h` —
/// the reference chain every fast path must reproduce bit for bit.
fn exact_dot<const FRAC: u32>(p_row: &[i32], nz: &[(u32, i32)]) -> i32 {
    let mut acc = 0i32;
    for &(c, hv) in nz {
        acc = q_add(acc, q_mul::<FRAC>(p_row[c as usize], hv));
    }
    acc
}

/// Saturation-checked fast dot of four rows against the nonzero support:
/// four plain `i64` chains (independent, latency-hiding) with a partial-sum
/// check every [`CHUNK`] terms. Returns `None` when any checkpoint exceeds
/// `limit` — some partial sum may have saturated, and the caller must
/// re-run the exact saturating form.
fn fast_dot4<const FRAC: u32>(
    rows: [&[i32]; 4],
    nz: &[(u32, i32)],
    limit: i64,
) -> Option<[i32; 4]> {
    let mut acc = [0i64; 4];
    let mut peak = 0i64;
    for chunk in nz.chunks(CHUNK) {
        for &(c, hv) in chunk {
            let c = c as usize;
            let hw = hv as i64;
            acc[0] += (rows[0][c] as i64 * hw) >> FRAC;
            acc[1] += (rows[1][c] as i64 * hw) >> FRAC;
            acc[2] += (rows[2][c] as i64 * hw) >> FRAC;
            acc[3] += (rows[3][c] as i64 * hw) >> FRAC;
        }
        for &a in &acc {
            peak = peak.max(a.abs());
        }
    }
    if peak <= limit {
        Some([acc[0] as i32, acc[1] as i32, acc[2] as i32, acc[3] as i32])
    } else {
        None
    }
}

/// Single-row variant of [`fast_dot4`].
fn fast_dot1<const FRAC: u32>(p_row: &[i32], nz: &[(u32, i32)], limit: i64) -> Option<i32> {
    let mut acc = 0i64;
    let mut peak = 0i64;
    for chunk in nz.chunks(CHUNK) {
        for &(c, hv) in chunk {
            acc += (p_row[c as usize] as i64 * hv as i64) >> FRAC;
        }
        peak = peak.max(acc.abs());
    }
    if peak <= limit {
        Some(acc as i32)
    } else {
        None
    }
}

/// Caller-owned workspaces and cross-call magnitude state of
/// [`seq_train_q_into`]; reuse one instance per `P` matrix and the steady
/// state never allocates.
///
/// The magnitude state is a standing upper bound on `max|P|`: re-derived by
/// an exact scan every `RESCAN_PERIOD` updates, loosened incrementally in
/// between by each update's worst-case downdate. The bound only gates
/// *which code path* runs — the saturation-free fast loops or the exact
/// saturating loops — never the values produced, so a stale-but-valid bound
/// costs speed, not correctness. Call [`RlsScratch::invalidate`] whenever
/// `P` is rewritten outside the kernel (parameter reload, snapshot restore,
/// or pointing the scratch at a different `P`).
#[derive(Clone, Debug, Default)]
pub struct RlsScratch {
    /// On return from an update: the *post-update* `P·hᵀ` (`Ñ`).
    pub ph: Vec<i32>,
    /// `h·P` of the update (`Ñ`).
    pub hp: Vec<i32>,
    /// Pre-update prediction `h·β` (`m`).
    pub pred: Vec<i32>,
    /// Cumulative fast-path/fallback telemetry — see [`RlsStats`].
    pub stats: RlsStats,
    /// Per-row downdate scales `ph[r]·inv_denom` (`Ñ`).
    scale: Vec<i32>,
    /// Nonzero support of `h`: `(index, value)` pairs, ascending.
    nz: Vec<(u32, i32)>,
    /// Upper bound on the `max|P|` raw word, valid since the last rescan.
    p_abs: i64,
    /// Updates since construction/invalidation; `calls % RESCAN_PERIOD == 0`
    /// triggers an exact bound rescan at the next update's entry.
    calls: u32,
}

/// Cumulative hit-rate counters of the guarded fast paths in
/// [`seq_train_q_into`]. Plain `u64` fields on the caller-owned scratch —
/// this crate stays dependency-free; the FPGA core flushes deltas into the
/// global telemetry registry when telemetry is on. The counters never
/// influence which path runs or the values produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RlsStats {
    /// Total [`seq_train_q_into`] invocations through this scratch.
    pub calls: u64,
    /// Exact `max|P|` rescans performed (one every [`RESCAN_PERIOD`] calls).
    pub rescans: u64,
    /// Dot blocks (4-row or 1-row `P`-against-`h` chains, and the fused
    /// `h·P` pass) that completed on the saturation-free fast path.
    pub fast_blocks: u64,
    /// Dot blocks whose runtime checkpoint failed (or whose static bound
    /// never allowed the fast path) and re-ran the exact saturating loops.
    pub fallback_blocks: u64,
}

impl RlsStats {
    /// `self − earlier`, field-wise (saturating) — the increment since a
    /// previous snapshot, for periodic flushes into external counters.
    pub fn since(&self, earlier: &RlsStats) -> RlsStats {
        RlsStats {
            calls: self.calls.saturating_sub(earlier.calls),
            rescans: self.rescans.saturating_sub(earlier.rescans),
            fast_blocks: self.fast_blocks.saturating_sub(earlier.fast_blocks),
            fallback_blocks: self.fallback_blocks.saturating_sub(earlier.fallback_blocks),
        }
    }
}

impl RlsScratch {
    /// Fresh scratch; the first update derives the `P` bound by exact scan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the magnitude bound — the next update re-derives it by scanning
    /// `P`. Required after `P` changes outside [`seq_train_q_into`].
    pub fn invalidate(&mut self) {
        self.calls = 0;
    }
}

/// One fused batch-size-1 OS-ELM RLS update on raw Q-format words — the
/// integer twin of the FPGA core's `seq_train` arithmetic, streaming `P`
/// once for the downdate *and* the post-update `P·hᵀ` instead of three
/// separate passes.
///
/// Inputs: `h` is the already-activated hidden row (`Ñ`), `target` the `m`
/// training targets. `p` (`Ñ×Ñ`) and `beta` (`Ñ×m`) are updated in place;
/// `ws` holds the reusable workspaces (on return, `ws.ph` is the
/// *post-update* `P·hᵀ` and `ws.pred` the pre-update `h·β`) plus the
/// cross-call `max|P|` bound — see [`RlsScratch`].
///
/// The operation sequence per element matches the reference
/// `Matrix<Fixed<FRAC>>` implementation exactly:
///
/// 1. `ph = P·hᵀ`, `hp = h·P` (ascending inner accumulation);
/// 2. `denom = 1 ⊕ Σᵢ h[i]·ph[i]`, `inv = 1 ⊘ denom` (saturating divide —
///    the `DIV_LATENCY` reciprocal of the hardware);
/// 3. `pred = h·β` (β still pre-update);
/// 4. per row `r`: `scale = ph[r]·inv`, `P[r][c] ⊖= scale·hp[c]`; the row is
///    final after its downdate, so `ph_new[r] = Σ_c P[r][c]·h[c]` follows
///    immediately (same value as a full second `P·hᵀ` pass) and feeds
///    `β[r][c] ⊕= ph_new[r]·(target[c] ⊖ pred[c])`.
///
/// Fusing is value-preserving because the downdate touches each `P` row once
/// and the β update of row `r` reads only `ph_new[r]` and the shared
/// residual, which is computed from the pre-update β.
///
/// **Two bit-identical code paths.** Saturation exists to model the HDL, but
/// a trained core operates far from the clamp bounds, and every saturating
/// op costs a clamp that never fires. The kernel therefore runs plain
/// widening-multiply/add loops (≈2× fewer µops per MAC) whenever it can
/// *prove* they saturate nowhere:
///
/// - **per term**, statically: a maintained bound on `max|P|` (see
///   [`RlsScratch`]) times the exact `max|h|` shows no shifted product can
///   clamp (`term_bound`);
/// - **per partial sum**, at runtime: dot chains are checkpointed every
///   `CHUNK` terms against `chain_limit` — necessary because `P`'s
///   entries can be large while the actual sums stay small only through
///   cancellation, which no static worst-case bound captures. A checkpoint
///   violation re-runs that row block through the exact saturating loops;
/// - the **downdate** subtracts one bounded term per element, so a static
///   `max|P| + term ≤ i32::MAX` check suffices outright.
///
/// In the no-saturation regime exact integer arithmetic is associative, so
/// `i64` accumulators are legal and bit-identical. Both paths iterate only
/// the nonzero support of `h` (`ws.nz`) where a factor of `h` makes zero
/// terms additive identities.
pub fn seq_train_q_into<const FRAC: u32>(
    nh: usize,
    m: usize,
    h: &[i32],
    target: &[i32],
    p: &mut [i32],
    beta: &mut [i32],
    ws: &mut RlsScratch,
) {
    assert_eq!(h.len(), nh, "seq_train_q: hidden size mismatch");
    assert_eq!(target.len(), m, "seq_train_q: target size mismatch");
    assert_eq!(p.len(), nh * nh, "seq_train_q: P size mismatch");
    assert_eq!(beta.len(), nh * m, "seq_train_q: beta size mismatch");

    let RlsScratch {
        ph,
        hp,
        pred,
        stats,
        scale,
        nz,
        p_abs,
        calls,
    } = ws;
    ph.resize(nh, 0);
    hp.resize(nh, 0);
    pred.resize(m, 0);
    scale.resize(nh, 0);
    stats.calls += 1;

    // Periodically replace the incrementally-loosened |P| bound with the
    // exact maximum (P is unchanged since the previous update's downdate).
    if *calls % RESCAN_PERIOD == 0 {
        *p_abs = p.iter().map(|&v| (v as i64).abs()).max().unwrap_or(0);
        stats.rescans += 1;
    }
    *calls = calls.wrapping_add(1);

    // The nonzero support of h in ascending index order — every pass below
    // that multiplies by h touches exactly these terms, in this order — and
    // the exact max|h| for the saturation-freedom guards.
    nz.clear();
    let mut h_abs = 0i64;
    for (i, &v) in h.iter().enumerate() {
        if v != 0 {
            nz.push((i as u32, v));
            h_abs = h_abs.max((v as i64).abs());
        }
    }

    // Per-term bound and checkpoint threshold of every P-against-h chain on
    // the pre-update P. `limit > 0` means terms provably never clamp; the
    // chains themselves are verified at runtime every CHUNK terms.
    let limit = chain_limit(term_bound(*p_abs, h_abs, FRAC));

    // ph = P·hᵀ and hp = h·P in ONE pass over P's rows — each streamed row
    // feeds both its own dot chain (ph[r], ascending accumulation) and, when
    // `h[r] != 0`, a saxpy into hp (i-k-j form: rows in ascending order, so
    // per hp element the terms arrive in the reference order). ph runs four
    // rows at a time: four independent add chains hide the add latency, and
    // each block tries the checked fast chain and re-runs exactly on a
    // violation. The fast hp accumulation uses plain i32 adds — sound
    // because each element gains at most CHUNK bounded terms between
    // checkpoints, so no partial sum can overflow before its check — and
    // bails out to the exact form on the first checkpoint violation.
    let mut hp_ok = limit > 0;
    hp.fill(0);
    // Nonzero rows folded into hp since its last checkpoint scan. The scan
    // fires once the count *could* reach CHUNK after the next 4-row block
    // (threshold CHUNK − 3), keeping the per-element drift between scans at
    // most CHUNK terms — the budget `chain_limit` reserves.
    let mut hp_pending = 0usize;
    let mut r = 0;
    while r + 4 <= nh {
        let (p0, rest) = p[r * nh..(r + 4) * nh].split_at(nh);
        let (p1, rest) = rest.split_at(nh);
        let (p2, p3) = rest.split_at(nh);
        let rows = [p0, p1, p2, p3];
        match (limit > 0)
            .then(|| fast_dot4::<FRAC>(rows, nz, limit))
            .flatten()
        {
            Some(acc) => {
                ph[r..r + 4].copy_from_slice(&acc);
                stats.fast_blocks += 1;
            }
            None => {
                for (i, row) in rows.iter().enumerate() {
                    ph[r + i] = exact_dot::<FRAC>(row, nz);
                }
                stats.fallback_blocks += 1;
            }
        }
        if hp_ok {
            let hw = [
                h[r] as i64,
                h[r + 1] as i64,
                h[r + 2] as i64,
                h[r + 3] as i64,
            ];
            if hw.iter().all(|&v| v != 0) {
                // All four rows contribute: one column sweep folds all four
                // terms per hp element (ascending row order per element —
                // the reference accumulation order).
                for ((((o, &v0), &v1), &v2), &v3) in hp
                    .iter_mut()
                    .zip(p0.iter())
                    .zip(p1.iter())
                    .zip(p2.iter())
                    .zip(p3.iter())
                {
                    *o += ((hw[0] * v0 as i64) >> FRAC) as i32;
                    *o += ((hw[1] * v1 as i64) >> FRAC) as i32;
                    *o += ((hw[2] * v2 as i64) >> FRAC) as i32;
                    *o += ((hw[3] * v3 as i64) >> FRAC) as i32;
                }
                hp_pending += 4;
            } else {
                for (i, row) in rows.iter().enumerate() {
                    if hw[i] != 0 {
                        for (o, &pv) in hp.iter_mut().zip(row.iter()) {
                            *o += ((hw[i] * pv as i64) >> FRAC) as i32;
                        }
                        hp_pending += 1;
                    }
                }
            }
            if hp_pending >= CHUNK - 3 {
                hp_pending = 0;
                hp_ok = hp.iter().all(|&v| (v as i64).abs() <= limit);
            }
        }
        r += 4;
    }
    while r < nh {
        let p_row = &p[r * nh..(r + 1) * nh];
        match (limit > 0)
            .then(|| fast_dot1::<FRAC>(p_row, nz, limit))
            .flatten()
        {
            Some(v) => {
                ph[r] = v;
                stats.fast_blocks += 1;
            }
            None => {
                ph[r] = exact_dot::<FRAC>(p_row, nz);
                stats.fallback_blocks += 1;
            }
        }
        if hp_ok && h[r] != 0 {
            let hw = h[r] as i64;
            for (o, &pv) in hp.iter_mut().zip(p_row.iter()) {
                *o += ((hw * pv as i64) >> FRAC) as i32;
            }
            hp_pending += 1;
            if hp_pending >= CHUNK - 3 {
                hp_pending = 0;
                hp_ok = hp.iter().all(|&v| (v as i64).abs() <= limit);
            }
        }
        r += 1;
    }
    // The trailing partial window still needs its checkpoint — a saturation
    // in the final rows must not slip through unverified.
    if hp_ok && hp_pending > 0 {
        hp_ok = hp.iter().all(|&v| (v as i64).abs() <= limit);
    }
    if !hp_ok {
        hp.fill(0);
        for &(c, hv) in nz.iter() {
            let r = c as usize;
            let p_row = &p[r * nh..(r + 1) * nh];
            for (o, &pv) in hp.iter_mut().zip(p_row.iter()) {
                *o = q_add(*o, q_mul::<FRAC>(hv, pv));
            }
        }
        stats.fallback_blocks += 1;
    } else {
        stats.fast_blocks += 1;
    }
    // denom = 1 + h·P·hᵀ, inv = 1/denom — O(Ñ), always exact.
    let mut denom = q_one::<FRAC>();
    for &(c, hv) in nz.iter() {
        denom = q_add(denom, q_mul::<FRAC>(hv, ph[c as usize]));
    }
    let inv_denom = q_div::<FRAC>(q_one::<FRAC>(), denom);

    // pred = h·β with the pre-update β (the residual's forward pass).
    pred.fill(0);
    for &(c, hv) in nz.iter() {
        let r = c as usize;
        let b_row = &beta[r * m..(r + 1) * m];
        for (o, &bv) in pred.iter_mut().zip(b_row.iter()) {
            *o = q_add(*o, q_mul::<FRAC>(hv, bv));
        }
    }

    // Per-row downdate scales (exact), plus the exact max|scale| and
    // max|hp| that bound the downdate terms.
    let mut scale_abs = 0i64;
    for (s, &phv) in scale.iter_mut().zip(ph.iter()) {
        *s = q_mul::<FRAC>(phv, inv_denom);
        scale_abs = scale_abs.max((*s as i64).abs());
    }
    let hp_abs = hp.iter().map(|&v| (v as i64).abs()).max().unwrap_or(0);

    // Downdate-term bound and the post-downdate |P| bound it implies (valid
    // on the exact path too — saturation only pulls values back into
    // range). The downdate is fully static-guarded: when every element's
    // magnitude after subtraction provably fits, the saturating subtract is
    // an identity. The post-update ph_new chains get their own checkpoint
    // threshold from the loosened bound.
    let t_down = term_bound(scale_abs, hp_abs, FRAC);
    let down_fast = (*p_abs).saturating_add(t_down) <= i32::MAX as i64;
    let p_abs_after = (*p_abs).saturating_add(t_down).min(1i64 << 31);
    let limit_after = chain_limit(term_bound(p_abs_after, h_abs, FRAC));
    *p_abs = p_abs_after;

    // Fused P downdate + post-update P·hᵀ + β update, one pass over P's
    // rows, four rows at a time. Per element the downdate
    // (`P[r][c] ⊖= scale·hp[c]`) is independent work that overlaps the
    // latency-bound `ph_new` chains; a zero `scale` downdates by an exact 0
    // and a zero `h[c]` adds an exact 0 to the chain, so the branchless
    // block is value-identical to the skipping single-row form below.
    //
    // When the downdate is static-guarded AND `h` is mostly dense, the two
    // loops collapse into one column sweep: each downdated value feeds the
    // `ph_new` chain straight from its register. The chain then spans *all*
    // columns — a zero `h[c]` contributes a plain `+0`, which neither
    // changes the running values nor the checkpoint peaks, so soundness and
    // bit-exactness are untouched. On a checkpoint violation the rows are
    // already (correctly) downdated and only the dots re-run exactly.
    let dense_fast = down_fast && limit_after > 0 && nz.len() * 4 >= nh * 3;
    let mut r = 0;
    while r + 4 <= nh {
        let (p0, rest) = p[r * nh..(r + 4) * nh].split_at_mut(nh);
        let (p1, rest) = rest.split_at_mut(nh);
        let (p2, p3) = rest.split_at_mut(nh);
        if dense_fast {
            let s = [
                scale[r] as i64,
                scale[r + 1] as i64,
                scale[r + 2] as i64,
                scale[r + 3] as i64,
            ];
            let mut acc = [0i64; 4];
            let mut peak = 0i64;
            let mut c = 0;
            while c < nh {
                let end = (c + CHUNK).min(nh);
                for j in c..end {
                    let w = hp[j] as i64;
                    let hc = h[j] as i64;
                    let v0 = p0[j] - (((s[0] * w) >> FRAC) as i32);
                    let v1 = p1[j] - (((s[1] * w) >> FRAC) as i32);
                    let v2 = p2[j] - (((s[2] * w) >> FRAC) as i32);
                    let v3 = p3[j] - (((s[3] * w) >> FRAC) as i32);
                    p0[j] = v0;
                    p1[j] = v1;
                    p2[j] = v2;
                    p3[j] = v3;
                    acc[0] += (v0 as i64 * hc) >> FRAC;
                    acc[1] += (v1 as i64 * hc) >> FRAC;
                    acc[2] += (v2 as i64 * hc) >> FRAC;
                    acc[3] += (v3 as i64 * hc) >> FRAC;
                }
                for &a in &acc {
                    peak = peak.max(a.abs());
                }
                c = end;
            }
            let accs: [i32; 4] = if peak <= limit_after {
                stats.fast_blocks += 1;
                [acc[0] as i32, acc[1] as i32, acc[2] as i32, acc[3] as i32]
            } else {
                stats.fallback_blocks += 1;
                [
                    exact_dot::<FRAC>(p0, nz),
                    exact_dot::<FRAC>(p1, nz),
                    exact_dot::<FRAC>(p2, nz),
                    exact_dot::<FRAC>(p3, nz),
                ]
            };
            for (i, &ph_new_r) in accs.iter().enumerate() {
                ph[r + i] = ph_new_r;
                let b_row = &mut beta[(r + i) * m..(r + i + 1) * m];
                for ((bv, &tv), &pv) in b_row.iter_mut().zip(target.iter()).zip(pred.iter()) {
                    *bv = q_add(*bv, q_mul::<FRAC>(ph_new_r, q_sub(tv, pv)));
                }
            }
            r += 4;
            continue;
        }
        if down_fast {
            let s = [
                scale[r] as i64,
                scale[r + 1] as i64,
                scale[r + 2] as i64,
                scale[r + 3] as i64,
            ];
            for ((((&hpv, v0), v1), v2), v3) in hp
                .iter()
                .zip(p0.iter_mut())
                .zip(p1.iter_mut())
                .zip(p2.iter_mut())
                .zip(p3.iter_mut())
            {
                let w = hpv as i64;
                *v0 -= ((s[0] * w) >> FRAC) as i32;
                *v1 -= ((s[1] * w) >> FRAC) as i32;
                *v2 -= ((s[2] * w) >> FRAC) as i32;
                *v3 -= ((s[3] * w) >> FRAC) as i32;
            }
        } else {
            let s = [scale[r], scale[r + 1], scale[r + 2], scale[r + 3]];
            for ((((&hpv, v0), v1), v2), v3) in hp
                .iter()
                .zip(p0.iter_mut())
                .zip(p1.iter_mut())
                .zip(p2.iter_mut())
                .zip(p3.iter_mut())
            {
                *v0 = q_sub(*v0, q_mul::<FRAC>(s[0], hpv));
                *v1 = q_sub(*v1, q_mul::<FRAC>(s[1], hpv));
                *v2 = q_sub(*v2, q_mul::<FRAC>(s[2], hpv));
                *v3 = q_sub(*v3, q_mul::<FRAC>(s[3], hpv));
            }
        }
        // The four rows are final: ph_new over their nonzero-h support
        // equals a full second P·hᵀ pass over the downdated rows.
        let rows = [&*p0, &*p1, &*p2, &*p3];
        let acc = match (limit_after > 0)
            .then(|| fast_dot4::<FRAC>(rows, nz, limit_after))
            .flatten()
        {
            Some(acc) => {
                stats.fast_blocks += 1;
                acc
            }
            None => {
                stats.fallback_blocks += 1;
                [
                    exact_dot::<FRAC>(rows[0], nz),
                    exact_dot::<FRAC>(rows[1], nz),
                    exact_dot::<FRAC>(rows[2], nz),
                    exact_dot::<FRAC>(rows[3], nz),
                ]
            }
        };
        for (i, &ph_new_r) in acc.iter().enumerate() {
            ph[r + i] = ph_new_r;
            let b_row = &mut beta[(r + i) * m..(r + i + 1) * m];
            for ((bv, &tv), &pv) in b_row.iter_mut().zip(target.iter()).zip(pred.iter()) {
                *bv = q_add(*bv, q_mul::<FRAC>(ph_new_r, q_sub(tv, pv)));
            }
        }
        r += 4;
    }
    while r < nh {
        let s = scale[r];
        let p_row = &mut p[r * nh..(r + 1) * nh];
        if dense_fast {
            let sw = s as i64;
            let mut acc = 0i64;
            let mut peak = 0i64;
            let mut c = 0;
            while c < nh {
                let end = (c + CHUNK).min(nh);
                for j in c..end {
                    let v = p_row[j] - (((sw * hp[j] as i64) >> FRAC) as i32);
                    p_row[j] = v;
                    acc += (v as i64 * h[j] as i64) >> FRAC;
                }
                peak = peak.max(acc.abs());
                c = end;
            }
            let ph_new_r = if peak <= limit_after {
                stats.fast_blocks += 1;
                acc as i32
            } else {
                stats.fallback_blocks += 1;
                exact_dot::<FRAC>(p_row, nz)
            };
            ph[r] = ph_new_r;
            let b_row = &mut beta[r * m..(r + 1) * m];
            for ((bv, &tv), &pv) in b_row.iter_mut().zip(target.iter()).zip(pred.iter()) {
                *bv = q_add(*bv, q_mul::<FRAC>(ph_new_r, q_sub(tv, pv)));
            }
            r += 1;
            continue;
        }
        if down_fast {
            let sw = s as i64;
            for (pv, &hpv) in p_row.iter_mut().zip(hp.iter()) {
                *pv -= ((sw * hpv as i64) >> FRAC) as i32;
            }
        } else if s != 0 {
            for (pv, &hpv) in p_row.iter_mut().zip(hp.iter()) {
                *pv = q_sub(*pv, q_mul::<FRAC>(s, hpv));
            }
        }
        // Row r of P is final: ph_new[r] equals a full second P·hᵀ pass.
        let ph_new_r = match (limit_after > 0)
            .then(|| fast_dot1::<FRAC>(p_row, nz, limit_after))
            .flatten()
        {
            Some(v) => {
                stats.fast_blocks += 1;
                v
            }
            None => {
                stats.fallback_blocks += 1;
                exact_dot::<FRAC>(p_row, nz)
            }
        };
        ph[r] = ph_new_r;
        let b_row = &mut beta[r * m..(r + 1) * m];
        for ((bv, &tv), &pv) in b_row.iter_mut().zip(target.iter()).zip(pred.iter()) {
            *bv = q_add(*bv, q_mul::<FRAC>(ph_new_r, q_sub(tv, pv)));
        }
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Q20;

    #[test]
    fn scalar_helpers_match_fixed_ops() {
        let pairs = [
            (3 << 20, 5 << 19),
            (i32::MAX, 2 << 20),
            (i32::MIN, 3),
            (-7, 0),
            (0, 0),
            (1 << 20, -(1 << 20)),
        ];
        for &(a, b) in &pairs {
            let (fa, fb) = (Q20::from_raw(a), Q20::from_raw(b));
            assert_eq!(q_mul::<20>(a, b), fa.saturating_mul(fb).to_raw());
            assert_eq!(q_add(a, b), fa.saturating_add(fb).to_raw());
            assert_eq!(q_sub(a, b), fa.saturating_sub(fb).to_raw());
            assert_eq!(q_div::<20>(a, b), fa.saturating_div(fb).to_raw());
        }
        assert_eq!(q_one::<20>(), Q20::ONE.to_raw());
    }

    #[test]
    fn matmul_q_small_known_product() {
        // [[1, 2], [3, 4]] · [[5, 6], [7, 8]] = [[19, 22], [43, 50]] in Q20.
        let one = q_one::<20>();
        let a: Vec<i32> = [1, 2, 3, 4].iter().map(|&v| v * one).collect();
        let b: Vec<i32> = [5, 6, 7, 8].iter().map(|&v| v * one).collect();
        let mut out = vec![0i32; 4];
        matmul_q_into::<20>(2, 2, 2, &a, &b, &mut out);
        let expected: Vec<i32> = [19, 22, 43, 50].iter().map(|&v| v * one).collect();
        assert_eq!(out, expected);
        let mut packed = vec![0i32; 4];
        let mut pack = Vec::new();
        matmul_packed_q_into::<20>(2, 2, 2, &a, &b, &mut pack, &mut packed);
        assert_eq!(packed, expected);
        // matmul_t against b pre-transposed: bᵀ rows are b's columns.
        let bt: Vec<i32> = [5, 7, 6, 8].iter().map(|&v| v * one).collect();
        let mut t_out = vec![0i32; 4];
        matmul_t_q_into::<20>(2, 2, 2, &a, &bt, &mut t_out);
        assert_eq!(t_out, expected);
    }

    #[test]
    fn bias_relu_clamps_negative_preactivations() {
        let one = q_one::<20>();
        let bias = vec![-2 * one, one];
        let mut data = vec![one, one, 3 * one, -2 * one];
        bias_relu_q_into(2, 2, &bias, &mut data);
        assert_eq!(data, vec![0, 2 * one, one, 0]);
    }
}
