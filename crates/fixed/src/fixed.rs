//! The [`Fixed`] Q-format fixed-point type.
//!
//! `Fixed<FRAC>` stores a real number as a signed 32-bit integer with `FRAC`
//! fractional bits (two's complement, so the representable range is
//! `[-2^(31-FRAC), 2^(31-FRAC) - 2^-FRAC]`). All arithmetic **saturates** on
//! overflow instead of wrapping: the HDL core the paper describes clamps its
//! accumulators, and saturation is also the behaviour that keeps Q-learning
//! targets meaningful after the paper's `[-1, 1]` clipping.
//!
//! Multiplication and division go through 64-bit intermediates, exactly as a
//! DSP48-based multiplier followed by a shift would behave.

use elmrl_linalg::Scalar;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A signed 32-bit fixed-point number with `FRAC` fractional bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fixed<const FRAC: u32> {
    raw: i32,
}

/// 32-bit Q8 (8 fractional bits) — coarse, used only in the precision ablation.
pub type Q8 = Fixed<8>;
/// 32-bit Q16 (16 fractional bits) — precision-ablation point.
pub type Q16 = Fixed<16>;
/// 32-bit Q20 (20 fractional bits) — the format the paper's FPGA core uses.
pub type Q20 = Fixed<20>;
/// 32-bit Q24 (24 fractional bits) — precision-ablation point.
pub type Q24 = Fixed<24>;

impl<const FRAC: u32> Fixed<FRAC> {
    /// Scale factor `2^FRAC` as `f64`.
    pub const SCALE: f64 = (1u64 << FRAC) as f64;
    /// Smallest representable increment (one least-significant bit).
    pub const RESOLUTION: f64 = 1.0 / Self::SCALE;

    /// The maximum representable value.
    pub const MAX: Self = Self { raw: i32::MAX };
    /// The minimum representable value.
    pub const MIN: Self = Self { raw: i32::MIN };
    /// Zero.
    pub const ZERO: Self = Self { raw: 0 };
    /// One.
    pub const ONE: Self = Self { raw: 1i32 << FRAC };

    /// Construct from a raw two's-complement bit pattern.
    #[inline]
    pub const fn from_raw(raw: i32) -> Self {
        Self { raw }
    }

    /// The raw two's-complement bit pattern.
    #[inline]
    pub const fn to_raw(self) -> i32 {
        self.raw
    }

    /// Convert from `f64`, rounding to nearest and saturating out-of-range
    /// values (including NaN, which maps to zero — hardware has no NaN).
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        if v.is_nan() {
            return Self::ZERO;
        }
        let scaled = (v * Self::SCALE).round();
        if scaled >= i32::MAX as f64 {
            Self::MAX
        } else if scaled <= i32::MIN as f64 {
            Self::MIN
        } else {
            Self { raw: scaled as i32 }
        }
    }

    /// Convert to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / Self::SCALE
    }

    /// Convert from `f32` (via `f64`).
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        Self::from_f64(v as f64)
    }

    /// Convert to `f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self {
            raw: self.raw.saturating_add(rhs.raw),
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self {
            raw: self.raw.saturating_sub(rhs.raw),
        }
    }

    /// Saturating multiplication (64-bit intermediate, arithmetic shift).
    #[inline]
    pub fn saturating_mul(self, rhs: Self) -> Self {
        let wide = (self.raw as i64) * (rhs.raw as i64);
        let shifted = wide >> FRAC;
        Self {
            raw: clamp_i64(shifted),
        }
    }

    /// Saturating division (64-bit intermediate). Division by zero saturates
    /// to `MAX`/`MIN` depending on the sign of the dividend (zero / zero → 0),
    /// mirroring a guarded hardware divider rather than panicking.
    #[inline]
    pub fn saturating_div(self, rhs: Self) -> Self {
        if rhs.raw == 0 {
            return if self.raw > 0 {
                Self::MAX
            } else if self.raw < 0 {
                Self::MIN
            } else {
                Self::ZERO
            };
        }
        let wide = ((self.raw as i64) << FRAC) / (rhs.raw as i64);
        Self {
            raw: clamp_i64(wide),
        }
    }

    /// Absolute value (saturating: `|MIN|` becomes `MAX`).
    #[inline]
    pub fn abs(self) -> Self {
        if self.raw == i32::MIN {
            Self::MAX
        } else {
            Self {
                raw: self.raw.abs(),
            }
        }
    }

    /// Non-negative integer-Newton square root; returns zero for negative
    /// inputs (matching the [`Scalar`] contract).
    pub fn sqrt(self) -> Self {
        if self.raw <= 0 {
            return Self::ZERO;
        }
        // Work on the wide value v = raw << FRAC so that sqrt(v) is the raw
        // representation of the square root.
        let v = (self.raw as i64) << FRAC;
        let mut x = v;
        let mut last = 0i64;
        // Newton iterations on integers converge in well under 64 steps.
        for _ in 0..64 {
            if x == last || x == 0 {
                break;
            }
            last = x;
            x = (x + v / x) >> 1;
        }
        Self { raw: clamp_i64(x) }
    }

    /// `true` when the value equals the saturation bound (useful for
    /// diagnosing overflow in the FPGA simulator).
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.raw == i32::MAX || self.raw == i32::MIN
    }

    /// Number of fractional bits in this format.
    #[inline]
    pub const fn frac_bits() -> u32 {
        FRAC
    }

    /// Number of integer (non-sign) bits in this format.
    #[inline]
    pub const fn int_bits() -> u32 {
        31 - FRAC
    }

    /// Largest finite value representable, as `f64`.
    pub fn max_value_f64() -> f64 {
        Self::MAX.to_f64()
    }

    /// Round-trip quantisation of an `f64` through this format.
    pub fn quantize(v: f64) -> f64 {
        Self::from_f64(v).to_f64()
    }
}

#[inline]
fn clamp_i64(v: i64) -> i32 {
    if v > i32::MAX as i64 {
        i32::MAX
    } else if v < i32::MIN as i64 {
        i32::MIN
    } else {
        v as i32
    }
}

impl<const FRAC: u32> Add for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const FRAC: u32> Sub for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const FRAC: u32> Mul for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.saturating_mul(rhs)
    }
}

impl<const FRAC: u32> Div for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.saturating_div(rhs)
    }
}

impl<const FRAC: u32> Neg for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            raw: self.raw.checked_neg().unwrap_or(i32::MAX),
        }
    }
}

impl<const FRAC: u32> AddAssign for Fixed<FRAC> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> SubAssign for Fixed<FRAC> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const FRAC: u32> MulAssign for Fixed<FRAC> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const FRAC: u32> DivAssign for Fixed<FRAC> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<const FRAC: u32> fmt::Debug for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}({})", FRAC, self.to_f64())
    }
}

impl<const FRAC: u32> fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl<const FRAC: u32> Default for Fixed<FRAC> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const FRAC: u32> From<f64> for Fixed<FRAC> {
    fn from(v: f64) -> Self {
        Self::from_f64(v)
    }
}

impl<const FRAC: u32> From<Fixed<FRAC>> for f64 {
    fn from(v: Fixed<FRAC>) -> f64 {
        v.to_f64()
    }
}

impl<const FRAC: u32> Scalar for Fixed<FRAC> {
    #[inline]
    fn zero() -> Self {
        Self::ZERO
    }
    #[inline]
    fn one() -> Self {
        Self::ONE
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        Fixed::from_f64(v)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        Fixed::to_f64(self)
    }
    #[inline]
    fn abs(self) -> Self {
        Fixed::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Fixed::sqrt(self)
    }
    #[inline]
    fn epsilon() -> Self {
        // A handful of LSBs: pivot/convergence threshold for decompositions.
        Self::from_raw(4)
    }
    #[inline]
    fn is_nan(self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q20_resolution_and_range() {
        assert_eq!(Q20::frac_bits(), 20);
        assert_eq!(Q20::int_bits(), 11);
        assert!((Q20::RESOLUTION - 1.0 / 1048576.0).abs() < 1e-15);
        // max ≈ 2047.99...; the paper's Q-values live well inside this.
        assert!(Q20::max_value_f64() > 2047.0 && Q20::max_value_f64() < 2048.0);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_lsb() {
        for &v in &[0.0, 1.0, -1.0, 0.333333, -123.456, 2000.0, -2000.0] {
            let q = Q20::from_f64(v);
            assert!((q.to_f64() - v).abs() <= Q20::RESOLUTION, "v = {v}");
        }
    }

    #[test]
    fn out_of_range_saturates() {
        assert_eq!(Q20::from_f64(1e9), Q20::MAX);
        assert_eq!(Q20::from_f64(-1e9), Q20::MIN);
        assert_eq!(Q20::from_f64(f64::NAN), Q20::ZERO);
        assert!(Q20::from_f64(1e9).is_saturated());
        assert!(!Q20::from_f64(1.0).is_saturated());
    }

    #[test]
    fn basic_arithmetic() {
        let a = Q20::from_f64(1.5);
        let b = Q20::from_f64(-0.25);
        assert!(((a + b).to_f64() - 1.25).abs() < 1e-5);
        assert!(((a - b).to_f64() - 1.75).abs() < 1e-5);
        assert!(((a * b).to_f64() + 0.375).abs() < 1e-5);
        assert!(((a / b).to_f64() + 6.0).abs() < 1e-4);
        assert!(((-a).to_f64() + 1.5).abs() < 1e-6);
        assert_eq!(a.abs(), a);
        assert_eq!(b.abs().to_f64(), 0.25);
    }

    #[test]
    fn assign_operators() {
        let mut x = Q20::from_f64(2.0);
        x += Q20::from_f64(1.0);
        assert!((x.to_f64() - 3.0).abs() < 1e-5);
        x -= Q20::from_f64(0.5);
        assert!((x.to_f64() - 2.5).abs() < 1e-5);
        x *= Q20::from_f64(2.0);
        assert!((x.to_f64() - 5.0).abs() < 1e-5);
        x /= Q20::from_f64(4.0);
        assert!((x.to_f64() - 1.25).abs() < 1e-5);
    }

    #[test]
    fn overflow_saturates_instead_of_wrapping() {
        let big = Q20::from_f64(2000.0);
        assert_eq!(big + big, Q20::MAX);
        assert_eq!(-big - big, Q20::MIN);
        assert_eq!(big * big, Q20::MAX);
        assert_eq!((-big) * big, Q20::MIN);
    }

    #[test]
    fn division_by_zero_saturates() {
        let one = Q20::ONE;
        assert_eq!(one / Q20::ZERO, Q20::MAX);
        assert_eq!((-one) / Q20::ZERO, Q20::MIN);
        assert_eq!(Q20::ZERO / Q20::ZERO, Q20::ZERO);
    }

    #[test]
    fn sqrt_matches_float_within_resolution() {
        for &v in &[0.25, 1.0, 2.0, 100.0, 1500.0, 1e-4] {
            let got = Q20::from_f64(v).sqrt().to_f64();
            assert!(
                (got - v.sqrt()).abs() < 1e-3,
                "sqrt({v}) = {got}, expected {}",
                v.sqrt()
            );
        }
        assert_eq!(Q20::from_f64(-4.0).sqrt(), Q20::ZERO);
        assert_eq!(Q20::ZERO.sqrt(), Q20::ZERO);
    }

    #[test]
    fn scalar_trait_contract() {
        assert_eq!(<Q20 as Scalar>::zero(), Q20::ZERO);
        assert_eq!(<Q20 as Scalar>::one(), Q20::ONE);
        assert!(!<Q20 as Scalar>::is_nan(Q20::ONE));
        let recip = Scalar::recip(Q20::from_f64(4.0));
        assert!((recip.to_f64() - 0.25).abs() < 1e-5);
        let clamped = Q20::from_f64(5.0).clamp_val(Q20::from_f64(-1.0), Q20::ONE);
        assert_eq!(clamped, Q20::ONE);
    }

    #[test]
    fn different_formats_have_different_resolution() {
        let resolutions = [
            Q8::RESOLUTION,
            Q16::RESOLUTION,
            Q20::RESOLUTION,
            Q24::RESOLUTION,
        ];
        assert!(resolutions.windows(2).all(|w| w[0] > w[1]));
        // Coarser format, larger range:
        assert!(Q8::max_value_f64() > Q20::max_value_f64());
        assert!(Q20::max_value_f64() > Q24::max_value_f64());
    }

    #[test]
    fn matrix_of_fixed_works_through_linalg() {
        use elmrl_linalg::Matrix;
        let a = Matrix::<Q20>::from_rows(&[
            vec![Q20::from_f64(2.0), Q20::from_f64(0.0)],
            vec![Q20::from_f64(0.0), Q20::from_f64(0.5)],
        ]);
        let b = a.matmul(&a);
        assert!((b[(0, 0)].to_f64() - 4.0).abs() < 1e-4);
        assert!((b[(1, 1)].to_f64() - 0.25).abs() < 1e-4);
        let inv = elmrl_linalg::solve::inverse(&a).unwrap();
        assert!((inv[(0, 0)].to_f64() - 0.5).abs() < 1e-4);
        assert!((inv[(1, 1)].to_f64() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn ordering_and_default() {
        assert!(Q20::from_f64(1.0) > Q20::from_f64(0.5));
        assert!(Q20::from_f64(-1.0) < Q20::ZERO);
        assert_eq!(Q20::default(), Q20::ZERO);
        let via_from: Q20 = 1.5f64.into();
        let back: f64 = via_from.into();
        assert!((back - 1.5).abs() < 1e-5);
    }

    #[test]
    fn raw_round_trip() {
        let x = Q20::from_raw(123456);
        assert_eq!(x.to_raw(), 123456);
        assert_eq!(Q20::from_raw(x.to_raw()), x);
    }

    #[test]
    fn quantize_helper() {
        let q = Q20::quantize(0.1234567891);
        assert!((q - 0.1234567891).abs() <= Q20::RESOLUTION);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!(-Q20::MIN, Q20::MAX);
        assert_eq!(Q20::MIN.abs(), Q20::MAX);
    }
}
