//! Property test: batched Q inference matches per-sample prediction **bit
//! for bit** for all three trainable networks.
//!
//! The guarantee the population engine relies on: running an agent through
//! `BatchAgent::predict_batch` (one stacked matmul) is observationally
//! identical to the scalar `Agent::q_values` loop, so batched and scalar
//! execution can be swapped freely without perturbing any seeded experiment.

use elmrl_core::batch::BatchAgent;
use elmrl_core::dqn::{DqnAgent, DqnConfig};
use elmrl_core::elm_qnet::{ElmQNet, ElmQNetConfig};
use elmrl_core::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
use elmrl_core::{Agent, Observation};
use elmrl_gym::Workload;
use elmrl_linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const HIDDEN: usize = 8;

/// Random states in the post-normalisation range of the workloads.
fn random_states(rng: &mut SmallRng, batch: usize, dim: usize) -> Matrix<f64> {
    Matrix::from_fn(batch, dim, |_, _| rng.gen_range(-1.0..1.0))
}

/// Drive `count` distinct transitions into the agent so its β/weights are
/// non-trivial (an untrained network would pass the equality vacuously).
fn train_a_little(agent: &mut dyn Agent, rng: &mut SmallRng, dim: usize, actions: usize) {
    for i in 0..(HIDDEN + 70) {
        let state: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let next: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let done = i % 7 == 0;
        agent.observe(
            &Observation {
                state,
                action: i % actions,
                reward: if done { -1.0 } else { 0.0 },
                next_state: next,
                done,
                truncated: false,
            },
            rng,
        );
    }
}

/// `predict_batch` must equal the row-by-row `q_values` loop exactly.
fn assert_bitwise_batch_equality<A: BatchAgent + ?Sized>(
    agent: &mut A,
    states: &Matrix<f64>,
) -> Result<(), TestCaseError> {
    let batched = agent.predict_batch(states);
    prop_assert_eq!(batched.rows(), states.rows());
    for i in 0..states.rows() {
        let scalar = agent.q_values(states.row(i));
        prop_assert_eq!(batched.row(i), scalar.as_slice());
    }
    // Nothing may be approximate: a second batched pass is identical too.
    let again = agent.predict_batch(states);
    prop_assert_eq!(batched, again);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn elm_qnet_batched_equals_per_sample(seed in 0u64..500, batch in 1usize..12) {
        let spec = Workload::CartPole.spec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut agent = ElmQNet::new(ElmQNetConfig::for_workload(&spec, HIDDEN), &mut rng);
        train_a_little(&mut agent, &mut rng, spec.observation_dim, spec.num_actions);
        assert!(agent.is_trained());
        let states = random_states(&mut rng, batch, spec.observation_dim);
        assert_bitwise_batch_equality(&mut agent, &states)?;
    }

    #[test]
    fn oselm_qnet_batched_equals_per_sample(seed in 0u64..500, batch in 1usize..12) {
        // Cover both spectral-normalised and plain variants via the seed.
        let spectral = seed % 2 == 0;
        let spec = Workload::MountainCar.spec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut agent = OsElmQNet::new(
            OsElmQNetConfig::for_workload(&spec, HIDDEN, 0.5, spectral),
            &mut rng,
        );
        train_a_little(&mut agent, &mut rng, spec.observation_dim, spec.num_actions);
        assert!(agent.is_initialized());
        let states = random_states(&mut rng, batch, spec.observation_dim);
        assert_bitwise_batch_equality(&mut agent, &states)?;
    }

    #[test]
    fn dqn_batched_equals_per_sample(seed in 0u64..500, batch in 1usize..12) {
        let spec = Workload::Pendulum.spec();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut agent = DqnAgent::new(DqnConfig::for_workload(&spec, HIDDEN), &mut rng);
        train_a_little(&mut agent, &mut rng, spec.observation_dim, spec.num_actions);
        let states = random_states(&mut rng, batch, spec.observation_dim);
        assert_bitwise_batch_equality(&mut agent, &states)?;
    }

    #[test]
    fn boxed_batch_agents_also_match(seed in 0u64..200, batch in 1usize..8) {
        // The population engine holds `Box<dyn BatchAgent>`; the dynamic
        // dispatch path must preserve the equality too.
        use elmrl_core::designs::{Design, DesignConfig};
        let spec = Workload::Acrobot.spec();
        let config = DesignConfig::for_workload(&spec, HIDDEN);
        let mut rng = SmallRng::seed_from_u64(seed);
        let design = Design::software_designs()[(seed % 6) as usize];
        let mut agent = design.build_batch(&config, &mut rng);
        train_a_little(agent.as_mut(), &mut rng, spec.observation_dim, spec.num_actions);
        let states = random_states(&mut rng, batch, spec.observation_dim);
        assert_bitwise_batch_equality(agent.as_mut(), &states)?;
    }
}
