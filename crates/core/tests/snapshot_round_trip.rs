//! Snapshot round-trip property: for every software design, an agent
//! restored from `restore(save(x))` — with the snapshot dragged through its
//! JSON wire format — drives an act/observe trajectory identical to the
//! original for 64 steps, starting from any warmed-up state.
//!
//! This is the agent-level half of the PR 6 checkpointing contract (the
//! trainer-level half — full runs resumed bit-for-bit — lives in
//! `trainer::tests`; the fixed-point `FpgaAgent` variant lives in
//! `elmrl-fpga`). The trajectory comparison is strict equality on actions
//! and rewards: one diverging ε-draw, replay sample or Q-value flips it.

use elmrl_core::agent::{Agent, Observation};
use elmrl_core::checkpoint::{rng_from_words, rng_state_words, AgentSnapshot};
use elmrl_core::designs::{Design, DesignConfig};
use elmrl_gym::{Environment, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const WARMUP_STEPS: usize = 40;
const COMPARE_STEPS: usize = 64;

/// Drive `steps` act/observe steps (episodes reset inline), returning the
/// `(action, reward)` trace.
fn drive(
    agent: &mut dyn Agent,
    env: &mut dyn Environment,
    rng: &mut SmallRng,
    steps: usize,
    episode: &mut usize,
) -> Vec<(usize, f64)> {
    let mut trace = Vec::with_capacity(steps);
    let mut state = env.reset(rng);
    for _ in 0..steps {
        let action = agent.act(&state, rng);
        let outcome = env.step(action, rng);
        agent.observe(
            &Observation {
                state: state.clone(),
                action,
                reward: outcome.reward,
                next_state: outcome.observation.clone(),
                done: outcome.done,
                truncated: outcome.truncated,
            },
            rng,
        );
        trace.push((action, outcome.reward));
        if outcome.done || outcome.truncated {
            agent.end_episode(*episode);
            *episode += 1;
            state = env.reset(rng);
        } else {
            state = outcome.observation;
        }
    }
    trace
}

/// Warm an agent up, snapshot it through JSON, restore into a *differently
/// constructed* agent, and check both replay the same 64 steps.
fn assert_round_trip_trajectory(design: Design, seed: u64) {
    let spec = Workload::CartPole.spec();
    let config = DesignConfig::for_workload(&spec, 8);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut agent = design.build(&config, &mut rng);
    let mut env = spec.make_env();
    let mut episode = 0;
    drive(
        agent.as_mut(),
        env.as_mut(),
        &mut rng,
        WARMUP_STEPS,
        &mut episode,
    );

    // Snapshot the agent and the RNG cursor, through the JSON wire format.
    let snapshot = agent
        .snapshot()
        .unwrap_or_else(|| panic!("{design:?} must support snapshotting"));
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    let parsed: AgentSnapshot = serde_json::from_str(&json).expect("parse snapshot");
    let rng_words = rng_state_words(&rng);

    // A twin built from a different construction seed: every weight the
    // restore does not overwrite would diverge the comparison below.
    let mut twin_rng = SmallRng::seed_from_u64(seed ^ 0xdead_beef);
    let mut twin = design.build(&config, &mut twin_rng);
    twin.restore(&parsed).expect("restore snapshot");
    let mut twin_stream = rng_from_words(&rng_words).expect("restore rng");

    // Fresh environments + identical RNG cursors ⇒ identical trajectories.
    let mut env_a = spec.make_env();
    let mut env_b = spec.make_env();
    let mut episode_a = episode;
    let mut episode_b = episode;
    let trace_a = drive(
        agent.as_mut(),
        env_a.as_mut(),
        &mut rng,
        COMPARE_STEPS,
        &mut episode_a,
    );
    let trace_b = drive(
        twin.as_mut(),
        env_b.as_mut(),
        &mut twin_stream,
        COMPARE_STEPS,
        &mut episode_b,
    );
    assert_eq!(
        trace_a, trace_b,
        "{design:?} seed {seed}: restored agent diverged within 64 steps"
    );
    assert_eq!(episode_a, episode_b, "{design:?} seed {seed}");
}

#[test]
fn every_software_design_replays_identically_after_a_json_round_trip() {
    for design in Design::software_designs() {
        for seed in [3, 7, 31] {
            assert_round_trip_trajectory(design, seed);
        }
    }
}

#[test]
fn dqn_snapshot_carries_the_replay_buffer_and_optimizer_state() {
    // The DQN trajectory test above would already fail if replay sampling
    // diverged; this pins the schema. The snapshot state must contain the
    // replay history and Adam moments explicitly — a restored run samples
    // mini-batches from the same buffer the original would have.
    let spec = Workload::CartPole.spec();
    let config = DesignConfig::for_workload(&spec, 8);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut agent = Design::Dqn.build(&config, &mut rng);
    let mut env = spec.make_env();
    let mut episode = 0;
    drive(agent.as_mut(), env.as_mut(), &mut rng, 50, &mut episode);
    let snapshot = agent.snapshot().expect("DQN snapshots");
    let json = serde_json::to_string(&snapshot).unwrap();
    for field in ["replay", "optimizer", "online", "target", "ops"] {
        assert!(json.contains(field), "DQN snapshot must carry `{field}`");
    }
}

#[test]
fn rng_cursor_words_restore_mid_trajectory() {
    // The RNG stream cursor is part of the snapshotted state: words taken
    // mid-trajectory must reproduce the exact draw sequence.
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..17 {
        let _: u64 = rng.gen();
    }
    let words = rng_state_words(&rng);
    let mut restored = rng_from_words(&words).unwrap();
    for _ in 0..64 {
        assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
    }
}

#[test]
fn restore_rejects_a_snapshot_of_another_design() {
    let spec = Workload::CartPole.spec();
    let config = DesignConfig::for_workload(&spec, 8);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut dqn = Design::Dqn.build(&config, &mut rng);
    let mut oselm = Design::OsElmL2Lipschitz.build(&config, &mut rng);
    let mut env = spec.make_env();
    let mut episode = 0;
    drive(dqn.as_mut(), env.as_mut(), &mut rng, 10, &mut episode);
    let snapshot = dqn.snapshot().expect("DQN snapshots");
    let err = oselm.restore(&snapshot).unwrap_err();
    assert!(
        err.contains("DQN") || err.contains("design"),
        "mismatched-design restore must fail descriptively, got: {err}"
    );
}
