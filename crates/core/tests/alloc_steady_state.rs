//! Counting-allocator proof of the PR-4 hot-path contract: once an OS-ELM
//! Q-network has initialised and its workspaces have reached steady size,
//! a training step (`act` + `observe` with a forced sequential update)
//! performs **zero heap allocations** — no `P`/β clones, no per-action
//! encoding vectors, no forward-pass temporaries.
//!
//! The counter is scoped to the **measuring thread** through a
//! const-initialised thread-local flag: libtest's harness threads allocate
//! concurrently (event plumbing, output capture), and a process-global
//! counter would intermittently pick those up and fail the zero assert.
//! Only allocations made while this test's own thread holds the flag are
//! counted.

use elmrl_core::agent::{Agent, Observation};
use elmrl_core::checkpoint::RunCheckpoint;
use elmrl_core::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
use elmrl_core::trainer::{CheckpointCtl, Trainer, TrainerConfig};
use elmrl_gym::Workload;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serialises the tests in this file: the telemetry variant toggles the
/// process-global enabled flag, and a first-time metric registration landing
/// inside another test's measured window would be counted as an allocation.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// System allocator wrapper that counts (re)allocations made by threads
/// that have opted in via [`COUNTING`].
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Whether the current thread's allocations are being counted. The
    /// `const` initialiser guarantees first access performs no lazy-init
    /// allocation (which would recurse into the allocator).
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_measuring() {
    // `try_with`: a thread past TLS destruction must not panic inside alloc.
    let _ = COUNTING.try_with(|flag| {
        if flag.get() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// An allocator is inherently unsafe plumbing; this one only forwards to the
// system allocator and bumps a counter on opted-in threads.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_measuring();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_measuring();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_training_step_allocates_nothing() {
    let _serial = serial();
    let spec = Workload::CartPole.spec();
    let mut config = OsElmQNetConfig::for_workload(&spec, 16, 0.5, true);
    config.random_update = false; // every observe performs the RLS update
    let mut rng = SmallRng::seed_from_u64(99);
    let mut agent = OsElmQNet::new(config, &mut rng);

    // Store phase: fill buffer D with Ñ distinct samples → initial training.
    for i in 0..16 {
        let obs = Observation {
            state: vec![0.01 * i as f64, -0.02, 0.03, 0.01 * (i % 5) as f64],
            action: i % 2,
            reward: if i % 7 == 0 { -1.0 } else { 0.0 },
            next_state: vec![0.01 * i as f64 + 0.005, -0.01, 0.02, 0.01],
            done: i % 7 == 0,
            truncated: false,
        };
        agent.observe(&obs, &mut rng);
    }
    assert!(agent.is_initialized());

    // One reusable transition; the steady-state loop must not clone it.
    let obs = Observation {
        state: vec![0.02, -0.01, 0.04, 0.03],
        action: 1,
        reward: -1.0,
        next_state: vec![0.03, -0.02, 0.03, 0.02],
        done: true,
        truncated: false,
    };

    // Warm-up: let every workspace (scratch matrices, encoding buffers,
    // op-counter map nodes) reach its steady capacity.
    for _ in 0..32 {
        let action = agent.act(&obs.state, &mut rng);
        std::hint::black_box(action);
        agent.observe(&obs, &mut rng);
    }

    COUNTING.with(|flag| flag.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..256 {
        let action = agent.act(&obs.state, &mut rng);
        std::hint::black_box(action);
        agent.observe(&obs, &mut rng);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(false));

    assert_eq!(
        after - before,
        0,
        "steady-state act+observe must not allocate ({} allocations over 256 steps)",
        after - before
    );
}

#[test]
fn steady_state_batched_training_tick_allocates_nothing() {
    // The PR-5 contract: with E > 1 episode slots feeding B > 1 transitions
    // per engine tick, the agent-side batched update — gating, the packed
    // next-state matrix, the batched target-network forward, and the
    // batch-B RLS chunk through `seq_train_batch` — is also allocation-free
    // once every workspace has reached its steady size.
    use elmrl_core::batch::BatchAgent;

    let _serial = serial();
    let spec = Workload::CartPole.spec();
    let mut config = OsElmQNetConfig::for_workload(&spec, 16, 0.5, true);
    config.random_update = false; // every tick trains the full chunk
    let mut rng = SmallRng::seed_from_u64(7);
    let mut agent = OsElmQNet::new(config, &mut rng);

    // One reusable tick of B = 4 transitions (distinct states so the
    // initial training's Gram matrix is well-posed).
    let tick: Vec<Observation> = (0..4)
        .map(|i| Observation {
            state: vec![0.02 * i as f64, -0.02, 0.03, 0.01 * (i % 3) as f64],
            action: i % 2,
            reward: if i == 3 { -1.0 } else { 0.0 },
            next_state: vec![0.02 * i as f64 + 0.005, -0.01, 0.02, 0.01],
            done: i == 3,
            truncated: false,
        })
        .collect();

    // Store phase (4 ticks fill buffer D with Ñ = 16 samples) + warm-up so
    // every workspace reaches steady capacity.
    for _ in 0..32 {
        agent.observe_batch(&tick, &mut rng);
    }
    assert!(agent.is_initialized());

    COUNTING.with(|flag| flag.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..256 {
        agent.observe_batch(&tick, &mut rng);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(false));

    assert_eq!(
        after - before,
        0,
        "steady-state batched tick must not allocate ({} allocations over 256 ticks)",
        after - before
    );
}

#[test]
fn steady_state_tiled_update_with_chunk_splitting_allocates_nothing() {
    // The PR-9 contract: the blocked kernels stay allocation-free too. This
    // variant crosses both new tiling seams — a hidden width past
    // `P_UPDATE_TILE` (so the fused P passes run a full row tile plus a
    // remainder) and a tick wider than `chunk_cap` (so `observe_batch`
    // splits the RLS update into capped chunks while the hoisted
    // target-network forward still covers the whole tick).
    use elmrl_core::batch::BatchAgent;
    use elmrl_elm::os_elm::P_UPDATE_TILE;

    let _serial = serial();
    let spec = Workload::CartPole.spec();
    let mut config = OsElmQNetConfig::for_workload(&spec, P_UPDATE_TILE + 8, 0.5, true);
    config.random_update = false; // every tick trains the full chunk
    config.chunk_cap = Some(3); // B = 8 tick → 3 chunks of 3 + 3 + 2
    let mut rng = SmallRng::seed_from_u64(11);
    let mut agent = OsElmQNet::new(config, &mut rng);

    let tick: Vec<Observation> = (0..8)
        .map(|i| Observation {
            state: vec![0.02 * i as f64, -0.02, 0.03, 0.01 * (i % 3) as f64],
            action: i % 2,
            reward: if i == 7 { -1.0 } else { 0.0 },
            next_state: vec![0.02 * i as f64 + 0.005, -0.01, 0.02, 0.01],
            done: i == 7,
            truncated: false,
        })
        .collect();

    // Store phase (9 ticks fill buffer D with Ñ = 72 samples) + warm-up so
    // every workspace — including the packed-panel buffers — reaches steady
    // capacity.
    for t in 0..32 {
        // Perturb one state component per store-phase tick so the initial
        // Gram matrix is well-posed at Ñ = 72.
        let staged: Vec<Observation> = tick
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let mut o = o.clone();
                o.state[1] += 0.003 * (t * 8 + i) as f64;
                o
            })
            .collect();
        agent.observe_batch(&staged, &mut rng);
    }
    assert!(agent.is_initialized());
    for _ in 0..8 {
        agent.observe_batch(&tick, &mut rng);
    }

    COUNTING.with(|flag| flag.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..64 {
        agent.observe_batch(&tick, &mut rng);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(false));

    assert_eq!(
        after - before,
        0,
        "steady-state tiled + chunk-split tick must not allocate \
         ({} allocations over 64 ticks)",
        after - before
    );
}

#[test]
fn steady_state_training_step_allocates_nothing_with_telemetry_on() {
    // The PR-8 no-perturbation contract: with the metric registry enabled
    // *and* the span-trace ring collecting, the steady-state hot path is
    // still allocation-free — metrics registered during warm-up, call-site
    // `OnceLock`s filled, trace events pushed into the preallocated ring.
    let _serial = serial();
    elmrl_telemetry::enable_tracing(elmrl_telemetry::DEFAULT_TRACE_CAPACITY);

    let spec = Workload::CartPole.spec();
    let mut config = OsElmQNetConfig::for_workload(&spec, 16, 0.5, true);
    config.random_update = false;
    let mut rng = SmallRng::seed_from_u64(99);
    let mut agent = OsElmQNet::new(config, &mut rng);
    for i in 0..16 {
        let obs = Observation {
            state: vec![0.01 * i as f64, -0.02, 0.03, 0.01 * (i % 5) as f64],
            action: i % 2,
            reward: if i % 7 == 0 { -1.0 } else { 0.0 },
            next_state: vec![0.01 * i as f64 + 0.005, -0.01, 0.02, 0.01],
            done: i % 7 == 0,
            truncated: false,
        };
        agent.observe(&obs, &mut rng);
    }
    assert!(agent.is_initialized());

    let obs = Observation {
        state: vec![0.02, -0.01, 0.04, 0.03],
        action: 1,
        reward: -1.0,
        next_state: vec![0.03, -0.02, 0.03, 0.02],
        done: true,
        truncated: false,
    };

    // Warm-up with telemetry live: registers every metric this loop touches
    // and fills the call-site handle caches.
    for _ in 0..32 {
        let action = agent.act(&obs.state, &mut rng);
        std::hint::black_box(action);
        agent.observe(&obs, &mut rng);
    }

    COUNTING.with(|flag| flag.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..256 {
        let action = agent.act(&obs.state, &mut rng);
        std::hint::black_box(action);
        agent.observe(&obs, &mut rng);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(false));
    elmrl_telemetry::set_enabled(false);

    assert!(
        elmrl_telemetry::snapshot()
            .histogram("op.seq_train")
            .is_some_and(|h| h.count > 0),
        "telemetry must actually have recorded during the measured loop"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state act+observe with telemetry + tracing on must not \
         allocate ({} allocations over 256 steps)",
        after - before
    );
}

/// Allocations of one full scalar training run, with the checkpoint
/// schedule either disarmed or armed-but-never-firing. Same seed, same
/// trajectory — any difference is overhead the checkpoint plumbing adds to
/// the episode loop.
fn run_allocations(armed: bool) -> u64 {
    let spec = Workload::CartPole.spec();
    let mut config = OsElmQNetConfig::for_workload(&spec, 16, 0.5, true);
    config.random_update = false;
    let mut rng = SmallRng::seed_from_u64(21);
    let mut agent = OsElmQNet::new(config, &mut rng);
    let mut env = spec.make_env();
    let mut trainer_config = TrainerConfig::for_workload(&spec);
    trainer_config.max_episodes = 6;
    trainer_config.stop_when_solved = false;
    let trainer = Trainer::new(trainer_config);

    let mut sink =
        |_ckpt: RunCheckpoint| unreachable!("the capture boundary lies beyond the episode budget");
    let mut ctl = CheckpointCtl::default();
    if armed {
        // Armed: the driver checks the capture boundary and the
        // fault-injection stop every episode, but never crosses either.
        ctl.every = 1_000_000;
        ctl.stop_after = Some(usize::MAX);
        ctl.sink = Some(&mut sink);
    }

    COUNTING.with(|flag| flag.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = trainer
        .run_checkpointed(&mut agent, env.as_mut(), &mut rng, &mut ctl)
        .expect("run cannot fail");
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(false));
    std::hint::black_box(result.total_steps);
    after - before
}

#[test]
fn armed_checkpoint_schedule_adds_no_allocations_between_captures() {
    // The PR-6 contract: snapshots themselves may allocate freely, but the
    // per-episode bookkeeping that decides *whether* to snapshot — the
    // `capture_due`/`stop_now` boundary checks — must be allocation-free,
    // so `--checkpoint-every` never perturbs the training hot path between
    // marks. Armed-but-idle must allocate exactly what disarmed does.
    let _serial = serial();
    // Warm-up run: one-time process-global registrations (the trainer's
    // telemetry call-site caches) must not be charged to either variant.
    let _ = run_allocations(false);
    let disarmed = run_allocations(false);
    let armed = run_allocations(true);
    assert_eq!(
        armed, disarmed,
        "an armed checkpoint schedule must add zero allocations between \
         captures (disarmed: {disarmed}, armed: {armed})"
    );
}
