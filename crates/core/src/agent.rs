//! The [`Agent`] trait shared by every design in the evaluation.
//!
//! The trainer drives agents through the paper's four states (Determine,
//! Observe, Store, Update — Algorithm 1): [`Agent::act`] is *Determine*, the
//! environment step is *Observe*, and [`Agent::observe`] covers *Store* and
//! *Update* (each agent decides internally whether a given transition goes to
//! its buffer, triggers an initial training, a sequential update, or a DQN
//! gradient step).

use crate::checkpoint::AgentSnapshot;
use crate::ops::OpCounts;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// One transition as seen by an agent (rewards already shaped).
///
/// The `done`/`truncated` flags carry the same semantics as
/// [`elmrl_gym::StepOutcome`]: they are mutually exclusive, `done` marks the
/// task's own end condition (the paper's `dₜ` flag, which removes the
/// bootstrap term from the Q-target), and `truncated` marks a pure step-cap
/// stop, after which targets still bootstrap.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// State before the action.
    pub state: Vec<f64>,
    /// Discrete action taken.
    pub action: usize,
    /// Shaped reward.
    pub reward: f64,
    /// State after the action.
    pub next_state: Vec<f64>,
    /// `true` when the episode ended because the task itself finished — its
    /// failure or success condition fired (the paper's `dₜ` flag). Never set
    /// for a pure step-limit stop.
    pub done: bool,
    /// `true` when the episode was cut off by the step cap without the task
    /// finishing. Mutually exclusive with `done`.
    pub truncated: bool,
}

impl Observation {
    /// `done || truncated`.
    pub fn finished(&self) -> bool {
        self.done || self.truncated
    }
}

/// A reinforcement-learning agent: one of the seven designs of §4.1.
pub trait Agent {
    /// Human-readable design name (matches the paper's design labels).
    fn name(&self) -> &str;

    /// The hidden-layer width `Ñ` of the underlying network.
    fn hidden_dim(&self) -> usize;

    /// *Determine*: choose an action for `state`.
    fn act(&mut self, state: &[f64], rng: &mut SmallRng) -> usize;

    /// *Store* + *Update*: ingest one transition.
    fn observe(&mut self, obs: &Observation, rng: &mut SmallRng);

    /// Called by the trainer at the end of every episode (target-network
    /// synchronisation happens here, Algorithm 1 lines 23–24).
    fn end_episode(&mut self, episode_index: usize);

    /// Re-initialise all trainable state. The trainer calls this when the
    /// paper's reset rule fires (§4.3: reset after 300 unsuccessful
    /// episodes).
    fn reset(&mut self, rng: &mut SmallRng);

    /// Per-operation counters accumulated so far (Figure 5/6 breakdown).
    fn op_counts(&self) -> &OpCounts;

    /// Greedy Q-values for a state — used by diagnostics and tests; not part
    /// of the training path.
    fn q_values(&mut self, state: &[f64]) -> Vec<f64>;

    /// Approximate persistent memory footprint of the agent's learnable state
    /// and buffers, in bytes (used for the on-device memory comparison).
    fn memory_footprint_bytes(&self) -> usize;

    /// Capture the agent's complete mutable state for checkpointing, or
    /// `None` when the design does not support it. A snapshot must be deep
    /// enough that [`Agent::restore`] followed by the same action/observation
    /// sequence reproduces the original agent's trajectory bit for bit.
    fn snapshot(&self) -> Option<AgentSnapshot> {
        None
    }

    /// Restore state captured by [`Agent::snapshot`]. The default refuses —
    /// designs that opt into checkpointing override both methods together.
    fn restore(&mut self, snapshot: &AgentSnapshot) -> Result<(), String> {
        let _ = snapshot;
        Err(format!(
            "design `{}` does not support checkpoint restore",
            self.name()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_finished_logic() {
        let mut o = Observation {
            state: vec![0.0],
            action: 0,
            reward: 0.0,
            next_state: vec![0.0],
            done: false,
            truncated: false,
        };
        assert!(!o.finished());
        o.truncated = true;
        assert!(o.finished());
        o.truncated = false;
        o.done = true;
        assert!(o.finished());
    }
}
