//! The ELM Q-Network (§3.1, design (1) of the evaluation).
//!
//! ELM is a *batch* algorithm: the Q-network can only be (re)trained when the
//! buffer `D` holds `Ñ` fresh transitions (Algorithm 1 lines 16–19). Between
//! refills the policy acts on a frozen `β`. This severely limits the number
//! of updates — the limitation OS-ELM removes — and is why the paper finds
//! ELM fragile with respect to the hidden size (§4.3).

use crate::agent::{Agent, Observation};
use crate::batch::{elm_q_batch, elm_q_batch_into, BatchAgent, BatchQScratch};
use crate::checkpoint::AgentSnapshot;
use crate::clipping::TargetConfig;
use crate::encoding::StateActionEncoder;
use crate::ops::{OpCounts, OpKind};
use crate::policy::{max_q, ExploitPolicy};
use elmrl_elm::model::ElmModel;
use elmrl_elm::{Elm, ElmSnapshot, HiddenActivation, ModelSnapshot, OsElmConfig};
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of the ELM Q-Network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElmQNetConfig {
    /// Environment state dimensionality.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden-layer width `Ñ` (also the buffer size).
    pub hidden_dim: usize,
    /// Exploit probability ε₁.
    pub exploit_prob: f64,
    /// Target-network synchronisation interval in episodes.
    pub target_sync_episodes: usize,
    /// Q-target construction (γ and clipping).
    pub target: TargetConfig,
    /// Ridge regularisation for the batch solve (0 = pseudo-inverse).
    pub l2_delta: f64,
    /// Hidden activation.
    pub activation: HiddenActivation,
}

impl ElmQNetConfig {
    /// Settings for a registered workload (design (1): clipping + simplified
    /// output model, no regularisation).
    pub fn for_workload(spec: &elmrl_gym::EnvSpec, hidden_dim: usize) -> Self {
        Self::from_design(&crate::designs::DesignConfig::for_workload(
            spec, hidden_dim,
        ))
    }

    /// Settings derived from shared per-cell design parameters.
    pub fn from_design(config: &crate::designs::DesignConfig) -> Self {
        Self {
            state_dim: config.state_dim,
            num_actions: config.num_actions,
            hidden_dim: config.hidden_dim,
            exploit_prob: config.exploit_prob,
            target_sync_episodes: config.target_sync_episodes,
            target: config.target_config(),
            l2_delta: 0.0,
            activation: HiddenActivation::ReLU,
        }
    }

    /// The paper's CartPole settings with the given hidden size.
    #[deprecated(
        since = "0.1.0",
        note = "use ElmQNetConfig::for_workload(&Workload::CartPole.spec(), hidden_dim)"
    )]
    pub fn cartpole(hidden_dim: usize) -> Self {
        Self::for_workload(&elmrl_gym::Workload::CartPole.spec(), hidden_dim)
    }

    fn elm_config(&self) -> OsElmConfig {
        OsElmConfig::new(self.state_dim + 1, self.hidden_dim, 1)
            .with_activation(self.activation)
            .with_l2_delta(self.l2_delta)
    }
}

/// The complete mutable state of an [`ElmQNet`], as carried inside an
/// [`AgentSnapshot`]: the online batch learner, the frozen target network,
/// the refill buffer `D`, the trained-once flag and the op counters.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ElmQNetState {
    online: ElmSnapshot,
    target: ModelSnapshot,
    buffer: Vec<Observation>,
    trained_once: bool,
    ops: OpCounts,
}

/// The ELM Q-Network agent.
pub struct ElmQNet {
    config: ElmQNetConfig,
    encoder: StateActionEncoder,
    policy: ExploitPolicy,
    online: Elm<f64>,
    target: ElmModel<f64>,
    buffer: Vec<Observation>,
    /// Prediction workspaces shared with the OS-ELM agent's hot path.
    scratch: crate::oselm_qnet::QScratch,
    /// Batched-prediction workspaces for [`BatchAgent::predict_batch_into`].
    batch_q: BatchQScratch,
    ops: OpCounts,
    trained_once: bool,
}

impl ElmQNet {
    /// Create an agent with freshly drawn random `α`, `b`.
    pub fn new(config: ElmQNetConfig, rng: &mut SmallRng) -> Self {
        let encoder = StateActionEncoder::new(config.state_dim, config.num_actions);
        let online = Elm::<f64>::new(&config.elm_config(), rng);
        let target = online.model().clone();
        Self {
            policy: ExploitPolicy::new(config.exploit_prob),
            encoder,
            online,
            target,
            buffer: Vec::with_capacity(config.hidden_dim),
            scratch: Default::default(),
            batch_q: Default::default(),
            ops: OpCounts::new(),
            config,
            trained_once: false,
        }
    }

    /// Whether at least one batch training has completed.
    pub fn is_trained(&self) -> bool {
        self.trained_once
    }

    fn q_for(&self, model: &ElmModel<f64>, state: &[f64]) -> Vec<f64> {
        self.encoder
            .encode_all_actions(state)
            .iter()
            .map(|input| model.predict_single(input)[0])
            .collect()
    }

    fn run_batch_training(&mut self) {
        let start = Instant::now();
        let n = self.buffer.len();
        let input_dim = self.encoder.input_dim();
        let mut x = Matrix::<f64>::zeros(n, input_dim);
        let mut t = Matrix::<f64>::zeros(n, 1);
        for (i, obs) in self.buffer.iter().enumerate() {
            let encoded = self.encoder.encode(&obs.state, obs.action);
            for (j, &v) in encoded.iter().enumerate() {
                x[(i, j)] = v;
            }
            let max_next = max_q(&self.q_for(&self.target, &obs.next_state));
            t[(i, 0)] = self.config.target.target(obs.reward, max_next, obs.done);
        }
        // The pseudo-inverse route tolerates rank deficiency, so a failure is
        // unexpected; drop the batch rather than poisoning β.
        if self.online.train(&x, &t).is_ok() {
            self.trained_once = true;
        }
        self.buffer.clear();
        self.ops.record(OpKind::InitTrain, start.elapsed());
    }
}

impl Agent for ElmQNet {
    fn name(&self) -> &str {
        "ELM"
    }

    fn hidden_dim(&self) -> usize {
        self.config.hidden_dim
    }

    fn act(&mut self, state: &[f64], rng: &mut SmallRng) -> usize {
        let start = Instant::now();
        let Self {
            config,
            encoder,
            policy,
            online,
            scratch,
            ops,
            trained_once,
            ..
        } = self;
        crate::oselm_qnet::q_into(encoder, online.model(), state, scratch);
        let kind = if *trained_once {
            OpKind::PredictSeq
        } else {
            OpKind::PredictInit
        };
        ops.record_n(kind, config.num_actions as u64, start.elapsed());
        policy.select(&scratch.q, rng)
    }

    fn observe(&mut self, obs: &Observation, _rng: &mut SmallRng) {
        self.buffer.push(obs.clone());
        if self.buffer.len() >= self.config.hidden_dim {
            self.run_batch_training();
        }
    }

    fn end_episode(&mut self, episode_index: usize) {
        if self.config.target_sync_episodes > 0
            && (episode_index + 1) % self.config.target_sync_episodes == 0
        {
            self.target.copy_parameters_from(self.online.model());
        }
    }

    fn reset(&mut self, rng: &mut SmallRng) {
        self.online = Elm::<f64>::new(&self.config.elm_config(), rng);
        self.target = self.online.model().clone();
        self.buffer.clear();
        self.trained_once = false;
    }

    fn op_counts(&self) -> &OpCounts {
        &self.ops
    }

    fn q_values(&mut self, state: &[f64]) -> Vec<f64> {
        self.q_for(self.online.model(), state)
    }

    fn memory_footprint_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        let n = self.config.hidden_dim;
        let input = self.encoder.input_dim();
        let model = input * n + n + n;
        let buffer = self.buffer.capacity() * (2 * self.config.state_dim + 4);
        (2 * model + buffer) * f
    }

    fn snapshot(&self) -> Option<AgentSnapshot> {
        let state = ElmQNetState {
            online: self.online.snapshot(),
            target: ModelSnapshot::capture(&self.target),
            buffer: self.buffer.clone(),
            trained_once: self.trained_once,
            ops: self.ops.clone(),
        };
        Some(AgentSnapshot::new(self.name(), &state))
    }

    fn restore(&mut self, snapshot: &AgentSnapshot) -> Result<(), String> {
        let state: ElmQNetState = snapshot.decode(self.name())?;
        self.online = Elm::from_snapshot(&state.online);
        self.target = state.target.restore();
        // Keep the pre-sized buffer capacity the constructor established.
        self.buffer.clear();
        self.buffer.extend(state.buffer);
        self.trained_once = state.trained_once;
        self.ops = state.ops;
        Ok(())
    }
}

impl BatchAgent for ElmQNet {
    /// One stacked `(B·A) × input` forward pass through the online model —
    /// bit-for-bit equal to per-sample [`Agent::q_values`].
    fn predict_batch(&mut self, states: &Matrix<f64>) -> Matrix<f64> {
        elm_q_batch(&self.encoder, self.online.model(), states)
    }

    /// The stacked forward through the agent's own [`BatchQScratch`] — the
    /// serve-worker hot path. Zero heap allocations once `out` and the
    /// scratch have seen the steady-state batch shape.
    fn predict_batch_into(&mut self, states: &Matrix<f64>, out: &mut Matrix<f64>) {
        elm_q_batch_into(
            &self.encoder,
            self.online.model(),
            states,
            &mut self.batch_q,
        );
        let q = self.batch_q.q();
        out.resize_zeroed(q.rows(), q.cols());
        out.as_mut_slice().copy_from_slice(q.as_slice());
    }

    /// ε-greedy through the batched kernel: same Q (bit for bit), same RNG
    /// draws, same action as [`Agent::act`] — minus the per-action matvecs.
    /// Records the same per-action prediction counters as [`Agent::act`],
    /// so modeled execution times stay comparable between the scalar and
    /// E-parallel drivers.
    fn act_row(&mut self, state_row: &Matrix<f64>, rng: &mut SmallRng) -> usize {
        let start = Instant::now();
        let q = self.predict_batch(state_row);
        let kind = if self.trained_once {
            OpKind::PredictSeq
        } else {
            OpKind::PredictInit
        };
        self.ops
            .record_n(kind, self.config.num_actions as u64, start.elapsed());
        self.policy.select(q.row(0), rng)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the cartpole() shims must keep working for seed tests
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn obs(i: usize, reward: f64, done: bool) -> Observation {
        Observation {
            state: vec![0.01 * i as f64, -0.02, 0.03, 0.04],
            action: i % 2,
            reward,
            next_state: vec![0.01 * i as f64 + 0.01, -0.01, 0.02, 0.05],
            done,
            truncated: false,
        }
    }

    #[test]
    fn batch_training_fires_exactly_when_buffer_fills() {
        let mut r = rng(1);
        let mut agent = ElmQNet::new(ElmQNetConfig::cartpole(8), &mut r);
        assert_eq!(agent.name(), "ELM");
        assert!(!agent.is_trained());
        for i in 0..7 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        assert!(!agent.is_trained());
        agent.observe(&obs(7, -1.0, true), &mut r);
        assert!(agent.is_trained());
        assert_eq!(agent.op_counts().count(OpKind::InitTrain), 1);
        // Buffer cleared: another Ñ samples trigger a second retraining.
        for i in 8..16 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        assert_eq!(agent.op_counts().count(OpKind::InitTrain), 2);
    }

    #[test]
    fn updates_are_limited_to_buffer_refills() {
        // The structural weakness the paper points out: 100 transitions with
        // Ñ = 64 yield exactly one training call.
        let mut r = rng(2);
        let mut agent = ElmQNet::new(ElmQNetConfig::cartpole(64), &mut r);
        for i in 0..100 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        assert_eq!(agent.op_counts().count(OpKind::InitTrain), 1);
    }

    #[test]
    fn learns_negative_q_for_failing_transitions() {
        let mut r = rng(3);
        let mut agent = ElmQNet::new(ElmQNetConfig::cartpole(16), &mut r);
        for i in 0..16 {
            agent.observe(&obs(i, -1.0, true), &mut r);
        }
        assert!(agent.is_trained());
        let q = agent.q_values(&[0.05, -0.02, 0.03, 0.04]);
        assert!(
            q.iter().any(|&v| v < -0.3),
            "expected learned negative Q, got {q:?}"
        );
    }

    #[test]
    fn act_counts_predictions_by_phase() {
        let mut r = rng(4);
        let mut agent = ElmQNet::new(ElmQNetConfig::cartpole(8), &mut r);
        let _ = agent.act(&[0.0; 4], &mut r);
        assert_eq!(agent.op_counts().count(OpKind::PredictInit), 2);
        for i in 0..8 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        let _ = agent.act(&[0.0; 4], &mut r);
        assert_eq!(agent.op_counts().count(OpKind::PredictSeq), 2);
    }

    #[test]
    fn reset_forgets_training() {
        let mut r = rng(5);
        let mut agent = ElmQNet::new(ElmQNetConfig::cartpole(8), &mut r);
        for i in 0..8 {
            agent.observe(&obs(i, -1.0, true), &mut r);
        }
        assert!(agent.is_trained());
        agent.reset(&mut r);
        assert!(!agent.is_trained());
        assert_eq!(agent.q_values(&[0.0; 4]), vec![0.0, 0.0]);
    }

    #[test]
    fn target_sync_and_memory_reporting() {
        let mut r = rng(6);
        let mut agent = ElmQNet::new(ElmQNetConfig::cartpole(8), &mut r);
        for i in 0..8 {
            agent.observe(&obs(i, -1.0, true), &mut r);
        }
        agent.end_episode(1); // (1+1) % 2 == 0 → sync
        let s = [0.02, -0.02, 0.03, 0.04];
        let online_q = agent.q_values(&s);
        let target_q = agent.q_for(&agent.target, &s);
        assert_eq!(online_q, target_q);
        assert!(agent.memory_footprint_bytes() > 0);
        // ELM has no P matrix, so it needs less memory than OS-ELM at equal Ñ.
        let oselm = crate::oselm_qnet::OsElmQNet::new(
            crate::oselm_qnet::OsElmQNetConfig::cartpole(8, 0.5, true),
            &mut r,
        );
        assert!(agent.memory_footprint_bytes() < oselm.memory_footprint_bytes());
    }
}
