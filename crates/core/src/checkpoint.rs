//! Checkpointing: versioned, serialisable snapshots of a complete training
//! run.
//!
//! The paper's platform targets long-running on-device training, where a
//! power cycle must not cost the accumulated learning. A checkpoint captures
//! *everything* the trainer's determinism contract depends on — the agent's
//! learnable state (α/β/P, DQN weights + replay history), the bookkeeping
//! counters, the episode statistics, and the exact cursor of every RNG
//! stream — so a run saved at episode `N` and resumed continues **bit for
//! bit** identically to one that never stopped. The invariance is enforced
//! end-to-end by the harness resume-equivalence tests and a golden-`cmp` CI
//! job, the same way shard/thread invariance already is.
//!
//! Checkpoints are taken at episode boundaries only (for vectorized runs: at
//! the end of a tick in which an episode completed), which keeps the saved
//! surface tractable — mid-episode environment physics still need saving for
//! vectorized runs, where the other slots are mid-episode, and
//! [`SlotCheckpoint`] carries exactly that.

use crate::agent::Agent;
use elmrl_gym::EpisodeStats;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Version tag written into every snapshot/checkpoint. Bump when the schema
/// changes shape; loaders reject mismatched versions instead of
/// misinterpreting old data.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// A versioned, design-tagged snapshot of an agent's complete mutable state.
///
/// The payload is an opaque [`Value`] produced by the agent itself (each
/// design serialises its own internal state struct), wrapped with the schema
/// version and the design name so a checkpoint can never be restored into the
/// wrong agent type silently.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AgentSnapshot {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`] at capture time).
    pub version: u32,
    /// The design name of the agent that produced the snapshot
    /// ([`Agent::name`]); checked on restore.
    pub design: String,
    /// The design-specific state payload.
    pub state: Value,
}

impl AgentSnapshot {
    /// Wrap a design-specific state struct into a tagged snapshot.
    pub fn new<S: Serialize>(design: &str, state: &S) -> Self {
        Self {
            version: SNAPSHOT_SCHEMA_VERSION,
            design: design.to_owned(),
            state: state.to_value(),
        }
    }

    /// Decode the payload for the named design, rejecting version or design
    /// mismatches with a descriptive error.
    pub fn decode<S: serde::Deserialize>(&self, design: &str) -> Result<S, String> {
        if self.version != SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema version {} does not match supported version {}",
                self.version, SNAPSHOT_SCHEMA_VERSION
            ));
        }
        if self.design != design {
            return Err(format!(
                "snapshot was captured from design `{}`, cannot restore into `{}`",
                self.design, design
            ));
        }
        S::from_value(&self.state).map_err(|e| format!("snapshot payload: {e}"))
    }
}

/// Capture an agent snapshot or explain why the design cannot provide one.
pub fn snapshot_agent(agent: &dyn Agent) -> Result<AgentSnapshot, String> {
    agent
        .snapshot()
        .ok_or_else(|| format!("design `{}` does not support checkpointing", agent.name()))
}

/// The per-slot state of a vectorized run ([`crate::Trainer::run_vec`]):
/// everything slot `j` needs to continue its current (possibly mid-flight)
/// episode.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlotCheckpoint {
    /// xoshiro256++ state of the slot's private RNG stream (4 words).
    pub rng: Vec<u64>,
    /// The slot environment's internal state ([`elmrl_gym::Environment::save_state`]).
    pub env_state: Vec<f64>,
    /// Current observation of the slot (post-auto-reset).
    pub observation: Vec<f64>,
    /// Return accumulated so far in the slot's current episode.
    pub episode_return: f64,
    /// Whether the slot is still running episodes.
    pub active: bool,
}

/// A complete trainer checkpoint: agent + counters + statistics + RNG
/// cursors (+ per-slot state for vectorized runs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`] at capture time).
    pub version: u32,
    /// Episodes completed so far.
    pub episodes_run: usize,
    /// Environment steps taken so far.
    pub total_steps: usize,
    /// How many times the reset rule has fired.
    pub resets: usize,
    /// Episodes since the last reset-rule firing.
    pub episodes_since_reset: usize,
    /// The episode at which the run solved the task, if it has.
    pub solved_at_episode: Option<usize>,
    /// Per-episode returns and moving averages accumulated so far.
    pub stats: EpisodeStats,
    /// The agent's complete mutable state.
    pub agent: AgentSnapshot,
    /// xoshiro256++ state of the master RNG stream (4 words).
    pub rng: Vec<u64>,
    /// Scalar-run environment carry-over state, when the environment exposes
    /// one. `None` for environments that are fully rebuilt by `reset` (all of
    /// the paper's workloads) — the next episode's `reset` draws from the
    /// restored master RNG either way.
    pub env_state: Option<Vec<f64>>,
    /// Per-slot state for vectorized runs; `None` for scalar runs.
    pub slots: Option<Vec<SlotCheckpoint>>,
}

impl RunCheckpoint {
    /// Serialise to a JSON string (single line, stable field order).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialise from a JSON string, rejecting schema-version mismatches.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let ckpt: Self = serde_json::from_str(s).map_err(|e| format!("checkpoint JSON: {e}"))?;
        if ckpt.version != SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "checkpoint schema version {} does not match supported version {}",
                ckpt.version, SNAPSHOT_SCHEMA_VERSION
            ));
        }
        Ok(ckpt)
    }

    /// Write the checkpoint to a file as JSON.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let _span = elmrl_telemetry::hist!("checkpoint.save").span();
        let json = self
            .to_json()
            .map_err(|e| format!("serialising checkpoint: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Read a checkpoint back from a JSON file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let _span = elmrl_telemetry::hist!("checkpoint.load").span();
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_json(&json)
    }
}

/// Export an RNG's exact stream position as checkpoint words.
pub fn rng_state_words(rng: &SmallRng) -> Vec<u64> {
    rng.state().to_vec()
}

/// Rebuild an RNG at the exact stream position recorded by
/// [`rng_state_words`].
pub fn rng_from_words(words: &[u64]) -> Result<SmallRng, String> {
    let state: [u64; 4] = words
        .try_into()
        .map_err(|_| format!("RNG state needs exactly 4 words, got {}", words.len()))?;
    Ok(SmallRng::from_state(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
    struct ToyState {
        steps: usize,
        weights: Vec<f64>,
    }

    #[test]
    fn agent_snapshot_tags_design_and_version() {
        let state = ToyState {
            steps: 7,
            weights: vec![0.5, -0.25],
        };
        let snap = AgentSnapshot::new("toy", &state);
        assert_eq!(snap.version, SNAPSHOT_SCHEMA_VERSION);
        let back: ToyState = snap.decode("toy").unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn decode_rejects_wrong_design() {
        let snap = AgentSnapshot::new(
            "toy",
            &ToyState {
                steps: 0,
                weights: vec![],
            },
        );
        let err = snap.decode::<ToyState>("other").unwrap_err();
        assert!(err.contains("`toy`"), "{err}");
        assert!(err.contains("`other`"), "{err}");
    }

    #[test]
    fn decode_rejects_future_schema_version() {
        let mut snap = AgentSnapshot::new(
            "toy",
            &ToyState {
                steps: 0,
                weights: vec![],
            },
        );
        snap.version = SNAPSHOT_SCHEMA_VERSION + 1;
        let err = snap.decode::<ToyState>("toy").unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn rng_words_round_trip_resumes_the_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..13 {
            let _: u64 = rng.gen();
        }
        let words = rng_state_words(&rng);
        let mut restored = rng_from_words(&words).unwrap();
        for _ in 0..64 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn rng_from_words_rejects_wrong_length() {
        assert!(rng_from_words(&[1, 2, 3]).is_err());
    }

    #[test]
    fn run_checkpoint_json_round_trip_is_exact() {
        let ckpt = RunCheckpoint {
            version: SNAPSHOT_SCHEMA_VERSION,
            episodes_run: 12,
            total_steps: 345,
            resets: 1,
            episodes_since_reset: 3,
            solved_at_episode: None,
            stats: EpisodeStats::with_window(4, Some(195.0)),
            agent: AgentSnapshot::new(
                "toy",
                &ToyState {
                    steps: 9,
                    weights: vec![1.0 / 3.0, -0.0, f64::MIN_POSITIVE],
                },
            ),
            rng: vec![1, 2, 3, 4],
            env_state: None,
            slots: Some(vec![SlotCheckpoint {
                rng: vec![5, 6, 7, 8],
                env_state: vec![0.1, -0.2],
                observation: vec![0.3, 0.4],
                episode_return: 17.0,
                active: true,
            }]),
        };
        let json = ckpt.to_json().unwrap();
        let back = RunCheckpoint::from_json(&json).unwrap();
        // The JSON layer is shortest-round-trip/correctly-rounded, so a
        // second serialisation must be byte-identical.
        assert_eq!(back.to_json().unwrap(), json);
        assert_eq!(back.episodes_run, 12);
        assert_eq!(back.slots.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn from_json_rejects_future_schema_version() {
        let ckpt = RunCheckpoint {
            version: SNAPSHOT_SCHEMA_VERSION + 3,
            episodes_run: 0,
            total_steps: 0,
            resets: 0,
            episodes_since_reset: 0,
            solved_at_episode: None,
            stats: EpisodeStats::with_window(1, None),
            agent: AgentSnapshot::new(
                "toy",
                &ToyState {
                    steps: 0,
                    weights: vec![],
                },
            ),
            rng: vec![0; 4],
            env_state: None,
            slots: None,
        };
        let json = ckpt.to_json().unwrap();
        assert!(RunCheckpoint::from_json(&json).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("elmrl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let ckpt = RunCheckpoint {
            version: SNAPSHOT_SCHEMA_VERSION,
            episodes_run: 5,
            total_steps: 99,
            resets: 0,
            episodes_since_reset: 5,
            solved_at_episode: Some(4),
            stats: EpisodeStats::with_window(2, None),
            agent: AgentSnapshot::new(
                "toy",
                &ToyState {
                    steps: 1,
                    weights: vec![2.5],
                },
            ),
            rng: vec![9, 8, 7, 6],
            env_state: Some(vec![1.0]),
            slots: None,
        };
        ckpt.save(&path).unwrap();
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.to_json().unwrap(), ckpt.to_json().unwrap());
        std::fs::remove_file(&path).ok();
    }
}
