//! The OS-ELM Q-Network (§3.2–3.3, Algorithm 1) — the paper's contribution.
//!
//! One agent type covers four of the evaluated designs; the stabilisation
//! techniques are switched through [`OsElmQNetConfig`]:
//!
//! | Design | `l2_delta` | `spectral_normalize` |
//! |---|---|---|
//! | OS-ELM | 0 | no |
//! | OS-ELM-L2 | 1.0 | no |
//! | OS-ELM-Lipschitz | 0 | yes |
//! | OS-ELM-L2-Lipschitz | 0.5 | yes |
//!
//! All four share the simplified output model, Q-value clipping and the
//! random-update rule (probability ε₂ per step) that replaces experience
//! replay.

use crate::agent::{Agent, Observation};
use crate::batch::{elm_q_batch, elm_q_batch_into, BatchAgent, BatchQScratch};
use crate::checkpoint::AgentSnapshot;
use crate::clipping::TargetConfig;
use crate::encoding::StateActionEncoder;
use crate::ops::{OpCounts, OpKind};
use crate::policy::{max_q, ExploitPolicy};
use elmrl_elm::model::ElmModel;
use elmrl_elm::{HiddenActivation, ModelSnapshot, OsElm, OsElmConfig, OsElmSnapshot};
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Numerical jitter used when the *plain* OS-ELM design (δ = 0) hits a
/// singular Gram matrix in its initial training. This is not the ReOS-ELM
/// regulariser — it only keeps the matrix inversion defined, mirroring what a
/// fixed-point hardware divider's finite resolution does implicitly.
const NUMERICAL_DELTA: f64 = 1e-8;

/// Default cap on the RLS chunk width `B` of one batched
/// [`BatchAgent::observe_batch`] tick. The Eq. 6 chunk pays an O(B²·Ñ) +
/// O(B³) toll (the `I + H·P·Hᵀ` Gram build and its Cholesky) on top of the
/// O(B·Ñ²) P passes, so past a point a wider chunk loses to two half-width
/// ones — while the batched *target-network* evaluation keeps its full-tick
/// hoisting either way (targets depend only on the frozen θ₂). The
/// `scaling_kernels` bench sweeps B at Ñ ∈ {256, 512, 1024}; the crossover
/// sits past B ≈ 64 at every Ñ measured (the B² terms stay ≪ the Ñ² terms
/// until B approaches Ñ), so the default caps at 64 — comfortably below the
/// crossover while keeping ticks from pathological E (hundreds of parallel
/// envs) from going cubic. Override per agent via
/// [`OsElmQNetConfig::chunk_cap`].
pub const DEFAULT_CHUNK_CAP: usize = 64;

/// Configuration of an OS-ELM Q-Network agent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OsElmQNetConfig {
    /// Environment state dimensionality.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden-layer width `Ñ`.
    pub hidden_dim: usize,
    /// Exploit probability ε₁ (paper: 0.7).
    pub exploit_prob: f64,
    /// Random-update probability ε₂ (paper: 0.5). Ignored when
    /// `random_update` is false.
    pub update_prob: f64,
    /// Whether the random-update rule gates sequential training at all
    /// (disabling it is the A1 ablation: update on every step).
    pub random_update: bool,
    /// Target-network synchronisation interval in episodes (paper: 2).
    pub target_sync_episodes: usize,
    /// Q-target construction (γ and clipping).
    pub target: TargetConfig,
    /// ReOS-ELM regularisation δ for the initial training (0 disables L2).
    pub l2_delta: f64,
    /// Spectral normalization of the input weights α.
    pub spectral_normalize: bool,
    /// Hidden activation (the paper uses ReLU).
    pub activation: HiddenActivation,
    /// Cap on the RLS chunk width of one batched tick — oversized ticks are
    /// split into consecutive chunks of at most this many transitions
    /// (`None` → [`DEFAULT_CHUNK_CAP`]). Only relevant at `train_envs > 1`;
    /// the scalar loop's B = 1 is always below any cap.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chunk_cap: Option<usize>,
}

impl OsElmQNetConfig {
    /// Settings for a registered workload with the given design knobs.
    pub fn for_workload(
        spec: &elmrl_gym::EnvSpec,
        hidden_dim: usize,
        l2_delta: f64,
        spectral_normalize: bool,
    ) -> Self {
        Self::from_design(
            &crate::designs::DesignConfig::for_workload(spec, hidden_dim),
            l2_delta,
            spectral_normalize,
        )
    }

    /// Settings derived from shared per-cell design parameters.
    pub fn from_design(
        config: &crate::designs::DesignConfig,
        l2_delta: f64,
        spectral_normalize: bool,
    ) -> Self {
        Self {
            state_dim: config.state_dim,
            num_actions: config.num_actions,
            hidden_dim: config.hidden_dim,
            exploit_prob: config.exploit_prob,
            update_prob: config.update_prob,
            random_update: true,
            target_sync_episodes: config.target_sync_episodes,
            target: config.target_config(),
            l2_delta,
            spectral_normalize,
            activation: HiddenActivation::ReLU,
            chunk_cap: config.chunk_cap,
        }
    }

    /// The paper's CartPole settings for a given hidden size and design knobs.
    #[deprecated(
        since = "0.1.0",
        note = "use OsElmQNetConfig::for_workload(&Workload::CartPole.spec(), ..)"
    )]
    pub fn cartpole(hidden_dim: usize, l2_delta: f64, spectral_normalize: bool) -> Self {
        Self::for_workload(
            &elmrl_gym::Workload::CartPole.spec(),
            hidden_dim,
            l2_delta,
            spectral_normalize,
        )
    }

    /// One draw of the random-update rule (Algorithm 1 lines 21–22): should
    /// the transition currently being observed trigger a sequential update?
    /// Shared by the scalar and batched observe paths so the gate cannot
    /// drift between them.
    fn update_gate(&self, rng: &mut SmallRng) -> bool {
        if self.random_update {
            rng.gen_range(0.0..1.0) < self.update_prob
        } else {
            true
        }
    }

    fn elm_config(&self) -> OsElmConfig {
        OsElmConfig::new(self.state_dim + 1, self.hidden_dim, 1)
            .with_activation(self.activation)
            .with_l2_delta(if self.l2_delta > 0.0 {
                self.l2_delta
            } else {
                NUMERICAL_DELTA
            })
            // δ is interpreted relative to the hidden-feature energy so that
            // the paper's δ = 1 / δ = 0.5 remain comparable penalties whether
            // or not spectral normalization has rescaled the features.
            .with_relative_l2(self.l2_delta > 0.0)
            .with_spectral_normalization(self.spectral_normalize)
    }
}

/// Reusable per-agent workspaces for the prediction hot path: encoding
/// staging, per-action Q buffer, and the matrices of one forward pass. All
/// keep their allocations across steps, so steady-state action selection
/// and the sequential training update perform zero matrix heap allocations
/// (asserted by the counting-allocator test in `tests/alloc_steady_state.rs`).
#[derive(Clone, Debug, Default)]
pub(crate) struct QScratch {
    /// Encoded `(state, action)` input.
    pub(crate) enc: Vec<f64>,
    /// Per-action Q-values of the last evaluation.
    pub(crate) q: Vec<f64>,
    /// `1 × input` staging row.
    x: Matrix<f64>,
    /// `1 × Ñ` hidden activation.
    h: Matrix<f64>,
    /// `1 × 1` network output.
    y: Matrix<f64>,
}

/// Evaluate Q(state, ·) through the workspaces — bit-for-bit equal to the
/// historical per-action [`ElmModel::predict_single`] loop, leaving the
/// result in `scratch.q`.
pub(crate) fn q_into(
    encoder: &StateActionEncoder,
    model: &ElmModel<f64>,
    state: &[f64],
    scratch: &mut QScratch,
) {
    scratch.q.clear();
    for action in 0..encoder.num_actions() {
        encoder.encode_into(state, action, &mut scratch.enc);
        scratch.x.resize_zeroed(1, scratch.enc.len());
        scratch.x.set_row(0, &scratch.enc);
        model.predict_into(&scratch.x, &mut scratch.h, &mut scratch.y);
        scratch.q.push(scratch.y[(0, 0)]);
    }
}

/// Reusable workspaces for the batched *training* path
/// ([`BatchAgent::observe_batch`]): gating indices, the packed next-state
/// matrix, the batched target-network Q evaluation and the `seq_train_batch`
/// chunk. All keep their allocations across ticks, so the E > 1 steady state
/// performs zero heap allocations inside the agent (asserted by the
/// counting-allocator test in `tests/alloc_steady_state.rs`).
#[derive(Clone, Debug, Default)]
struct BatchObserveScratch {
    /// Indices (into the tick's batch) that passed the random-update gate.
    selected: Vec<usize>,
    /// `B × state_dim` packed next states of the gated transitions.
    next_states: Matrix<f64>,
    /// `B × input` encoded `(state, action)` chunk.
    x: Matrix<f64>,
    /// `B × 1` Q-targets.
    t: Matrix<f64>,
    /// Workspaces of the batched target-network forward.
    q: BatchQScratch,
}

/// The complete mutable state of an [`OsElmQNet`], as carried inside an
/// [`AgentSnapshot`]: the online learner's RLS recursion (`α`, `b`, `β`,
/// `P`, counters), the frozen target network, the initial-training buffer
/// `D`, and the op counters. The scratch workspaces are deliberately absent —
/// they hold no observable state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct OsElmQNetState {
    online: OsElmSnapshot,
    target: ModelSnapshot,
    buffer: Vec<Observation>,
    ops: OpCounts,
}

/// The OS-ELM Q-Network agent.
pub struct OsElmQNet {
    config: OsElmQNetConfig,
    encoder: StateActionEncoder,
    policy: ExploitPolicy,
    /// θ₁ — the online network, sequentially trained.
    online: OsElm<f64>,
    /// θ₂ — the fixed target network (a frozen copy of θ₁'s model).
    target: ElmModel<f64>,
    /// Buffer `D` used only to assemble the initial-training chunk.
    buffer: Vec<Observation>,
    /// Prediction workspaces (never observable through the public API).
    scratch: QScratch,
    /// Batched-training workspaces (never observable through the public API).
    bscratch: BatchObserveScratch,
    ops: OpCounts,
    name: String,
}

impl OsElmQNet {
    /// Create an agent; the design name is derived from the enabled knobs.
    pub fn new(config: OsElmQNetConfig, rng: &mut SmallRng) -> Self {
        let encoder = StateActionEncoder::new(config.state_dim, config.num_actions);
        let online = OsElm::<f64>::new(&config.elm_config(), rng);
        let target = online.model().clone();
        let name = Self::derive_name(&config);
        Self {
            policy: ExploitPolicy::new(config.exploit_prob),
            encoder,
            online,
            target,
            buffer: Vec::with_capacity(config.hidden_dim),
            scratch: QScratch::default(),
            bscratch: BatchObserveScratch::default(),
            ops: OpCounts::new(),
            config,
            name,
        }
    }

    fn derive_name(config: &OsElmQNetConfig) -> String {
        match (config.l2_delta > 0.0, config.spectral_normalize) {
            (false, false) => "OS-ELM".to_string(),
            (true, false) => "OS-ELM-L2".to_string(),
            (false, true) => "OS-ELM-Lipschitz".to_string(),
            (true, true) => "OS-ELM-L2-Lipschitz".to_string(),
        }
    }

    /// Whether initial training has completed.
    pub fn is_initialized(&self) -> bool {
        self.online.is_initialized()
    }

    /// The agent configuration.
    pub fn config(&self) -> &OsElmQNetConfig {
        &self.config
    }

    /// Borrow the online (θ₁) learner — used by the FPGA layer and tests.
    pub fn online(&self) -> &OsElm<f64> {
        &self.online
    }

    /// Upper bound on the online network's Lipschitz constant
    /// (`σ_max(α)·σ_max(β)` for ReLU) — §3.3's monitored quantity.
    pub fn lipschitz_upper_bound(&self) -> f64 {
        elmrl_elm::lipschitz_upper_bound(
            self.online.model().alpha(),
            self.online.model().beta(),
            self.config.activation,
        )
    }

    fn q_for(&self, model: &ElmModel<f64>, state: &[f64]) -> Vec<f64> {
        self.encoder
            .encode_all_actions(state)
            .iter()
            .map(|input| model.predict_single(input)[0])
            .collect()
    }

    fn run_initial_training(&mut self, rng: &mut SmallRng) {
        let _ = rng;
        let start = Instant::now();
        let n = self.buffer.len();
        let input_dim = self.encoder.input_dim();
        let mut x = Matrix::<f64>::zeros(n, input_dim);
        let mut t = Matrix::<f64>::zeros(n, 1);
        for (i, obs) in self.buffer.iter().enumerate() {
            let encoded = self.encoder.encode(&obs.state, obs.action);
            for (j, &v) in encoded.iter().enumerate() {
                x[(i, j)] = v;
            }
            let max_next = max_q(&self.q_for(&self.target, &obs.next_state));
            t[(i, 0)] = self.config.target.target(obs.reward, max_next, obs.done);
        }
        // The plain OS-ELM design can hit a singular Gram matrix; the
        // NUMERICAL_DELTA in `elm_config` keeps this well-defined, so a
        // failure here is unexpected — surface it loudly in debug builds and
        // retry once with a fresh buffer otherwise.
        if self.online.init_train(&x, &t).is_err() {
            debug_assert!(false, "OS-ELM initial training failed unexpectedly");
            self.buffer.clear();
            return;
        }
        self.buffer.clear();
        self.ops.record(OpKind::InitTrain, start.elapsed());
    }

    /// One RLS update — the paper's per-step training cost. Allocation-free
    /// at steady state: the target-network Q evaluation, the input encoding
    /// and the OS-ELM rank-1 update all run through reusable workspaces.
    fn run_sequential_update(&mut self, obs: &Observation) {
        let start = Instant::now();
        let Self {
            config,
            encoder,
            online,
            target,
            scratch,
            ops,
            ..
        } = self;
        q_into(encoder, target, &obs.next_state, scratch);
        let max_next = max_q(&scratch.q);
        let target_q = config.target.target(obs.reward, max_next, obs.done);
        encoder.encode_into(&obs.state, obs.action, &mut scratch.enc);
        if online.seq_train_single(&scratch.enc, &[target_q]).is_err() {
            debug_assert!(false, "sequential update before initial training");
            return;
        }
        ops.record(OpKind::SeqTrain, start.elapsed());
    }
}

impl Agent for OsElmQNet {
    fn name(&self) -> &str {
        &self.name
    }

    fn hidden_dim(&self) -> usize {
        self.config.hidden_dim
    }

    fn act(&mut self, state: &[f64], rng: &mut SmallRng) -> usize {
        let start = Instant::now();
        let Self {
            config,
            encoder,
            policy,
            online,
            scratch,
            ops,
            ..
        } = self;
        q_into(encoder, online.model(), state, scratch);
        let kind = if online.is_initialized() {
            OpKind::PredictSeq
        } else {
            OpKind::PredictInit
        };
        ops.record_n(kind, config.num_actions as u64, start.elapsed());
        policy.select(&scratch.q, rng)
    }

    fn observe(&mut self, obs: &Observation, rng: &mut SmallRng) {
        if !self.is_initialized() {
            // Store phase: fill buffer D up to Ñ samples, then run the
            // initial training (Algorithm 1 lines 16–19).
            self.buffer.push(obs.clone());
            if self.buffer.len() >= self.config.hidden_dim {
                self.run_initial_training(rng);
            }
            return;
        }
        // Update phase: the random-update rule (Algorithm 1 lines 21–22).
        if self.config.update_gate(rng) {
            self.run_sequential_update(obs);
        }
    }

    fn end_episode(&mut self, episode_index: usize) {
        // θ₂ ← θ₁ every UPDATE_STEP episodes (Algorithm 1 lines 23–24).
        if self.config.target_sync_episodes > 0
            && (episode_index + 1) % self.config.target_sync_episodes == 0
        {
            self.target.copy_parameters_from(self.online.model());
        }
    }

    fn reset(&mut self, rng: &mut SmallRng) {
        self.online = OsElm::<f64>::new(&self.config.elm_config(), rng);
        self.target = self.online.model().clone();
        self.buffer.clear();
    }

    fn op_counts(&self) -> &OpCounts {
        &self.ops
    }

    fn q_values(&mut self, state: &[f64]) -> Vec<f64> {
        self.q_for(self.online.model(), state)
    }

    fn memory_footprint_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        let n = self.config.hidden_dim;
        let input = self.encoder.input_dim();
        // α + bias + β for both θ₁ and θ₂, plus P, plus the (bounded) buffer.
        let model = input * n + n + n; // per model
        let p = n * n;
        let buffer = self.buffer.capacity() * (2 * self.config.state_dim + 4);
        (2 * model + p + buffer) * f
    }

    fn snapshot(&self) -> Option<AgentSnapshot> {
        let state = OsElmQNetState {
            online: self.online.snapshot(),
            target: ModelSnapshot::capture(&self.target),
            buffer: self.buffer.clone(),
            ops: self.ops.clone(),
        };
        Some(AgentSnapshot::new(&self.name, &state))
    }

    fn restore(&mut self, snapshot: &AgentSnapshot) -> Result<(), String> {
        let state: OsElmQNetState = snapshot.decode(&self.name)?;
        self.online = OsElm::from_snapshot(&state.online);
        self.target = state.target.restore();
        // Keep the pre-sized buffer capacity the constructor established.
        self.buffer.clear();
        self.buffer.extend(state.buffer);
        self.ops = state.ops;
        Ok(())
    }
}

impl BatchAgent for OsElmQNet {
    /// One stacked `(B·A) × input` forward pass through θ₁ — bit-for-bit
    /// equal to per-sample [`Agent::q_values`].
    fn predict_batch(&mut self, states: &Matrix<f64>) -> Matrix<f64> {
        elm_q_batch(&self.encoder, self.online.model(), states)
    }

    /// The stacked forward through the agent's own [`BatchQScratch`] — the
    /// serve-worker hot path. Zero heap allocations once `out` and the
    /// scratch have seen the steady-state batch shape.
    fn predict_batch_into(&mut self, states: &Matrix<f64>, out: &mut Matrix<f64>) {
        elm_q_batch_into(
            &self.encoder,
            self.online.model(),
            states,
            &mut self.bscratch.q,
        );
        let q = self.bscratch.q.q();
        out.resize_zeroed(q.rows(), q.cols());
        out.as_mut_slice().copy_from_slice(q.as_slice());
    }

    /// ε-greedy through the batched kernel: same Q (bit for bit), same RNG
    /// draws, same action as [`Agent::act`] — minus the per-action matvecs.
    /// Records the same per-action prediction counters as [`Agent::act`],
    /// so modeled execution times stay comparable between the scalar and
    /// E-parallel drivers.
    fn act_row(&mut self, state_row: &Matrix<f64>, rng: &mut SmallRng) -> usize {
        let start = Instant::now();
        let q = self.predict_batch(state_row);
        let kind = if self.online.is_initialized() {
            OpKind::PredictSeq
        } else {
            OpKind::PredictInit
        };
        self.ops
            .record_n(kind, self.config.num_actions as u64, start.elapsed());
        self.policy.select(q.row(0), rng)
    }

    /// One engine tick's transitions, trained as batch-B RLS chunks of at
    /// most [`OsElmQNetConfig::chunk_cap`] transitions each (default
    /// [`DEFAULT_CHUNK_CAP`]; one chunk for any tick at or below the cap):
    /// the random-update rule draws one gate per transition (as the scalar
    /// path would), every surviving transition's Q-target comes from a
    /// single batched forward through the frozen target network θ₂
    /// (`elm_q_batch_into`, bit-for-bit the scalar per-action evaluation,
    /// hoisted over the whole tick since targets depend only on θ₂), and
    /// each chunk goes through [`elmrl_elm::OsElm::seq_train_batch`] — the
    /// B > 1 case of Eq. 6, block-exact w.r.t. B single-sample updates.
    /// Allocation-free at steady state; with `batch.len() == 1` it performs
    /// the same update the scalar [`Agent::observe`] would (chunk size 1).
    fn observe_batch(&mut self, batch: &[Observation], rng: &mut SmallRng) {
        // Store phase: transitions fill buffer D through the scalar path
        // until the initial training has run (fires mid-batch at most once).
        let mut start = 0;
        while start < batch.len() && !self.is_initialized() {
            self.observe(&batch[start], rng);
            start += 1;
        }
        let rest = &batch[start..];
        if rest.is_empty() {
            return;
        }
        // Update phase: the random-update rule, one draw per transition
        // (Algorithm 1 lines 21–22) — the same gate the scalar path uses.
        let mut selected = std::mem::take(&mut self.bscratch.selected);
        selected.clear();
        for i in 0..rest.len() {
            if self.config.update_gate(rng) {
                selected.push(i);
            }
        }
        if !selected.is_empty() {
            let started = Instant::now();
            let b = selected.len();
            let cap = self.config.chunk_cap.unwrap_or(DEFAULT_CHUNK_CAP).max(1);
            let Self {
                config,
                encoder,
                online,
                target,
                scratch,
                bscratch,
                ops,
                ..
            } = self;
            // The Q-targets depend only on the frozen θ₂, so the batched
            // target-network forward stays hoisted over the whole tick even
            // when the RLS update below is split into capped chunks.
            bscratch.next_states.resize_zeroed(b, config.state_dim);
            for (r, &i) in selected.iter().enumerate() {
                bscratch.next_states.set_row(r, &rest[i].next_state);
            }
            elm_q_batch_into(encoder, target, &bscratch.next_states, &mut bscratch.q);
            if b > cap {
                elmrl_telemetry::counter!("core.observe.chunk_splits").inc();
            }
            for (c, chunk) in selected.chunks(cap).enumerate() {
                let w = chunk.len();
                bscratch.x.resize_zeroed(w, encoder.input_dim());
                bscratch.t.resize_zeroed(w, 1);
                for (r, &i) in chunk.iter().enumerate() {
                    let obs = &rest[i];
                    encoder.encode_into(&obs.state, obs.action, &mut scratch.enc);
                    bscratch.x.set_row(r, &scratch.enc);
                    let max_next = max_q(bscratch.q.q.row(c * cap + r));
                    bscratch.t[(r, 0)] = config.target.target(obs.reward, max_next, obs.done);
                }
                if online.seq_train_batch(&bscratch.x, &bscratch.t).is_err() {
                    debug_assert!(false, "batched sequential update before initial training");
                }
            }
            ops.record_n(OpKind::SeqTrain, b as u64, started.elapsed());
        }
        self.bscratch.selected = selected;
    }
}

#[cfg(test)]
#[allow(deprecated)] // the cartpole() shims must keep working for seed tests
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn sample_obs(reward: f64, done: bool) -> Observation {
        Observation {
            state: vec![0.01, -0.02, 0.03, 0.04],
            action: 1,
            reward,
            next_state: vec![0.02, -0.01, 0.02, 0.05],
            done,
            truncated: false,
        }
    }

    #[test]
    fn design_names_follow_knobs() {
        let mut r = rng(0);
        let plain = OsElmQNet::new(OsElmQNetConfig::cartpole(16, 0.0, false), &mut r);
        assert_eq!(plain.name(), "OS-ELM");
        let l2 = OsElmQNet::new(OsElmQNetConfig::cartpole(16, 1.0, false), &mut r);
        assert_eq!(l2.name(), "OS-ELM-L2");
        let lip = OsElmQNet::new(OsElmQNetConfig::cartpole(16, 0.0, true), &mut r);
        assert_eq!(lip.name(), "OS-ELM-Lipschitz");
        let both = OsElmQNet::new(OsElmQNetConfig::cartpole(16, 0.5, true), &mut r);
        assert_eq!(both.name(), "OS-ELM-L2-Lipschitz");
        assert_eq!(both.hidden_dim(), 16);
    }

    #[test]
    fn cartpole_config_matches_paper_parameters() {
        let c = OsElmQNetConfig::cartpole(64, 0.5, true);
        assert_eq!(c.state_dim, 4);
        assert_eq!(c.num_actions, 2);
        assert_eq!(c.exploit_prob, 0.7);
        assert_eq!(c.update_prob, 0.5);
        assert_eq!(c.target_sync_episodes, 2);
        assert!(c.target.clip);
        assert_eq!(c.activation, HiddenActivation::ReLU);
    }

    #[test]
    fn initial_training_triggers_when_buffer_fills() {
        let mut r = rng(1);
        let mut agent = OsElmQNet::new(OsElmQNetConfig::cartpole(8, 0.5, true), &mut r);
        assert!(!agent.is_initialized());
        for i in 0..8 {
            assert!(
                !agent.is_initialized(),
                "should not initialise before Ñ samples"
            );
            let mut obs = sample_obs(0.0, false);
            obs.state[0] = i as f64 * 0.01; // make samples distinct
            agent.observe(&obs, &mut r);
        }
        assert!(agent.is_initialized());
        assert_eq!(agent.op_counts().count(OpKind::InitTrain), 1);
    }

    #[test]
    fn sequential_updates_respect_random_update_probability() {
        let mut r = rng(2);
        let mut config = OsElmQNetConfig::cartpole(8, 0.5, true);
        config.update_prob = 0.0; // never update
        let mut agent = OsElmQNet::new(config, &mut r);
        for i in 0..8 {
            let mut obs = sample_obs(0.0, false);
            obs.state[1] = i as f64 * 0.02;
            agent.observe(&obs, &mut r);
        }
        for _ in 0..20 {
            agent.observe(&sample_obs(0.0, false), &mut r);
        }
        assert_eq!(agent.op_counts().count(OpKind::SeqTrain), 0);

        let mut config2 = OsElmQNetConfig::cartpole(8, 0.5, true);
        config2.random_update = false; // always update (ablation)
        let mut agent2 = OsElmQNet::new(config2, &mut r);
        for i in 0..8 {
            let mut obs = sample_obs(0.0, false);
            obs.state[1] = i as f64 * 0.02;
            agent2.observe(&obs, &mut r);
        }
        for _ in 0..20 {
            agent2.observe(&sample_obs(0.0, false), &mut r);
        }
        assert_eq!(agent2.op_counts().count(OpKind::SeqTrain), 20);
    }

    #[test]
    fn predictions_are_counted_by_phase() {
        let mut r = rng(3);
        let mut agent = OsElmQNet::new(OsElmQNetConfig::cartpole(8, 0.5, true), &mut r);
        let state = [0.0, 0.0, 0.0, 0.0];
        let _ = agent.act(&state, &mut r);
        assert_eq!(agent.op_counts().count(OpKind::PredictInit), 2); // one per action
        for i in 0..8 {
            let mut obs = sample_obs(0.0, false);
            obs.state[2] = i as f64 * 0.01;
            agent.observe(&obs, &mut r);
        }
        let _ = agent.act(&state, &mut r);
        assert_eq!(agent.op_counts().count(OpKind::PredictSeq), 2);
    }

    #[test]
    fn learning_drives_q_toward_clipped_targets() {
        // Feed the same failing transition repeatedly: Q(s, a) must move
        // towards the clipped target −1 and stay inside [−1, 1]+tolerance.
        let mut r = rng(4);
        let mut config = OsElmQNetConfig::cartpole(16, 0.5, true);
        config.random_update = false;
        let mut agent = OsElmQNet::new(config, &mut r);
        for i in 0..16 {
            let mut obs = sample_obs(-1.0, true);
            obs.state[0] = (i as f64) * 0.03 - 0.2;
            obs.action = i % 2;
            agent.observe(&obs, &mut r);
        }
        let fail_obs = sample_obs(-1.0, true);
        for _ in 0..50 {
            agent.observe(&fail_obs, &mut r);
        }
        let q = agent.q_values(&fail_obs.state);
        assert!(
            q[1] < -0.5,
            "Q for the failing action should approach −1, got {}",
            q[1]
        );
    }

    #[test]
    fn target_sync_follows_update_step() {
        let mut r = rng(5);
        let mut agent = OsElmQNet::new(OsElmQNetConfig::cartpole(8, 0.5, true), &mut r);
        for i in 0..8 {
            let mut obs = sample_obs(-1.0, true);
            obs.state[0] = i as f64 * 0.05;
            agent.observe(&obs, &mut r);
        }
        // θ₂ still the zero-β copy before any sync.
        let q_target_before = max_q(&agent.q_for(&agent.target, &[0.0; 4]));
        assert_eq!(q_target_before, 0.0);
        agent.end_episode(0); // episode 1 → (0+1) % 2 != 0 → no sync
        assert_eq!(max_q(&agent.q_for(&agent.target, &[0.0; 4])), 0.0);
        agent.end_episode(1); // (1+1) % 2 == 0 → sync
        let q_online = max_q(&agent.q_values(&[0.0; 4]));
        let q_target = max_q(&agent.q_for(&agent.target, &[0.0; 4]));
        assert!((q_online - q_target).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_learned_state() {
        let mut r = rng(6);
        let mut agent = OsElmQNet::new(OsElmQNetConfig::cartpole(8, 0.5, true), &mut r);
        for i in 0..8 {
            let mut obs = sample_obs(-1.0, true);
            obs.state[0] = i as f64 * 0.05;
            agent.observe(&obs, &mut r);
        }
        assert!(agent.is_initialized());
        agent.reset(&mut r);
        assert!(!agent.is_initialized());
        assert_eq!(agent.q_values(&[0.0; 4]), vec![0.0, 0.0]);
    }

    #[test]
    fn spectral_normalization_bounds_lipschitz_constant() {
        let mut r = rng(7);
        let normalized = OsElmQNet::new(OsElmQNetConfig::cartpole(32, 0.5, true), &mut r);
        let raw = OsElmQNet::new(OsElmQNetConfig::cartpole(32, 0.5, false), &mut r);
        // With zero β both bounds are 0; compare α's σ_max directly.
        assert!(normalized.online.model().alpha_sigma_max() <= 1.0 + 1e-9);
        assert!(raw.online.model().alpha_sigma_max() > 1.0);
    }

    /// Drive one agent through its init phase and then a single B-wide
    /// `observe_batch` tick, returning the resulting β as a flat vector.
    fn beta_after_one_tick(chunk_cap: Option<usize>, tick_width: usize) -> Vec<f64> {
        let mut r = rng(42);
        let mut config = OsElmQNetConfig::cartpole(16, 0.5, true);
        config.random_update = false; // every transition trains
        config.chunk_cap = chunk_cap;
        let mut agent = OsElmQNet::new(config, &mut r);
        for i in 0..16 {
            let mut obs = sample_obs(0.0, false);
            obs.state[0] = i as f64 * 0.03 - 0.2;
            obs.action = i % 2;
            agent.observe(&obs, &mut r);
        }
        assert!(agent.is_initialized());
        let tick: Vec<Observation> = (0..tick_width)
            .map(|i| {
                let mut obs = sample_obs(if i % 3 == 0 { -1.0 } else { 0.0 }, i % 3 == 0);
                obs.state[1] = i as f64 * 0.07 - 0.15;
                obs.next_state[2] = i as f64 * -0.04 + 0.1;
                obs.action = i % 2;
                obs
            })
            .collect();
        agent.observe_batch(&tick, &mut r);
        agent.online.model().beta().as_slice().to_vec()
    }

    #[test]
    fn chunk_cap_splits_are_deterministic_but_not_bit_identical_to_one_chunk() {
        // The OS-ELM property makes chunked RLS *algebraically* equivalent to
        // the one-chunk update, so trajectories rarely diverge (the harness
        // pins that); here β is observable, and the float-level rounding
        // difference from re-associating the B-wide update must show up.
        let uncapped = beta_after_one_tick(None, 8); // 8 < DEFAULT_CHUNK_CAP
        let capped = beta_after_one_tick(Some(2), 8); // four chunks of 2
        assert_eq!(
            capped,
            beta_after_one_tick(Some(2), 8),
            "the capped update must be bit-for-bit deterministic"
        );
        assert_eq!(
            uncapped,
            beta_after_one_tick(None, 8),
            "the uncapped update must be bit-for-bit deterministic"
        );
        assert_ne!(
            capped, uncapped,
            "splitting a B=8 tick into cap-2 chunks re-associates the RLS \
             arithmetic, so β must differ at float level"
        );
        // But only at float level: the chunked update is the same algebra.
        let max_abs_diff = capped
            .iter()
            .zip(&uncapped)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        assert!(
            max_abs_diff < 1e-9,
            "chunk splitting must stay algebraically equivalent, got {max_abs_diff}"
        );
        // A cap at or above the tick width is exactly the one-chunk path.
        assert_eq!(beta_after_one_tick(Some(8), 8), uncapped);
    }

    #[test]
    fn memory_footprint_grows_with_hidden_size() {
        let mut r = rng(8);
        let small = OsElmQNet::new(OsElmQNetConfig::cartpole(32, 0.5, true), &mut r);
        let large = OsElmQNet::new(OsElmQNetConfig::cartpole(128, 0.5, true), &mut r);
        assert!(large.memory_footprint_bytes() > small.memory_footprint_bytes());
        // P (Ñ²) dominates: quadrupling Ñ should grow memory by ~16×.
        let ratio = large.memory_footprint_bytes() as f64 / small.memory_footprint_bytes() as f64;
        assert!(ratio > 8.0, "expected quadratic growth, got ratio {ratio}");
    }
}
