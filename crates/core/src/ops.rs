//! Per-operation counters behind the execution-time breakdowns of
//! Figures 5 and 6.
//!
//! The paper splits the time to complete CartPole into seven operation
//! classes: `init_train`, `seq_train`, `predict_init`, `predict_seq` for the
//! ELM/OS-ELM designs and `train_DQN`, `predict_1`, `predict_32` for the DQN
//! baseline. Every agent in this crate counts how many times it performs each
//! class (and with what hidden size), so the harness can either report
//! measured wall-clock per class or apply the Cortex-A9 / FPGA cost model.
//!
//! Since PR 8 there is **one metrics path**: every `record`/`record_n` also
//! forwards to the global [`elmrl_telemetry`] registry (histogram
//! `op.<label>`), so a live run's per-module latency table and the
//! per-trial artefact counters come from the same call sites. The local
//! per-agent maps are kept — they are what gets serialised into agent
//! snapshots and [`crate::trainer::TrainingResult`] — which makes this type
//! a thin adapter over the registry, not a second bookkeeping system.
//! Forwarding is a no-op while telemetry is disabled and never perturbs the
//! recorded values, RNG streams or artefact bytes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Duration;

/// The operation classes of Figures 5 and 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// OS-ELM/ELM prediction performed before initial training completed.
    PredictInit,
    /// OS-ELM/ELM prediction performed after initial training.
    PredictSeq,
    /// ELM/OS-ELM initial (batch) training.
    InitTrain,
    /// OS-ELM sequential (batch-size-1) training step.
    SeqTrain,
    /// One DQN gradient step (mini-batch backprop + Adam).
    TrainDqn,
    /// DQN forward pass with batch size 1 (action selection).
    Predict1,
    /// DQN forward pass with batch size 32 (target computation on a batch).
    Predict32,
}

impl OpKind {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::PredictInit => "predict_init",
            OpKind::PredictSeq => "predict_seq",
            OpKind::InitTrain => "init_train",
            OpKind::SeqTrain => "seq_train",
            OpKind::TrainDqn => "train_DQN",
            OpKind::Predict1 => "predict_1",
            OpKind::Predict32 => "predict_32",
        }
    }

    /// All operation kinds, in the order the paper lists them.
    pub fn all() -> [OpKind; 7] {
        [
            OpKind::SeqTrain,
            OpKind::PredictSeq,
            OpKind::InitTrain,
            OpKind::PredictInit,
            OpKind::TrainDqn,
            OpKind::Predict1,
            OpKind::Predict32,
        ]
    }

    /// The registry name of this class's latency histogram (`op.<label>`).
    pub fn metric_name(self) -> &'static str {
        match self {
            OpKind::PredictInit => "op.predict_init",
            OpKind::PredictSeq => "op.predict_seq",
            OpKind::InitTrain => "op.init_train",
            OpKind::SeqTrain => "op.seq_train",
            OpKind::TrainDqn => "op.train_DQN",
            OpKind::Predict1 => "op.predict_1",
            OpKind::Predict32 => "op.predict_32",
        }
    }
}

/// The global latency histogram of an operation class. Handles are resolved
/// once and cached (index = declaration order of [`OpKind`]), so the hot
/// record path never touches the registry lock.
fn op_histogram(kind: OpKind) -> &'static elmrl_telemetry::Histogram {
    static TABLE: OnceLock<[&'static elmrl_telemetry::Histogram; 7]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        [
            OpKind::PredictInit,
            OpKind::PredictSeq,
            OpKind::InitTrain,
            OpKind::SeqTrain,
            OpKind::TrainDqn,
            OpKind::Predict1,
            OpKind::Predict32,
        ]
        .map(|k| elmrl_telemetry::histogram(k.metric_name()))
    });
    table[kind as usize]
}

/// Counts and accumulated wall-clock time per operation class.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    counts: BTreeMap<OpKind, u64>,
    /// Accumulated wall-clock nanoseconds per class (measured on the host).
    nanos: BTreeMap<OpKind, u128>,
}

impl OpCounts {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one occurrence of `kind` taking `elapsed` of host time.
    pub fn record(&mut self, kind: OpKind, elapsed: Duration) {
        *self.counts.entry(kind).or_insert(0) += 1;
        *self.nanos.entry(kind).or_insert(0) += elapsed.as_nanos();
        if elmrl_telemetry::enabled() {
            op_histogram(kind).record_duration(elapsed);
        }
    }

    /// Record `n` occurrences at once (used by batch operations).
    pub fn record_n(&mut self, kind: OpKind, n: u64, elapsed: Duration) {
        *self.counts.entry(kind).or_insert(0) += n;
        *self.nanos.entry(kind).or_insert(0) += elapsed.as_nanos();
        if elmrl_telemetry::enabled() {
            op_histogram(kind).record_batch(n, elapsed);
        }
    }

    /// Number of occurrences of `kind`.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Accumulated host wall-clock for `kind`.
    pub fn elapsed(&self, kind: OpKind) -> Duration {
        Duration::from_nanos(self.nanos.get(&kind).copied().unwrap_or(0) as u64)
    }

    /// Total host wall-clock across all classes.
    pub fn total_elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.values().sum::<u128>() as u64)
    }

    /// Total number of recorded operations.
    pub fn total_count(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Merge another counter set into this one (used when aggregating trials).
    pub fn merge(&mut self, other: &OpCounts) {
        for (&k, &v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.nanos {
            *self.nanos.entry(k).or_insert(0) += v;
        }
    }

    /// Reset all counters to zero.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.nanos.clear();
    }

    /// Iterate `(kind, count, elapsed)` over the classes that occurred.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, u64, Duration)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c, self.elapsed(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(OpKind::SeqTrain.label(), "seq_train");
        assert_eq!(OpKind::TrainDqn.label(), "train_DQN");
        assert_eq!(OpKind::Predict32.label(), "predict_32");
        assert_eq!(OpKind::all().len(), 7);
    }

    #[test]
    fn record_and_query() {
        let mut ops = OpCounts::new();
        ops.record(OpKind::SeqTrain, Duration::from_micros(10));
        ops.record(OpKind::SeqTrain, Duration::from_micros(20));
        ops.record(OpKind::Predict1, Duration::from_micros(5));
        assert_eq!(ops.count(OpKind::SeqTrain), 2);
        assert_eq!(ops.count(OpKind::Predict1), 1);
        assert_eq!(ops.count(OpKind::InitTrain), 0);
        assert_eq!(ops.elapsed(OpKind::SeqTrain), Duration::from_micros(30));
        assert_eq!(ops.total_elapsed(), Duration::from_micros(35));
        assert_eq!(ops.total_count(), 3);
    }

    #[test]
    fn record_n_counts_multiple() {
        let mut ops = OpCounts::new();
        ops.record_n(OpKind::Predict32, 4, Duration::from_micros(100));
        assert_eq!(ops.count(OpKind::Predict32), 4);
        assert_eq!(ops.elapsed(OpKind::Predict32), Duration::from_micros(100));
    }

    #[test]
    fn merge_and_clear() {
        let mut a = OpCounts::new();
        a.record(OpKind::InitTrain, Duration::from_millis(1));
        let mut b = OpCounts::new();
        b.record(OpKind::InitTrain, Duration::from_millis(2));
        b.record(OpKind::SeqTrain, Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(OpKind::InitTrain), 2);
        assert_eq!(a.count(OpKind::SeqTrain), 1);
        assert_eq!(a.elapsed(OpKind::InitTrain), Duration::from_millis(3));
        a.clear();
        assert_eq!(a.total_count(), 0);
        assert_eq!(a.total_elapsed(), Duration::ZERO);
    }

    #[test]
    fn records_forward_to_the_global_registry() {
        let h = elmrl_telemetry::histogram(OpKind::SeqTrain.metric_name());
        let before = h.count();
        elmrl_telemetry::set_enabled(true);
        let mut ops = OpCounts::new();
        ops.record(OpKind::SeqTrain, Duration::from_micros(3));
        ops.record_n(OpKind::SeqTrain, 4, Duration::from_micros(8));
        elmrl_telemetry::set_enabled(false);
        // ≥ rather than ==: other test threads record concurrently while the
        // flag is up; this thread alone contributed 1 + 4 samples.
        assert!(
            h.count() - before >= 5,
            "forwarded {} samples",
            h.count() - before
        );
        // Local aggregates are unaffected by the forwarding path.
        assert_eq!(ops.count(OpKind::SeqTrain), 5);
        // Disabled again: records stay local.
        let frozen = h.count();
        ops.record(OpKind::SeqTrain, Duration::from_micros(3));
        assert_eq!(h.count(), frozen);
        assert_eq!(ops.count(OpKind::SeqTrain), 6);
    }

    #[test]
    fn iter_lists_occurred_kinds() {
        let mut ops = OpCounts::new();
        ops.record(OpKind::PredictSeq, Duration::from_nanos(1));
        ops.record(OpKind::SeqTrain, Duration::from_nanos(2));
        let kinds: Vec<OpKind> = ops.iter().map(|(k, _, _)| k).collect();
        assert_eq!(kinds.len(), 2);
        assert!(kinds.contains(&OpKind::PredictSeq));
        assert!(kinds.contains(&OpKind::SeqTrain));
    }
}
