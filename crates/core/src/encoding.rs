//! The simplified output model (§3.1, Figure 2).
//!
//! A DQN maps `state → (Q(s, a₀), …, Q(s, a_{m−1}))`. Because ELM/OS-ELM are
//! single-hidden-layer networks with an analytically solved output layer, the
//! paper instead feeds `(state, action)` as one input vector and reads a
//! *scalar* Q-value: for CartPole the input size is `4 states + 1 action = 5`
//! (§4.2). Selecting an action then means evaluating the network once per
//! candidate action and taking the argmax.

use serde::{Deserialize, Serialize};

/// How the action component is appended to the state vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionEncoding {
    /// A single scalar holding the action index (the paper's choice — input
    /// size = `n_states + 1`).
    Scalar,
    /// A one-hot block of length `num_actions` (input size =
    /// `n_states + n_actions`), provided for the encoding ablation.
    OneHot,
}

/// Encoder from `(state, action)` pairs to network input vectors.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateActionEncoder {
    state_dim: usize,
    num_actions: usize,
    encoding: ActionEncoding,
}

impl StateActionEncoder {
    /// Create an encoder with the paper's scalar action encoding.
    pub fn new(state_dim: usize, num_actions: usize) -> Self {
        Self::with_encoding(state_dim, num_actions, ActionEncoding::Scalar)
    }

    /// Create an encoder with an explicit encoding choice.
    pub fn with_encoding(state_dim: usize, num_actions: usize, encoding: ActionEncoding) -> Self {
        assert!(state_dim > 0, "state dimension must be positive");
        assert!(num_actions > 0, "need at least one action");
        Self {
            state_dim,
            num_actions,
            encoding,
        }
    }

    /// Length of the encoded input vector.
    pub fn input_dim(&self) -> usize {
        match self.encoding {
            ActionEncoding::Scalar => self.state_dim + 1,
            ActionEncoding::OneHot => self.state_dim + self.num_actions,
        }
    }

    /// Number of state components.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Number of discrete actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// The encoding variant in use.
    pub fn encoding(&self) -> ActionEncoding {
        self.encoding
    }

    /// Encode one `(state, action)` pair.
    pub fn encode(&self, state: &[f64], action: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.input_dim());
        self.encode_into(state, action, &mut out);
        out
    }

    /// [`StateActionEncoder::encode`] into a caller-owned buffer (cleared
    /// and refilled, capacity reused) — the allocation-free form the
    /// per-step training path uses.
    pub fn encode_into(&self, state: &[f64], action: usize, out: &mut Vec<f64>) {
        assert_eq!(
            state.len(),
            self.state_dim,
            "state has {} components, expected {}",
            state.len(),
            self.state_dim
        );
        assert!(action < self.num_actions, "action {action} out of range");
        out.clear();
        out.extend_from_slice(state);
        match self.encoding {
            ActionEncoding::Scalar => out.push(action as f64),
            ActionEncoding::OneHot => {
                for a in 0..self.num_actions {
                    out.push(if a == action { 1.0 } else { 0.0 });
                }
            }
        }
    }

    /// Encode the same state paired with every action — the batch used to
    /// compute `max_a Q(s, a)` in one pass.
    pub fn encode_all_actions(&self, state: &[f64]) -> Vec<Vec<f64>> {
        (0..self.num_actions)
            .map(|a| self.encode(state, a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartpole_scalar_encoding_has_input_size_five() {
        // §4.2: "its input size ... is five in the CartPole-v0 task"
        let enc = StateActionEncoder::new(4, 2);
        assert_eq!(enc.input_dim(), 5);
        assert_eq!(enc.state_dim(), 4);
        assert_eq!(enc.num_actions(), 2);
        assert_eq!(enc.encoding(), ActionEncoding::Scalar);
        let v = enc.encode(&[0.1, 0.2, 0.3, 0.4], 1);
        assert_eq!(v, vec![0.1, 0.2, 0.3, 0.4, 1.0]);
        let v0 = enc.encode(&[0.1, 0.2, 0.3, 0.4], 0);
        assert_eq!(v0[4], 0.0);
    }

    #[test]
    fn one_hot_encoding_size_and_content() {
        let enc = StateActionEncoder::with_encoding(4, 3, ActionEncoding::OneHot);
        assert_eq!(enc.input_dim(), 7);
        let v = enc.encode(&[1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn encode_all_actions_enumerates_actions() {
        let enc = StateActionEncoder::new(2, 3);
        let all = enc.encode_all_actions(&[0.5, -0.5]);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], vec![0.5, -0.5, 0.0]);
        assert_eq!(all[2], vec![0.5, -0.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_action_rejected() {
        let enc = StateActionEncoder::new(2, 2);
        let _ = enc.encode(&[0.0, 0.0], 5);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn wrong_state_length_rejected() {
        let enc = StateActionEncoder::new(2, 2);
        let _ = enc.encode(&[0.0], 0);
    }
}
