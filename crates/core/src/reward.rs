//! Reward shaping into the `[-1, 1]` range the Q-value clipping assumes.
//!
//! §3.1 states: "In a typical setting for reinforcement learning, the maximum
//! reward given by the environment is 1 and the minimum reward is −1." Gym's
//! raw CartPole-v0 reward (+1 every step) does not satisfy that — bootstrapped
//! targets would saturate at the clip bound and carry no information — so,
//! like the DQN-on-CartPole setups this line of work builds on, the agents
//! train on a shaped reward:
//!
//! * `0` for an ordinary surviving step,
//! * `−1` when the episode terminates by failure (pole fell / cart left the
//!   track),
//! * `+1` when the episode is truncated at the step cap (the pole survived).
//!
//! The *reported* episode return (Figure 4's y-axis) is still the raw number
//! of surviving steps; shaping only affects the learning targets. The raw
//! pass-through variant is kept for environments whose rewards already live
//! in `[-1, 1]` (e.g. the shaped MountainCar ablation).

use serde::{Deserialize, Serialize};

/// Reward-shaping rule applied to transitions before they reach the learner.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardShaping {
    /// Use the environment's reward unchanged.
    Raw,
    /// The survival-task shaping described in the module docs (the default
    /// for CartPole in this reproduction).
    SurvivalSigned,
}

impl RewardShaping {
    /// Shape one transition's reward.
    ///
    /// * `raw_reward` — the environment's reward;
    /// * `done` — episode terminated by the task's failure condition;
    /// * `truncated` — episode ended only because of the step cap.
    pub fn shape(self, raw_reward: f64, done: bool, truncated: bool) -> f64 {
        match self {
            RewardShaping::Raw => raw_reward,
            RewardShaping::SurvivalSigned => {
                if done {
                    -1.0
                } else if truncated {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl Default for RewardShaping {
    fn default() -> Self {
        RewardShaping::SurvivalSigned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_passes_through() {
        assert_eq!(RewardShaping::Raw.shape(0.37, false, false), 0.37);
        assert_eq!(RewardShaping::Raw.shape(-5.0, true, false), -5.0);
    }

    #[test]
    fn survival_shaping_matches_paper_range() {
        let s = RewardShaping::SurvivalSigned;
        assert_eq!(s.shape(1.0, false, false), 0.0);
        assert_eq!(s.shape(1.0, true, false), -1.0);
        assert_eq!(s.shape(1.0, false, true), 1.0);
        // every shaped value is inside [-1, 1]
        for (d, t) in [(false, false), (true, false), (false, true)] {
            let v = s.shape(123.0, d, t);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn default_is_survival_shaping() {
        assert_eq!(RewardShaping::default(), RewardShaping::SurvivalSigned);
    }
}
