//! Reward shaping into the `[-1, 1]` range the Q-value clipping assumes.
//!
//! The shaping rules themselves now live in the workload registry
//! ([`elmrl_gym::workload`]) so every registered environment can declare its
//! own mapping; this module re-exports the type so existing
//! `elmrl_core::reward::RewardShaping` paths keep working.
//!
//! The original CartPole rationale (§3.1: "the maximum reward given by the
//! environment is 1 and the minimum reward is −1"): Gym's raw CartPole-v0
//! reward (+1 every step) would saturate the clipped bootstrapped targets, so
//! the agents train on [`RewardShaping::SurvivalSigned`] — `0` for an
//! ordinary surviving step, `−1` on failure, `+1` on surviving to the step
//! cap. The *reported* episode return (Figure 4's y-axis) is still the raw
//! number of surviving steps; shaping only affects the learning targets.

pub use elmrl_gym::workload::RewardShaping;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_passes_through() {
        assert_eq!(RewardShaping::Raw.shape(0.37, false, false), 0.37);
        assert_eq!(RewardShaping::Raw.shape(-5.0, true, false), -5.0);
    }

    #[test]
    fn survival_shaping_matches_paper_range() {
        let s = RewardShaping::SurvivalSigned;
        assert_eq!(s.shape(1.0, false, false), 0.0);
        assert_eq!(s.shape(1.0, true, false), -1.0);
        assert_eq!(s.shape(1.0, false, true), 1.0);
        // every shaped value is inside [-1, 1]
        for (d, t) in [(false, false), (true, false), (false, true)] {
            let v = s.shape(123.0, d, t);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn default_is_survival_shaping() {
        assert_eq!(RewardShaping::default(), RewardShaping::SurvivalSigned);
    }

    #[test]
    fn all_shapings_stay_in_clip_range_on_terminal_steps() {
        for shaping in [
            RewardShaping::SurvivalSigned,
            RewardShaping::GoalSigned,
            RewardShaping::Scaled { divisor: 16.3 },
        ] {
            for (d, t) in [(false, false), (true, false), (false, true)] {
                let v = shaping.shape(-16.3, d, t);
                assert!((-1.0..=1.0).contains(&v), "{shaping:?} ({d},{t}) → {v}");
            }
        }
    }
}
