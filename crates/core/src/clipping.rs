//! Q-value clipping (§3.1) and target construction.
//!
//! ELM/OS-ELM drive their training error to zero for whatever target they are
//! given, so a single outlier target can blow up `β`. The paper therefore
//! clips every Q-learning target into `[-1, 1]`:
//!
//! ```text
//! target = clip(−1, rₜ + (1 − dₜ)·γ·max_a Q_θ₂(sₜ₊₁, a), 1)
//! ```
//!
//! (Algorithm 1, lines 19 and 22; the `(1 − dₜ)` factor removes the bootstrap
//! term on terminal transitions.)

use serde::{Deserialize, Serialize};

/// Configuration of the target computation shared by every Q-network design.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TargetConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// Whether to clip targets into `[clip_min, clip_max]`.
    pub clip: bool,
    /// Lower clipping bound (−1 in the paper).
    pub clip_min: f64,
    /// Upper clipping bound (+1 in the paper).
    pub clip_max: f64,
}

impl Default for TargetConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            clip: true,
            clip_min: -1.0,
            clip_max: 1.0,
        }
    }
}

impl TargetConfig {
    /// A config with clipping disabled (used by the clipping ablation and by
    /// the DQN baseline, which relies on the Huber loss instead).
    pub fn unclipped(gamma: f64) -> Self {
        Self {
            gamma,
            clip: false,
            clip_min: f64::NEG_INFINITY,
            clip_max: f64::INFINITY,
        }
    }

    /// Compute the (possibly clipped) Q-learning target
    /// `r + (1 − done)·γ·max_next`.
    pub fn target(&self, reward: f64, max_next_q: f64, done: bool) -> f64 {
        let bootstrap = if done { 0.0 } else { self.gamma * max_next_q };
        let raw = reward + bootstrap;
        if self.clip {
            raw.clamp(self.clip_min, self.clip_max)
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_range() {
        let c = TargetConfig::default();
        assert!(c.clip);
        assert_eq!(c.clip_min, -1.0);
        assert_eq!(c.clip_max, 1.0);
        assert!((c.gamma - 0.99).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_removed_on_terminal_transitions() {
        let c = TargetConfig {
            gamma: 0.9,
            clip: false,
            clip_min: -1.0,
            clip_max: 1.0,
        };
        assert_eq!(c.target(0.5, 100.0, true), 0.5);
        assert_eq!(c.target(0.5, 1.0, false), 0.5 + 0.9);
    }

    #[test]
    fn clipping_bounds_targets() {
        let c = TargetConfig::default();
        // large positive bootstrap clipped to +1
        assert_eq!(c.target(1.0, 50.0, false), 1.0);
        // large negative clipped to −1
        assert_eq!(c.target(-1.0, -50.0, false), -1.0);
        // inside the range is untouched
        let inside = c.target(0.1, 0.2, false);
        assert!((inside - (0.1 + 0.99 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn unclipped_config_passes_outliers_through() {
        let c = TargetConfig::unclipped(0.99);
        assert!(c.target(1.0, 1e6, false) > 1e5);
        assert!(c.target(-1.0, -1e6, false) < -1e5);
    }

    #[test]
    fn terminal_failure_target_is_the_raw_reward() {
        // With the paper's shaped reward (−1 on failure) the terminal target
        // is exactly −1 — the signal the whole scheme learns from.
        let c = TargetConfig::default();
        assert_eq!(c.target(-1.0, 0.7, true), -1.0);
    }
}
