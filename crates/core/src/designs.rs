//! The evaluated designs (§4.1) as a factory enum.
//!
//! Seven designs are compared in the paper. Six are pure software and built
//! here; the seventh (`FPGA`) is the same algorithm as OS-ELM-L2-Lipschitz
//! running through the fixed-point datapath simulator and is constructed by
//! `elmrl-fpga` (which depends on this crate) — [`Design::build`] therefore
//! covers designs (1)–(6) and the harness plugs the FPGA agent in through the
//! same [`Agent`] trait object.

use crate::agent::Agent;
use crate::batch::BatchAgent;
use crate::clipping::TargetConfig;
use crate::dqn::{DqnAgent, DqnConfig};
use crate::elm_qnet::{ElmQNet, ElmQNetConfig};
use crate::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
use elmrl_gym::{EnvSpec, Workload};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// The designs of §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// (1) ELM Q-Network with the simplified output model and Q-value clipping.
    Elm,
    /// (2) OS-ELM Q-Network (+ random update), no regularisation.
    OsElm,
    /// (3) OS-ELM with L2 regularisation of β (δ = 1).
    OsElmL2,
    /// (4) OS-ELM with spectral normalization of α.
    OsElmLipschitz,
    /// (5) OS-ELM with both (δ = 0.5) — the paper's recommended software design.
    OsElmL2Lipschitz,
    /// (6) The three-layer DQN baseline.
    Dqn,
    /// (7) The FPGA fixed-point implementation of (5); built by `elmrl-fpga`.
    Fpga,
}

impl Design {
    /// All software designs, in the paper's order.
    pub fn software_designs() -> [Design; 6] {
        [
            Design::Elm,
            Design::OsElm,
            Design::OsElmL2,
            Design::OsElmLipschitz,
            Design::OsElmL2Lipschitz,
            Design::Dqn,
        ]
    }

    /// All seven designs.
    pub fn all_designs() -> [Design; 7] {
        [
            Design::Elm,
            Design::OsElm,
            Design::OsElmL2,
            Design::OsElmLipschitz,
            Design::OsElmL2Lipschitz,
            Design::Dqn,
            Design::Fpga,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Design::Elm => "ELM",
            Design::OsElm => "OS-ELM",
            Design::OsElmL2 => "OS-ELM-L2",
            Design::OsElmLipschitz => "OS-ELM-Lipschitz",
            Design::OsElmL2Lipschitz => "OS-ELM-L2-Lipschitz",
            Design::Dqn => "DQN",
            Design::Fpga => "FPGA",
        }
    }

    /// The L2 regularisation strength δ the paper assigns to this design
    /// (§4.1: δ = 1 for OS-ELM-L2 and δ = 0.5 for OS-ELM-L2-Lipschitz).
    pub fn l2_delta(self) -> f64 {
        match self {
            Design::OsElmL2 => 1.0,
            Design::OsElmL2Lipschitz | Design::Fpga => 0.5,
            _ => 0.0,
        }
    }

    /// Whether this design spectrally normalises α.
    pub fn spectral_normalize(self) -> bool {
        matches!(
            self,
            Design::OsElmLipschitz | Design::OsElmL2Lipschitz | Design::Fpga
        )
    }

    /// Whether this design trains through the chunked OS-ELM RLS update —
    /// i.e. whether [`DesignConfig::chunk_cap`] (and the
    /// [`crate::oselm_qnet::DEFAULT_CHUNK_CAP`] fallback) applies to it.
    pub fn uses_chunked_rls(self) -> bool {
        matches!(
            self,
            Design::OsElm | Design::OsElmL2 | Design::OsElmLipschitz | Design::OsElmL2Lipschitz
        )
    }

    /// Build the agent for this design. Panics for [`Design::Fpga`], which is
    /// constructed by `elmrl-fpga::FpgaAgent::new` instead.
    pub fn build(self, config: &DesignConfig, rng: &mut SmallRng) -> Box<dyn Agent> {
        match self {
            Design::Elm => Box::new(ElmQNet::new(ElmQNetConfig::from_design(config), rng)),
            Design::OsElm | Design::OsElmL2 | Design::OsElmLipschitz | Design::OsElmL2Lipschitz => {
                Box::new(OsElmQNet::new(
                    OsElmQNetConfig::from_design(
                        config,
                        self.l2_delta(),
                        self.spectral_normalize(),
                    ),
                    rng,
                ))
            }
            Design::Dqn => Box::new(DqnAgent::new(DqnConfig::from_design(config), rng)),
            Design::Fpga => {
                panic!("Design::Fpga is built by elmrl_fpga::FpgaAgent::new, not Design::build")
            }
        }
    }

    /// Build the agent behind the batched-inference interface used by the
    /// population engine. Draws exactly the same RNG stream as
    /// [`Design::build`], so a batch-built agent replays a scalar-built one.
    /// Panics for [`Design::Fpga`] (constructed by `elmrl-fpga`, which also
    /// implements [`BatchAgent`] for it).
    ///
    /// The box is `Send` so callers can move workers across the thread pool
    /// (the serve engine dispatches per-worker batches through `rayon`);
    /// `&mut Box<dyn BatchAgent + Send>` still coerces to
    /// `&mut dyn BatchAgent` everywhere the non-`Send` object was used.
    pub fn build_batch(
        self,
        config: &DesignConfig,
        rng: &mut SmallRng,
    ) -> Box<dyn BatchAgent + Send> {
        match self {
            Design::Elm => Box::new(ElmQNet::new(ElmQNetConfig::from_design(config), rng)),
            Design::OsElm | Design::OsElmL2 | Design::OsElmLipschitz | Design::OsElmL2Lipschitz => {
                Box::new(OsElmQNet::new(
                    OsElmQNetConfig::from_design(
                        config,
                        self.l2_delta(),
                        self.spectral_normalize(),
                    ),
                    rng,
                ))
            }
            Design::Dqn => Box::new(DqnAgent::new(DqnConfig::from_design(config), rng)),
            Design::Fpga => panic!(
                "Design::Fpga is built by elmrl_fpga::FpgaAgent::new, not Design::build_batch"
            ),
        }
    }

    /// Resolve a design from a user-supplied name. Case and `-`/`_`/space
    /// separators are ignored, so `os-elm-l2-lipschitz`, `OS_ELM_L2_Lipschitz`
    /// and `oselml2lipschitz` all resolve to [`Design::OsElmL2Lipschitz`].
    pub fn from_name(name: &str) -> Option<Design> {
        let key: String = name
            .chars()
            .filter(|c| !matches!(c, '-' | '_' | ' '))
            .collect::<String>()
            .to_ascii_lowercase();
        match key.as_str() {
            "elm" => Some(Design::Elm),
            "oselm" => Some(Design::OsElm),
            "oselml2" => Some(Design::OsElmL2),
            "oselmlipschitz" => Some(Design::OsElmLipschitz),
            "oselml2lipschitz" => Some(Design::OsElmL2Lipschitz),
            "dqn" => Some(Design::Dqn),
            "fpga" => Some(Design::Fpga),
            _ => None,
        }
    }
}

/// Parameters shared by every design when building agents for one experiment
/// cell (one hidden size on one environment).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Environment state dimensionality (4 for CartPole).
    pub state_dim: usize,
    /// Number of discrete actions (2 for CartPole).
    pub num_actions: usize,
    /// Hidden-layer width `Ñ`.
    pub hidden_dim: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Exploit probability ε₁.
    pub exploit_prob: f64,
    /// Random-update probability ε₂ (OS-ELM designs only).
    pub update_prob: f64,
    /// Target-network sync interval (episodes).
    pub target_sync_episodes: usize,
    /// Whether ELM/OS-ELM Q-learning targets are clipped into `[-1, 1]`
    /// (§3.1; DQN always trains unclipped and relies on the Huber loss).
    pub clip_targets: bool,
    /// Cap on the OS-ELM batched-training chunk width (the CLI's
    /// `--chunk-cap`); `None` defers to
    /// [`crate::oselm_qnet::DEFAULT_CHUNK_CAP`]. Only the OS-ELM designs
    /// consume it, and only at `train_envs > 1`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chunk_cap: Option<usize>,
}

impl DesignConfig {
    /// The paper's CartPole parameters with the given hidden size — a
    /// shorthand for `Self::for_workload(&Workload::CartPole.spec(), ..)`.
    pub fn new(hidden_dim: usize) -> Self {
        Self::for_workload(&Workload::CartPole.spec(), hidden_dim)
    }

    /// Design parameters for a registered workload: dimensions and protocol
    /// knobs (γ, ε₁, ε₂, sync interval, clipping) come from the
    /// [`EnvSpec`]'s per-workload defaults.
    pub fn for_workload(spec: &EnvSpec, hidden_dim: usize) -> Self {
        Self {
            state_dim: spec.observation_dim,
            num_actions: spec.num_actions,
            hidden_dim,
            gamma: spec.defaults.gamma,
            exploit_prob: spec.defaults.exploit_prob,
            update_prob: spec.defaults.update_prob,
            target_sync_episodes: spec.defaults.target_sync_episodes,
            clip_targets: spec.defaults.clip_targets,
            chunk_cap: None,
        }
    }

    /// Adjust the state/action dimensions for a different environment.
    pub fn for_env(mut self, state_dim: usize, num_actions: usize) -> Self {
        self.state_dim = state_dim;
        self.num_actions = num_actions;
        self
    }

    /// The ELM/OS-ELM target construction these parameters imply.
    pub fn target_config(&self) -> TargetConfig {
        TargetConfig {
            gamma: self.gamma,
            ..if self.clip_targets {
                TargetConfig::default()
            } else {
                TargetConfig::unclipped(self.gamma)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn labels_and_enumerations() {
        assert_eq!(Design::software_designs().len(), 6);
        assert_eq!(Design::all_designs().len(), 7);
        assert_eq!(Design::OsElmL2Lipschitz.label(), "OS-ELM-L2-Lipschitz");
        assert_eq!(Design::Fpga.label(), "FPGA");
    }

    #[test]
    fn paper_delta_assignments() {
        assert_eq!(Design::OsElmL2.l2_delta(), 1.0);
        assert_eq!(Design::OsElmL2Lipschitz.l2_delta(), 0.5);
        assert_eq!(Design::Fpga.l2_delta(), 0.5);
        assert_eq!(Design::OsElm.l2_delta(), 0.0);
        assert!(!Design::OsElmL2.spectral_normalize());
        assert!(Design::OsElmLipschitz.spectral_normalize());
        assert!(Design::Fpga.spectral_normalize());
    }

    #[test]
    fn build_produces_correctly_named_agents() {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = DesignConfig::new(16);
        for design in Design::software_designs() {
            let agent = design.build(&config, &mut rng);
            assert_eq!(agent.name(), design.label());
            assert_eq!(agent.hidden_dim(), 16);
        }
    }

    #[test]
    #[should_panic(expected = "built by elmrl_fpga")]
    fn building_fpga_here_panics() {
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = Design::Fpga.build(&DesignConfig::new(16), &mut rng);
    }

    #[test]
    fn from_name_is_forgiving() {
        for name in [
            "os-elm-l2-lipschitz",
            "OS_ELM_L2_Lipschitz",
            "OsElmL2Lipschitz",
        ] {
            assert_eq!(
                Design::from_name(name),
                Some(Design::OsElmL2Lipschitz),
                "{name}"
            );
        }
        assert_eq!(Design::from_name("dqn"), Some(Design::Dqn));
        assert_eq!(Design::from_name("FPGA"), Some(Design::Fpga));
        // Every label round-trips.
        for design in Design::all_designs() {
            assert_eq!(Design::from_name(design.label()), Some(design));
        }
        assert_eq!(Design::from_name("resnet"), None);
    }

    #[test]
    fn build_batch_mirrors_build() {
        // Same seed → same RNG draws → identical Q surfaces between the
        // scalar-built and batch-built agents.
        let config = DesignConfig::new(8);
        let probe = [0.03, -0.02, 0.05, 0.01];
        for design in Design::software_designs() {
            let mut scalar = design.build(&config, &mut SmallRng::seed_from_u64(9));
            let mut batched = design.build_batch(&config, &mut SmallRng::seed_from_u64(9));
            assert_eq!(batched.name(), design.label());
            assert_eq!(scalar.q_values(&probe), batched.q_values(&probe));
        }
    }

    #[test]
    fn design_config_env_override() {
        let c = DesignConfig::new(32).for_env(2, 3);
        assert_eq!(c.state_dim, 2);
        assert_eq!(c.num_actions, 3);
        assert_eq!(c.hidden_dim, 32);
        let mut rng = SmallRng::seed_from_u64(3);
        let agent = Design::OsElmL2Lipschitz.build(&c, &mut rng);
        // MountainCar-shaped agent still constructs and answers Q-values.
        let mut agent = agent;
        assert_eq!(agent.q_values(&[0.0, 0.0]).len(), 3);
    }

    #[test]
    fn every_software_design_builds_for_every_workload() {
        let mut rng = SmallRng::seed_from_u64(4);
        for workload in Workload::all() {
            let spec = workload.spec();
            let config = DesignConfig::for_workload(&spec, 8);
            assert_eq!(config.state_dim, spec.observation_dim);
            assert_eq!(config.num_actions, spec.num_actions);
            for design in Design::software_designs() {
                let mut agent = design.build(&config, &mut rng);
                let probe = vec![0.0; spec.observation_dim];
                assert_eq!(
                    agent.q_values(&probe).len(),
                    spec.num_actions,
                    "{design:?} on {workload:?}"
                );
            }
        }
    }

    #[test]
    fn new_is_the_cartpole_workload_shim() {
        let via_new = DesignConfig::new(16);
        let via_spec = DesignConfig::for_workload(&Workload::CartPole.spec(), 16);
        assert_eq!(via_new, via_spec);
        assert_eq!(via_new.state_dim, 4);
        assert_eq!(via_new.num_actions, 2);
        assert!(via_new.clip_targets);
        assert!(via_new.target_config().clip);
        let mut unclipped = via_new.clone();
        unclipped.clip_targets = false;
        assert!(!unclipped.target_config().clip);
    }
}
