//! The evaluated designs (§4.1) as a factory enum.
//!
//! Seven designs are compared in the paper. Six are pure software and built
//! here; the seventh (`FPGA`) is the same algorithm as OS-ELM-L2-Lipschitz
//! running through the fixed-point datapath simulator and is constructed by
//! `elmrl-fpga` (which depends on this crate) — [`Design::build`] therefore
//! covers designs (1)–(6) and the harness plugs the FPGA agent in through the
//! same [`Agent`] trait object.

use crate::agent::Agent;
use crate::dqn::{DqnAgent, DqnConfig};
use crate::elm_qnet::{ElmQNet, ElmQNetConfig};
use crate::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// The designs of §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Design {
    /// (1) ELM Q-Network with the simplified output model and Q-value clipping.
    Elm,
    /// (2) OS-ELM Q-Network (+ random update), no regularisation.
    OsElm,
    /// (3) OS-ELM with L2 regularisation of β (δ = 1).
    OsElmL2,
    /// (4) OS-ELM with spectral normalization of α.
    OsElmLipschitz,
    /// (5) OS-ELM with both (δ = 0.5) — the paper's recommended software design.
    OsElmL2Lipschitz,
    /// (6) The three-layer DQN baseline.
    Dqn,
    /// (7) The FPGA fixed-point implementation of (5); built by `elmrl-fpga`.
    Fpga,
}

impl Design {
    /// All software designs, in the paper's order.
    pub fn software_designs() -> [Design; 6] {
        [
            Design::Elm,
            Design::OsElm,
            Design::OsElmL2,
            Design::OsElmLipschitz,
            Design::OsElmL2Lipschitz,
            Design::Dqn,
        ]
    }

    /// All seven designs.
    pub fn all_designs() -> [Design; 7] {
        [
            Design::Elm,
            Design::OsElm,
            Design::OsElmL2,
            Design::OsElmLipschitz,
            Design::OsElmL2Lipschitz,
            Design::Dqn,
            Design::Fpga,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Design::Elm => "ELM",
            Design::OsElm => "OS-ELM",
            Design::OsElmL2 => "OS-ELM-L2",
            Design::OsElmLipschitz => "OS-ELM-Lipschitz",
            Design::OsElmL2Lipschitz => "OS-ELM-L2-Lipschitz",
            Design::Dqn => "DQN",
            Design::Fpga => "FPGA",
        }
    }

    /// The L2 regularisation strength δ the paper assigns to this design
    /// (§4.1: δ = 1 for OS-ELM-L2 and δ = 0.5 for OS-ELM-L2-Lipschitz).
    pub fn l2_delta(self) -> f64 {
        match self {
            Design::OsElmL2 => 1.0,
            Design::OsElmL2Lipschitz | Design::Fpga => 0.5,
            _ => 0.0,
        }
    }

    /// Whether this design spectrally normalises α.
    pub fn spectral_normalize(self) -> bool {
        matches!(
            self,
            Design::OsElmLipschitz | Design::OsElmL2Lipschitz | Design::Fpga
        )
    }

    /// Build the agent for this design. Panics for [`Design::Fpga`], which is
    /// constructed by `elmrl-fpga::FpgaAgent::new` instead.
    pub fn build(self, config: &DesignConfig, rng: &mut SmallRng) -> Box<dyn Agent> {
        match self {
            Design::Elm => {
                let mut c = ElmQNetConfig::cartpole(config.hidden_dim);
                c.state_dim = config.state_dim;
                c.num_actions = config.num_actions;
                c.exploit_prob = config.exploit_prob;
                c.target_sync_episodes = config.target_sync_episodes;
                c.target.gamma = config.gamma;
                Box::new(ElmQNet::new(c, rng))
            }
            Design::OsElm | Design::OsElmL2 | Design::OsElmLipschitz | Design::OsElmL2Lipschitz => {
                let mut c = OsElmQNetConfig::cartpole(
                    config.hidden_dim,
                    self.l2_delta(),
                    self.spectral_normalize(),
                );
                c.state_dim = config.state_dim;
                c.num_actions = config.num_actions;
                c.exploit_prob = config.exploit_prob;
                c.update_prob = config.update_prob;
                c.target_sync_episodes = config.target_sync_episodes;
                c.target.gamma = config.gamma;
                Box::new(OsElmQNet::new(c, rng))
            }
            Design::Dqn => {
                let mut c = DqnConfig::cartpole(config.hidden_dim);
                c.state_dim = config.state_dim;
                c.num_actions = config.num_actions;
                c.exploit_prob = config.exploit_prob;
                c.target_sync_episodes = config.target_sync_episodes;
                c.gamma = config.gamma;
                Box::new(DqnAgent::new(c, rng))
            }
            Design::Fpga => {
                panic!("Design::Fpga is built by elmrl_fpga::FpgaAgent::new, not Design::build")
            }
        }
    }
}

/// Parameters shared by every design when building agents for one experiment
/// cell (one hidden size on one environment).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Environment state dimensionality (4 for CartPole).
    pub state_dim: usize,
    /// Number of discrete actions (2 for CartPole).
    pub num_actions: usize,
    /// Hidden-layer width `Ñ`.
    pub hidden_dim: usize,
    /// Discount factor γ.
    pub gamma: f64,
    /// Exploit probability ε₁.
    pub exploit_prob: f64,
    /// Random-update probability ε₂ (OS-ELM designs only).
    pub update_prob: f64,
    /// Target-network sync interval (episodes).
    pub target_sync_episodes: usize,
}

impl DesignConfig {
    /// The paper's CartPole parameters with the given hidden size.
    pub fn new(hidden_dim: usize) -> Self {
        Self {
            state_dim: 4,
            num_actions: 2,
            hidden_dim,
            gamma: 0.99,
            exploit_prob: 0.7,
            update_prob: 0.5,
            target_sync_episodes: 2,
        }
    }

    /// Adjust the state/action dimensions for a different environment.
    pub fn for_env(mut self, state_dim: usize, num_actions: usize) -> Self {
        self.state_dim = state_dim;
        self.num_actions = num_actions;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn labels_and_enumerations() {
        assert_eq!(Design::software_designs().len(), 6);
        assert_eq!(Design::all_designs().len(), 7);
        assert_eq!(Design::OsElmL2Lipschitz.label(), "OS-ELM-L2-Lipschitz");
        assert_eq!(Design::Fpga.label(), "FPGA");
    }

    #[test]
    fn paper_delta_assignments() {
        assert_eq!(Design::OsElmL2.l2_delta(), 1.0);
        assert_eq!(Design::OsElmL2Lipschitz.l2_delta(), 0.5);
        assert_eq!(Design::Fpga.l2_delta(), 0.5);
        assert_eq!(Design::OsElm.l2_delta(), 0.0);
        assert!(!Design::OsElmL2.spectral_normalize());
        assert!(Design::OsElmLipschitz.spectral_normalize());
        assert!(Design::Fpga.spectral_normalize());
    }

    #[test]
    fn build_produces_correctly_named_agents() {
        let mut rng = SmallRng::seed_from_u64(1);
        let config = DesignConfig::new(16);
        for design in Design::software_designs() {
            let agent = design.build(&config, &mut rng);
            assert_eq!(agent.name(), design.label());
            assert_eq!(agent.hidden_dim(), 16);
        }
    }

    #[test]
    #[should_panic(expected = "built by elmrl_fpga")]
    fn building_fpga_here_panics() {
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = Design::Fpga.build(&DesignConfig::new(16), &mut rng);
    }

    #[test]
    fn design_config_env_override() {
        let c = DesignConfig::new(32).for_env(2, 3);
        assert_eq!(c.state_dim, 2);
        assert_eq!(c.num_actions, 3);
        assert_eq!(c.hidden_dim, 32);
        let mut rng = SmallRng::seed_from_u64(3);
        let agent = Design::OsElmL2Lipschitz.build(&c, &mut rng);
        // MountainCar-shaped agent still constructs and answers Q-values.
        let mut agent = agent;
        assert_eq!(agent.q_values(&[0.0, 0.0]).len(), 3);
    }
}
