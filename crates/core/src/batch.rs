//! Batched Q-network inference: the [`BatchAgent`] trait.
//!
//! The scalar [`Agent`] interface evaluates one `(state, action)` pair per
//! network call, so a population of replicated agents pays one `1 × n · n ×
//! Ñ` matvec per candidate action per step.
//! [`BatchAgent::predict_batch`] packs a whole `B × state_dim` state matrix
//! into **one** `(B·A) × n · n × Ñ` matmul (`A` = action count) through the
//! existing `elmrl-linalg` kernels — the batch recursion the OS-ELM
//! literature builds on, of which the paper's single-sample update is the
//! B = 1 special case.
//!
//! The trait ships a per-sample fallback (loop over rows through
//! [`Agent::q_values`]), so any agent is a valid `BatchAgent`; the three
//! networks of the evaluation ([`ElmQNet`](crate::elm_qnet::ElmQNet),
//! [`OsElmQNet`](crate::oselm_qnet::OsElmQNet),
//! [`DqnAgent`](crate::dqn::DqnAgent)) override it with genuinely batched
//! forward passes that match the fallback **bit for bit** (the linalg
//! kernels accumulate each output row independently of the other rows).
//!
//! [`BatchAgent::predict_batch`] is a pure forward pass and does not touch
//! the per-operation counters behind the Figure 5/6 breakdowns; the
//! [`BatchAgent::act_row`] policy overrides *do* record the same prediction
//! counters as [`Agent::act`], so modeled execution times stay comparable
//! between the scalar and E-parallel training drivers.

use crate::agent::{Agent, Observation};
use crate::encoding::{ActionEncoding, StateActionEncoder};
use crate::policy::argmax;
use elmrl_elm::model::ElmModel;
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;

/// An [`Agent`] that can evaluate Q-values for a batch of states in one
/// forward pass.
pub trait BatchAgent: Agent {
    /// Q-values for every action of every state in `states`
    /// (`B × state_dim` in, `B × num_actions` out).
    ///
    /// The default implementation is the per-sample fallback: one
    /// [`Agent::q_values`] call per row. Implementors override it with a
    /// single batched matmul; overrides must agree with the fallback bit for
    /// bit so batched and scalar execution stay interchangeable.
    fn predict_batch(&mut self, states: &Matrix<f64>) -> Matrix<f64> {
        let rows: Vec<Vec<f64>> = (0..states.rows())
            .map(|i| self.q_values(states.row(i)))
            .collect();
        Matrix::from_rows(&rows)
    }

    /// [`BatchAgent::predict_batch`] into a caller-owned output matrix — the
    /// ticketed-dispatch entry point of the serve engine, where every worker
    /// keeps one preallocated `B × A` Q buffer across coalesced batches.
    ///
    /// The default delegates to the allocating [`BatchAgent::predict_batch`]
    /// (any agent is a valid worker); the ELM-family networks and the FPGA
    /// agent override it through their existing batched scratch so a warm
    /// worker evaluates with **zero** heap allocations. Overrides must
    /// leave `out` bit-for-bit equal to `predict_batch`'s result.
    fn predict_batch_into(&mut self, states: &Matrix<f64>, out: &mut Matrix<f64>) {
        *out = self.predict_batch(states);
    }

    /// Greedy action (argmax over Q, first maximum on ties) for every state
    /// in the batch — the deterministic policy used by population
    /// evaluation passes.
    fn act_batch_greedy(&mut self, states: &Matrix<f64>) -> Vec<usize> {
        let q = self.predict_batch(states);
        (0..q.rows()).map(|i| argmax(q.row(i))).collect()
    }

    /// Training-time ε-greedy action for the single packed state in
    /// `state_row` (`1 × state_dim`): the population engine's per-tick
    /// behaviour policy. The default delegates to the scalar
    /// [`Agent::act`]; the three evaluated networks override it so the Q
    /// evaluation goes through [`BatchAgent::predict_batch`]'s batched
    /// kernel (one stacked matmul hoisting the shared `state·α` projection
    /// instead of one matvec chain per action). Because `predict_batch`
    /// matches `q_values` bit for bit and the policy draws from `rng`
    /// identically, overrides select exactly the action `act` would — only
    /// cheaper — and record the same prediction counters as `act`, so the
    /// Figure 5/6 modeled times stay design-comparable at any E.
    fn act_row(&mut self, state_row: &Matrix<f64>, rng: &mut SmallRng) -> usize {
        self.act(state_row.row(0), rng)
    }

    /// *Store* + *Update* for one engine tick's worth of transitions — the
    /// batch-B training entry point of the E-parallel episode driver
    /// ([`crate::trainer::Trainer::run_vec`]).
    ///
    /// The default implementation is the per-sample fallback: one
    /// [`Agent::observe`] call per transition, in order — any agent is a
    /// valid batched learner. The evaluated networks override it with
    /// genuinely batched updates:
    ///
    /// * the OS-ELM designs compute every Q-target from **one** batched
    ///   target-network forward pass and fold all gated transitions into a
    ///   single `seq_train_batch` chunk (the B > 1 case of the paper's
    ///   Eq. 6 recursion, block-exact w.r.t. B single-sample updates);
    /// * DQN pushes the whole tick into replay and performs **one** true
    ///   minibatch SGD step per tick instead of one per transition.
    ///
    /// With one transition per call the overrides follow the same update
    /// rules as the scalar path (identical gating draws from `rng`, chunk
    /// size 1); with B > 1 they change the *learning trajectory* — fewer,
    /// wider updates — which is exactly the batching/throughput trade the
    /// E-parallel driver documents (README "Batched training").
    fn observe_batch(&mut self, batch: &[Observation], rng: &mut SmallRng) {
        for obs in batch {
            self.observe(obs, rng);
        }
    }
}

/// Batched `(state, action)` Q evaluation for the ELM-family networks:
/// evaluate every action of every state through one batched forward pass and
/// fold the scalar outputs back into `B × A`.
///
/// With the paper's scalar action encoding the input rows for one state
/// differ **only** in the trailing action component, so the `state · α`
/// projection — `state_dim` of the `state_dim + 1` input columns — is
/// computed once per state (`B × Ñ` matmul) and the per-action rows add just
/// the action's own term. The naive `i-k-j` matmul accumulates the input
/// columns in ascending order, so `(state·α_top + a·α_last) + bias`
/// reproduces the scalar path's `((…((0 + x₀α₀ⱼ) + …) + x_{n-1}α_{n-1}ⱼ)) +
/// bⱼ` operation-for-operation: the result is **bit-for-bit** equal to
/// [`ElmModel::predict_single`] per pair, just `A×` cheaper on the shared
/// columns. One-hot encodings take the generic stacked-input route instead.
pub(crate) fn elm_q_batch(
    encoder: &StateActionEncoder,
    model: &ElmModel<f64>,
    states: &Matrix<f64>,
) -> Matrix<f64> {
    let mut scratch = BatchQScratch::default();
    elm_q_batch_into(encoder, model, states, &mut scratch);
    std::mem::take(&mut scratch.q)
}

/// Reusable workspaces for one batched ELM-family Q evaluation. Every matrix
/// keeps its allocation across calls (see [`Matrix::resize_zeroed`]), so a
/// steady-state [`elm_q_batch_into`] evaluation performs zero heap
/// allocations — the property the batched *training* hot path (Q-targets
/// from the frozen target network, every tick) needs to stay allocation-free
/// at E > 1, asserted by the counting-allocator test.
///
/// Public since PR 7: the FPGA agent evaluates its float target network
/// through the same kernel, so its batched observe path shares this scratch.
#[derive(Clone, Debug, Default)]
pub struct BatchQScratch {
    /// `B × Ñ` — the shared `state·α_top` projection (scalar encoding).
    shared: Matrix<f64>,
    /// `(B·A) × Ñ` — pre-activations, activated in place into `H`; doubles
    /// as the stacked `(B·A) × input` encoding under one-hot.
    pre: Matrix<f64>,
    /// `(B·A) × 1` — the stacked network outputs `H·β`.
    y: Matrix<f64>,
    /// Packed-panel buffer of the blocked matmul engine (PR 9): holds one
    /// transposed `PACK_MR × PACK_KC` lhs slice, reused across calls.
    pack: Vec<f64>,
    /// `B × A` — the folded per-state Q matrix (the result).
    pub(crate) q: Matrix<f64>,
}

impl BatchQScratch {
    /// The `B × A` Q matrix left by the last [`elm_q_batch_into`] call.
    pub fn q(&self) -> &Matrix<f64> {
        &self.q
    }
}

/// `elm_q_batch` through caller-owned workspaces — bit-for-bit identical
/// (the allocating entry point delegates here), with the result left in
/// `scratch.q` (`B × A`, readable via [`BatchQScratch::q`]).
pub fn elm_q_batch_into(
    encoder: &StateActionEncoder,
    model: &ElmModel<f64>,
    states: &Matrix<f64>,
    scratch: &mut BatchQScratch,
) {
    let b = states.rows();
    let a = encoder.num_actions();
    let sd = encoder.state_dim();
    assert_eq!(states.cols(), sd, "elm_q_batch: state width mismatch");

    match encoder.encoding() {
        ActionEncoding::Scalar => {
            let alpha = model.alpha(); // (sd + 1) × Ñ
            let bias = model.bias(); // 1 × Ñ
            let nh = alpha.cols();
            // shared = states · α[0..sd, ..] — the historical path copied
            // the top rows into a submatrix first, then hand-rolled the
            // i-k-j loop against α's rows. The prefix form of the blocked
            // packed engine performs the identical ascending-p accumulation
            // against α's top `sd` rows without materialising either the
            // copy or the full product (α carries the extra action row).
            states.matmul_prefix_packed_into(alpha, sd, &mut scratch.pack, &mut scratch.shared);
            scratch.pre.resize_zeroed(b * a, nh);
            for i in 0..b {
                let s_row = scratch.shared.row(i);
                for action in 0..a {
                    let af = action as f64;
                    let row = scratch.pre.row_mut(i * a + action);
                    for j in 0..nh {
                        row[j] = (s_row[j] + af * alpha[(sd, j)]) + bias[(0, j)];
                    }
                }
            }
            model.activation().apply_matrix_inplace(&mut scratch.pre);
        }
        ActionEncoding::OneHot => {
            let input_dim = encoder.input_dim();
            scratch.shared.resize_zeroed(b * a, input_dim);
            for i in 0..b {
                let state = states.row(i);
                for action in 0..a {
                    let row = scratch.shared.row_mut(i * a + action);
                    row[..sd].copy_from_slice(state);
                    row[sd + action] = 1.0;
                }
            }
            model.hidden_into_packed(&scratch.shared, &mut scratch.pack, &mut scratch.pre);
        }
    }
    scratch.pre.matmul_into(model.beta(), &mut scratch.y); // (B·A) × 1
    scratch.q.resize_zeroed(b, a);
    for i in 0..b {
        let q_row = scratch.q.row_mut(i);
        for (action, v) in q_row.iter_mut().enumerate() {
            *v = scratch.y[(i * a + action, 0)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Observation;
    use crate::ops::OpCounts;
    use rand::rngs::SmallRng;

    /// A minimal scalar-only agent: Q(s, a) = s·w + a.
    struct ToyAgent {
        ops: OpCounts,
    }

    impl Agent for ToyAgent {
        fn name(&self) -> &str {
            "Toy"
        }
        fn hidden_dim(&self) -> usize {
            1
        }
        fn act(&mut self, _state: &[f64], _rng: &mut SmallRng) -> usize {
            0
        }
        fn observe(&mut self, _obs: &Observation, _rng: &mut SmallRng) {}
        fn end_episode(&mut self, _episode_index: usize) {}
        fn reset(&mut self, _rng: &mut SmallRng) {}
        fn op_counts(&self) -> &OpCounts {
            &self.ops
        }
        fn q_values(&mut self, state: &[f64]) -> Vec<f64> {
            let s: f64 = state.iter().sum();
            vec![s, s + 1.0]
        }
        fn memory_footprint_bytes(&self) -> usize {
            0
        }
    }

    impl BatchAgent for ToyAgent {}

    #[test]
    fn one_hot_batch_matches_per_sample_prediction_bitwise() {
        // No constructible agent uses the one-hot encoding yet (it exists
        // for the encoding ablation), so the OneHot arm of `elm_q_batch` is
        // covered directly against the scalar `predict_single` path.
        use elmrl_elm::OsElmConfig;
        use rand::SeedableRng;

        let encoder = StateActionEncoder::with_encoding(3, 4, ActionEncoding::OneHot);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model =
            ElmModel::<f64>::new(&OsElmConfig::new(encoder.input_dim(), 16, 1), &mut rng);
        model.set_beta(Matrix::from_fn(16, 1, |i, _| (i as f64 - 7.5) * 0.03));

        let states = Matrix::from_fn(5, 3, |i, j| 0.1 * i as f64 - 0.2 * j as f64);
        let q = elm_q_batch(&encoder, &model, &states);
        assert_eq!(q.shape(), (5, 4));
        for i in 0..states.rows() {
            for (action, input) in encoder.encode_all_actions(states.row(i)).iter().enumerate() {
                assert_eq!(q[(i, action)], model.predict_single(input)[0]);
            }
        }
    }

    #[test]
    fn observe_batch_of_one_matches_scalar_updates_numerically() {
        // With the random-update gate off neither path draws from the RNG,
        // so feeding the same transitions one at a time through `observe`
        // and through chunk-size-1 `observe_batch` must produce the same
        // learned Q surface (chunk-size-1 Eq. 6 equals the rank-1 fast path
        // up to rounding).
        use crate::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
        use elmrl_gym::Workload;
        use rand::SeedableRng;

        let spec = Workload::CartPole.spec();
        let mut config = OsElmQNetConfig::for_workload(&spec, 8, 0.5, true);
        config.random_update = false;
        let mut rng_a = SmallRng::seed_from_u64(3);
        let mut rng_b = SmallRng::seed_from_u64(3);
        let mut scalar = OsElmQNet::new(config.clone(), &mut rng_a);
        let mut batched = OsElmQNet::new(config, &mut rng_b);

        let transitions: Vec<Observation> = (0..40)
            .map(|i| Observation {
                state: vec![0.01 * i as f64, -0.02, 0.03 * ((i % 5) as f64), 0.04],
                action: i % 2,
                reward: if i % 7 == 0 { -1.0 } else { 0.0 },
                next_state: vec![0.01 * i as f64 + 0.01, -0.01, 0.02, 0.05],
                done: i % 7 == 0,
                truncated: false,
            })
            .collect();
        for obs in &transitions {
            scalar.observe(obs, &mut rng_a);
            batched.observe_batch(std::slice::from_ref(obs), &mut rng_b);
        }
        assert!(scalar.is_initialized() && batched.is_initialized());
        let probe = [0.02, -0.01, 0.03, 0.02];
        let qa = scalar.q_values(&probe);
        let qb = batched.q_values(&probe);
        for (a, b) in qa.iter().zip(qb.iter()) {
            assert!((a - b).abs() < 1e-8, "scalar {qa:?} vs batched {qb:?}");
        }
    }

    #[test]
    fn observe_batch_trains_one_chunk_per_tick_and_respects_the_gate() {
        use crate::ops::OpKind;
        use crate::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
        use elmrl_gym::Workload;
        use rand::SeedableRng;

        let spec = Workload::CartPole.spec();
        let tick: Vec<Observation> = (0..4)
            .map(|i| Observation {
                state: vec![0.01 * i as f64, -0.02, 0.03, 0.04],
                action: i % 2,
                reward: 0.0,
                next_state: vec![0.01 * i as f64 + 0.01, -0.01, 0.02, 0.05],
                done: false,
                truncated: false,
            })
            .collect();

        // Gate closed (update_prob = 0): after initialisation no chunk ever
        // trains.
        let mut config = OsElmQNetConfig::for_workload(&spec, 8, 0.5, true);
        config.update_prob = 0.0;
        let mut rng = SmallRng::seed_from_u64(4);
        let mut agent = OsElmQNet::new(config, &mut rng);
        for _ in 0..10 {
            agent.observe_batch(&tick, &mut rng);
        }
        assert!(agent.is_initialized());
        assert_eq!(agent.op_counts().count(OpKind::SeqTrain), 0);

        // Gate open (ablation mode): every transition of every tick trains,
        // as one chunk per tick.
        let mut config = OsElmQNetConfig::for_workload(&spec, 8, 0.5, true);
        config.random_update = false;
        let mut rng = SmallRng::seed_from_u64(4);
        let mut agent = OsElmQNet::new(config, &mut rng);
        for _ in 0..10 {
            agent.observe_batch(&tick, &mut rng);
        }
        // 40 transitions: 8 fill buffer D, the remaining 32 all train.
        assert_eq!(agent.op_counts().count(OpKind::SeqTrain), 32);
    }

    #[test]
    fn dqn_observe_batch_takes_one_gradient_step_per_tick() {
        use crate::dqn::{DqnAgent, DqnConfig};
        use crate::ops::OpKind;
        use elmrl_gym::Workload;
        use rand::SeedableRng;

        let spec = Workload::CartPole.spec();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut agent = DqnAgent::new(DqnConfig::for_workload(&spec, 16), &mut rng);
        let tick: Vec<Observation> = (0..8)
            .map(|i| Observation {
                state: vec![0.01 * (i % 17) as f64, -0.02, 0.03, 0.04],
                action: i % 2,
                reward: 0.0,
                next_state: vec![0.01 * (i % 17) as f64 + 0.01, -0.01, 0.02, 0.05],
                done: false,
                truncated: false,
            })
            .collect();
        // 8 ticks × 8 transitions = 64 = warmup: every transition lands in
        // replay, and gradient steps only start once warm — then exactly one
        // per tick.
        for _ in 0..8 {
            agent.observe_batch(&tick, &mut rng);
        }
        assert_eq!(agent.replay_len(), 64);
        assert_eq!(agent.op_counts().count(OpKind::TrainDqn), 1);
        for _ in 0..5 {
            agent.observe_batch(&tick, &mut rng);
        }
        assert_eq!(agent.op_counts().count(OpKind::TrainDqn), 6);
    }

    #[test]
    fn fallback_loops_q_values_over_rows() {
        let mut agent = ToyAgent {
            ops: OpCounts::new(),
        };
        let states = Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]);
        let q = agent.predict_batch(&states);
        assert_eq!(q.shape(), (2, 2));
        assert_eq!(q[(0, 0)], 3.0);
        assert_eq!(q[(0, 1)], 4.0);
        assert_eq!(q[(1, 0)], -0.5);
        assert_eq!(agent.act_batch_greedy(&states), vec![1, 1]);
    }
}
