//! Batched Q-network inference: the [`BatchAgent`] trait.
//!
//! The scalar [`Agent`] interface evaluates one `(state, action)` pair per
//! network call, so a population of replicated agents pays one `1 × n · n ×
//! Ñ` matvec per candidate action per step.
//! [`BatchAgent::predict_batch`] packs a whole `B × state_dim` state matrix
//! into **one** `(B·A) × n · n × Ñ` matmul (`A` = action count) through the
//! existing `elmrl-linalg` kernels — the batch recursion the OS-ELM
//! literature builds on, of which the paper's single-sample update is the
//! B = 1 special case.
//!
//! The trait ships a per-sample fallback (loop over rows through
//! [`Agent::q_values`]), so any agent is a valid `BatchAgent`; the three
//! networks of the evaluation ([`ElmQNet`](crate::elm_qnet::ElmQNet),
//! [`OsElmQNet`](crate::oselm_qnet::OsElmQNet),
//! [`DqnAgent`](crate::dqn::DqnAgent)) override it with genuinely batched
//! forward passes that match the fallback **bit for bit** (the linalg
//! kernels accumulate each output row independently of the other rows).
//!
//! Batched prediction is a pure forward pass: unlike [`Agent::act`] it does
//! not touch the per-operation counters behind the Figure 5/6 breakdowns.

use crate::agent::Agent;
use crate::encoding::{ActionEncoding, StateActionEncoder};
use crate::policy::argmax;
use elmrl_elm::model::ElmModel;
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;

/// An [`Agent`] that can evaluate Q-values for a batch of states in one
/// forward pass.
pub trait BatchAgent: Agent {
    /// Q-values for every action of every state in `states`
    /// (`B × state_dim` in, `B × num_actions` out).
    ///
    /// The default implementation is the per-sample fallback: one
    /// [`Agent::q_values`] call per row. Implementors override it with a
    /// single batched matmul; overrides must agree with the fallback bit for
    /// bit so batched and scalar execution stay interchangeable.
    fn predict_batch(&mut self, states: &Matrix<f64>) -> Matrix<f64> {
        let rows: Vec<Vec<f64>> = (0..states.rows())
            .map(|i| self.q_values(states.row(i)))
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Greedy action (argmax over Q, first maximum on ties) for every state
    /// in the batch — the deterministic policy used by population
    /// evaluation passes.
    fn act_batch_greedy(&mut self, states: &Matrix<f64>) -> Vec<usize> {
        let q = self.predict_batch(states);
        (0..q.rows()).map(|i| argmax(q.row(i))).collect()
    }

    /// Training-time ε-greedy action for the single packed state in
    /// `state_row` (`1 × state_dim`): the population engine's per-tick
    /// behaviour policy. The default delegates to the scalar
    /// [`Agent::act`]; the three evaluated networks override it so the Q
    /// evaluation goes through [`BatchAgent::predict_batch`]'s batched
    /// kernel (one stacked matmul hoisting the shared `state·α` projection
    /// instead of one matvec chain per action). Because `predict_batch`
    /// matches `q_values` bit for bit and the policy draws from `rng`
    /// identically, overrides select exactly the action `act` would — only
    /// cheaper, and without touching the Figure 5/6 operation counters.
    fn act_row(&mut self, state_row: &Matrix<f64>, rng: &mut SmallRng) -> usize {
        self.act(state_row.row(0), rng)
    }
}

/// Batched `(state, action)` Q evaluation for the ELM-family networks:
/// evaluate every action of every state through one batched forward pass and
/// fold the scalar outputs back into `B × A`.
///
/// With the paper's scalar action encoding the input rows for one state
/// differ **only** in the trailing action component, so the `state · α`
/// projection — `state_dim` of the `state_dim + 1` input columns — is
/// computed once per state (`B × Ñ` matmul) and the per-action rows add just
/// the action's own term. The naive `i-k-j` matmul accumulates the input
/// columns in ascending order, so `(state·α_top + a·α_last) + bias`
/// reproduces the scalar path's `((…((0 + x₀α₀ⱼ) + …) + x_{n-1}α_{n-1}ⱼ)) +
/// bⱼ` operation-for-operation: the result is **bit-for-bit** equal to
/// [`ElmModel::predict_single`] per pair, just `A×` cheaper on the shared
/// columns. One-hot encodings take the generic stacked-input route instead.
pub(crate) fn elm_q_batch(
    encoder: &StateActionEncoder,
    model: &ElmModel<f64>,
    states: &Matrix<f64>,
) -> Matrix<f64> {
    let b = states.rows();
    let a = encoder.num_actions();
    let sd = encoder.state_dim();
    assert_eq!(states.cols(), sd, "elm_q_batch: state width mismatch");

    let h = match encoder.encoding() {
        ActionEncoding::Scalar => {
            let alpha = model.alpha(); // (sd + 1) × Ñ
            let bias = model.bias(); // 1 × Ñ
            let nh = alpha.cols();
            let alpha_top = alpha
                .submatrix(0, sd, 0, nh)
                .expect("alpha covers the state rows");
            let shared = states.matmul(&alpha_top); // B × Ñ, once per state
            let mut pre = Matrix::<f64>::zeros(b * a, nh);
            for i in 0..b {
                let s_row = shared.row(i);
                for action in 0..a {
                    let af = action as f64;
                    let row = pre.row_mut(i * a + action);
                    for j in 0..nh {
                        row[j] = (s_row[j] + af * alpha[(sd, j)]) + bias[(0, j)];
                    }
                }
            }
            model.activation().apply_matrix(&pre)
        }
        ActionEncoding::OneHot => {
            let input_dim = encoder.input_dim();
            let mut stacked = Matrix::<f64>::zeros(b * a, input_dim);
            for i in 0..b {
                let state = states.row(i);
                for action in 0..a {
                    let row = stacked.row_mut(i * a + action);
                    row[..sd].copy_from_slice(state);
                    row[sd + action] = 1.0;
                }
            }
            model.hidden(&stacked)
        }
    };
    let y = h.matmul(model.beta()); // (B·A) × 1
    Matrix::from_fn(b, a, |i, action| y[(i * a + action, 0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Observation;
    use crate::ops::OpCounts;
    use rand::rngs::SmallRng;

    /// A minimal scalar-only agent: Q(s, a) = s·w + a.
    struct ToyAgent {
        ops: OpCounts,
    }

    impl Agent for ToyAgent {
        fn name(&self) -> &str {
            "Toy"
        }
        fn hidden_dim(&self) -> usize {
            1
        }
        fn act(&mut self, _state: &[f64], _rng: &mut SmallRng) -> usize {
            0
        }
        fn observe(&mut self, _obs: &Observation, _rng: &mut SmallRng) {}
        fn end_episode(&mut self, _episode_index: usize) {}
        fn reset(&mut self, _rng: &mut SmallRng) {}
        fn op_counts(&self) -> &OpCounts {
            &self.ops
        }
        fn q_values(&mut self, state: &[f64]) -> Vec<f64> {
            let s: f64 = state.iter().sum();
            vec![s, s + 1.0]
        }
        fn memory_footprint_bytes(&self) -> usize {
            0
        }
    }

    impl BatchAgent for ToyAgent {}

    #[test]
    fn one_hot_batch_matches_per_sample_prediction_bitwise() {
        // No constructible agent uses the one-hot encoding yet (it exists
        // for the encoding ablation), so the OneHot arm of `elm_q_batch` is
        // covered directly against the scalar `predict_single` path.
        use elmrl_elm::OsElmConfig;
        use rand::SeedableRng;

        let encoder = StateActionEncoder::with_encoding(3, 4, ActionEncoding::OneHot);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model =
            ElmModel::<f64>::new(&OsElmConfig::new(encoder.input_dim(), 16, 1), &mut rng);
        model.set_beta(Matrix::from_fn(16, 1, |i, _| (i as f64 - 7.5) * 0.03));

        let states = Matrix::from_fn(5, 3, |i, j| 0.1 * i as f64 - 0.2 * j as f64);
        let q = elm_q_batch(&encoder, &model, &states);
        assert_eq!(q.shape(), (5, 4));
        for i in 0..states.rows() {
            for (action, input) in encoder.encode_all_actions(states.row(i)).iter().enumerate() {
                assert_eq!(q[(i, action)], model.predict_single(input)[0]);
            }
        }
    }

    #[test]
    fn fallback_loops_q_values_over_rows() {
        let mut agent = ToyAgent {
            ops: OpCounts::new(),
        };
        let states = Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]);
        let q = agent.predict_batch(&states);
        assert_eq!(q.shape(), (2, 2));
        assert_eq!(q[(0, 0)], 3.0);
        assert_eq!(q[(0, 1)], 4.0);
        assert_eq!(q[(1, 0)], -0.5);
        assert_eq!(agent.act_batch_greedy(&states), vec![1, 1]);
    }
}
