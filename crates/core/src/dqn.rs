//! The DQN baseline (§2.4, design (6) of the evaluation).
//!
//! A three-layer network (`state → Ñ ReLU units → Q per action`) trained by
//! backpropagation with Adam (learning rate 0.01), the Huber loss, uniform
//! experience replay (mini-batches of 32) and a fixed target network synced
//! every `UPDATE_STEP` episodes — i.e. everything the paper argues is too
//! heavy for a resource-limited edge device, implemented faithfully so the
//! comparison in Figures 4 and 5 is meaningful.

use crate::agent::{Agent, Observation};
use crate::batch::BatchAgent;
use crate::checkpoint::AgentSnapshot;
use crate::clipping::TargetConfig;
use crate::ops::{OpCounts, OpKind};
use crate::policy::ExploitPolicy;
use elmrl_linalg::Matrix;
use elmrl_nn::{
    Activation, Adam, Loss, Mlp, MlpConfig, MlpScratch, MomentState, ReplayBuffer, Transition,
};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of the DQN baseline agent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Environment state dimensionality.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden-layer width `Ñ`.
    pub hidden_dim: usize,
    /// Exploit probability ε₁ (the paper's policy is shared by all designs).
    pub exploit_prob: f64,
    /// Target-network synchronisation interval in episodes.
    pub target_sync_episodes: usize,
    /// Discount factor γ (targets are not clipped for DQN; the Huber loss
    /// absorbs outliers instead).
    pub gamma: f64,
    /// Adam learning rate (paper: 0.01).
    pub learning_rate: f64,
    /// Replay-buffer capacity.
    pub replay_capacity: usize,
    /// Mini-batch size (paper reports `predict_32`, i.e. 32).
    pub batch_size: usize,
    /// Minimum buffer occupancy before gradient steps start.
    pub warmup: usize,
}

impl DqnConfig {
    /// Settings for a registered workload.
    pub fn for_workload(spec: &elmrl_gym::EnvSpec, hidden_dim: usize) -> Self {
        Self::from_design(&crate::designs::DesignConfig::for_workload(
            spec, hidden_dim,
        ))
    }

    /// Settings derived from shared per-cell design parameters (the replay /
    /// optimiser knobs are the paper's fixed choices).
    pub fn from_design(config: &crate::designs::DesignConfig) -> Self {
        Self {
            state_dim: config.state_dim,
            num_actions: config.num_actions,
            hidden_dim: config.hidden_dim,
            exploit_prob: config.exploit_prob,
            target_sync_episodes: config.target_sync_episodes,
            gamma: config.gamma,
            learning_rate: 0.01,
            replay_capacity: 10_000,
            batch_size: 32,
            warmup: 64,
        }
    }

    /// The paper's CartPole settings for a given hidden size.
    #[deprecated(
        since = "0.1.0",
        note = "use DqnConfig::for_workload(&Workload::CartPole.spec(), hidden_dim)"
    )]
    pub fn cartpole(hidden_dim: usize) -> Self {
        Self::for_workload(&elmrl_gym::Workload::CartPole.spec(), hidden_dim)
    }
}

/// The complete mutable state of a [`DqnAgent`], as carried inside an
/// [`AgentSnapshot`]: both networks' parameters, the Adam moment estimates
/// (with their bias-correction step counts), the full replay history and the
/// op counters. The replay buffer must travel whole — resuming with a
/// truncated buffer would change which mini-batches the restored run samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct DqnState {
    online: Vec<(Matrix<f64>, Matrix<f64>)>,
    target: Vec<(Matrix<f64>, Matrix<f64>)>,
    optimizer: Vec<Option<MomentState>>,
    replay: ReplayBuffer,
    ops: OpCounts,
}

/// The DQN baseline agent.
pub struct DqnAgent {
    config: DqnConfig,
    policy: ExploitPolicy,
    online: Mlp,
    target: Mlp,
    optimizer: Adam,
    replay: ReplayBuffer,
    targets: TargetConfig,
    /// Forward-pass workspaces for allocation-free action selection.
    scratch: MlpScratch,
    /// Reused per-action Q buffer for [`Agent::act`].
    q_buf: Vec<f64>,
    ops: OpCounts,
}

impl DqnAgent {
    /// Create an agent with Xavier-initialised networks.
    pub fn new(config: DqnConfig, rng: &mut SmallRng) -> Self {
        let mlp_config = MlpConfig::new(&[config.state_dim, config.hidden_dim, config.num_actions])
            .with_hidden_activation(Activation::ReLU)
            .with_output_activation(Activation::Identity);
        let online = Mlp::new(mlp_config.clone(), rng);
        let mut target = Mlp::new(mlp_config, rng);
        target.copy_parameters_from(&online);
        Self {
            policy: ExploitPolicy::new(config.exploit_prob),
            optimizer: Adam::new(config.learning_rate),
            replay: ReplayBuffer::new(config.replay_capacity),
            targets: TargetConfig::unclipped(config.gamma),
            online,
            target,
            scratch: MlpScratch::default(),
            q_buf: Vec::new(),
            ops: OpCounts::new(),
            config,
        }
    }

    /// Number of transitions currently in the replay buffer.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    fn train_on_batch(&mut self, rng: &mut SmallRng) {
        if self.replay.len() < self.config.warmup.max(self.config.batch_size) {
            return;
        }
        let start = Instant::now();
        let batch: Vec<Transition> = self
            .replay
            .sample(self.config.batch_size, rng)
            .into_iter()
            .cloned()
            .collect();

        let k = batch.len();
        let states = Matrix::from_rows(&batch.iter().map(|t| t.state.clone()).collect::<Vec<_>>());
        let next_states = Matrix::from_rows(
            &batch
                .iter()
                .map(|t| t.next_state.clone())
                .collect::<Vec<_>>(),
        );

        // Q_θ2(s', ·) on the batch — the `predict_32` class of Figure 5.
        let p32_start = Instant::now();
        let next_q = self.target.forward(&next_states);
        self.ops.record(OpKind::Predict32, p32_start.elapsed());

        // Current Q_θ1(s, ·) to keep the untouched actions' targets in place.
        let p32b_start = Instant::now();
        let mut targets = self.online.forward(&states);
        self.ops.record(OpKind::Predict32, p32b_start.elapsed());

        for (i, t) in batch.iter().enumerate() {
            let mut max_next = f64::NEG_INFINITY;
            for a in 0..self.config.num_actions {
                max_next = max_next.max(next_q[(i, a)]);
            }
            targets[(i, t.action)] = self.targets.target(t.reward, max_next, t.done);
        }
        let _ = k;

        self.online
            .train_step(&states, &targets, Loss::Huber, &mut self.optimizer);
        self.ops.record(OpKind::TrainDqn, start.elapsed());
    }
}

impl Agent for DqnAgent {
    fn name(&self) -> &str {
        "DQN"
    }

    fn hidden_dim(&self) -> usize {
        self.config.hidden_dim
    }

    fn act(&mut self, state: &[f64], rng: &mut SmallRng) -> usize {
        let start = Instant::now();
        let Self {
            policy,
            online,
            scratch,
            q_buf,
            ops,
            ..
        } = self;
        online.forward_one_into(state, scratch, q_buf);
        ops.record(OpKind::Predict1, start.elapsed());
        policy.select(q_buf, rng)
    }

    fn observe(&mut self, obs: &Observation, rng: &mut SmallRng) {
        self.replay.push(Transition {
            state: obs.state.clone(),
            action: obs.action,
            reward: obs.reward,
            next_state: obs.next_state.clone(),
            done: obs.done,
        });
        self.train_on_batch(rng);
    }

    fn end_episode(&mut self, episode_index: usize) {
        if self.config.target_sync_episodes > 0
            && (episode_index + 1) % self.config.target_sync_episodes == 0
        {
            self.target.copy_parameters_from(&self.online);
        }
    }

    fn reset(&mut self, rng: &mut SmallRng) {
        let mlp_config = MlpConfig::new(&[
            self.config.state_dim,
            self.config.hidden_dim,
            self.config.num_actions,
        ])
        .with_hidden_activation(Activation::ReLU)
        .with_output_activation(Activation::Identity);
        self.online = Mlp::new(mlp_config.clone(), rng);
        self.target = Mlp::new(mlp_config, rng);
        self.target.copy_parameters_from(&self.online);
        self.optimizer = Adam::new(self.config.learning_rate);
        self.replay.clear();
    }

    fn op_counts(&self) -> &OpCounts {
        &self.ops
    }

    fn q_values(&mut self, state: &[f64]) -> Vec<f64> {
        self.online.forward_one(state)
    }

    fn memory_footprint_bytes(&self) -> usize {
        let params = 2 * self.online.parameter_count() * std::mem::size_of::<f64>();
        params + self.replay.approximate_bytes()
    }

    fn snapshot(&self) -> Option<AgentSnapshot> {
        let state = DqnState {
            online: self.online.export_parameters(),
            target: self.target.export_parameters(),
            optimizer: self.optimizer.export_state(),
            replay: self.replay.clone(),
            ops: self.ops.clone(),
        };
        Some(AgentSnapshot::new(self.name(), &state))
    }

    fn restore(&mut self, snapshot: &AgentSnapshot) -> Result<(), String> {
        let state: DqnState = snapshot.decode(self.name())?;
        self.online.import_parameters(&state.online);
        self.target.import_parameters(&state.target);
        self.optimizer.import_state(state.optimizer);
        self.replay = state.replay;
        self.ops = state.ops;
        Ok(())
    }
}

impl BatchAgent for DqnAgent {
    /// The DQN maps states to per-action Q directly, so the batched pass is
    /// a single `B × state_dim` forward through the online MLP — bit-for-bit
    /// equal to per-sample [`Agent::q_values`] (the layer kernels accumulate
    /// each batch row independently).
    fn predict_batch(&mut self, states: &Matrix<f64>) -> Matrix<f64> {
        self.online.forward(states)
    }

    /// The batched forward through the agent's own [`MlpScratch`] — the
    /// serve-worker hot path. Zero heap allocations once `out` and the
    /// ping-pong buffers have seen the steady-state batch shape.
    fn predict_batch_into(&mut self, states: &Matrix<f64>, out: &mut Matrix<f64>) {
        self.online
            .forward_batch_into(states, &mut self.scratch, out);
    }

    /// ε-greedy through the batched forward: same Q (bit for bit), same RNG
    /// draws, same action as [`Agent::act`]. Records the same prediction
    /// counter as [`Agent::act`], so modeled execution times stay
    /// comparable between the scalar and E-parallel drivers.
    fn act_row(&mut self, state_row: &Matrix<f64>, rng: &mut SmallRng) -> usize {
        let start = Instant::now();
        let q = self.predict_batch(state_row);
        self.ops.record(OpKind::Predict1, start.elapsed());
        self.policy.select(q.row(0), rng)
    }

    /// One engine tick's transitions: push all of them into replay, then
    /// perform **one** true minibatch SGD step (one sampled batch, one
    /// gradient update) instead of the scalar path's one-step-per-transition
    /// — B transitions arriving together would otherwise trigger B gradient
    /// steps on nearly identical replay contents. With `batch.len() == 1`
    /// this is exactly the scalar [`Agent::observe`].
    fn observe_batch(&mut self, batch: &[Observation], rng: &mut SmallRng) {
        for obs in batch {
            self.replay.push(Transition {
                state: obs.state.clone(),
                action: obs.action,
                reward: obs.reward,
                next_state: obs.next_state.clone(),
                done: obs.done,
            });
        }
        self.train_on_batch(rng);
    }
}

#[cfg(test)]
#[allow(deprecated)] // the cartpole() shims must keep working for seed tests
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn obs(i: usize, reward: f64, done: bool) -> Observation {
        Observation {
            state: vec![0.01 * (i % 17) as f64, -0.02, 0.03 * ((i % 5) as f64), 0.04],
            action: i % 2,
            reward,
            next_state: vec![0.01 * (i % 17) as f64 + 0.01, -0.01, 0.02, 0.05],
            done,
            truncated: false,
        }
    }

    #[test]
    fn paper_parameters() {
        let c = DqnConfig::cartpole(64);
        assert_eq!(c.learning_rate, 0.01);
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.exploit_prob, 0.7);
        assert_eq!(c.target_sync_episodes, 2);
        let mut r = rng(0);
        let agent = DqnAgent::new(c, &mut r);
        assert_eq!(agent.name(), "DQN");
        assert_eq!(agent.hidden_dim(), 64);
    }

    #[test]
    fn training_starts_only_after_warmup() {
        let mut r = rng(1);
        let mut agent = DqnAgent::new(DqnConfig::cartpole(16), &mut r);
        for i in 0..63 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        assert_eq!(agent.op_counts().count(OpKind::TrainDqn), 0);
        agent.observe(&obs(63, 0.0, false), &mut r);
        assert_eq!(agent.op_counts().count(OpKind::TrainDqn), 1);
        assert_eq!(agent.op_counts().count(OpKind::Predict32), 2);
        assert_eq!(agent.replay_len(), 64);
    }

    #[test]
    fn act_counts_single_predictions() {
        let mut r = rng(2);
        let mut agent = DqnAgent::new(DqnConfig::cartpole(16), &mut r);
        for _ in 0..5 {
            let _ = agent.act(&[0.0; 4], &mut r);
        }
        assert_eq!(agent.op_counts().count(OpKind::Predict1), 5);
    }

    #[test]
    fn q_of_failing_action_decreases_with_training() {
        let mut r = rng(3);
        let mut agent = DqnAgent::new(DqnConfig::cartpole(32), &mut r);
        let probe = [0.05, -0.02, 0.1, 0.04];
        // Fill replay with transitions where action 1 from states with
        // positive pole angle leads to failure (−1) and action 0 is neutral.
        for i in 0..400 {
            let bad = i % 2 == 1;
            let o = Observation {
                state: vec![0.05, -0.02, 0.1, 0.04],
                action: if bad { 1 } else { 0 },
                reward: if bad { -1.0 } else { 0.0 },
                next_state: vec![0.06, -0.02, 0.12, 0.05],
                done: bad,
                truncated: false,
            };
            agent.observe(&o, &mut r);
            agent.end_episode(i);
        }
        let q = agent.q_values(&probe);
        assert!(
            q[1] < q[0],
            "Q(bad action) should fall below Q(neutral action): {q:?}"
        );
    }

    #[test]
    fn target_network_sync_schedule() {
        let mut r = rng(4);
        let mut agent = DqnAgent::new(DqnConfig::cartpole(16), &mut r);
        for i in 0..80 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        let probe = [0.1, 0.0, 0.0, 0.0];
        let online_q = agent.q_values(&probe);
        let target_q_before = agent.target.forward_one(&probe);
        assert!(online_q
            .iter()
            .zip(target_q_before.iter())
            .any(|(a, b)| (a - b).abs() > 1e-9));
        agent.end_episode(1); // sync
        let target_q_after = agent.target.forward_one(&probe);
        for (a, b) in online_q.iter().zip(target_q_after.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_clears_replay_and_reinitialises() {
        let mut r = rng(5);
        let mut agent = DqnAgent::new(DqnConfig::cartpole(16), &mut r);
        for i in 0..100 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        assert!(agent.replay_len() > 0);
        agent.reset(&mut r);
        assert_eq!(agent.replay_len(), 0);
    }

    #[test]
    fn memory_footprint_includes_replay_buffer() {
        let mut r = rng(6);
        let mut agent = DqnAgent::new(DqnConfig::cartpole(64), &mut r);
        let empty = agent.memory_footprint_bytes();
        for i in 0..500 {
            agent.observe(&obs(i, 0.0, false), &mut r);
        }
        let filled = agent.memory_footprint_bytes();
        assert!(
            filled > empty + 400 * 8 * std::mem::size_of::<f64>(),
            "replay buffer growth should dominate: {empty} -> {filled}"
        );
    }
}
