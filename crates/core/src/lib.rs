//! # elmrl-core
//!
//! The paper's primary contribution: lightweight on-device reinforcement
//! learning built on ELM / OS-ELM Q-Networks (Algorithm 1), plus the DQN
//! baseline it is compared against in §4.
//!
//! The pieces map onto the paper as follows:
//!
//! | Module | Paper section |
//! |---|---|
//! | [`encoding`] — simplified output model, `(state, action) → scalar Q` | §3.1, Figure 2 |
//! | [`clipping`] — Q-value clipping to `[-1, 1]` | §3.1 |
//! | [`policy`] — the ε₁ exploit/explore rule | Algorithm 1 lines 10–13 |
//! | [`reward`] — reward shaping into the `[-1, 1]` range the clipping assumes | §3.1 |
//! | [`elm_qnet`] — ELM Q-Network (batch retraining when buffer `D` fills) | §3.1, Algorithm 1 |
//! | [`oselm_qnet`] — OS-ELM Q-Network with random update, L2 and spectral normalization | §3.2–3.3 |
//! | [`dqn`] — the three-layer DQN baseline (experience replay, target network, Adam, Huber) | §2.4, §4.1 design (6) |
//! | [`designs`] — the seven evaluated designs as a factory enum | §4.1 |
//! | [`batch`] — batched Q inference ([`BatchAgent`]): one `B×n` matmul instead of B matvecs | population-serving extension |
//! | [`checkpoint`] — versioned agent/run snapshots for bit-exact save/resume | fault-tolerance extension |
//! | [`trainer`] — episode loop, 300-episode reset rule, solve criterion, op counting | §4.3–4.4 |
//! | [`ops`] — per-operation counters behind the Figure 5/6 execution-time breakdowns | §4.4 |
//!
//! ```no_run
//! use elmrl_core::designs::{Design, DesignConfig};
//! use elmrl_core::trainer::{Trainer, TrainerConfig};
//! use elmrl_gym::CartPole;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let config = DesignConfig::new(64);
//! let mut agent = Design::OsElmL2Lipschitz.build(&config, &mut rng);
//! let mut env = CartPole::new();
//! let result = Trainer::new(TrainerConfig::default())
//!     .run(agent.as_mut(), &mut env, &mut rng);
//! println!("solved: {} after {} episodes", result.solved, result.episodes_run);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod agent;
pub mod batch;
pub mod checkpoint;
pub mod clipping;
pub mod designs;
pub mod dqn;
pub mod elm_qnet;
pub mod encoding;
pub mod ops;
pub mod oselm_qnet;
pub mod policy;
pub mod reward;
pub mod trainer;

pub use agent::{Agent, Observation};
pub use batch::BatchAgent;
pub use checkpoint::{AgentSnapshot, RunCheckpoint, SlotCheckpoint, SNAPSHOT_SCHEMA_VERSION};
pub use designs::{Design, DesignConfig};
pub use dqn::DqnAgent;
pub use elm_qnet::ElmQNet;
pub use ops::{OpCounts, OpKind};
pub use oselm_qnet::{OsElmQNet, OsElmQNetConfig, DEFAULT_CHUNK_CAP};
pub use trainer::{SolveCriterion, Trainer, TrainerConfig, TrainingResult};
