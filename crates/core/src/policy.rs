//! Action selection: the paper's ε₁ exploit/explore rule.
//!
//! Algorithm 1 lines 10–13: with probability ε₁ the agent takes the greedy
//! action `argmax_a Q(s, a)`, otherwise a uniformly random action. Note the
//! inversion relative to the usual "ε-greedy" convention — here ε₁ is the
//! probability of *exploiting* (the paper uses ε₁ = 0.7).

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The exploit-with-probability-ε₁ policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExploitPolicy {
    /// Probability of taking the greedy action (ε₁ in the paper).
    pub exploit_prob: f64,
}

impl ExploitPolicy {
    /// Create a policy with the given exploit probability.
    pub fn new(exploit_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&exploit_prob),
            "exploit probability must be in [0, 1]"
        );
        Self { exploit_prob }
    }

    /// The paper's setting: ε₁ = 0.7.
    pub fn paper_default() -> Self {
        Self::new(0.7)
    }

    /// Select an action given the per-action Q-values. Exact ties among the
    /// maximal Q-values are broken uniformly at random — before any training
    /// has happened every Q-value is identical, and deterministic tie-breaking
    /// would collapse the behaviour policy onto action 0 and starve the
    /// learner of coverage.
    pub fn select(&self, q_values: &[f64], rng: &mut SmallRng) -> usize {
        assert!(!q_values.is_empty(), "need at least one action");
        if rng.gen_range(0.0..1.0) < self.exploit_prob {
            argmax_random_ties(q_values, rng)
        } else {
            rng.gen_range(0..q_values.len())
        }
    }

    /// Always-greedy selection (used at evaluation time). Ties resolve to the
    /// first maximal action, keeping evaluation deterministic.
    pub fn select_greedy(&self, q_values: &[f64]) -> usize {
        argmax(q_values)
    }
}

/// Index of the largest value, breaking exact ties uniformly at random.
///
/// Allocation-free (this runs once per environment step in every training
/// loop): ties are counted in a first pass and the drawn winner located in
/// a second, consuming exactly one RNG value when ties exist and none
/// otherwise — the same stream the historical `Vec`-collecting
/// implementation consumed.
pub fn argmax_random_ties(values: &[f64], rng: &mut SmallRng) -> usize {
    let best_index = argmax(values);
    let best = values[best_index];
    let tied = values.iter().filter(|&&v| v == best).count();
    if tied == 1 {
        return best_index;
    }
    let pick = rng.gen_range(0..tied);
    let mut seen = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v == best {
            if seen == pick {
                return i;
            }
            seen += 1;
        }
    }
    unreachable!("tie count and tie scan disagree");
}

/// Index of the largest value (first index on ties).
pub fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0usize;
    for i in 1..values.len() {
        if values[i] > values[best] {
            best = i;
        }
    }
    best
}

/// The largest value of a non-empty slice (`max_a Q(s, a)`).
pub fn max_q(values: &[f64]) -> f64 {
    values[argmax(values)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_default_is_point_seven() {
        assert_eq!(ExploitPolicy::paper_default().exploit_prob, 0.7);
    }

    #[test]
    fn argmax_and_max_q() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0, 5.0, 1.0]), 0);
        assert_eq!(max_q(&[-2.0, -1.0, -3.0]), -1.0);
    }

    #[test]
    fn fully_greedy_policy_always_exploits() {
        let p = ExploitPolicy::new(1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(p.select(&[0.0, 1.0, 0.5], &mut rng), 1);
        }
        assert_eq!(p.select_greedy(&[0.0, 1.0, 0.5]), 1);
    }

    #[test]
    fn fully_random_policy_covers_all_actions() {
        let p = ExploitPolicy::new(0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[p.select(&[9.0, 0.0, 0.0], &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ties_are_broken_randomly_when_exploiting() {
        let p = ExploitPolicy::new(1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let q = [0.5, 0.5];
        let ones = (0..400).filter(|_| p.select(&q, &mut rng) == 1).count();
        let frac = ones as f64 / 400.0;
        assert!(
            (frac - 0.5).abs() < 0.1,
            "tie-breaking should be ~uniform, got {frac}"
        );
        // Non-tied values are still greedy.
        assert_eq!(argmax_random_ties(&[0.1, 0.9], &mut rng), 1);
    }

    #[test]
    fn intermediate_probability_mixes_modes() {
        let p = ExploitPolicy::new(0.7);
        let mut rng = SmallRng::seed_from_u64(2);
        let q = [0.0, 1.0];
        let greedy_count = (0..2000).filter(|_| p.select(&q, &mut rng) == 1).count();
        // exploit picks action 1 always; explore picks it half the time →
        // expected ≈ 0.7 + 0.3·0.5 = 0.85
        let frac = greedy_count as f64 / 2000.0;
        assert!(
            (frac - 0.85).abs() < 0.05,
            "observed greedy fraction {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = ExploitPolicy::new(1.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_q_values_rejected() {
        let _ = argmax(&[]);
    }
}
