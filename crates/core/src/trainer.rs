//! The episode loop driving every design through the reinforcement-learning
//! task (§4.3–4.4).
//!
//! The trainer reproduces the paper's experimental protocol:
//!
//! * episodes run until the task is *solved* (CartPole-v0: 100-episode moving
//!   average ≥ 195) or the episode budget is exhausted (the paper terminates
//!   a trial as "impossible" after 50 000 episodes);
//! * the ELM/OS-ELM designs are **reset** — weights re-drawn, training state
//!   discarded — when they have not solved the task after a configurable
//!   number of episodes (300 in §4.3), because their dependence on the random
//!   initial `α` is high;
//! * wall-clock time and per-operation counters are recorded so the harness
//!   can produce the Figure 5/6 execution-time breakdowns.
//!
//! The trainer itself is environment-generic: the solve criterion, reward
//! shaping, reset rule and episode budget all come from [`TrainerConfig`],
//! and [`TrainerConfig::for_workload`] fills them from a registered
//! [`EnvSpec`], so the same loop drives CartPole, MountainCar, Pendulum and
//! any future registry entry.

use crate::agent::{Agent, Observation};
use crate::batch::BatchAgent;
use crate::checkpoint::{
    rng_from_words, rng_state_words, RunCheckpoint, SlotCheckpoint, SNAPSHOT_SCHEMA_VERSION,
};
use crate::ops::OpCounts;
use crate::reward::RewardShaping;
use elmrl_gym::{EnvSpec, Environment, EpisodeStats, VecEnv};
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

pub use elmrl_gym::workload::SolveCriterion;

/// Trainer configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Maximum number of episodes before the trial is declared unsolved
    /// (the paper uses 50 000; tests use much smaller budgets).
    pub max_episodes: usize,
    /// Reset the agent when it has not solved the task after this many
    /// episodes since the last reset (§4.3 uses 300). `None` disables resets
    /// (the DQN baseline is never reset).
    pub reset_after_episodes: Option<usize>,
    /// Stop as soon as the task is solved (set false to keep collecting the
    /// full training curve for Figure 4).
    pub stop_when_solved: bool,
    /// Completion rule (see [`SolveCriterion`]).
    pub solve_criterion: SolveCriterion,
    /// Moving-average window recorded in the per-episode statistics (100 in
    /// the paper's Figure 4).
    pub solved_window: usize,
    /// Reward shaping applied before transitions reach the agent.
    pub reward_shaping: RewardShaping,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            max_episodes: 2_000,
            reset_after_episodes: Some(300),
            stop_when_solved: true,
            solve_criterion: SolveCriterion::default(),
            solved_window: 100,
            reward_shaping: RewardShaping::SurvivalSigned,
        }
    }
}

impl TrainerConfig {
    /// The protocol a registered workload declares for itself: its solve
    /// criterion, reward shaping, reset rule and episode budget. For
    /// [`elmrl_gym::Workload::CartPole`] this equals [`TrainerConfig::default`].
    pub fn for_workload(spec: &EnvSpec) -> Self {
        Self {
            max_episodes: spec.defaults.max_episodes,
            reset_after_episodes: spec.defaults.reset_after_episodes,
            stop_when_solved: true,
            solve_criterion: spec.solve_criterion,
            solved_window: 100,
            reward_shaping: spec.reward_shaping,
        }
    }

    /// The paper's full protocol (50 000-episode cut-off). Long; used by the
    /// harness binaries, not by unit tests.
    pub fn paper_protocol() -> Self {
        Self {
            max_episodes: 50_000,
            ..Self::default()
        }
    }

    /// A small-budget configuration for tests and examples.
    pub fn quick(max_episodes: usize) -> Self {
        Self {
            max_episodes,
            ..Self::default()
        }
    }
}

/// The outcome of one training trial.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingResult {
    /// Design name as reported by the agent.
    pub design: String,
    /// Hidden size `Ñ`.
    pub hidden_dim: usize,
    /// Whether the solve criterion was met within the episode budget.
    pub solved: bool,
    /// Episode index (0-based) at which the task became solved, if it did.
    pub solved_at_episode: Option<usize>,
    /// Number of episodes actually run.
    pub episodes_run: usize,
    /// Total environment steps taken.
    pub total_steps: usize,
    /// How many times the reset rule fired.
    pub resets: usize,
    /// Wall-clock time of the whole trial.
    pub wall_time: Duration,
    /// Per-episode returns and moving averages (the Figure 4 curve).
    pub stats: EpisodeStats,
    /// Per-operation counters (the Figure 5/6 breakdown).
    pub op_counts: OpCounts,
}

impl TrainingResult {
    /// Wall-clock seconds of the trial (the y-axis of Figure 5).
    pub fn wall_seconds(&self) -> f64 {
        self.wall_time.as_secs_f64()
    }
}

/// Checkpoint control for a single trial: when to capture, where captured
/// checkpoints go, what to resume from, and an optional fault-injection stop.
///
/// The determinism contract: a run resumed from a checkpoint captured at
/// episode `N` continues **bit for bit** identically to a run that never
/// stopped — same RNG draws, same agent updates, same statistics. Captures
/// have no side effects (no RNG draws, no agent mutation), so enabling
/// checkpointing never changes a trajectory.
///
/// The default value disables everything; [`Trainer::run`] /
/// [`Trainer::run_vec`] are thin wrappers over the checkpointed drivers with
/// this default.
#[derive(Default)]
pub struct CheckpointCtl<'a> {
    /// Capture a checkpoint whenever the completed-episode count crosses a
    /// multiple of this (0 = never). For vectorized runs a single tick can
    /// complete several episodes; one capture is taken per crossed boundary
    /// tick, at the end of the tick.
    pub every: usize,
    /// Abandon the run once this many episodes have completed — the crash
    /// half of fault injection. The boundary checkpoint is still captured
    /// first, so `stop_after: Some(n)` with `every` dividing `n` simulates a
    /// kill at episode `n` with its checkpoint on disk.
    pub stop_after: Option<usize>,
    /// Continue from this previously captured checkpoint instead of starting
    /// fresh.
    pub resume: Option<&'a RunCheckpoint>,
    /// Receives every captured checkpoint (write it to disk, keep the latest,
    /// …). Captures are skipped entirely when absent.
    pub sink: Option<&'a mut dyn FnMut(RunCheckpoint)>,
    /// Internal: next episode-count boundary to capture at.
    next_mark: usize,
}

impl<'a> CheckpointCtl<'a> {
    /// A control block that checkpoints every `every` episodes into `sink`.
    pub fn saving(every: usize, sink: &'a mut dyn FnMut(RunCheckpoint)) -> Self {
        Self {
            every,
            sink: Some(sink),
            ..Self::default()
        }
    }

    /// A control block that resumes from `ckpt` (and keeps checkpointing
    /// into `sink` on the same schedule).
    pub fn resuming(
        ckpt: &'a RunCheckpoint,
        every: usize,
        sink: &'a mut dyn FnMut(RunCheckpoint),
    ) -> Self {
        Self {
            every,
            resume: Some(ckpt),
            sink: Some(sink),
            ..Self::default()
        }
    }

    /// Arm the capture schedule given the episode count the run starts at.
    fn arm(&mut self, episodes_run: usize) {
        // `every == 0` means the schedule is disarmed: no finite mark.
        self.next_mark = match episodes_run.checked_div(self.every) {
            Some(marks) => (marks + 1) * self.every,
            None => usize::MAX,
        };
    }

    /// Whether the run has crossed the next capture boundary. Allocation-free
    /// — safe to ask every tick.
    fn capture_due(&self, episodes_run: usize) -> bool {
        self.sink.is_some() && episodes_run >= self.next_mark
    }

    /// Hand a captured checkpoint to the sink and advance the schedule.
    fn emit(&mut self, ckpt: RunCheckpoint) {
        self.next_mark = (ckpt.episodes_run / self.every + 1) * self.every;
        if let Some(sink) = self.sink.as_mut() {
            sink(ckpt);
        }
    }

    /// Whether the fault-injection stop fires at this episode count.
    fn stop_now(&self, episodes_run: usize) -> bool {
        self.stop_after.is_some_and(|n| episodes_run >= n)
    }
}

/// The episode-loop driver.
#[derive(Clone, Debug)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    fn criterion_met(&self, stats: &EpisodeStats, last_return: f64) -> bool {
        // Delegates to the registry's shared rule so the trainer and the
        // population engine stop on exactly the same condition.
        self.config.solve_criterion.met(&stats.returns, last_return)
    }

    /// Run one trial of `agent` on `env`.
    pub fn run(
        &self,
        agent: &mut dyn Agent,
        env: &mut dyn Environment,
        rng: &mut SmallRng,
    ) -> TrainingResult {
        self.run_checkpointed(agent, env, rng, &mut CheckpointCtl::default())
            .expect("a run without checkpointing cannot fail")
    }

    /// [`Trainer::run`] with checkpoint capture, resume and fault injection.
    ///
    /// Checkpoints are captured at episode boundaries, after *all* of the
    /// episode's bookkeeping (target sync, statistics, solve check, reset
    /// rule), so the captured state is exactly the state the next episode
    /// starts from. Errors only on an invalid resume checkpoint or when a
    /// capture is requested from an agent that does not support snapshots.
    pub fn run_checkpointed(
        &self,
        agent: &mut dyn Agent,
        env: &mut dyn Environment,
        rng: &mut SmallRng,
        ctl: &mut CheckpointCtl<'_>,
    ) -> Result<TrainingResult, String> {
        let start = Instant::now();
        let mut stats =
            EpisodeStats::with_window(self.config.solved_window, env.solved_threshold());
        let mut total_steps = 0usize;
        let mut resets = 0usize;
        let mut episodes_since_reset = 0usize;
        let mut episodes_run = 0usize;
        let mut solved_at_episode: Option<usize> = None;

        if let Some(ckpt) = ctl.resume {
            if ckpt.slots.is_some() {
                return Err(
                    "checkpoint was captured by a vectorized run; resume with run_vec".to_owned(),
                );
            }
            agent.restore(&ckpt.agent)?;
            *rng = rng_from_words(&ckpt.rng)?;
            if let Some(env_state) = &ckpt.env_state {
                env.load_state(env_state)?;
            }
            stats = ckpt.stats.clone();
            total_steps = ckpt.total_steps;
            resets = ckpt.resets;
            episodes_since_reset = ckpt.episodes_since_reset;
            episodes_run = ckpt.episodes_run;
            solved_at_episode = ckpt.solved_at_episode;
        }
        ctl.arm(episodes_run);

        // The range start is evaluated once; the loop body advances
        // `episodes_run` as the count-so-far for checkpoint captures, not to
        // steer the iteration.
        #[allow(clippy::mut_range_bound)]
        for episode in episodes_run..self.config.max_episodes {
            // An uninterrupted run breaks below before re-entering; this
            // guard only stops a run resumed from a checkpoint captured at
            // its solving episode from running an extra one.
            if solved_at_episode.is_some() && self.config.stop_when_solved {
                break;
            }
            let mut state = {
                let _span = elmrl_telemetry::hist!("env.reset").span();
                env.reset(rng)
            };
            let mut episode_return = 0.0;

            loop {
                let action = agent.act(&state, rng);
                let outcome = {
                    let _span = elmrl_telemetry::hist!("env.step").span();
                    env.step(action, rng)
                };
                total_steps += 1;
                episode_return += outcome.reward;

                let shaped = self.config.reward_shaping.shape(
                    outcome.reward,
                    outcome.done,
                    outcome.truncated,
                );
                let obs = Observation {
                    state: state.clone(),
                    action,
                    reward: shaped,
                    next_state: outcome.observation.clone(),
                    done: outcome.done,
                    truncated: outcome.truncated,
                };
                agent.observe(&obs, rng);
                state = outcome.observation;
                if outcome.done || outcome.truncated {
                    break;
                }
            }

            agent.end_episode(episode);
            episodes_run = episode + 1;
            episodes_since_reset += 1;
            stats.record_episode(episode_return);

            if solved_at_episode.is_none() && self.criterion_met(&stats, episode_return) {
                solved_at_episode = Some(episode);
            }
            if solved_at_episode.is_some() && self.config.stop_when_solved {
                // The episode's bookkeeping is complete; capture the boundary
                // checkpoint (if due) before stopping so resume-at-the-last-
                // episode reproduces this result.
                if ctl.capture_due(episodes_run) {
                    let ckpt = Self::capture_scalar(
                        agent,
                        env,
                        rng,
                        &stats,
                        episodes_run,
                        total_steps,
                        resets,
                        episodes_since_reset,
                        solved_at_episode,
                    )?;
                    ctl.emit(ckpt);
                }
                break;
            }
            if solved_at_episode.is_none() {
                if let Some(reset_after) = self.config.reset_after_episodes {
                    if episodes_since_reset >= reset_after {
                        agent.reset(rng);
                        resets += 1;
                        episodes_since_reset = 0;
                    }
                }
            }
            if ctl.capture_due(episodes_run) {
                let ckpt = Self::capture_scalar(
                    agent,
                    env,
                    rng,
                    &stats,
                    episodes_run,
                    total_steps,
                    resets,
                    episodes_since_reset,
                    solved_at_episode,
                )?;
                ctl.emit(ckpt);
            }
            if ctl.stop_now(episodes_run) {
                break;
            }
        }

        Ok(TrainingResult {
            design: agent.name().to_string(),
            hidden_dim: agent.hidden_dim(),
            solved: solved_at_episode.is_some(),
            solved_at_episode,
            episodes_run,
            total_steps,
            resets,
            wall_time: start.elapsed(),
            stats,
            op_counts: agent.op_counts().clone(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn capture_scalar(
        agent: &dyn Agent,
        env: &dyn Environment,
        rng: &SmallRng,
        stats: &EpisodeStats,
        episodes_run: usize,
        total_steps: usize,
        resets: usize,
        episodes_since_reset: usize,
        solved_at_episode: Option<usize>,
    ) -> Result<RunCheckpoint, String> {
        let _span = elmrl_telemetry::hist!("checkpoint.capture").span();
        let snapshot = crate::checkpoint::snapshot_agent(agent)?;
        Ok(RunCheckpoint {
            version: SNAPSHOT_SCHEMA_VERSION,
            episodes_run,
            total_steps,
            resets,
            episodes_since_reset,
            solved_at_episode,
            stats: stats.clone(),
            agent: snapshot,
            rng: rng_state_words(rng),
            env_state: env.save_state(),
            slots: None,
        })
    }

    /// Run one trial of `agent` against **E parallel episodes** — the
    /// batched training driver behind `--train-envs`.
    ///
    /// Every engine tick steps all still-active episode slots of `vec_env`
    /// in lockstep: the agent picks one ε-greedy action per slot through
    /// the batched forward kernel ([`BatchAgent::act_row`], slot `j`
    /// drawing from its own RNG stream), the environments advance (finished
    /// slots auto-reset), and the tick's transitions are handed to the
    /// agent as **one** [`BatchAgent::observe_batch`] call — for the OS-ELM
    /// designs a single batch-B RLS chunk, for DQN one minibatch SGD step.
    ///
    /// Protocol semantics generalise the scalar loop:
    ///
    /// * **Episode accounting** is global and deterministic: episodes are
    ///   numbered in completion order (ticks in time order, slots in index
    ///   order within a tick), each completion drives
    ///   [`Agent::end_episode`], the per-episode statistics, the solve
    ///   criterion and the reset rule exactly as in [`Trainer::run`].
    /// * **Determinism**: slot RNG streams are seeded from `rng` up front
    ///   and the gating/reset draws use `rng` itself, so a run is a pure
    ///   function of (agent seed, `rng` state, E).
    /// * **Budget**: the trial stops once `max_episodes` episodes have
    ///   completed (or the criterion fires with `stop_when_solved`);
    ///   in-flight episodes on other slots are abandoned, and their steps
    ///   stay in `total_steps` (every consumed environment transition is
    ///   counted).
    ///
    /// With E = 1 the loop performs the same episode protocol as
    /// [`Trainer::run`] but draws its environment randomness from a derived
    /// slot stream and updates through chunk-size-1 `observe_batch`, so the
    /// trajectory differs from the scalar loop's; callers that need the
    /// paper's byte-exact B = 1 protocol (the default everywhere) use
    /// [`Trainer::run`], which `run_trial`/the population engine dispatch
    /// to whenever `train_envs == 1`.
    pub fn run_vec(
        &self,
        agent: &mut dyn BatchAgent,
        vec_env: &mut VecEnv,
        rng: &mut SmallRng,
    ) -> TrainingResult {
        self.run_vec_checkpointed(agent, vec_env, rng, &mut CheckpointCtl::default())
            .expect("a run without checkpointing cannot fail")
    }

    /// [`Trainer::run_vec`] with checkpoint capture, resume and fault
    /// injection.
    ///
    /// Vectorized checkpoints are captured at **end of tick** (never
    /// mid-tick): a tick that crosses an `every` boundary — possibly
    /// completing several episodes at once — first finishes all of its
    /// bookkeeping, then the full engine state (per-slot environment states,
    /// observations, RNG cursors, in-flight returns, active flags, plus the
    /// master stream and the agent snapshot) is captured. A resumed run
    /// re-enters the tick loop exactly where the original would have, so the
    /// suffix replays bit for bit.
    pub fn run_vec_checkpointed(
        &self,
        agent: &mut dyn BatchAgent,
        vec_env: &mut VecEnv,
        rng: &mut SmallRng,
        ctl: &mut CheckpointCtl<'_>,
    ) -> Result<TrainingResult, String> {
        let start = Instant::now();
        let e = vec_env.len();
        let mut stats =
            EpisodeStats::with_window(self.config.solved_window, vec_env.solved_threshold());

        let mut slot_rngs: Vec<SmallRng>;
        let mut episode_returns = vec![0.0f64; e];
        let mut active = vec![self.config.max_episodes > 0; e];
        let mut total_steps = 0usize;
        let mut resets = 0usize;
        let mut episodes_since_reset = 0usize;
        let mut episodes_run = 0usize;
        let mut solved_at_episode: Option<usize> = None;

        if let Some(ckpt) = ctl.resume {
            let Some(slots) = &ckpt.slots else {
                return Err(
                    "checkpoint was captured by a scalar run; resume with run (not run_vec)"
                        .to_owned(),
                );
            };
            if slots.len() != e {
                return Err(format!(
                    "checkpoint has {} slots but the vector environment has {e}",
                    slots.len()
                ));
            }
            agent.restore(&ckpt.agent)?;
            // The master stream already consumed the slot-seeding draws
            // before the capture, so restoring it replaces (not repeats)
            // the seeding step.
            *rng = rng_from_words(&ckpt.rng)?;
            slot_rngs = Vec::with_capacity(e);
            for (j, slot) in slots.iter().enumerate() {
                slot_rngs.push(rng_from_words(&slot.rng)?);
                vec_env.restore_slot(j, &slot.env_state, &slot.observation)?;
                episode_returns[j] = slot.episode_return;
                active[j] = slot.active;
            }
            stats = ckpt.stats.clone();
            total_steps = ckpt.total_steps;
            resets = ckpt.resets;
            episodes_since_reset = ckpt.episodes_since_reset;
            episodes_run = ckpt.episodes_run;
            solved_at_episode = ckpt.solved_at_episode;
        } else {
            // Per-slot environment/policy streams, split deterministically
            // from the master stream before the first tick.
            slot_rngs = (0..e).map(|_| SmallRng::seed_from_u64(rng.gen())).collect();
            let _span = elmrl_telemetry::hist!("env.reset").span();
            vec_env.reset_all(&mut slot_rngs);
        }
        ctl.arm(episodes_run);

        let mut actions: Vec<Option<usize>> = vec![None; e];
        let mut pre_states: Vec<Vec<f64>> = vec![Vec::new(); e];
        let mut tick_obs: Vec<Observation> = Vec::with_capacity(e);
        let mut state_row = Matrix::zeros(1, vec_env.obs_dim());

        while active.iter().any(|&a| a) {
            // Determine: one batched-kernel ε-greedy decision per active slot.
            for j in 0..e {
                actions[j] = if active[j] {
                    pre_states[j].clear();
                    pre_states[j].extend_from_slice(vec_env.state(j));
                    state_row.set_row(0, &pre_states[j]);
                    Some(agent.act_row(&state_row, &mut slot_rngs[j]))
                } else {
                    None
                };
            }

            // Observe: one lockstep environment tick with auto-reset. The
            // span covers the whole E-slot tick, so `env.step` here counts
            // ticks (not per-slot steps) — documented in the README.
            let outs = {
                let _span = elmrl_telemetry::hist!("env.step").span();
                vec_env.step(&actions, &mut slot_rngs)
            };

            // Store + Update: the whole tick as one batched agent update.
            tick_obs.clear();
            for j in 0..e {
                let (Some(action), Some(step)) = (actions[j], &outs[j]) else {
                    continue;
                };
                total_steps += 1;
                episode_returns[j] += step.outcome.reward;
                let shaped = self.config.reward_shaping.shape(
                    step.outcome.reward,
                    step.outcome.done,
                    step.outcome.truncated,
                );
                tick_obs.push(Observation {
                    state: pre_states[j].clone(),
                    action,
                    reward: shaped,
                    next_state: step.outcome.observation.clone(),
                    done: step.outcome.done,
                    truncated: step.outcome.truncated,
                });
            }
            agent.observe_batch(&tick_obs, rng);

            // Episode bookkeeping in deterministic completion order (slot
            // index order within the tick).
            for j in 0..e {
                let Some(step) = &outs[j] else { continue };
                if !step.auto_reset {
                    continue;
                }
                let episode = episodes_run;
                agent.end_episode(episode);
                episodes_run += 1;
                episodes_since_reset += 1;
                let episode_return = episode_returns[j];
                episode_returns[j] = 0.0;
                stats.record_episode(episode_return);

                if solved_at_episode.is_none() && self.criterion_met(&stats, episode_return) {
                    solved_at_episode = Some(episode);
                }
                if (solved_at_episode.is_some() && self.config.stop_when_solved)
                    || episodes_run >= self.config.max_episodes
                {
                    active.iter_mut().for_each(|a| *a = false);
                    break;
                }
                if solved_at_episode.is_none() {
                    if let Some(reset_after) = self.config.reset_after_episodes {
                        if episodes_since_reset >= reset_after {
                            agent.reset(rng);
                            resets += 1;
                            episodes_since_reset = 0;
                        }
                    }
                }
            }

            // End of tick: every mid-tick state (including a budget stop that
            // abandoned in-flight slots above) has settled, so this is the
            // only point where the engine state is a valid resume target.
            if ctl.capture_due(episodes_run) {
                let _span = elmrl_telemetry::hist!("checkpoint.capture").span();
                let mut slots = Vec::with_capacity(e);
                for j in 0..e {
                    let env_state = vec_env.save_slot_state(j).ok_or_else(|| {
                        "vector environment slot does not support save_state".to_owned()
                    })?;
                    slots.push(SlotCheckpoint {
                        rng: rng_state_words(&slot_rngs[j]),
                        env_state,
                        observation: vec_env.state(j).to_vec(),
                        episode_return: episode_returns[j],
                        active: active[j],
                    });
                }
                let snapshot = agent.snapshot().ok_or_else(|| {
                    format!("design `{}` does not support checkpointing", agent.name())
                })?;
                ctl.emit(RunCheckpoint {
                    version: SNAPSHOT_SCHEMA_VERSION,
                    episodes_run,
                    total_steps,
                    resets,
                    episodes_since_reset,
                    solved_at_episode,
                    stats: stats.clone(),
                    agent: snapshot,
                    rng: rng_state_words(rng),
                    env_state: None,
                    slots: Some(slots),
                });
            }
            if ctl.stop_now(episodes_run) {
                break;
            }
        }

        Ok(TrainingResult {
            design: agent.name().to_string(),
            hidden_dim: agent.hidden_dim(),
            solved: solved_at_episode.is_some(),
            solved_at_episode,
            episodes_run,
            total_steps,
            resets,
            wall_time: start.elapsed(),
            stats,
            op_counts: agent.op_counts().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{Design, DesignConfig};
    use crate::ops::OpKind;
    use elmrl_gym::CartPole;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn default_config_matches_paper_protocol_shape() {
        let c = TrainerConfig::default();
        assert_eq!(c.reset_after_episodes, Some(300));
        assert_eq!(c.solved_window, 100);
        assert!(c.stop_when_solved);
        assert_eq!(
            c.solve_criterion,
            SolveCriterion::EpisodeReturn { threshold: 195.0 }
        );
        assert_eq!(TrainerConfig::paper_protocol().max_episodes, 50_000);
        assert_eq!(TrainerConfig::quick(7).max_episodes, 7);
    }

    #[test]
    fn moving_average_criterion_requires_full_window() {
        let trainer = Trainer::new(TrainerConfig {
            solve_criterion: SolveCriterion::MovingAverage {
                threshold: 10.0,
                window: 3,
            },
            ..TrainerConfig::quick(1)
        });
        let mut stats = EpisodeStats::with_window(100, None);
        stats.record_episode(20.0);
        stats.record_episode(20.0);
        assert!(!trainer.criterion_met(&stats, 20.0));
        stats.record_episode(20.0);
        assert!(trainer.criterion_met(&stats, 20.0));
    }

    #[test]
    fn episode_return_criterion_fires_on_single_episode() {
        let trainer = Trainer::new(TrainerConfig::default());
        let stats = EpisodeStats::with_window(100, None);
        assert!(!trainer.criterion_met(&stats, 100.0));
        assert!(trainer.criterion_met(&stats, 200.0));
    }

    #[test]
    fn short_run_collects_consistent_statistics() {
        let mut r = rng(1);
        let mut agent = Design::OsElmL2Lipschitz.build(&DesignConfig::new(16), &mut r);
        let mut env = CartPole::new();
        let mut cfg = TrainerConfig::quick(20);
        cfg.solve_criterion = SolveCriterion::MovingAverage {
            threshold: 195.0,
            window: 100,
        };
        let trainer = Trainer::new(cfg);
        let result = trainer.run(agent.as_mut(), &mut env, &mut r);

        assert_eq!(result.design, "OS-ELM-L2-Lipschitz");
        assert_eq!(result.hidden_dim, 16);
        assert_eq!(result.episodes_run, 20);
        assert_eq!(result.stats.episodes(), 20);
        // each episode contributes at least one step, at most 200
        assert!(result.total_steps >= 20);
        assert!(result.total_steps <= 20 * 200);
        // returns sum equals total steps for CartPole's +1-per-step reward
        assert!(
            (result.stats.total_steps_assuming_unit_reward() - result.total_steps as f64).abs()
                < 1e-9
        );
        assert!(
            !result.solved,
            "20 episodes cannot satisfy a 100-episode window"
        );
        assert!(result.wall_seconds() > 0.0);
        assert!(result.op_counts.total_count() > 0);
    }

    #[test]
    fn reset_rule_fires_for_unsolved_elm_designs() {
        let mut r = rng(2);
        let mut agent = Design::OsElm.build(&DesignConfig::new(8), &mut r);
        let mut env = CartPole::new();
        let mut config = TrainerConfig::quick(25);
        config.reset_after_episodes = Some(10);
        let result = Trainer::new(config).run(agent.as_mut(), &mut env, &mut r);
        assert!(
            result.resets >= 2,
            "expected ≥2 resets in 25 episodes, got {}",
            result.resets
        );
    }

    #[test]
    fn reset_rule_can_be_disabled() {
        let mut r = rng(3);
        let mut agent = Design::Dqn.build(&DesignConfig::new(8), &mut r);
        let mut env = CartPole::new();
        let mut config = TrainerConfig::quick(15);
        config.reset_after_episodes = None;
        let result = Trainer::new(config).run(agent.as_mut(), &mut env, &mut r);
        assert_eq!(result.resets, 0);
    }

    #[test]
    fn op_counts_reflect_design_structure() {
        let mut r = rng(4);
        let mut env = CartPole::new();
        let config = TrainerConfig::quick(10);

        let mut oselm = Design::OsElmL2Lipschitz.build(&DesignConfig::new(8), &mut r);
        let res_oselm = Trainer::new(config.clone()).run(oselm.as_mut(), &mut env, &mut r);
        assert!(res_oselm.op_counts.count(OpKind::InitTrain) >= 1);
        assert!(res_oselm.op_counts.count(OpKind::SeqTrain) > 0);
        assert_eq!(res_oselm.op_counts.count(OpKind::TrainDqn), 0);

        let mut dqn = Design::Dqn.build(&DesignConfig::new(8), &mut r);
        let res_dqn = Trainer::new(config).run(dqn.as_mut(), &mut env, &mut r);
        assert!(res_dqn.op_counts.count(OpKind::Predict1) > 0);
        assert_eq!(res_dqn.op_counts.count(OpKind::SeqTrain), 0);
    }

    // ---- direct protocol tests with a scripted environment ----------------

    /// Environment whose episode lengths are scripted: episode `i` pays +1
    /// per step and ends (`done`) after `lengths[i]` steps, or truncates at
    /// `max_steps`, whichever comes first. Lengths repeat cyclically.
    struct ScriptedEnv {
        lengths: Vec<usize>,
        episode: usize,
        step: usize,
        max_steps: usize,
    }

    impl ScriptedEnv {
        fn new(lengths: &[usize]) -> Self {
            Self {
                lengths: lengths.to_vec(),
                episode: 0,
                step: 0,
                max_steps: 200,
            }
        }

        fn current_length(&self) -> usize {
            self.lengths[(self.episode.max(1) - 1) % self.lengths.len()]
        }
    }

    impl elmrl_gym::Environment for ScriptedEnv {
        fn name(&self) -> &'static str {
            "Scripted"
        }

        fn observation_space(&self) -> elmrl_gym::ObservationSpace {
            elmrl_gym::ObservationSpace::new(vec![-1.0], vec![1.0], vec!["x".into()])
        }

        fn action_space(&self) -> elmrl_gym::ActionSpace {
            elmrl_gym::ActionSpace::discrete(2)
        }

        fn max_episode_steps(&self) -> usize {
            self.max_steps
        }

        fn reset(&mut self, _rng: &mut SmallRng) -> Vec<f64> {
            self.episode += 1;
            self.step = 0;
            vec![0.0]
        }

        fn step(&mut self, _action: usize, _rng: &mut SmallRng) -> elmrl_gym::StepOutcome {
            self.step += 1;
            let done = self.step >= self.current_length();
            let truncated = !done && self.step >= self.max_steps;
            elmrl_gym::StepOutcome {
                observation: vec![0.0],
                reward: 1.0,
                done,
                truncated,
            }
        }
    }

    /// Agent that acts trivially and counts how often the trainer resets it.
    struct CountingAgent {
        resets: usize,
        ops: OpCounts,
    }

    impl CountingAgent {
        fn new() -> Self {
            Self {
                resets: 0,
                ops: OpCounts::new(),
            }
        }
    }

    impl Agent for CountingAgent {
        fn name(&self) -> &str {
            "Counting"
        }

        fn hidden_dim(&self) -> usize {
            1
        }

        fn act(&mut self, _state: &[f64], _rng: &mut SmallRng) -> usize {
            0
        }

        fn observe(&mut self, _obs: &Observation, _rng: &mut SmallRng) {}

        fn end_episode(&mut self, _episode_index: usize) {}

        fn reset(&mut self, _rng: &mut SmallRng) {
            self.resets += 1;
        }

        fn op_counts(&self) -> &OpCounts {
            &self.ops
        }

        fn q_values(&mut self, _state: &[f64]) -> Vec<f64> {
            vec![0.0, 0.0]
        }

        fn memory_footprint_bytes(&self) -> usize {
            0
        }
    }

    impl crate::batch::BatchAgent for CountingAgent {}

    fn scripted_vec(lengths: &[usize], e: usize) -> elmrl_gym::VecEnv {
        elmrl_gym::VecEnv::new(
            (0..e)
                .map(|_| Box::new(ScriptedEnv::new(lengths)) as Box<dyn elmrl_gym::Environment>)
                .collect(),
        )
    }

    #[test]
    fn run_vec_accounts_episodes_in_slot_completion_order() {
        // Three slots of 3-step episodes: every third tick completes three
        // episodes (slot order), and the 6-episode budget stops the run at
        // the end of tick 6 with every consumed step counted.
        let mut env = scripted_vec(&[3], 3);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(6);
        config.reset_after_episodes = None;
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 1000.0 };
        let result = Trainer::new(config).run_vec(&mut agent, &mut env, &mut rng(0));
        assert!(!result.solved);
        assert_eq!(result.episodes_run, 6);
        assert_eq!(result.total_steps, 18, "all three slots step every tick");
        assert_eq!(result.stats.episodes(), 6);
        assert!(result.stats.returns.iter().all(|&r| r == 3.0));
    }

    #[test]
    fn run_vec_stops_on_the_first_solving_episode() {
        let mut env = scripted_vec(&[60], 4);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(50);
        config.reset_after_episodes = None;
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 50.0 };
        let result = Trainer::new(config).run_vec(&mut agent, &mut env, &mut rng(0));
        assert!(result.solved);
        assert_eq!(result.solved_at_episode, Some(0));
        assert_eq!(result.episodes_run, 1, "stop_when_solved must stop the run");
        // All four slots ran the full 60 ticks before any episode completed.
        assert_eq!(result.total_steps, 4 * 60);
    }

    #[test]
    fn run_vec_reset_rule_fires_on_the_global_episode_schedule() {
        let mut env = scripted_vec(&[3], 3);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(5);
        config.reset_after_episodes = Some(2);
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 1000.0 };
        let result = Trainer::new(config).run_vec(&mut agent, &mut env, &mut rng(0));
        assert!(!result.solved);
        assert_eq!(result.episodes_run, 5);
        // Episodes complete at ticks 3 (0,1,2) and 6 (3,4): resets fire
        // after episodes 1 and 3 — two in total, both reaching the agent.
        assert_eq!(result.resets, 2);
        assert_eq!(agent.resets, 2);
    }

    #[test]
    fn run_vec_with_a_real_design_is_deterministic_and_env_count_sensitive() {
        let run = |seed: u64, e: usize| {
            let mut r = rng(seed);
            let mut agent = Design::OsElmL2Lipschitz.build_batch(&DesignConfig::new(8), &mut r);
            let spec = elmrl_gym::Workload::CartPole.spec();
            let mut env = elmrl_gym::VecEnv::from_spec(&spec, e);
            Trainer::new(TrainerConfig::quick(8))
                .run_vec(agent.as_mut(), &mut env, &mut r)
                .stats
                .returns
        };
        assert_eq!(run(7, 4), run(7, 4), "same seed + E must replay");
        assert_ne!(run(7, 4), run(8, 4), "seed must matter");
        assert_ne!(run(7, 4), run(7, 2), "E changes the trajectory");
    }

    #[test]
    fn run_vec_runs_every_software_design() {
        for design in Design::software_designs() {
            let mut r = rng(31);
            let mut agent = design.build_batch(&DesignConfig::new(8), &mut r);
            let spec = elmrl_gym::Workload::CartPole.spec();
            let mut env = elmrl_gym::VecEnv::from_spec(&spec, 3);
            let mut config = TrainerConfig::quick(6);
            config.solve_criterion = SolveCriterion::MovingAverage {
                threshold: 195.0,
                window: 100,
            };
            let result = Trainer::new(config).run_vec(agent.as_mut(), &mut env, &mut r);
            assert_eq!(result.episodes_run, 6, "{design:?}");
            assert!(result.total_steps >= 6, "{design:?}");
            assert!(result.stats.returns.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn episode_return_criterion_fires_at_the_scripted_episode() {
        // Episodes of 10, 20 and 60 steps: with threshold 50 the third
        // episode (index 2) is the first whose return reaches it.
        let mut env = ScriptedEnv::new(&[10, 20, 60, 60]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(10);
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 50.0 };
        let result = Trainer::new(config).run(&mut agent, &mut env, &mut rng(0));
        assert!(result.solved);
        assert_eq!(result.solved_at_episode, Some(2));
        assert_eq!(result.episodes_run, 3, "stop_when_solved must stop the run");
        assert_eq!(result.total_steps, 10 + 20 + 60);
    }

    #[test]
    fn moving_average_criterion_fires_only_once_window_average_clears() {
        // Returns 30, 30, 6, 30, 30, 30 with window 3 and threshold 21:
        // averages 30, 30, 22, 22, 22, 30 — but the window must be *full*,
        // so the first eligible episode is index 2 (average (30+30+6)/3 = 22).
        let mut env = ScriptedEnv::new(&[30, 30, 6, 30, 30, 30]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(10);
        config.solve_criterion = SolveCriterion::MovingAverage {
            threshold: 21.0,
            window: 3,
        };
        let result = Trainer::new(config).run(&mut agent, &mut env, &mut rng(0));
        assert!(result.solved);
        assert_eq!(result.solved_at_episode, Some(2));
        assert_eq!(result.episodes_run, 3);
    }

    #[test]
    fn moving_average_criterion_never_fires_before_the_window_fills() {
        // Every episode clears the threshold on its own, but only 2 episodes
        // run against a window of 5: not solved.
        let mut env = ScriptedEnv::new(&[100]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(2);
        config.solve_criterion = SolveCriterion::MovingAverage {
            threshold: 50.0,
            window: 5,
        };
        let result = Trainer::new(config).run(&mut agent, &mut env, &mut rng(0));
        assert!(!result.solved);
        assert_eq!(result.solved_at_episode, None);
    }

    #[test]
    fn reset_rule_redraws_weights_on_schedule_until_solved() {
        // 12 unsolved episodes with reset-after-5: resets fire after episodes
        // 5 and 10 (two in total), and the counting agent observes each one.
        let mut env = ScriptedEnv::new(&[3]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(12);
        config.reset_after_episodes = Some(5);
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 50.0 };
        let result = Trainer::new(config).run(&mut agent, &mut env, &mut rng(0));
        assert!(!result.solved);
        assert_eq!(result.resets, 2);
        assert_eq!(agent.resets, 2, "trainer resets must reach the agent");

        // Once the criterion fires, the reset schedule stops counting: a
        // solving episode inside the reset window produces zero resets.
        let mut env = ScriptedEnv::new(&[3, 3, 60]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(12);
        config.reset_after_episodes = Some(5);
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 50.0 };
        let result = Trainer::new(config).run(&mut agent, &mut env, &mut rng(0));
        assert!(result.solved);
        assert_eq!(result.resets, 0);
        assert_eq!(agent.resets, 0);
    }

    #[test]
    fn reset_rule_actually_redraws_agent_weights() {
        // A real OS-ELM agent must lose its trained state when the trainer's
        // reset rule fires: hidden 4 initialises after 4 samples, episodes of
        // 6 steps train it immediately, and reset-after-2 wipes it again.
        let mut r = rng(11);
        let mut agent = Design::OsElm.build(&DesignConfig::new(4).for_env(1, 2), &mut r);
        let mut env = ScriptedEnv::new(&[6]);
        let mut config = TrainerConfig::quick(2);
        config.reset_after_episodes = Some(2);
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 1000.0 };
        let result = Trainer::new(config).run(agent.as_mut(), &mut env, &mut r);
        assert_eq!(result.resets, 1);
        // After the reset, β is zero again: every Q-value is exactly 0.
        assert_eq!(agent.q_values(&[0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn episode_budget_exhaustion_reports_unsolved() {
        let mut env = ScriptedEnv::new(&[3]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(7);
        config.reset_after_episodes = None;
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 50.0 };
        let result = Trainer::new(config).run(&mut agent, &mut env, &mut rng(0));
        assert!(!result.solved);
        assert_eq!(result.episodes_run, 7);
        assert_eq!(result.total_steps, 7 * 3);
        assert_eq!(result.resets, 0);
        assert_eq!(result.stats.episodes(), 7);
    }

    #[test]
    fn stop_when_solved_false_collects_the_full_curve() {
        let mut env = ScriptedEnv::new(&[60]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(5);
        config.stop_when_solved = false;
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 50.0 };
        let result = Trainer::new(config).run(&mut agent, &mut env, &mut rng(0));
        assert!(result.solved);
        assert_eq!(result.solved_at_episode, Some(0));
        assert_eq!(result.episodes_run, 5, "must keep running after solving");
    }

    // ---- checkpoint / resume ---------------------------------------------

    #[test]
    fn scalar_resume_is_bit_for_bit_identical() {
        let config = {
            let mut c = TrainerConfig::quick(8);
            c.reset_after_episodes = Some(3); // exercise resets across resume
            c
        };
        let straight = {
            let mut r = rng(7);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            Trainer::new(config.clone()).run(agent.as_mut(), &mut env, &mut r)
        };

        // Checkpoint capture must have zero side effects on the trajectory.
        let mut ckpts: Vec<RunCheckpoint> = Vec::new();
        {
            let mut r = rng(7);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            let mut sink = |c: RunCheckpoint| ckpts.push(c);
            let mut ctl = CheckpointCtl::saving(1, &mut sink);
            let observed = Trainer::new(config.clone())
                .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap();
            assert_eq!(observed.stats.returns, straight.stats.returns);
        }
        assert_eq!(ckpts.len(), straight.episodes_run);

        for n in [1, ckpts.len() / 2, ckpts.len()] {
            let ckpt = &ckpts[n - 1];
            assert_eq!(ckpt.episodes_run, n);
            // The pre-restore seeds are deliberately different: restore must
            // overwrite every bit of agent and RNG state.
            let mut r = rng(999);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            let mut sink = |_c: RunCheckpoint| {};
            let mut ctl = CheckpointCtl::resuming(ckpt, 0, &mut sink);
            let resumed = Trainer::new(config.clone())
                .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap();
            assert_eq!(
                resumed.stats.returns, straight.stats.returns,
                "resume at episode {n} diverged"
            );
            assert_eq!(resumed.episodes_run, straight.episodes_run);
            assert_eq!(resumed.total_steps, straight.total_steps);
            assert_eq!(resumed.resets, straight.resets);
            assert_eq!(resumed.solved_at_episode, straight.solved_at_episode);
        }
    }

    #[test]
    fn scalar_resume_survives_a_json_round_trip() {
        let config = TrainerConfig::quick(6);
        let mut ckpts: Vec<RunCheckpoint> = Vec::new();
        let straight = {
            let mut r = rng(21);
            let mut agent = Design::OsElm.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            let mut sink = |c: RunCheckpoint| ckpts.push(c);
            let mut ctl = CheckpointCtl::saving(3, &mut sink);
            Trainer::new(config.clone())
                .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap()
        };
        let restored = RunCheckpoint::from_json(&ckpts[0].to_json().unwrap()).unwrap();
        let mut r = rng(0);
        let mut agent = Design::OsElm.build(&DesignConfig::new(8), &mut r);
        let mut env = CartPole::new();
        let mut sink = |_c: RunCheckpoint| {};
        let mut ctl = CheckpointCtl::resuming(&restored, 0, &mut sink);
        let resumed = Trainer::new(config)
            .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
            .unwrap();
        assert_eq!(resumed.stats.returns, straight.stats.returns);
        assert_eq!(resumed.total_steps, straight.total_steps);
    }

    #[test]
    fn vec_resume_is_bit_for_bit_identical() {
        let spec = elmrl_gym::Workload::CartPole.spec();
        let config = TrainerConfig::quick(9);
        let straight = {
            let mut r = rng(5);
            let mut agent = Design::OsElmL2Lipschitz.build_batch(&DesignConfig::new(8), &mut r);
            let mut env = elmrl_gym::VecEnv::from_spec(&spec, 3);
            Trainer::new(config.clone()).run_vec(agent.as_mut(), &mut env, &mut r)
        };

        let mut ckpts: Vec<RunCheckpoint> = Vec::new();
        {
            let mut r = rng(5);
            let mut agent = Design::OsElmL2Lipschitz.build_batch(&DesignConfig::new(8), &mut r);
            let mut env = elmrl_gym::VecEnv::from_spec(&spec, 3);
            let mut sink = |c: RunCheckpoint| ckpts.push(c);
            let mut ctl = CheckpointCtl::saving(3, &mut sink);
            let observed = Trainer::new(config.clone())
                .run_vec_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap();
            assert_eq!(observed.stats.returns, straight.stats.returns);
        }
        assert!(!ckpts.is_empty(), "a 9-episode run must cross a 3-boundary");

        for (i, ckpt) in ckpts.iter().enumerate() {
            let mut r = rng(999);
            let mut agent = Design::OsElmL2Lipschitz.build_batch(&DesignConfig::new(8), &mut r);
            let mut env = elmrl_gym::VecEnv::from_spec(&spec, 3);
            let mut sink = |_c: RunCheckpoint| {};
            let mut ctl = CheckpointCtl::resuming(ckpt, 0, &mut sink);
            let resumed = Trainer::new(config.clone())
                .run_vec_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap();
            assert_eq!(
                resumed.stats.returns, straight.stats.returns,
                "resume from checkpoint {i} diverged"
            );
            assert_eq!(resumed.episodes_run, straight.episodes_run);
            assert_eq!(resumed.total_steps, straight.total_steps);
        }
    }

    #[test]
    fn fault_injection_stop_then_resume_matches_straight_through() {
        // Simulated crash: the run is killed right after the episode-3
        // checkpoint lands, then a fresh process resumes from it.
        let config = TrainerConfig::quick(8);
        let straight = {
            let mut r = rng(13);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            Trainer::new(config.clone()).run(agent.as_mut(), &mut env, &mut r)
        };

        let mut ckpts: Vec<RunCheckpoint> = Vec::new();
        let crashed = {
            let mut r = rng(13);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            let mut sink = |c: RunCheckpoint| ckpts.push(c);
            let mut ctl = CheckpointCtl::saving(1, &mut sink);
            ctl.stop_after = Some(3);
            Trainer::new(config.clone())
                .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap()
        };
        assert_eq!(
            crashed.episodes_run, 3,
            "the injected fault must stop the run"
        );
        assert_eq!(ckpts.len(), 3);

        let mut r = rng(0);
        let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
        let mut env = CartPole::new();
        let mut sink = |_c: RunCheckpoint| {};
        let mut ctl = CheckpointCtl::resuming(&ckpts[2], 0, &mut sink);
        let resumed = Trainer::new(config)
            .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
            .unwrap();
        assert_eq!(resumed.stats.returns, straight.stats.returns);
        assert_eq!(resumed.total_steps, straight.total_steps);
        assert_eq!(resumed.resets, straight.resets);
    }

    #[test]
    fn checkpointing_an_unsupported_agent_errors() {
        let mut env = ScriptedEnv::new(&[3]);
        let mut agent = CountingAgent::new();
        let mut config = TrainerConfig::quick(3);
        config.solve_criterion = SolveCriterion::EpisodeReturn { threshold: 1000.0 };
        let mut sink = |_c: RunCheckpoint| {};
        let mut ctl = CheckpointCtl::saving(1, &mut sink);
        let err = Trainer::new(config)
            .run_checkpointed(&mut agent, &mut env, &mut rng(0), &mut ctl)
            .unwrap_err();
        assert!(err.contains("does not support checkpointing"), "{err}");
    }

    #[test]
    fn resume_rejects_a_checkpoint_of_the_other_driver_kind() {
        let config = TrainerConfig::quick(4);
        let mut scalar_ckpts: Vec<RunCheckpoint> = Vec::new();
        {
            let mut r = rng(3);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            let mut sink = |c: RunCheckpoint| scalar_ckpts.push(c);
            let mut ctl = CheckpointCtl::saving(2, &mut sink);
            Trainer::new(config.clone())
                .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap();
        }
        let scalar_ckpt = &scalar_ckpts[0];
        assert!(scalar_ckpt.slots.is_none());

        // Scalar checkpoint into the vectorized driver: rejected.
        let spec = elmrl_gym::Workload::CartPole.spec();
        let mut r = rng(0);
        let mut agent = Design::OsElmL2.build_batch(&DesignConfig::new(8), &mut r);
        let mut env = elmrl_gym::VecEnv::from_spec(&spec, 2);
        let mut sink = |_c: RunCheckpoint| {};
        let mut ctl = CheckpointCtl::resuming(scalar_ckpt, 0, &mut sink);
        let err = Trainer::new(config.clone())
            .run_vec_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
            .unwrap_err();
        assert!(err.contains("scalar run"), "{err}");

        // Vector checkpoint into the scalar driver: rejected.
        let mut vec_ckpt = scalar_ckpts[0].clone();
        vec_ckpt.slots = Some(Vec::new());
        let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
        let mut env = CartPole::new();
        let mut sink2 = |_c: RunCheckpoint| {};
        let mut ctl = CheckpointCtl::resuming(&vec_ckpt, 0, &mut sink2);
        let err = Trainer::new(config)
            .run_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
            .unwrap_err();
        assert!(err.contains("vectorized run"), "{err}");
    }

    #[test]
    fn vec_resume_rejects_a_slot_count_mismatch() {
        let spec = elmrl_gym::Workload::CartPole.spec();
        let config = TrainerConfig::quick(6);
        let mut ckpts: Vec<RunCheckpoint> = Vec::new();
        {
            let mut r = rng(3);
            let mut agent = Design::OsElmL2.build_batch(&DesignConfig::new(8), &mut r);
            let mut env = elmrl_gym::VecEnv::from_spec(&spec, 3);
            let mut sink = |c: RunCheckpoint| ckpts.push(c);
            let mut ctl = CheckpointCtl::saving(2, &mut sink);
            Trainer::new(config.clone())
                .run_vec_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
                .unwrap();
        }
        let mut r = rng(0);
        let mut agent = Design::OsElmL2.build_batch(&DesignConfig::new(8), &mut r);
        let mut env = elmrl_gym::VecEnv::from_spec(&spec, 2); // wrong width
        let mut sink = |_c: RunCheckpoint| {};
        let mut ctl = CheckpointCtl::resuming(&ckpts[0], 0, &mut sink);
        let err = Trainer::new(config)
            .run_vec_checkpointed(agent.as_mut(), &mut env, &mut r, &mut ctl)
            .unwrap_err();
        assert!(err.contains("slots"), "{err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = rng(seed);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            Trainer::new(TrainerConfig::quick(8))
                .run(agent.as_mut(), &mut env, &mut r)
                .stats
                .returns
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
