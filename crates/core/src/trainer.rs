//! The episode loop driving every design through the reinforcement-learning
//! task (§4.3–4.4).
//!
//! The trainer reproduces the paper's experimental protocol:
//!
//! * episodes run until the task is *solved* (CartPole-v0: 100-episode moving
//!   average ≥ 195) or the episode budget is exhausted (the paper terminates
//!   a trial as "impossible" after 50 000 episodes);
//! * the ELM/OS-ELM designs are **reset** — weights re-drawn, training state
//!   discarded — when they have not solved the task after a configurable
//!   number of episodes (300 in §4.3), because their dependence on the random
//!   initial `α` is high;
//! * wall-clock time and per-operation counters are recorded so the harness
//!   can produce the Figure 5/6 execution-time breakdowns.

use crate::agent::{Agent, Observation};
use crate::ops::OpCounts;
use crate::reward::RewardShaping;
use elmrl_gym::{Environment, EpisodeStats};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// When does a trial count as having *completed* the task?
///
/// The paper never spells out its completion rule, but two facts pin it down:
/// the behaviour policy keeps ε₁ = 0.7 (30 % random actions) throughout, which
/// makes Gym's official "average return ≥ 195 over 100 consecutive episodes"
/// unreachable for *any* design, and yet the paper reports completion times
/// for DQN and the OS-ELM variants. We therefore interpret "complete a
/// CartPole-v0 task" as the behaviour policy first keeping the pole up for a
/// full-length episode, and expose the Gym criterion as an alternative.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SolveCriterion {
    /// First episode whose return reaches `threshold` (default interpretation,
    /// threshold 195 ≈ a full 200-step episode).
    EpisodeReturn {
        /// Minimum single-episode return.
        threshold: f64,
    },
    /// Gym's criterion: moving average over `window` episodes ≥ `threshold`.
    MovingAverage {
        /// Average-return threshold (195 for CartPole-v0).
        threshold: f64,
        /// Window length (100 for CartPole-v0).
        window: usize,
    },
}

impl Default for SolveCriterion {
    fn default() -> Self {
        SolveCriterion::EpisodeReturn { threshold: 195.0 }
    }
}

/// Trainer configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Maximum number of episodes before the trial is declared unsolved
    /// (the paper uses 50 000; tests use much smaller budgets).
    pub max_episodes: usize,
    /// Reset the agent when it has not solved the task after this many
    /// episodes since the last reset (§4.3 uses 300). `None` disables resets
    /// (the DQN baseline is never reset).
    pub reset_after_episodes: Option<usize>,
    /// Stop as soon as the task is solved (set false to keep collecting the
    /// full training curve for Figure 4).
    pub stop_when_solved: bool,
    /// Completion rule (see [`SolveCriterion`]).
    pub solve_criterion: SolveCriterion,
    /// Moving-average window recorded in the per-episode statistics (100 in
    /// the paper's Figure 4).
    pub solved_window: usize,
    /// Reward shaping applied before transitions reach the agent.
    pub reward_shaping: RewardShaping,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            max_episodes: 2_000,
            reset_after_episodes: Some(300),
            stop_when_solved: true,
            solve_criterion: SolveCriterion::default(),
            solved_window: 100,
            reward_shaping: RewardShaping::SurvivalSigned,
        }
    }
}

impl TrainerConfig {
    /// The paper's full protocol (50 000-episode cut-off). Long; used by the
    /// harness binaries, not by unit tests.
    pub fn paper_protocol() -> Self {
        Self {
            max_episodes: 50_000,
            ..Self::default()
        }
    }

    /// A small-budget configuration for tests and examples.
    pub fn quick(max_episodes: usize) -> Self {
        Self {
            max_episodes,
            ..Self::default()
        }
    }
}

/// The outcome of one training trial.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingResult {
    /// Design name as reported by the agent.
    pub design: String,
    /// Hidden size `Ñ`.
    pub hidden_dim: usize,
    /// Whether the solve criterion was met within the episode budget.
    pub solved: bool,
    /// Episode index (0-based) at which the task became solved, if it did.
    pub solved_at_episode: Option<usize>,
    /// Number of episodes actually run.
    pub episodes_run: usize,
    /// Total environment steps taken.
    pub total_steps: usize,
    /// How many times the reset rule fired.
    pub resets: usize,
    /// Wall-clock time of the whole trial.
    pub wall_time: Duration,
    /// Per-episode returns and moving averages (the Figure 4 curve).
    pub stats: EpisodeStats,
    /// Per-operation counters (the Figure 5/6 breakdown).
    pub op_counts: OpCounts,
}

impl TrainingResult {
    /// Wall-clock seconds of the trial (the y-axis of Figure 5).
    pub fn wall_seconds(&self) -> f64 {
        self.wall_time.as_secs_f64()
    }
}

/// The episode-loop driver.
#[derive(Clone, Debug)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    fn criterion_met(&self, stats: &EpisodeStats, last_return: f64) -> bool {
        match self.config.solve_criterion {
            SolveCriterion::EpisodeReturn { threshold } => last_return >= threshold,
            SolveCriterion::MovingAverage { threshold, window } => {
                stats.returns.len() >= window && {
                    let tail = &stats.returns[stats.returns.len() - window..];
                    tail.iter().sum::<f64>() / window as f64 >= threshold
                }
            }
        }
    }

    /// Run one trial of `agent` on `env`.
    pub fn run(
        &self,
        agent: &mut dyn Agent,
        env: &mut dyn Environment,
        rng: &mut SmallRng,
    ) -> TrainingResult {
        let start = Instant::now();
        let mut stats =
            EpisodeStats::with_window(self.config.solved_window, env.solved_threshold());
        let mut total_steps = 0usize;
        let mut resets = 0usize;
        let mut episodes_since_reset = 0usize;
        let mut episodes_run = 0usize;
        let mut solved_at_episode: Option<usize> = None;

        for episode in 0..self.config.max_episodes {
            let mut state = env.reset(rng);
            let mut episode_return = 0.0;

            loop {
                let action = agent.act(&state, rng);
                let outcome = env.step(action, rng);
                total_steps += 1;
                episode_return += outcome.reward;

                let shaped = self.config.reward_shaping.shape(
                    outcome.reward,
                    outcome.done,
                    outcome.truncated,
                );
                let obs = Observation {
                    state: state.clone(),
                    action,
                    reward: shaped,
                    next_state: outcome.observation.clone(),
                    done: outcome.done,
                    truncated: outcome.truncated,
                };
                agent.observe(&obs, rng);
                state = outcome.observation;
                if outcome.done || outcome.truncated {
                    break;
                }
            }

            agent.end_episode(episode);
            episodes_run = episode + 1;
            episodes_since_reset += 1;
            stats.record_episode(episode_return);

            if solved_at_episode.is_none() && self.criterion_met(&stats, episode_return) {
                solved_at_episode = Some(episode);
            }
            if solved_at_episode.is_some() && self.config.stop_when_solved {
                break;
            }
            if solved_at_episode.is_none() {
                if let Some(reset_after) = self.config.reset_after_episodes {
                    if episodes_since_reset >= reset_after {
                        agent.reset(rng);
                        resets += 1;
                        episodes_since_reset = 0;
                    }
                }
            }
        }

        TrainingResult {
            design: agent.name().to_string(),
            hidden_dim: agent.hidden_dim(),
            solved: solved_at_episode.is_some(),
            solved_at_episode,
            episodes_run,
            total_steps,
            resets,
            wall_time: start.elapsed(),
            stats,
            op_counts: agent.op_counts().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{Design, DesignConfig};
    use crate::ops::OpKind;
    use elmrl_gym::CartPole;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn default_config_matches_paper_protocol_shape() {
        let c = TrainerConfig::default();
        assert_eq!(c.reset_after_episodes, Some(300));
        assert_eq!(c.solved_window, 100);
        assert!(c.stop_when_solved);
        assert_eq!(
            c.solve_criterion,
            SolveCriterion::EpisodeReturn { threshold: 195.0 }
        );
        assert_eq!(TrainerConfig::paper_protocol().max_episodes, 50_000);
        assert_eq!(TrainerConfig::quick(7).max_episodes, 7);
    }

    #[test]
    fn moving_average_criterion_requires_full_window() {
        let trainer = Trainer::new(TrainerConfig {
            solve_criterion: SolveCriterion::MovingAverage {
                threshold: 10.0,
                window: 3,
            },
            ..TrainerConfig::quick(1)
        });
        let mut stats = EpisodeStats::with_window(100, None);
        stats.record_episode(20.0);
        stats.record_episode(20.0);
        assert!(!trainer.criterion_met(&stats, 20.0));
        stats.record_episode(20.0);
        assert!(trainer.criterion_met(&stats, 20.0));
    }

    #[test]
    fn episode_return_criterion_fires_on_single_episode() {
        let trainer = Trainer::new(TrainerConfig::default());
        let stats = EpisodeStats::with_window(100, None);
        assert!(!trainer.criterion_met(&stats, 100.0));
        assert!(trainer.criterion_met(&stats, 200.0));
    }

    #[test]
    fn short_run_collects_consistent_statistics() {
        let mut r = rng(1);
        let mut agent = Design::OsElmL2Lipschitz.build(&DesignConfig::new(16), &mut r);
        let mut env = CartPole::new();
        let mut cfg = TrainerConfig::quick(20);
        cfg.solve_criterion = SolveCriterion::MovingAverage {
            threshold: 195.0,
            window: 100,
        };
        let trainer = Trainer::new(cfg);
        let result = trainer.run(agent.as_mut(), &mut env, &mut r);

        assert_eq!(result.design, "OS-ELM-L2-Lipschitz");
        assert_eq!(result.hidden_dim, 16);
        assert_eq!(result.episodes_run, 20);
        assert_eq!(result.stats.episodes(), 20);
        // each episode contributes at least one step, at most 200
        assert!(result.total_steps >= 20);
        assert!(result.total_steps <= 20 * 200);
        // returns sum equals total steps for CartPole's +1-per-step reward
        assert!(
            (result.stats.total_steps_assuming_unit_reward() - result.total_steps as f64).abs()
                < 1e-9
        );
        assert!(
            !result.solved,
            "20 episodes cannot satisfy a 100-episode window"
        );
        assert!(result.wall_seconds() > 0.0);
        assert!(result.op_counts.total_count() > 0);
    }

    #[test]
    fn reset_rule_fires_for_unsolved_elm_designs() {
        let mut r = rng(2);
        let mut agent = Design::OsElm.build(&DesignConfig::new(8), &mut r);
        let mut env = CartPole::new();
        let mut config = TrainerConfig::quick(25);
        config.reset_after_episodes = Some(10);
        let result = Trainer::new(config).run(agent.as_mut(), &mut env, &mut r);
        assert!(
            result.resets >= 2,
            "expected ≥2 resets in 25 episodes, got {}",
            result.resets
        );
    }

    #[test]
    fn reset_rule_can_be_disabled() {
        let mut r = rng(3);
        let mut agent = Design::Dqn.build(&DesignConfig::new(8), &mut r);
        let mut env = CartPole::new();
        let mut config = TrainerConfig::quick(15);
        config.reset_after_episodes = None;
        let result = Trainer::new(config).run(agent.as_mut(), &mut env, &mut r);
        assert_eq!(result.resets, 0);
    }

    #[test]
    fn op_counts_reflect_design_structure() {
        let mut r = rng(4);
        let mut env = CartPole::new();
        let config = TrainerConfig::quick(10);

        let mut oselm = Design::OsElmL2Lipschitz.build(&DesignConfig::new(8), &mut r);
        let res_oselm = Trainer::new(config.clone()).run(oselm.as_mut(), &mut env, &mut r);
        assert!(res_oselm.op_counts.count(OpKind::InitTrain) >= 1);
        assert!(res_oselm.op_counts.count(OpKind::SeqTrain) > 0);
        assert_eq!(res_oselm.op_counts.count(OpKind::TrainDqn), 0);

        let mut dqn = Design::Dqn.build(&DesignConfig::new(8), &mut r);
        let res_dqn = Trainer::new(config).run(dqn.as_mut(), &mut env, &mut r);
        assert!(res_dqn.op_counts.count(OpKind::Predict1) > 0);
        assert_eq!(res_dqn.op_counts.count(OpKind::SeqTrain), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut r = rng(seed);
            let mut agent = Design::OsElmL2.build(&DesignConfig::new(8), &mut r);
            let mut env = CartPole::new();
            Trainer::new(TrainerConfig::quick(8))
                .run(agent.as_mut(), &mut env, &mut r)
                .stats
                .returns
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
