//! # elmrl-harness
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4):
//!
//! * [`table3`] — FPGA resource utilization of the OS-ELM core (Table 3);
//! * [`fig4`] — training curves of the six software designs over the
//!   32/64/128/192 hidden-unit sweep (Figure 4);
//! * [`fig5`] — execution time to complete CartPole-v0 for all seven designs,
//!   with the per-operation breakdown and the DQN-relative speedups quoted in
//!   §4.4 (Figure 5);
//! * [`fig6`] — the FPGA design's execution-time detail (Figure 6);
//! * [`ablation`] — the design-choice ablations called out in DESIGN.md
//!   (Q-value clipping, random update, fixed-point precision);
//! * [`summary`] — cross-environment aggregation: every
//!   `results/<workload>/fig5.json` folded into one design × environment
//!   matrix (the `summary` binary);
//! * [`timing`] — the Cortex-A9 / 125 MHz-PL cost model that converts
//!   operation counts into modeled on-device seconds;
//! * [`runner`] — seeded, rayon-parallel trial execution shared by all of the
//!   above;
//! * [`report`] — Markdown/CSV/JSON emitters used by the CLI binaries;
//! * [`cli`] — the minimal flag parser shared by the binaries.
//!
//! The whole harness is environment-generic: every experiment takes an
//! [`elmrl_gym::Workload`] and resolves the environment, protocol defaults
//! and cost-model geometry through the workload registry, so the full
//! 7-design matrix runs on every registered environment (CartPole,
//! MountainCar, Pendulum, …) through one code path.
//!
//! Each experiment binary (`table3`, `fig4`, `fig5`, `fig6`, `ablation`,
//! `population`) accepts `--workload`, `--trials`, `--episodes`, `--hidden`,
//! `--seed`, `--torque-levels` and `--out` flags (see `--help`); the
//! `population` binary adds `--population`, `--shards` and `--design` and
//! drives the `elmrl-population` engine; the `summary` binary aggregates
//! previously written `fig5.json` artefacts. The `ELMRL_TRIALS` /
//! `ELMRL_EPISODES` / `ELMRL_HIDDEN` / `ELMRL_SEED` / `ELMRL_WORKLOAD`
//! environment variables remain honoured as fallbacks so the same code path
//! serves both a quick smoke run and the full paper protocol.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ablation;
pub mod cli;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod report;
pub mod runner;
pub mod summary;
pub mod table3;
pub mod telemetry;
pub mod timing;

pub use cli::CliArgs;
pub use runner::{TrialResult, TrialSpec};
pub use timing::CostModel;

/// Whether artefacts should suppress host wall-clock measurements so two
/// runs of the same protocol serialize byte-identically (the
/// `ELMRL_ZERO_WALL_TIME` environment variable; any value except `0` or the
/// empty string enables it).
///
/// Everything else in the JSON artefacts is already a pure function of the
/// flags — op counts, modeled on-device seconds, curves, solve statistics —
/// so with this set, a sweep finished from `--resume`d checkpoints produces
/// the same bytes as one that never stopped, and the CI `cmp` jobs can
/// enforce the resume-invariance contract directly.
pub fn deterministic_artifacts() -> bool {
    std::env::var("ELMRL_ZERO_WALL_TIME")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Read a `usize` scale knob from the environment, with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a comma-separated list of hidden sizes from the environment.
pub fn env_hidden_sizes(default: &[usize]) -> Vec<usize> {
    match std::env::var("ELMRL_HIDDEN") {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect::<Vec<usize>>(),
        Err(_) => default.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_helpers_fall_back_to_defaults() {
        assert_eq!(env_usize("ELMRL_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_hidden_sizes(&[32, 64]), vec![32, 64]);
    }
}
