//! The on-device cost model behind the "modeled seconds" columns.
//!
//! The paper measures wall-clock on a 650 MHz Cortex-A9 running NumPy
//! (ELM/OS-ELM designs) or PyTorch (DQN), and on the 125 MHz programmable
//! logic for the FPGA design. Our trials run natively on the host, so
//! absolute wall-clock is not comparable; this module maps the *operation
//! counts* each agent records into estimated on-device seconds using a simple
//! `per-call overhead + flops / effective-flops-per-second` model. The
//! constants are order-of-magnitude calibrations (interpreter overhead on the
//! Cortex-A9 is large), not measurements — EXPERIMENTS.md reports both host
//! wall-clock and these modeled seconds.

use elmrl_core::ops::{OpCounts, OpKind};
use elmrl_fpga::core::{CPU_CLOCK_HZ, PL_CLOCK_HZ};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Effective scalar floating-point throughput of the Cortex-A9 under NumPy
/// (vectorised inner loops, interpreter-dominated outer loops).
const CPU_FLOPS_NUMPY: f64 = CPU_CLOCK_HZ * 0.25;
/// Effective throughput under PyTorch for small tensors (higher per-call
/// overhead, similar inner-loop throughput).
const CPU_FLOPS_TORCH: f64 = CPU_CLOCK_HZ * 0.25;
/// Per-call interpreter/framework overhead, seconds.
const NUMPY_CALL_OVERHEAD: f64 = 120e-6;
const TORCH_CALL_OVERHEAD: f64 = 900e-6;

/// Per-operation modeled seconds for one design/hidden-size cell.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModeledTime {
    /// Seconds attributed to each operation class.
    pub per_op_seconds: BTreeMap<String, f64>,
    /// Sum over all classes.
    pub total_seconds: f64,
}

/// Cost model for a given network geometry.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// ELM/OS-ELM input width (5 for CartPole's simplified output model).
    pub input_dim: usize,
    /// Hidden width `Ñ`.
    pub hidden_dim: usize,
    /// Output width of the ELM/OS-ELM network (1).
    pub output_dim: usize,
    /// DQN state width (4) and action count (2) for the baseline's shapes.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// DQN mini-batch size.
    pub batch_size: usize,
}

impl CostModel {
    /// Cost model for a registered workload at a hidden size: the ELM input
    /// width is `observation_dim + 1` (scalar action encoding) and the DQN
    /// shapes follow the workload's observation/action dimensions.
    pub fn for_workload(spec: &elmrl_gym::EnvSpec, hidden_dim: usize) -> Self {
        Self {
            input_dim: spec.elm_input_dim(),
            hidden_dim,
            output_dim: 1,
            state_dim: spec.observation_dim,
            num_actions: spec.num_actions,
            batch_size: 32,
        }
    }

    /// Cost model for the paper's CartPole experiments at a hidden size.
    pub fn cartpole(hidden_dim: usize) -> Self {
        Self::for_workload(&elmrl_gym::Workload::CartPole.spec(), hidden_dim)
    }

    /// Floating-point operations for one occurrence of `kind` on the CPU.
    pub fn flops(&self, kind: OpKind) -> f64 {
        let n = self.input_dim as f64;
        let h = self.hidden_dim as f64;
        let m = self.output_dim as f64;
        let s = self.state_dim as f64;
        let a = self.num_actions as f64;
        let b = self.batch_size as f64;
        match kind {
            // one (state, action) forward pass through the ELM network
            OpKind::PredictInit | OpKind::PredictSeq => 2.0 * (n * h + h * m),
            // Gram matrix + Cholesky + β solve on a chunk of Ñ samples
            OpKind::InitTrain => {
                let k = h; // buffer D holds Ñ samples
                2.0 * k * h * n + 2.0 * k * h * h + h * h * h / 3.0 + 2.0 * h * h * m
            }
            // batch-size-1 rank-1 update: hidden, two Ñ² products, downdate, β
            OpKind::SeqTrain => 2.0 * (n * h + 4.0 * h * h + 2.0 * h * m + h),
            // DQN: two batch-32 forwards + one forward/backward pass
            OpKind::TrainDqn => 6.0 * b * (s * h + h * a),
            OpKind::Predict1 => 2.0 * (s * h + h * a),
            OpKind::Predict32 => 2.0 * b * (s * h + h * a),
        }
    }

    /// Modeled Cortex-A9 seconds for one occurrence of `kind`.
    pub fn cpu_seconds(&self, kind: OpKind) -> f64 {
        let (overhead, flops_per_s) = match kind {
            OpKind::TrainDqn | OpKind::Predict1 | OpKind::Predict32 => {
                (TORCH_CALL_OVERHEAD, CPU_FLOPS_TORCH)
            }
            _ => (NUMPY_CALL_OVERHEAD, CPU_FLOPS_NUMPY),
        };
        overhead + self.flops(kind) / flops_per_s
    }

    /// Modeled programmable-logic seconds for one occurrence of `kind` on the
    /// FPGA core (only the predict/seq_train classes run on the PL; the rest
    /// fall back to the CPU model).
    pub fn pl_seconds(&self, kind: OpKind) -> f64 {
        let n = self.input_dim as f64;
        let h = self.hidden_dim as f64;
        let m = self.output_dim as f64;
        let cycles = match kind {
            OpKind::PredictInit | OpKind::PredictSeq => 64.0 + n * h + 2.0 * h + h * m,
            OpKind::SeqTrain => 64.0 + n * h + 4.0 * h * h + 3.0 * h + 32.0 + 2.0 * h * m,
            _ => return self.cpu_seconds(kind),
        };
        cycles / PL_CLOCK_HZ
    }

    /// Convert a full [`OpCounts`] into modeled seconds for a *software*
    /// design (everything on the Cortex-A9).
    pub fn model_software(&self, ops: &OpCounts) -> ModeledTime {
        self.model_with(ops, |kind| self.cpu_seconds(kind))
    }

    /// Convert a full [`OpCounts`] into modeled seconds for the *FPGA* design
    /// (predict/seq_train on the PL, initial training on the CPU).
    pub fn model_fpga(&self, ops: &OpCounts) -> ModeledTime {
        self.model_with(ops, |kind| self.pl_seconds(kind))
    }

    fn model_with(&self, ops: &OpCounts, per_op: impl Fn(OpKind) -> f64) -> ModeledTime {
        let mut per_op_seconds = BTreeMap::new();
        let mut total = 0.0;
        for (kind, count, _) in ops.iter() {
            let seconds = per_op(kind) * count as f64;
            total += seconds;
            per_op_seconds.insert(kind.label().to_string(), seconds);
        }
        ModeledTime {
            per_op_seconds,
            total_seconds: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn seq_train_dominates_predict_in_flops() {
        let m = CostModel::cartpole(64);
        assert!(m.flops(OpKind::SeqTrain) > 5.0 * m.flops(OpKind::PredictSeq));
        assert!(m.flops(OpKind::InitTrain) > m.flops(OpKind::SeqTrain));
    }

    #[test]
    fn costs_grow_with_hidden_size() {
        let small = CostModel::cartpole(32);
        let large = CostModel::cartpole(192);
        for kind in OpKind::all() {
            assert!(large.flops(kind) >= small.flops(kind), "{kind:?}");
        }
        // seq_train is quadratic in Ñ: 6× hidden → ≥ 20× flops
        assert!(large.flops(OpKind::SeqTrain) > 20.0 * small.flops(OpKind::SeqTrain));
    }

    #[test]
    fn pl_is_faster_than_cpu_for_the_offloaded_ops() {
        let m = CostModel::cartpole(64);
        assert!(m.pl_seconds(OpKind::SeqTrain) < m.cpu_seconds(OpKind::SeqTrain));
        assert!(m.pl_seconds(OpKind::PredictSeq) < m.cpu_seconds(OpKind::PredictSeq));
        // non-offloaded classes fall back to the CPU cost
        assert_eq!(
            m.pl_seconds(OpKind::InitTrain),
            m.cpu_seconds(OpKind::InitTrain)
        );
    }

    #[test]
    fn dqn_step_is_more_expensive_than_oselm_step() {
        // The core of the paper's speed argument at equal hidden size... holds
        // for the per-call overhead-dominated regime (small Ñ).
        let m = CostModel::cartpole(64);
        assert!(m.cpu_seconds(OpKind::TrainDqn) > m.cpu_seconds(OpKind::SeqTrain));
    }

    #[test]
    fn model_software_and_fpga_aggregate_counts() {
        let m = CostModel::cartpole(32);
        let mut ops = OpCounts::new();
        ops.record_n(OpKind::SeqTrain, 100, Duration::from_millis(1));
        ops.record_n(OpKind::PredictSeq, 200, Duration::from_millis(1));
        ops.record(OpKind::InitTrain, Duration::from_millis(1));
        let sw = m.model_software(&ops);
        let hw = m.model_fpga(&ops);
        assert!(sw.total_seconds > 0.0);
        assert!(hw.total_seconds > 0.0);
        assert!(
            hw.total_seconds < sw.total_seconds,
            "FPGA must be faster overall"
        );
        assert_eq!(sw.per_op_seconds.len(), 3);
        assert!(sw.per_op_seconds["seq_train"] > sw.per_op_seconds["predict_seq"] / 10.0);
    }
}
