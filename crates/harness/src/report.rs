//! Markdown / CSV / JSON emitters shared by the CLI binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Render a Markdown table from a header row and data rows.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Render rows as CSV with a header line.
pub fn csv_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Format a float with sensible precision for reports (3 significant-ish
/// decimals, `-` for missing values).
pub fn fmt_opt(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

/// Write a serialisable value as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    fs::write(dir.join(name), json)
}

/// Write a text artefact (Markdown or CSV) under `results/`.
pub fn write_text(dir: &Path, name: &str, content: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(name), content)
}

/// Default output directory for the CLI binaries.
pub fn default_results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

/// Per-workload output directory (`results/<slug>`), so artefacts from
/// different environments never clobber each other.
pub fn results_dir_for(workload: elmrl_gym::Workload) -> std::path::PathBuf {
    default_results_dir().join(workload.slug())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_rendering() {
        let rows = vec![vec!["a".into(), "1".into()], vec!["b".into(), "2".into()]];
        let md = markdown_table(&["name", "value"], &rows);
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| b | 2 |"));
        let csv = csv_table(&["name", "value"], &rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("name,value"));
    }

    #[test]
    fn per_workload_results_dirs_are_distinct() {
        let dirs: Vec<_> = elmrl_gym::Workload::all()
            .into_iter()
            .map(results_dir_for)
            .collect();
        assert_eq!(dirs.len(), elmrl_gym::Workload::all().len());
        assert!(dirs.iter().all(|d| d.starts_with("results")));
        assert_eq!(
            dirs.iter().collect::<std::collections::BTreeSet<_>>().len(),
            dirs.len()
        );
    }

    #[test]
    fn optional_float_formatting() {
        assert_eq!(fmt_opt(Some(1.23456)), "1.235");
        assert_eq!(fmt_opt(None), "-");
    }

    #[test]
    fn json_and_text_round_trip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("elmrl_report_test_{}", std::process::id()));
        write_json(&dir, "x.json", &vec![1, 2, 3]).unwrap();
        write_text(&dir, "x.md", "# hello").unwrap();
        let json = std::fs::read_to_string(dir.join("x.json")).unwrap();
        assert!(json.contains('1'));
        assert_eq!(
            std::fs::read_to_string(dir.join("x.md")).unwrap(),
            "# hello"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
