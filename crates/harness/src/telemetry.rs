//! Binary-side telemetry wiring: one `init` / `finish` pair shared by every
//! experiment binary.
//!
//! [`init`] turns the global registry on when `--telemetry` (or the
//! `ELMRL_TELEMETRY` environment variable) asks for it and allocates the
//! span-trace rings when a `--trace-out` file was requested. [`finish`]
//! prints the Fig-6-style per-module latency table on stderr and writes the
//! `--metrics-out` / `--trace-out` artefacts.
//!
//! Telemetry never perturbs results: with the flag off every instrumentation
//! site is a relaxed load plus an untaken branch, and with it on the spans
//! only read the clock and write to their own sinks — RNG streams,
//! accumulation order and artefact bytes are untouched (the CI golden-`cmp`
//! job runs fig5 with telemetry on against the telemetry-off goldens).

use crate::CliArgs;
use std::path::Path;

/// Apply the telemetry flags: enable the registry for `--telemetry` /
/// `ELMRL_TELEMETRY`, and additionally allocate the trace rings (implying
/// collection) when `--trace-out` was given. Call before the workload runs.
pub fn init(args: &CliArgs) {
    init_with(args.telemetry, args.trace_out.is_some());
}

/// Flag-free form of [`init`] for binaries with their own parsers.
pub fn init_with(enable: bool, tracing: bool) {
    elmrl_telemetry::init_from_env();
    if enable {
        elmrl_telemetry::set_enabled(true);
    }
    if tracing {
        elmrl_telemetry::enable_tracing(elmrl_telemetry::DEFAULT_TRACE_CAPACITY);
    }
}

/// Print the per-module latency table and write the requested metric/trace
/// artefacts. No-op when telemetry was never enabled. Call once, after the
/// workload finished and its artefacts are written.
pub fn finish(binary: &str, args: &CliArgs) {
    finish_with(
        binary,
        args.metrics_out.as_deref(),
        args.trace_out.as_deref(),
    );
}

/// Flag-free form of [`finish`] for binaries with their own parsers.
pub fn finish_with(binary: &str, metrics_out: Option<&Path>, trace_out: Option<&Path>) {
    if !elmrl_telemetry::enabled() {
        return;
    }
    eprint!("\n{}", elmrl_telemetry::summary_table());
    let snap = elmrl_telemetry::snapshot();
    // The guarded RLS kernel's fast-path report (only present when the
    // fixed-point datapath actually ran).
    if let Some(calls) = snap.counter("fixed.rls.calls").filter(|&c| c > 0) {
        let rescans = snap.counter("fixed.rls.rescans").unwrap_or(0);
        let fast = snap.counter("fixed.rls.fast_blocks").unwrap_or(0);
        let fallback = snap.counter("fixed.rls.fallback_blocks").unwrap_or(0);
        let period = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "fixed.rls.rescan_period")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        let total_blocks = fast + fallback;
        let hit = if total_blocks > 0 {
            100.0 * fast as f64 / total_blocks as f64
        } else {
            0.0
        };
        eprintln!(
            "{binary}: RLS kernel: {calls} updates, {rescans} exact max|P| rescans \
             (configured cadence: 1 per {period} updates), fast-path hit rate \
             {hit:.1}% ({fast}/{total_blocks} dot blocks)"
        );
    }
    if let Some(path) = metrics_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => eprintln!("{binary}: wrote metrics to {}", path.display()),
            Err(e) => eprintln!("{binary}: writing metrics {}: {e}", path.display()),
        }
    }
    if let Some(path) = trace_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match elmrl_telemetry::export_chrome_trace(path) {
            Ok(()) => {
                let dropped = elmrl_telemetry::dropped_events();
                if dropped > 0 {
                    eprintln!(
                        "{binary}: wrote trace to {} ({dropped} events dropped — \
                         ring full; shorten the run or raise the capacity)",
                        path.display()
                    );
                } else {
                    eprintln!("{binary}: wrote trace to {}", path.display());
                }
            }
            Err(e) => eprintln!("{binary}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::{parse_from, CliDefaults};

    fn parse(list: &[&str]) -> CliArgs {
        let args: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        parse_from(
            &args,
            &CliDefaults {
                trials: 1,
                episodes: 10,
                hidden: vec![8],
            },
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn init_and_finish_round_trip_through_files() {
        let dir = std::env::temp_dir().join("elmrl_telemetry_harness_test");
        let metrics = dir.join("metrics.json");
        let trace = dir.join("trace.json");
        let args = parse(&[
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]);
        init(&args);
        assert!(elmrl_telemetry::enabled());
        {
            let _span = elmrl_telemetry::hist!("test.harness_span").span();
        }
        finish("test", &args);
        let metrics_json = std::fs::read_to_string(&metrics).expect("metrics written");
        assert!(metrics_json.contains("\"version\": 1"));
        assert!(metrics_json.contains("test.harness_span"));
        let trace_json = std::fs::read_to_string(&trace).expect("trace written");
        assert!(trace_json.trim_start().starts_with('['));
        elmrl_telemetry::set_enabled(false);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_is_a_no_op_while_disabled() {
        let args = parse(&[]);
        assert!(!args.telemetry);
        // Must not print or write anything; just exercise the early return.
        finish("test", &args);
    }
}
