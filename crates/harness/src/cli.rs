//! Minimal CLI argument parsing shared by the experiment binaries.
//!
//! The container has no access to crates.io, so instead of `clap` this is a
//! small hand-rolled flag parser. Every binary accepts:
//!
//! * `--workload <name>` — a registered workload (`cart-pole`, `mountain-car`,
//!   `pendulum`; case/separator/Gym-version insensitive);
//! * `--trials <n>` — seeded trials per experiment cell;
//! * `--episodes <n>` — episode budget per trial;
//! * `--hidden <a,b,..>` — comma-separated hidden sizes;
//! * `--seed <n>` — base RNG seed;
//! * `--torque-levels <n>` — Pendulum torque discretisation (default 3; the
//!   ROADMAP's n ∈ {3, 5, 9, 15} sweep axis, inert on other workloads);
//! * `--solve-threshold <x>` — override the workload's solve threshold
//!   (the registry's completion *rule* is kept; only the threshold swaps),
//!   the ROADMAP's calibration sweep axis;
//! * `--obs-dim <n>` — padded observation width for the `high-dim` scaling
//!   workload (default 64; ≥ 4, inert on other workloads);
//! * `--chunk-cap <n>` — RLS batch-width cap for the chunked OS-ELM
//!   designs: ticks with more than `n` stored transitions split into
//!   `n`-sized RLS chunks (default `DEFAULT_CHUNK_CAP`; only meaningful
//!   with `--train-envs` > 1);
//! * `--train-envs <e>` — parallel training episodes per trial/replica
//!   (default `ELMRL_TRAIN_ENVS`, else 1). 1 is the paper's scalar B = 1
//!   protocol, byte-for-byte; E > 1 drives E concurrent episodes through a
//!   `VecEnv` with batch-B updates per engine tick;
//! * `--threads <n>` — size of the work-sharing thread pool every parallel
//!   section (population shards, trial batches, large matmuls) runs on;
//!   `--threads 1` forces the true sequential path for debugging. Default:
//!   the `ELMRL_THREADS` environment variable, else the machine's available
//!   parallelism. Never affects results, only wall-clock;
//! * `--out <dir>` — output directory (default: `results/<workload-slug>`);
//! * `--checkpoint-dir <dir>` / `--checkpoint-every <n>` / `--resume` —
//!   capture per-run checkpoints (per-shard manifests for `population`)
//!   and continue from them, bit-for-bit identically to an uninterrupted
//!   run;
//! * `--stop-after <n>` — fault injection for the trial binaries: abandon
//!   each run once `n` episodes completed, keeping the boundary checkpoint;
//! * `--fail-shard <k@e>` — fault injection for the `population` binary:
//!   kill shard `k` after `e` episodes and requeue its replicas;
//! * `--telemetry` — enable the global latency/counter registry and print a
//!   per-module summary table on exit (also honoured via the
//!   `ELMRL_TELEMETRY` environment variable);
//! * `--metrics-out <path>` — write the metrics snapshot as JSON (implies
//!   `--telemetry`);
//! * `--trace-out <path>` — collect span trace events and write a
//!   chrome://tracing / Perfetto-compatible `trace.json` (implies
//!   `--telemetry`);
//! * `--help` — print usage and exit.
//!
//! The `population` binary additionally reads `--population <k>`,
//! `--shards <s>` and `--design <name>`; the `serve` binary reads
//! `--sessions`, `--workers`, `--max-batch`, `--batch-window-us`,
//! `--duration-ticks`, `--virtual-clock`, `--think-ticks` and
//! `--warmup-episodes` (plus `--design`). The shared parser accepts those
//! flags everywhere so one flag set serves every binary. `--workload all`
//! is accepted by the parser but only honoured by the `ablation` binary
//! (which loops the registry); every other binary rejects it.
//!
//! The `ELMRL_TRIALS` / `ELMRL_EPISODES` / `ELMRL_HIDDEN` / `ELMRL_SEED` /
//! `ELMRL_WORKLOAD` environment variables are honoured as fallbacks when the
//! corresponding flag is absent, so existing automation keeps working; flags
//! win over environment variables.

use crate::runner::CheckpointOptions;
use crate::{env_hidden_sizes, env_usize};
use elmrl_core::designs::Design;
use elmrl_gym::{Workload, WorkloadOptions};
use elmrl_population::FaultPlan;
use std::path::PathBuf;

/// Parsed command-line options for one experiment binary.
#[derive(Clone, Debug, PartialEq)]
pub struct CliArgs {
    /// Workload to run.
    pub workload: Workload,
    /// Trials per experiment cell.
    pub trials: usize,
    /// Episode budget per trial.
    pub episodes: usize,
    /// Hidden sizes to sweep.
    pub hidden: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Pendulum torque discretisation (`--torque-levels`, default 3).
    pub torque_levels: usize,
    /// Per-workload solve-threshold override (`--solve-threshold`); `None`
    /// keeps the registry default.
    pub solve_threshold: Option<f64>,
    /// Padded observation width for the high-dim workload (`--obs-dim`);
    /// `None` keeps [`elmrl_gym::DEFAULT_HIGHDIM_OBS_DIM`]. Inert on every
    /// other workload.
    pub obs_dim: Option<usize>,
    /// RLS batch-width cap for the chunked OS-ELM designs (`--chunk-cap`);
    /// `None` keeps [`elmrl_core::DEFAULT_CHUNK_CAP`]. Only meaningful with
    /// `--train-envs` > 1.
    pub chunk_cap: Option<usize>,
    /// Parallel training episodes per trial/replica (`--train-envs`,
    /// default `ELMRL_TRAIN_ENVS`, else 1). 1 is the paper's scalar
    /// protocol; E > 1 drives E concurrent episodes with batch-B updates.
    pub train_envs: usize,
    /// `--workload all` was given (only the `ablation` binary loops over
    /// the registry; every other binary rejects it).
    pub workload_all: bool,
    /// Thread-pool size (`--threads`); 0 means "not given" (defer to
    /// `ELMRL_THREADS`, else auto-detect).
    pub threads: usize,
    /// Population size for the `population` binary (`--population`).
    pub population: usize,
    /// Shard count for the `population` binary (`--shards`).
    pub shards: usize,
    /// Replicated design for the `population` binary (`--design`).
    pub design: Design,
    /// Whether any population-only flag (`--population`, `--shards`,
    /// `--design`) was given — lets the other binaries warn that they
    /// ignore them.
    pub population_flags_used: bool,
    /// Explicit output directory (`--out`), if given.
    pub out: Option<PathBuf>,
    /// Checkpoint directory (`--checkpoint-dir`): per-trial
    /// [`elmrl_core::checkpoint::RunCheckpoint`] files for the figure
    /// binaries, per-shard manifests for the `population` binary.
    pub checkpoint_dir: Option<PathBuf>,
    /// Episodes between checkpoint captures (`--checkpoint-every`,
    /// default 1; only meaningful with `--checkpoint-dir`).
    pub checkpoint_every: usize,
    /// Continue from the checkpoints in `--checkpoint-dir` (`--resume`).
    pub resume: bool,
    /// Fault injection for the trial binaries (`--stop-after <n>`): abandon
    /// every run once `n` episodes have completed, keeping the boundary
    /// checkpoint, so a later `--resume` finishes it byte-identically.
    pub stop_after: Option<usize>,
    /// Fault injection for the `population` binary (`--fail-shard k@e`):
    /// kill shard `k` after `e` episodes; its replicas are requeued onto
    /// the surviving shards with unchanged results.
    pub fail_shard: Option<FaultPlan>,
    /// Client sessions for the `serve` binary (`--sessions`).
    pub sessions: usize,
    /// Agent workers (policy replicas) for the `serve` binary (`--workers`).
    pub workers: usize,
    /// Coalescer batch-size cap for the `serve` binary (`--max-batch`;
    /// 1 = per-request dispatch).
    pub max_batch: usize,
    /// Coalescer latency budget in µs for the `serve` binary
    /// (`--batch-window-us`; 0 = flush everything pending on every pump).
    pub batch_window_us: u64,
    /// Engine rounds for the `serve` binary (`--duration-ticks`).
    pub duration_ticks: u64,
    /// Use the deterministic virtual clock in the `serve` binary
    /// (`--virtual-clock`); required for golden comparison.
    pub virtual_clock: bool,
    /// Maximum think-time rounds between a serve session's response and its
    /// next request (`--think-ticks`; 0 = closed loop).
    pub think_ticks: u64,
    /// Training episodes used to warm the served policy (`--warmup-episodes`).
    pub warmup_episodes: usize,
    /// Whether any serve-only flag was given — lets the other binaries warn
    /// that they ignore them.
    pub serve_flags_used: bool,
    /// Enable the telemetry registry and print the per-module latency table
    /// on exit (`--telemetry`; implied by `--metrics-out`/`--trace-out`).
    pub telemetry: bool,
    /// Write the metrics snapshot as JSON to this path (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// Write the chrome://tracing span trace to this path (`--trace-out`).
    pub trace_out: Option<PathBuf>,
}

impl CliArgs {
    /// The directory results should be written to: `--out` when given,
    /// otherwise the per-workload default `results/<slug>`.
    pub fn out_dir(&self) -> PathBuf {
        self.out
            .clone()
            .unwrap_or_else(|| crate::report::results_dir_for(self.workload))
    }

    /// The workload variant knobs the flags imply.
    pub fn workload_options(&self) -> WorkloadOptions {
        WorkloadOptions {
            torque_levels: self.torque_levels,
            solve_threshold: self.solve_threshold,
            obs_dim: self.obs_dim,
        }
    }

    /// Exit with an error when `--workload all` was passed to a binary that
    /// cannot loop over the registry (only `ablation` can).
    pub fn reject_workload_all(&self, binary: &str) {
        if self.workload_all {
            eprintln!(
                "{binary}: --workload all is only supported by the `ablation` binary \
                 (run one workload at a time here)"
            );
            std::process::exit(2);
        }
    }

    /// The workloads a registry-looping binary should run: the whole
    /// registry under `--workload all`, the single selected workload
    /// otherwise.
    pub fn workloads(&self) -> Vec<Workload> {
        if self.workload_all {
            Workload::all().to_vec()
        } else {
            vec![self.workload]
        }
    }

    /// Apply the `--threads` choice to the global work-sharing pool (an
    /// explicit flag wins; otherwise the pool resolves `ELMRL_THREADS` or
    /// the machine's parallelism lazily on first use).
    pub fn apply_threads(&self) {
        if self.threads > 0 {
            rayon::set_num_threads(self.threads);
        }
    }

    /// Warn on stderr when a population-only flag was passed to a binary
    /// that does not read it (so e.g. `fig5 --design dqn` cannot silently
    /// run the full design matrix).
    pub fn warn_unused_population_flags(&self, binary: &str) {
        if self.population_flags_used {
            eprintln!(
                "{binary}: note — --population/--shards/--design only affect the \
                 `population` binary and are ignored here"
            );
        }
        if self.fail_shard.is_some() {
            eprintln!(
                "{binary}: note — --fail-shard only affects the `population` \
                 binary and is ignored here (use --stop-after to fault-inject \
                 a trial run)"
            );
        }
    }

    /// Warn on stderr when a serve-only flag was passed to a binary that
    /// does not read it.
    pub fn warn_unused_serve_flags(&self, binary: &str) {
        if self.serve_flags_used {
            eprintln!(
                "{binary}: note — --sessions/--workers/--max-batch/--batch-window-us/\
                 --duration-ticks/--virtual-clock/--think-ticks/--warmup-episodes only \
                 affect the `serve` binary and are ignored here"
            );
        }
    }

    /// The checkpoint options the flags imply for the trial binaries:
    /// `Some` exactly when `--checkpoint-dir` was given.
    pub fn checkpoint_options(&self) -> Option<CheckpointOptions> {
        self.checkpoint_dir.as_ref().map(|dir| CheckpointOptions {
            dir: dir.clone(),
            every: self.checkpoint_every,
            resume: self.resume,
            stop_after: self.stop_after,
        })
    }

    /// Warn on stderr when checkpoint flags were passed to a binary with
    /// nothing to checkpoint (`table3` is analytic, `summary` aggregates
    /// files, `ablation` sweeps closed-form configurations).
    pub fn warn_unused_checkpoint_flags(&self, binary: &str) {
        if self.checkpoint_dir.is_some() || self.stop_after.is_some() {
            eprintln!(
                "{binary}: note — this binary runs no checkpointable training \
                 loop; --checkpoint-dir/--resume/--checkpoint-every/--stop-after \
                 are ignored here"
            );
        }
    }
}

/// Per-binary defaults the parser starts from. Precedence, lowest to
/// highest: these defaults → `ELMRL_*` environment variables → flags.
#[derive(Clone, Debug)]
pub struct CliDefaults {
    /// Default trials per cell.
    pub trials: usize,
    /// Default episode budget.
    pub episodes: usize,
    /// Default hidden sizes.
    pub hidden: Vec<usize>,
}

/// Render the `--help` text for a binary.
pub fn usage(binary: &str, about: &str, defaults: &CliDefaults) -> String {
    let workloads: Vec<&str> = Workload::all().iter().map(|w| w.slug()).collect();
    format!(
        "{about}\n\n\
         Usage: {binary} [OPTIONS]\n\n\
         Options:\n\
         \x20 --workload <name>   workload to run: {} (default: cart-pole)\n\
         \x20 --trials <n>        seeded trials per cell (default: {})\n\
         \x20 --episodes <n>      episode budget per trial (default: {})\n\
         \x20 --hidden <a,b,..>   comma-separated hidden sizes (default: {})\n\
         \x20 --seed <n>          base RNG seed (default: 42)\n\
         \x20 --torque-levels <n> Pendulum torque discretisation (default: 3)\n\
         \x20 --solve-threshold <x> override the workload's solve threshold\n\
         \x20                     (default: the registry value)\n\
         \x20 --obs-dim <n>       padded observation width of the high-dim\n\
         \x20                     workload (default: 64; inert elsewhere)\n\
         \x20 --chunk-cap <n>     RLS batch-width cap for the chunked OS-ELM\n\
         \x20                     designs (default: 64; needs --train-envs > 1)\n\
         \x20 --train-envs <e>    parallel training episodes per trial/replica;\n\
         \x20                     1 = the paper's scalar protocol, E > 1 trains\n\
         \x20                     E episodes concurrently with batch-B updates\n\
         \x20                     (default: ELMRL_TRAIN_ENVS, else 1)\n\
         \x20 --threads <n>       worker-pool size; 1 = sequential debugging path\n\
         \x20                     (default: ELMRL_THREADS, else auto-detect)\n\
         \x20 --out <dir>         output directory (default: results/<workload>)\n\
         \x20 --population <k>    replicas, population binary only (default: 32)\n\
         \x20 --shards <s>        shards, population binary only (default: 4)\n\
         \x20 --design <name>     replicated design, population binary only\n\
         \x20                     (default: os-elm-l2-lipschitz)\n\
         \x20 --checkpoint-dir <dir> capture checkpoints into <dir> (per-trial\n\
         \x20                     run state; per-shard manifests for population)\n\
         \x20 --checkpoint-every <n> episodes between checkpoints (default: 1)\n\
         \x20 --resume            continue from the checkpoints in --checkpoint-dir\n\
         \x20 --stop-after <n>    fault injection: abandon each run once n episodes\n\
         \x20                     completed (the boundary checkpoint is kept)\n\
         \x20 --fail-shard <k@e>  fault injection, population binary only: kill\n\
         \x20                     shard k after e episodes (replicas requeue onto\n\
         \x20                     the surviving shards, results unchanged)\n\
         \x20 --sessions <n>      client sessions, serve binary only (default: 64)\n\
         \x20 --workers <n>       agent workers (policy replicas), serve binary\n\
         \x20                     only; never changes responses (default: 1)\n\
         \x20 --max-batch <n>     coalescer batch cap, serve binary only;\n\
         \x20                     1 = per-request dispatch (default: 64)\n\
         \x20 --batch-window-us <n> coalescer latency budget in µs, serve binary\n\
         \x20                     only; 0 flushes every pump (default: 200)\n\
         \x20 --duration-ticks <n> engine rounds to drive, serve binary only\n\
         \x20                     (default: 200)\n\
         \x20 --virtual-clock     deterministic virtual clock, serve binary only\n\
         \x20                     (required for golden/byte-identical runs)\n\
         \x20 --think-ticks <n>   max think-time rounds between a session's\n\
         \x20                     response and next request, serve binary only\n\
         \x20                     (default: 0 = closed loop)\n\
         \x20 --warmup-episodes <n> training episodes behind the served policy,\n\
         \x20                     serve binary only (default: 5)\n\
         \x20 --telemetry         collect per-module latency/counter metrics and\n\
         \x20                     print a summary table on exit (never changes\n\
         \x20                     results; also via ELMRL_TELEMETRY=1)\n\
         \x20 --metrics-out <path> write the metrics snapshot as JSON\n\
         \x20                     (implies --telemetry)\n\
         \x20 --trace-out <path>  write span events as chrome://tracing JSON,\n\
         \x20                     openable in Perfetto (implies --telemetry)\n\
         \x20 --help              print this help and exit\n\n\
         ELMRL_WORKLOAD, ELMRL_TRIALS, ELMRL_EPISODES, ELMRL_HIDDEN and\n\
         ELMRL_SEED are honoured as fallbacks when the flag is absent.",
        workloads.join(", "),
        defaults.trials,
        defaults.episodes,
        defaults
            .hidden
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(","),
    )
}

/// Parse a flag list (everything after the binary name). Returns `Ok(None)`
/// when `--help` was requested.
pub fn parse_from(args: &[String], defaults: &CliDefaults) -> Result<Option<CliArgs>, String> {
    let mut parsed = CliArgs {
        workload: Workload::CartPole,
        trials: env_usize("ELMRL_TRIALS", defaults.trials),
        episodes: env_usize("ELMRL_EPISODES", defaults.episodes),
        hidden: env_hidden_sizes(&defaults.hidden),
        seed: env_usize("ELMRL_SEED", 42) as u64,
        torque_levels: 3,
        solve_threshold: None,
        obs_dim: None,
        chunk_cap: None,
        train_envs: env_usize("ELMRL_TRAIN_ENVS", 1).max(1),
        workload_all: false,
        threads: 0,
        population: 32,
        shards: 4,
        design: Design::OsElmL2Lipschitz,
        population_flags_used: false,
        out: None,
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: false,
        stop_after: None,
        fail_shard: None,
        sessions: 64,
        workers: 1,
        max_batch: 64,
        batch_window_us: 200,
        duration_ticks: 200,
        virtual_clock: false,
        think_ticks: 0,
        warmup_episodes: 5,
        serve_flags_used: false,
        telemetry: false,
        metrics_out: None,
        trace_out: None,
    };
    let mut workload_flag: Option<Workload> = None;
    let mut checkpoint_every_flag: Option<usize> = None;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--workload" => {
                let name = value_for("--workload")?;
                if name.eq_ignore_ascii_case("all") {
                    parsed.workload_all = true;
                    continue;
                }
                workload_flag = Some(Workload::from_name(&name).ok_or_else(|| {
                    format!(
                        "unknown workload `{name}` (registered: {}, or `all`)",
                        Workload::all()
                            .iter()
                            .map(|w| w.slug())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?);
            }
            "--trials" => {
                let v = value_for("--trials")?;
                parsed.trials = v
                    .parse()
                    .map_err(|_| format!("--trials: invalid count `{v}`"))?;
            }
            "--episodes" => {
                let v = value_for("--episodes")?;
                parsed.episodes = v
                    .parse()
                    .map_err(|_| format!("--episodes: invalid count `{v}`"))?;
            }
            "--hidden" => {
                let v = value_for("--hidden")?;
                let sizes: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                parsed.hidden = sizes.map_err(|_| format!("--hidden: invalid size list `{v}`"))?;
                if parsed.hidden.is_empty() {
                    return Err("--hidden: need at least one size".to_string());
                }
            }
            "--seed" => {
                let v = value_for("--seed")?;
                parsed.seed = v
                    .parse()
                    .map_err(|_| format!("--seed: invalid seed `{v}`"))?;
            }
            "--torque-levels" => {
                let v = value_for("--torque-levels")?;
                parsed.torque_levels =
                    v.parse().ok().filter(|&n| n >= 2).ok_or_else(|| {
                        format!("--torque-levels: need an integer ≥ 2, got `{v}`")
                    })?;
            }
            "--solve-threshold" => {
                let v = value_for("--solve-threshold")?;
                let threshold: f64 = v
                    .parse()
                    .map_err(|_| format!("--solve-threshold: invalid number `{v}`"))?;
                if !threshold.is_finite() {
                    return Err(format!(
                        "--solve-threshold: need a finite number, got `{v}`"
                    ));
                }
                parsed.solve_threshold = Some(threshold);
            }
            "--obs-dim" => {
                let v = value_for("--obs-dim")?;
                parsed.obs_dim = Some(v.parse().ok().filter(|&n| n >= 4).ok_or_else(|| {
                    format!("--obs-dim: need an integer ≥ 4 (the real CartPole state), got `{v}`")
                })?);
            }
            "--chunk-cap" => {
                let v = value_for("--chunk-cap")?;
                parsed.chunk_cap = Some(v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--chunk-cap: need a positive batch width, got `{v}`")
                })?);
            }
            "--train-envs" => {
                let v = value_for("--train-envs")?;
                parsed.train_envs = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--train-envs: need a positive count, got `{v}`"))?;
            }
            "--threads" => {
                let v = value_for("--threads")?;
                parsed.threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--threads: need a positive count, got `{v}`"))?;
            }
            "--population" => {
                parsed.population_flags_used = true;
                let v = value_for("--population")?;
                parsed.population = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--population: need a positive count, got `{v}`"))?;
            }
            "--shards" => {
                parsed.population_flags_used = true;
                let v = value_for("--shards")?;
                parsed.shards = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--shards: need a positive count, got `{v}`"))?;
            }
            "--design" => {
                parsed.population_flags_used = true;
                let name = value_for("--design")?;
                parsed.design = Design::from_name(&name).ok_or_else(|| {
                    format!(
                        "unknown design `{name}` (known: {})",
                        Design::all_designs()
                            .iter()
                            .map(|d| d.label())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(value_for("--out")?));
            }
            "--checkpoint-dir" => {
                parsed.checkpoint_dir = Some(PathBuf::from(value_for("--checkpoint-dir")?));
            }
            "--checkpoint-every" => {
                let v = value_for("--checkpoint-every")?;
                checkpoint_every_flag =
                    Some(v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--checkpoint-every: need a positive count, got `{v}`")
                    })?);
            }
            "--resume" => {
                parsed.resume = true;
            }
            "--stop-after" => {
                let v = value_for("--stop-after")?;
                parsed.stop_after = Some(v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--stop-after: need a positive episode count, got `{v}`")
                })?);
            }
            "--fail-shard" => {
                let v = value_for("--fail-shard")?;
                parsed.fail_shard =
                    Some(FaultPlan::parse(&v).map_err(|e| format!("--fail-shard: {e}"))?);
            }
            "--sessions" => {
                parsed.serve_flags_used = true;
                let v = value_for("--sessions")?;
                parsed.sessions = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--sessions: need a positive count, got `{v}`"))?;
            }
            "--workers" => {
                parsed.serve_flags_used = true;
                let v = value_for("--workers")?;
                parsed.workers = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--workers: need a positive count, got `{v}`"))?;
            }
            "--max-batch" => {
                parsed.serve_flags_used = true;
                let v = value_for("--max-batch")?;
                parsed.max_batch =
                    v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--max-batch: need a positive batch cap, got `{v}`")
                    })?;
            }
            "--batch-window-us" => {
                parsed.serve_flags_used = true;
                let v = value_for("--batch-window-us")?;
                parsed.batch_window_us = v
                    .parse()
                    .map_err(|_| format!("--batch-window-us: invalid budget `{v}`"))?;
            }
            "--duration-ticks" => {
                parsed.serve_flags_used = true;
                let v = value_for("--duration-ticks")?;
                parsed.duration_ticks =
                    v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--duration-ticks: need a positive count, got `{v}`")
                    })?;
            }
            "--virtual-clock" => {
                parsed.serve_flags_used = true;
                parsed.virtual_clock = true;
            }
            "--think-ticks" => {
                parsed.serve_flags_used = true;
                let v = value_for("--think-ticks")?;
                parsed.think_ticks = v
                    .parse()
                    .map_err(|_| format!("--think-ticks: invalid count `{v}`"))?;
            }
            "--warmup-episodes" => {
                parsed.serve_flags_used = true;
                let v = value_for("--warmup-episodes")?;
                parsed.warmup_episodes = v
                    .parse()
                    .map_err(|_| format!("--warmup-episodes: invalid count `{v}`"))?;
            }
            "--telemetry" => {
                parsed.telemetry = true;
            }
            "--metrics-out" => {
                parsed.metrics_out = Some(PathBuf::from(value_for("--metrics-out")?));
            }
            "--trace-out" => {
                parsed.trace_out = Some(PathBuf::from(value_for("--trace-out")?));
            }
            other => {
                return Err(format!("unknown flag `{other}` (try --help)"));
            }
        }
    }
    if parsed.workload_all && workload_flag.is_some() {
        return Err("--workload all conflicts with a named --workload".to_string());
    }
    if parsed.checkpoint_dir.is_none() {
        if parsed.resume {
            return Err("--resume requires --checkpoint-dir".to_string());
        }
        if checkpoint_every_flag.is_some() {
            return Err("--checkpoint-every requires --checkpoint-dir".to_string());
        }
        if parsed.stop_after.is_some() {
            return Err(
                "--stop-after requires --checkpoint-dir (an abandoned run without \
                 a checkpoint cannot be resumed)"
                    .to_string(),
            );
        }
    }
    parsed.checkpoint_every = checkpoint_every_flag.unwrap_or(1);
    // Asking for a metrics or trace file is asking for telemetry.
    if parsed.metrics_out.is_some() || parsed.trace_out.is_some() {
        parsed.telemetry = true;
    }
    // A `--workload` flag wins outright; the environment variable is only
    // consulted (and validated) when no flag was given.
    parsed.workload = match workload_flag {
        Some(workload) => workload,
        None => match std::env::var("ELMRL_WORKLOAD") {
            Ok(name) => Workload::from_name(&name)
                .ok_or_else(|| format!("ELMRL_WORKLOAD: unknown workload `{name}`"))?,
            Err(_) => Workload::CartPole,
        },
    };
    Ok(Some(parsed))
}

/// Parse `std::env::args()` for a binary; prints help or a parse error and
/// exits the process as appropriate.
pub fn parse_or_exit(binary: &str, about: &str, defaults: &CliDefaults) -> CliArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_from(&args, defaults) {
        Ok(Some(parsed)) => {
            parsed.apply_threads();
            parsed
        }
        Ok(None) => {
            println!("{}", usage(binary, about, defaults));
            std::process::exit(0);
        }
        Err(message) => {
            eprintln!("{binary}: {message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The parser consults the real process environment; drop any ambient
    /// `ELMRL_*` variables so the assertions below see the pure defaults
    /// (running the suite under e.g. `ELMRL_TRIALS=5` is supported usage).
    fn defaults() -> CliDefaults {
        for var in [
            "ELMRL_WORKLOAD",
            "ELMRL_TRIALS",
            "ELMRL_EPISODES",
            "ELMRL_HIDDEN",
            "ELMRL_SEED",
            "ELMRL_TRAIN_ENVS",
        ] {
            std::env::remove_var(var);
        }
        CliDefaults {
            trials: 3,
            episodes: 2000,
            hidden: vec![32, 64],
        }
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_when_no_flags_given() {
        let parsed = parse_from(&[], &defaults()).unwrap().unwrap();
        assert_eq!(parsed.workload, Workload::CartPole);
        assert_eq!(parsed.trials, 3);
        assert_eq!(parsed.episodes, 2000);
        assert_eq!(parsed.hidden, vec![32, 64]);
        assert_eq!(parsed.seed, 42);
        assert!(parsed.out.is_none());
        assert_eq!(parsed.out_dir(), PathBuf::from("results").join("cart-pole"));
    }

    #[test]
    fn flags_override_everything() {
        let parsed = parse_from(
            &args(&[
                "--workload",
                "mountain-car",
                "--trials",
                "5",
                "--episodes",
                "100",
                "--hidden",
                "8, 16",
                "--seed",
                "7",
                "--out",
                "/tmp/elmrl-out",
            ]),
            &defaults(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(parsed.workload, Workload::MountainCar);
        assert_eq!(parsed.trials, 5);
        assert_eq!(parsed.episodes, 100);
        assert_eq!(parsed.hidden, vec![8, 16]);
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.out_dir(), PathBuf::from("/tmp/elmrl-out"));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse_from(&args(&["--help"]), &defaults()).unwrap(), None);
        assert_eq!(
            parse_from(&args(&["--workload", "pendulum", "-h"]), &defaults()).unwrap(),
            None
        );
        let text = usage("fig5", "Figure 5", &defaults());
        assert!(text.contains("--workload"));
        assert!(text.contains("mountain-car"));
        assert!(text.contains("--out"));
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(
            parse_from(&args(&["--workload", "lunar-lander"]), &defaults())
                .unwrap_err()
                .contains("unknown workload")
        );
        assert!(parse_from(&args(&["--trials"]), &defaults())
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_from(&args(&["--trials", "many"]), &defaults())
            .unwrap_err()
            .contains("invalid count"));
        assert!(parse_from(&args(&["--frobnicate"]), &defaults())
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_from(&args(&["--hidden", "a,b"]), &defaults())
            .unwrap_err()
            .contains("invalid size list"));
    }

    #[test]
    fn population_and_variant_flags_parse() {
        let parsed = parse_from(
            &args(&[
                "--workload",
                "pendulum",
                "--torque-levels",
                "9",
                "--population",
                "16",
                "--shards",
                "2",
                "--design",
                "dqn",
            ]),
            &defaults(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(parsed.workload, Workload::Pendulum);
        assert_eq!(parsed.torque_levels, 9);
        assert_eq!(parsed.workload_options().torque_levels, 9);
        assert_eq!(parsed.population, 16);
        assert_eq!(parsed.shards, 2);
        assert_eq!(parsed.design, Design::Dqn);
        assert!(parsed.population_flags_used);

        // Defaults when absent.
        let bare = parse_from(&[], &defaults()).unwrap().unwrap();
        assert_eq!(bare.torque_levels, 3);
        assert_eq!(bare.population, 32);
        assert_eq!(bare.shards, 4);
        assert_eq!(bare.design, Design::OsElmL2Lipschitz);
        assert!(!bare.population_flags_used);

        // Validation.
        assert!(parse_from(&args(&["--torque-levels", "1"]), &defaults())
            .unwrap_err()
            .contains("≥ 2"));
        assert!(parse_from(&args(&["--population", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(parse_from(&args(&["--design", "transformer"]), &defaults())
            .unwrap_err()
            .contains("unknown design"));
    }

    #[test]
    fn train_envs_and_solve_threshold_flags_parse_and_validate() {
        let parsed = parse_from(
            &args(&["--train-envs", "8", "--solve-threshold", "-150.5"]),
            &defaults(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(parsed.train_envs, 8);
        assert_eq!(parsed.solve_threshold, Some(-150.5));
        assert_eq!(parsed.workload_options().solve_threshold, Some(-150.5));

        // Defaults: the paper's scalar protocol and the registry threshold.
        let bare = parse_from(&[], &defaults()).unwrap().unwrap();
        assert_eq!(bare.train_envs, 1);
        assert_eq!(bare.solve_threshold, None);
        assert!(!bare.workload_all);

        assert!(parse_from(&args(&["--train-envs", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(
            parse_from(&args(&["--solve-threshold", "tall"]), &defaults())
                .unwrap_err()
                .contains("invalid number")
        );
        assert!(
            parse_from(&args(&["--solve-threshold", "nan"]), &defaults())
                .unwrap_err()
                .contains("finite")
        );
        let help = usage("fig5", "x", &defaults());
        assert!(help.contains("--train-envs"));
        assert!(help.contains("--solve-threshold"));
    }

    #[test]
    fn obs_dim_and_chunk_cap_flags_parse_and_validate() {
        let parsed = parse_from(
            &args(&[
                "--workload",
                "high-dim",
                "--obs-dim",
                "256",
                "--chunk-cap",
                "16",
            ]),
            &defaults(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(parsed.workload, Workload::HighDim);
        assert_eq!(parsed.obs_dim, Some(256));
        assert_eq!(parsed.workload_options().obs_dim, Some(256));
        assert_eq!(parsed.chunk_cap, Some(16));

        // Defaults: both knobs deferred to their library defaults.
        let bare = parse_from(&[], &defaults()).unwrap().unwrap();
        assert_eq!(bare.obs_dim, None);
        assert_eq!(bare.chunk_cap, None);
        assert_eq!(bare.workload_options().obs_dim, None);

        assert!(parse_from(&args(&["--obs-dim", "3"]), &defaults())
            .unwrap_err()
            .contains("≥ 4"));
        assert!(parse_from(&args(&["--chunk-cap", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        let help = usage("fig5", "x", &defaults());
        assert!(help.contains("--obs-dim"));
        assert!(help.contains("--chunk-cap"));
        assert!(help.contains("high-dim"));
    }

    #[test]
    fn workload_all_is_parsed_and_conflicts_with_a_named_workload() {
        let parsed = parse_from(&args(&["--workload", "all"]), &defaults())
            .unwrap()
            .unwrap();
        assert!(parsed.workload_all);
        assert_eq!(parsed.workloads(), Workload::all().to_vec());
        let single = parse_from(&args(&["--workload", "pendulum"]), &defaults())
            .unwrap()
            .unwrap();
        assert_eq!(single.workloads(), vec![Workload::Pendulum]);
        assert!(parse_from(
            &args(&["--workload", "all", "--workload", "pendulum"]),
            &defaults()
        )
        .unwrap_err()
        .contains("conflicts"));
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        let parsed = parse_from(&args(&["--threads", "4"]), &defaults())
            .unwrap()
            .unwrap();
        assert_eq!(parsed.threads, 4);
        // Default: "not given" (0) — the pool then resolves ELMRL_THREADS
        // or auto-detects; apply_threads must not override that.
        let bare = parse_from(&[], &defaults()).unwrap().unwrap();
        assert_eq!(bare.threads, 0);
        assert!(parse_from(&args(&["--threads", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(parse_from(&args(&["--threads", "lots"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(usage("population", "x", &defaults()).contains("--threads"));
    }

    #[test]
    fn apply_threads_sizes_the_global_pool() {
        let mut parsed = parse_from(&args(&["--threads", "3"]), &defaults())
            .unwrap()
            .unwrap();
        parsed.apply_threads();
        assert_eq!(rayon::current_num_threads(), 3);
        // threads = 0 leaves the pool configuration untouched.
        parsed.threads = 0;
        parsed.apply_threads();
        assert_eq!(rayon::current_num_threads(), 3);
        rayon::set_num_threads(1);
    }

    #[test]
    fn checkpoint_flags_parse_and_validate() {
        let parsed = parse_from(
            &args(&[
                "--checkpoint-dir",
                "/tmp/ckpt",
                "--checkpoint-every",
                "5",
                "--resume",
                "--stop-after",
                "40",
                "--fail-shard",
                "2@17",
            ]),
            &defaults(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(parsed.checkpoint_dir, Some(PathBuf::from("/tmp/ckpt")));
        assert_eq!(parsed.checkpoint_every, 5);
        assert!(parsed.resume);
        assert_eq!(parsed.stop_after, Some(40));
        assert_eq!(
            parsed.fail_shard,
            Some(FaultPlan {
                shard: 2,
                at_episode: 17
            })
        );
        let opts = parsed.checkpoint_options().unwrap();
        assert_eq!(opts.dir, PathBuf::from("/tmp/ckpt"));
        assert_eq!(opts.every, 5);
        assert!(opts.resume);
        assert_eq!(opts.stop_after, Some(40));

        // Defaults when absent: no checkpointing at all.
        let bare = parse_from(&[], &defaults()).unwrap().unwrap();
        assert!(bare.checkpoint_dir.is_none());
        assert_eq!(bare.checkpoint_every, 1);
        assert!(!bare.resume);
        assert!(bare.stop_after.is_none());
        assert!(bare.fail_shard.is_none());
        assert!(bare.checkpoint_options().is_none());

        // The help text advertises the new flags.
        let help = usage("fig5", "x", &defaults());
        for flag in [
            "--checkpoint-dir",
            "--checkpoint-every",
            "--resume",
            "--stop-after",
            "--fail-shard",
        ] {
            assert!(help.contains(flag), "{flag}");
        }
    }

    #[test]
    fn checkpoint_flag_validation_is_descriptive() {
        assert!(parse_from(&args(&["--resume"]), &defaults())
            .unwrap_err()
            .contains("requires --checkpoint-dir"));
        assert!(parse_from(&args(&["--checkpoint-every", "3"]), &defaults())
            .unwrap_err()
            .contains("requires --checkpoint-dir"));
        assert!(parse_from(&args(&["--stop-after", "9"]), &defaults())
            .unwrap_err()
            .contains("requires --checkpoint-dir"));
        assert!(parse_from(
            &args(&["--checkpoint-dir", "d", "--checkpoint-every", "0"]),
            &defaults()
        )
        .unwrap_err()
        .contains("positive"));
        assert!(parse_from(&args(&["--fail-shard", "two@9"]), &defaults())
            .unwrap_err()
            .contains("--fail-shard"));
        // --fail-shard works without --checkpoint-dir: the population runner
        // recovers in-process, no manifest directory needed.
        let parsed = parse_from(&args(&["--fail-shard", "0@3"]), &defaults())
            .unwrap()
            .unwrap();
        assert_eq!(
            parsed.fail_shard,
            Some(FaultPlan {
                shard: 0,
                at_episode: 3
            })
        );
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        let parsed = parse_from(
            &args(&[
                "--sessions",
                "1000",
                "--workers",
                "4",
                "--max-batch",
                "128",
                "--batch-window-us",
                "500",
                "--duration-ticks",
                "50",
                "--virtual-clock",
                "--think-ticks",
                "3",
                "--warmup-episodes",
                "10",
            ]),
            &defaults(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(parsed.sessions, 1000);
        assert_eq!(parsed.workers, 4);
        assert_eq!(parsed.max_batch, 128);
        assert_eq!(parsed.batch_window_us, 500);
        assert_eq!(parsed.duration_ticks, 50);
        assert!(parsed.virtual_clock);
        assert_eq!(parsed.think_ticks, 3);
        assert_eq!(parsed.warmup_episodes, 10);
        assert!(parsed.serve_flags_used);

        // Defaults when absent.
        let bare = parse_from(&[], &defaults()).unwrap().unwrap();
        assert_eq!(bare.sessions, 64);
        assert_eq!(bare.workers, 1);
        assert_eq!(bare.max_batch, 64);
        assert_eq!(bare.batch_window_us, 200);
        assert_eq!(bare.duration_ticks, 200);
        assert!(!bare.virtual_clock);
        assert_eq!(bare.think_ticks, 0);
        assert_eq!(bare.warmup_episodes, 5);
        assert!(!bare.serve_flags_used);

        // Validation: zero sessions/workers/batches/rounds are meaningless;
        // think/warmup/window zero are legitimate (closed loop, cold policy,
        // flush-every-pump).
        assert!(parse_from(&args(&["--sessions", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(parse_from(&args(&["--workers", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(parse_from(&args(&["--max-batch", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(parse_from(&args(&["--duration-ticks", "0"]), &defaults())
            .unwrap_err()
            .contains("positive"));
        assert!(
            parse_from(&args(&["--batch-window-us", "soon"]), &defaults())
                .unwrap_err()
                .contains("invalid")
        );
        let zeros = parse_from(
            &args(&[
                "--batch-window-us",
                "0",
                "--think-ticks",
                "0",
                "--warmup-episodes",
                "0",
            ]),
            &defaults(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(zeros.batch_window_us, 0);
        assert_eq!(zeros.warmup_episodes, 0);

        let help = usage("serve", "x", &defaults());
        for flag in [
            "--sessions",
            "--workers",
            "--max-batch",
            "--batch-window-us",
            "--duration-ticks",
            "--virtual-clock",
            "--think-ticks",
            "--warmup-episodes",
        ] {
            assert!(help.contains(flag), "{flag}");
        }
    }

    #[test]
    fn telemetry_flags_parse_and_imply_each_other() {
        let bare = parse_from(&[], &defaults()).unwrap().unwrap();
        assert!(!bare.telemetry);
        assert!(bare.metrics_out.is_none());
        assert!(bare.trace_out.is_none());

        let explicit = parse_from(&args(&["--telemetry"]), &defaults())
            .unwrap()
            .unwrap();
        assert!(explicit.telemetry);

        // Either output flag implies --telemetry.
        let metrics = parse_from(&args(&["--metrics-out", "/tmp/m.json"]), &defaults())
            .unwrap()
            .unwrap();
        assert!(metrics.telemetry);
        assert_eq!(metrics.metrics_out, Some(PathBuf::from("/tmp/m.json")));
        let trace = parse_from(&args(&["--trace-out", "/tmp/trace.json"]), &defaults())
            .unwrap()
            .unwrap();
        assert!(trace.telemetry);
        assert_eq!(trace.trace_out, Some(PathBuf::from("/tmp/trace.json")));

        assert!(parse_from(&args(&["--metrics-out"]), &defaults())
            .unwrap_err()
            .contains("requires a value"));
        let help = usage("fig5", "x", &defaults());
        for flag in ["--telemetry", "--metrics-out", "--trace-out"] {
            assert!(help.contains(flag), "{flag}");
        }
    }

    #[test]
    fn workload_names_are_normalised() {
        for name in ["CartPole-v0", "cart_pole", "cartpole"] {
            let parsed = parse_from(&args(&["--workload", name]), &defaults())
                .unwrap()
                .unwrap();
            assert_eq!(parsed.workload, Workload::CartPole, "{name}");
        }
    }
}
