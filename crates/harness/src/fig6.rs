//! Experiment E4 — Figure 6: execution-time detail of the FPGA design.
//!
//! The paper zooms into the FPGA bars of Figure 5: how much of the (much
//! shorter) completion time goes to `seq_train`, `predict_seq`, `init_train`
//! and `predict_init`. Here the numbers come from the cycle-accurate core
//! simulation (PL cycles at 125 MHz) plus the modeled Cortex-A9 cost of the
//! initial training, averaged over the trials that completed the task.

use crate::runner::{run_trials_checkpointed, CheckpointOptions, TrialSpec};
use elmrl_core::designs::Design;
use elmrl_core::ops::OpKind;
use elmrl_gym::{Workload, WorkloadOptions};
use serde::{Deserialize, Serialize};

/// Per-hidden-size FPGA timing detail.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FpgaDetail {
    /// Hidden width.
    pub hidden_dim: usize,
    /// Trials attempted / solved.
    pub trials: usize,
    /// Number of solved trials.
    pub solved_trials: usize,
    /// Mean simulated PL seconds in the predict module.
    pub predict_seconds: Option<f64>,
    /// Mean simulated PL seconds in the seq_train module.
    pub seq_train_seconds: Option<f64>,
    /// Mean simulated CPU seconds in the initial training.
    pub init_train_seconds: Option<f64>,
    /// Mean total simulated on-device seconds.
    pub total_seconds: Option<f64>,
    /// Mean number of sequential-training invocations.
    pub mean_seq_train_calls: Option<f64>,
}

/// The Figure 6 reproduction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure6 {
    /// Workload the detail ran on.
    pub workload: Workload,
    /// Workload variant knobs the detail used.
    pub options: WorkloadOptions,
    /// Parallel training episodes per trial (`--train-envs`; 1 = the
    /// paper's scalar protocol).
    pub train_envs: usize,
    /// One row per hidden size.
    pub rows: Vec<FpgaDetail>,
}

/// Generate the Figure 6 detail on a workload for the given hidden sizes
/// with the default [`WorkloadOptions`].
pub fn generate(
    workload: Workload,
    hidden_sizes: &[usize],
    trials: usize,
    max_episodes: usize,
    seed: u64,
) -> Figure6 {
    generate_with(
        workload,
        WorkloadOptions::default(),
        hidden_sizes,
        trials,
        max_episodes,
        seed,
        1,
    )
}

/// Generate the Figure 6 detail with explicit workload variant knobs and
/// `train_envs` parallel training episodes per trial.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface one-to-one
pub fn generate_with(
    workload: Workload,
    options: WorkloadOptions,
    hidden_sizes: &[usize],
    trials: usize,
    max_episodes: usize,
    seed: u64,
    train_envs: usize,
) -> Figure6 {
    generate_checkpointed(
        workload,
        options,
        hidden_sizes,
        trials,
        max_episodes,
        seed,
        train_envs,
        None,
    )
    .expect("a sweep without checkpointing cannot fail")
    .expect("a sweep without checkpointing cannot stop early")
}

/// Generate the Figure 6 detail under checkpoint control. Returns `Ok(None)`
/// when the fault-injection stop abandoned the sweep early — resume from
/// the checkpoints to finish it byte-identically.
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface one-to-one
pub fn generate_checkpointed(
    workload: Workload,
    options: WorkloadOptions,
    hidden_sizes: &[usize],
    trials: usize,
    max_episodes: usize,
    seed: u64,
    train_envs: usize,
    ckpt: Option<&CheckpointOptions>,
) -> Result<Option<Figure6>, String> {
    let mut rows = Vec::new();
    let mut stopped_early = false;
    for &h in hidden_sizes {
        let specs: Vec<TrialSpec> = (0..trials)
            .map(|t| {
                TrialSpec::for_workload(
                    workload,
                    Design::Fpga,
                    h,
                    seed ^ ((h as u64) << 20) ^ t as u64,
                )
                .with_options(options)
                .with_max_episodes(max_episodes)
                .with_train_envs(train_envs)
            })
            .collect();
        let outcomes = run_trials_checkpointed(&specs, ckpt)?;
        stopped_early |= outcomes.iter().any(|(_, complete)| !complete);
        let results: Vec<_> = outcomes.into_iter().map(|(r, _)| r).collect();
        let solved: Vec<_> = results.iter().filter(|r| r.training.solved).collect();
        let mean = |f: &dyn Fn(&&crate::runner::TrialResult) -> f64| {
            if solved.is_empty() {
                None
            } else {
                Some(solved.iter().map(f).sum::<f64>() / solved.len() as f64)
            }
        };
        rows.push(FpgaDetail {
            hidden_dim: h,
            trials: results.len(),
            solved_trials: solved.len(),
            predict_seconds: mean(&|r| r.fpga_simulated_seconds.map(|b| b.0).unwrap_or(0.0)),
            seq_train_seconds: mean(&|r| r.fpga_simulated_seconds.map(|b| b.1).unwrap_or(0.0)),
            init_train_seconds: mean(&|r| r.fpga_simulated_seconds.map(|b| b.2).unwrap_or(0.0)),
            total_seconds: mean(&|r| {
                r.fpga_simulated_seconds
                    .map(|b| b.0 + b.1 + b.2)
                    .unwrap_or(0.0)
            }),
            mean_seq_train_calls: mean(&|r| r.training.op_counts.count(OpKind::SeqTrain) as f64),
        });
    }
    if stopped_early {
        return Ok(None);
    }
    Ok(Some(Figure6 {
        workload,
        options,
        train_envs,
        rows,
    }))
}

/// Markdown rendering.
pub fn to_markdown(fig: &Figure6) -> String {
    let rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|r| {
            vec![
                r.hidden_dim.to_string(),
                format!("{}/{}", r.solved_trials, r.trials),
                crate::report::fmt_opt(r.seq_train_seconds),
                crate::report::fmt_opt(r.predict_seconds),
                crate::report::fmt_opt(r.init_train_seconds),
                crate::report::fmt_opt(r.total_seconds),
                crate::report::fmt_opt(r.mean_seq_train_calls),
            ]
        })
        .collect();
    crate::report::markdown_table(
        &[
            "hidden",
            "solved",
            "seq_train s (PL)",
            "predict s (PL)",
            "init_train s (CPU)",
            "total s",
            "seq_train calls",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fig6_has_expected_structure() {
        let fig = generate(Workload::CartPole, &[8], 1, 3, 13);
        assert_eq!(fig.rows.len(), 1);
        assert_eq!(fig.workload, Workload::CartPole);
        let r = &fig.rows[0];
        assert_eq!(r.hidden_dim, 8);
        assert_eq!(r.trials, 1);
        let md = to_markdown(&fig);
        assert!(md.contains("seq_train s (PL)"));
        assert!(md.contains("| 8 |"));
    }

    #[test]
    fn fpga_detail_runs_on_pendulum() {
        let fig = generate(Workload::Pendulum, &[8], 1, 2, 29);
        assert_eq!(fig.workload, Workload::Pendulum);
        assert_eq!(fig.rows.len(), 1);
        assert_eq!(fig.rows[0].trials, 1);
    }
}
