//! Experiment E3 — Figure 5: execution time to complete CartPole-v0, and the
//! §4.4 speedup table (E5).
//!
//! Every (design, hidden size) cell is run for several seeded trials; the
//! reported number is the mean modeled on-device seconds over the trials that
//! completed the task, broken down per operation class exactly as in the
//! paper's stacked bars. Speedups are quoted relative to the DQN baseline at
//! the same hidden size.

use crate::runner::{
    run_trials_checkpointed, summarize_cell, CellSummary, CheckpointOptions, TrialSpec,
};
use elmrl_core::designs::Design;
use elmrl_gym::{SolveCriterion, Workload, WorkloadOptions};
use serde::{Deserialize, Serialize};

/// The Figure 5 reproduction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure5 {
    /// Workload the sweep ran on.
    pub workload: Workload,
    /// Workload variant knobs the sweep used.
    pub options: WorkloadOptions,
    /// The effective completion rule of the sweep (registry default or the
    /// `--solve-threshold` override).
    pub solve_criterion: SolveCriterion,
    /// Parallel training episodes per trial (`--train-envs`; 1 = the
    /// paper's scalar protocol).
    pub train_envs: usize,
    /// The effective RLS chunk cap the OS-ELM trials trained under (the
    /// CLI's `--chunk-cap`, or [`elmrl_core::DEFAULT_CHUNK_CAP`] once
    /// `train_envs > 1` engages the chunked path); `None` when every
    /// update was single-transition. Skipped when absent so pre-existing
    /// artifacts stay byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chunk_cap: Option<usize>,
    /// One summary per (design, hidden size) cell.
    pub cells: Vec<CellSummary>,
    /// Speedup of each non-DQN design relative to DQN at equal hidden size.
    pub speedups_vs_dqn: Vec<SpeedupRow>,
    /// Trials attempted per cell.
    pub trials_per_cell: usize,
    /// Episode budget per trial.
    pub max_episodes: usize,
}

/// One row of the speedup table (E5).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Design label.
    pub design: String,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Mean modeled completion seconds for the design.
    pub seconds: Option<f64>,
    /// Mean modeled completion seconds for DQN at the same width.
    pub dqn_seconds: Option<f64>,
    /// `dqn_seconds / seconds` when both are available.
    pub speedup: Option<f64>,
}

/// Generate the Figure 5 sweep on a workload with the default
/// [`WorkloadOptions`].
pub fn generate(
    workload: Workload,
    hidden_sizes: &[usize],
    designs: &[Design],
    trials_per_cell: usize,
    max_episodes: usize,
    seed: u64,
) -> Figure5 {
    generate_with(
        workload,
        WorkloadOptions::default(),
        hidden_sizes,
        designs,
        trials_per_cell,
        max_episodes,
        seed,
        1,
    )
}

/// Generate the Figure 5 sweep with explicit workload variant knobs (the
/// CLI's `--torque-levels` / `--solve-threshold` axes) and `train_envs`
/// parallel training episodes per trial (1 = the paper's scalar protocol).
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface one-to-one
pub fn generate_with(
    workload: Workload,
    options: WorkloadOptions,
    hidden_sizes: &[usize],
    designs: &[Design],
    trials_per_cell: usize,
    max_episodes: usize,
    seed: u64,
    train_envs: usize,
) -> Figure5 {
    generate_checkpointed(
        workload,
        options,
        hidden_sizes,
        designs,
        trials_per_cell,
        max_episodes,
        seed,
        train_envs,
        None,
        None,
    )
    .expect("a sweep without checkpointing cannot fail")
    .expect("a sweep without checkpointing cannot stop early")
}

/// Generate the Figure 5 sweep under checkpoint control: every trial writes
/// its latest [`elmrl_core::checkpoint::RunCheckpoint`] into the checkpoint
/// directory and resumes from it when asked. Returns `Ok(None)` when the
/// fault-injection `stop_after` abandoned the sweep mid-run — the
/// checkpoints are on disk and a `resume: true` rerun finishes the figure
/// byte-identically to a run that never stopped. `chunk_cap` is the CLI's
/// `--chunk-cap` RLS batch-width cap (`None` defers to
/// [`elmrl_core::DEFAULT_CHUNK_CAP`]).
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface one-to-one
pub fn generate_checkpointed(
    workload: Workload,
    options: WorkloadOptions,
    hidden_sizes: &[usize],
    designs: &[Design],
    trials_per_cell: usize,
    max_episodes: usize,
    seed: u64,
    train_envs: usize,
    chunk_cap: Option<usize>,
    ckpt: Option<&CheckpointOptions>,
) -> Result<Option<Figure5>, String> {
    let solve_criterion = workload.spec_with(options).solve_criterion;
    let mut cells = Vec::new();
    let mut stopped_early = false;
    let mut effective_chunk_cap = None;
    for &h in hidden_sizes {
        for &d in designs {
            let specs: Vec<TrialSpec> = (0..trials_per_cell)
                .map(|t| {
                    TrialSpec::for_workload(
                        workload,
                        d,
                        h,
                        seed ^ ((h as u64) << 16) ^ ((t as u64) << 4),
                    )
                    .with_options(options)
                    .with_max_episodes(max_episodes)
                    .with_train_envs(train_envs)
                    .with_chunk_cap(chunk_cap)
                })
                .collect();
            let outcomes = run_trials_checkpointed(&specs, ckpt)?;
            stopped_early |= outcomes.iter().any(|(_, complete)| !complete);
            let results: Vec<_> = outcomes.into_iter().map(|(r, _)| r).collect();
            effective_chunk_cap =
                effective_chunk_cap.or_else(|| results.iter().find_map(|r| r.spec.chunk_cap));
            cells.push(summarize_cell(workload, d, h, &results));
        }
    }
    if stopped_early {
        return Ok(None);
    }

    let speedups = cells
        .iter()
        .filter(|c| c.design != Design::Dqn)
        .map(|c| {
            let dqn = cells
                .iter()
                .find(|x| x.design == Design::Dqn && x.hidden_dim == c.hidden_dim)
                .and_then(|x| x.mean_time_to_complete);
            let speedup = match (dqn, c.mean_time_to_complete) {
                (Some(d), Some(s)) if s > 0.0 => Some(d / s),
                _ => None,
            };
            SpeedupRow {
                design: c.design.label().to_string(),
                hidden_dim: c.hidden_dim,
                seconds: c.mean_time_to_complete,
                dqn_seconds: dqn,
                speedup,
            }
        })
        .collect();

    Ok(Some(Figure5 {
        workload,
        options,
        solve_criterion,
        train_envs,
        chunk_cap: effective_chunk_cap,
        cells,
        speedups_vs_dqn: speedups,
        trials_per_cell,
        max_episodes,
    }))
}

/// Markdown rendering of the per-cell completion times with the operation
/// breakdown (the stacked-bar contents).
pub fn to_markdown(fig: &Figure5) -> String {
    let rows: Vec<Vec<String>> = fig
        .cells
        .iter()
        .map(|c| {
            let breakdown = c
                .mean_per_op_seconds
                .iter()
                .map(|(k, v)| format!("{k}={v:.3}"))
                .collect::<Vec<_>>()
                .join(", ");
            vec![
                c.design.label().to_string(),
                c.hidden_dim.to_string(),
                format!("{}/{}", c.solved_trials, c.trials),
                crate::report::fmt_opt(c.mean_time_to_complete),
                crate::report::fmt_opt(c.mean_wall_seconds),
                crate::report::fmt_opt(c.mean_episodes_to_solve),
                breakdown,
            ]
        })
        .collect();
    crate::report::markdown_table(
        &[
            "design",
            "hidden",
            "solved",
            "modeled s to complete",
            "host wall s",
            "episodes",
            "per-op breakdown (modeled s)",
        ],
        &rows,
    )
}

/// Markdown rendering of the speedup table.
pub fn speedups_to_markdown(fig: &Figure5) -> String {
    let rows: Vec<Vec<String>> = fig
        .speedups_vs_dqn
        .iter()
        .map(|s| {
            vec![
                s.design.clone(),
                s.hidden_dim.to_string(),
                crate::report::fmt_opt(s.seconds),
                crate::report::fmt_opt(s.dqn_seconds),
                s.speedup
                    .map(|v| format!("{v:.2}x"))
                    .unwrap_or_else(|| "—".into()),
            ]
        })
        .collect();
    crate::report::markdown_table(
        &[
            "design",
            "hidden",
            "modeled s",
            "DQN modeled s",
            "speedup vs DQN",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_cells_and_speedup_rows() {
        let designs = [Design::OsElmL2Lipschitz, Design::Dqn, Design::Fpga];
        let fig = generate(Workload::CartPole, &[8], &designs, 1, 3, 11);
        assert_eq!(fig.cells.len(), 3);
        assert_eq!(fig.speedups_vs_dqn.len(), 2);
        let md = to_markdown(&fig);
        assert!(md.contains("FPGA"));
        assert!(md.contains("DQN"));
        let sp = speedups_to_markdown(&fig);
        assert!(sp.contains("speedup vs DQN"));
    }

    #[test]
    fn sweep_records_train_envs_and_the_effective_criterion() {
        let fig = generate(Workload::CartPole, &[8], &[Design::OsElmL2], 1, 2, 3);
        assert_eq!(fig.train_envs, 1);
        assert_eq!(
            fig.solve_criterion,
            elmrl_gym::SolveCriterion::EpisodeReturn { threshold: 195.0 }
        );
        let fig = generate_with(
            Workload::CartPole,
            WorkloadOptions {
                solve_threshold: Some(150.0),
                ..WorkloadOptions::default()
            },
            &[8],
            &[Design::OsElmL2],
            1,
            2,
            3,
            4,
        );
        assert_eq!(fig.train_envs, 4);
        assert_eq!(
            fig.solve_criterion,
            elmrl_gym::SolveCriterion::EpisodeReturn { threshold: 150.0 }
        );
        assert_eq!(fig.options.solve_threshold, Some(150.0));
    }

    #[test]
    fn sweep_runs_on_every_registered_workload() {
        let designs = [Design::OsElmL2Lipschitz, Design::Dqn];
        for workload in Workload::all() {
            let fig = generate(workload, &[8], &designs, 1, 2, 23);
            assert_eq!(fig.workload, workload);
            assert_eq!(fig.cells.len(), 2);
            assert!(fig.cells.iter().all(|c| c.workload == workload));
        }
    }
}
