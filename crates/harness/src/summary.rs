//! Cross-environment result aggregation (the design × environment matrix the
//! paper's §5 extension table gestures at).
//!
//! [`collect`] reads every `results/<workload-slug>/fig5.json` previously
//! written by the `fig5` binary and folds the per-cell summaries into one
//! row per (design, workload) pair: trials, solve rate and mean modeled
//! time-to-complete averaged over the hidden sizes that solved. Workloads
//! whose `fig5.json` is missing are listed as skipped rather than failing
//! the aggregation, so partial sweeps still summarise.
//!
//! [`collect_population`] does the same for the population engine's
//! artefacts: every `results/<workload-slug>/population.json` written by the
//! `population` binary becomes one row of a cross-workload population table
//! (design × environment, with solve rate and episodes-to-solve quantiles)
//! — the ROADMAP's "population-level reporting" item.

use crate::fig5::Figure5;
use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_population::{PopulationReport, QuantileSummary};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One aggregated (design, workload) cell of the summary matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SummaryCell {
    /// Workload the cell aggregates.
    pub workload: Workload,
    /// Design label.
    pub design: String,
    /// Trials attempted across all hidden sizes.
    pub trials: usize,
    /// Trials that solved the task.
    pub solved_trials: usize,
    /// `solved_trials / trials`.
    pub solve_rate: f64,
    /// Mean modeled seconds to complete, averaged over the hidden-size cells
    /// that have a value (`None` when nothing solved).
    pub mean_time_to_complete: Option<f64>,
    /// Mean episodes to solve, averaged the same way.
    pub mean_episodes_to_solve: Option<f64>,
}

/// The full cross-environment summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Workloads whose `fig5.json` was found and aggregated.
    pub workloads: Vec<Workload>,
    /// Workload slugs that had no `fig5.json` under the results root.
    pub missing: Vec<String>,
    /// Workload slugs whose `fig5.json` exists but could not be parsed
    /// (typically written by an older version of the `fig5` binary) —
    /// skipped rather than failing the whole aggregation.
    pub unreadable: Vec<String>,
    /// One cell per (design, aggregated workload).
    pub cells: Vec<SummaryCell>,
}

/// Aggregate one deserialized [`Figure5`] into per-design summary cells.
fn aggregate(fig: &Figure5) -> Vec<SummaryCell> {
    Design::all_designs()
        .iter()
        .filter_map(|design| {
            let cells: Vec<_> = fig.cells.iter().filter(|c| c.design == *design).collect();
            if cells.is_empty() {
                return None;
            }
            let trials: usize = cells.iter().map(|c| c.trials).sum();
            let solved: usize = cells.iter().map(|c| c.solved_trials).sum();
            let mean = |values: Vec<f64>| {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            };
            Some(SummaryCell {
                workload: fig.workload,
                design: design.label().to_string(),
                trials,
                solved_trials: solved,
                solve_rate: if trials > 0 {
                    solved as f64 / trials as f64
                } else {
                    0.0
                },
                mean_time_to_complete: mean(
                    cells
                        .iter()
                        .filter_map(|c| c.mean_time_to_complete)
                        .collect(),
                ),
                mean_episodes_to_solve: mean(
                    cells
                        .iter()
                        .filter_map(|c| c.mean_episodes_to_solve)
                        .collect(),
                ),
            })
        })
        .collect()
}

/// Read every `<results_root>/<slug>/fig5.json` and build the summary.
pub fn collect(results_root: &Path) -> std::io::Result<Summary> {
    let mut summary = Summary {
        workloads: Vec::new(),
        missing: Vec::new(),
        unreadable: Vec::new(),
        cells: Vec::new(),
    };
    for workload in Workload::all() {
        let path = results_root.join(workload.slug()).join("fig5.json");
        if !path.exists() {
            summary.missing.push(workload.slug().to_string());
            continue;
        }
        let json = std::fs::read_to_string(&path)?;
        // A parse failure usually means the artefact predates the current
        // Figure5 schema; skip that workload instead of failing the whole
        // aggregation so the remaining fig5 runs still summarise.
        match serde_json::from_str::<Figure5>(&json) {
            Ok(fig) => {
                summary.workloads.push(workload);
                summary.cells.extend(aggregate(&fig));
            }
            Err(_) => summary.unreadable.push(workload.slug().to_string()),
        }
    }
    Ok(summary)
}

/// One row of the cross-workload population table: the aggregate outcome of
/// one `population` run (K replicas of one design on one workload).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopulationCell {
    /// Workload the population ran on.
    pub workload: Workload,
    /// Replicated design label.
    pub design: String,
    /// Hidden width of every replica.
    pub hidden_dim: usize,
    /// Population size K.
    pub population: usize,
    /// Replicas that met the solve criterion.
    pub solved: usize,
    /// `solved / population`.
    pub solve_rate: f64,
    /// Episodes-to-solve quantiles over the solved replicas.
    pub episodes_to_solve: QuantileSummary,
    /// Mean greedy-evaluation return over all replicas, if evaluated.
    pub mean_greedy_eval_return: Option<f64>,
}

/// The cross-workload population summary (design × environment).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopulationSummary {
    /// Workloads whose `population.json` was found and aggregated.
    pub workloads: Vec<Workload>,
    /// Workload slugs that had no `population.json` under the results root.
    pub missing: Vec<String>,
    /// Workload slugs whose `population.json` exists but does not parse
    /// (older schema) — skipped rather than fatal.
    pub unreadable: Vec<String>,
    /// One cell per aggregated workload (a `population.json` holds one
    /// design; rerunning the binary with another `--design` overwrites it).
    pub cells: Vec<PopulationCell>,
}

/// Read every `<results_root>/<slug>/population.json` and build the
/// cross-workload population table.
pub fn collect_population(results_root: &Path) -> std::io::Result<PopulationSummary> {
    let mut summary = PopulationSummary {
        workloads: Vec::new(),
        missing: Vec::new(),
        unreadable: Vec::new(),
        cells: Vec::new(),
    };
    for workload in Workload::all() {
        let path = results_root.join(workload.slug()).join("population.json");
        if !path.exists() {
            summary.missing.push(workload.slug().to_string());
            continue;
        }
        let json = std::fs::read_to_string(&path)?;
        match serde_json::from_str::<PopulationReport>(&json) {
            Ok(report) => {
                summary.workloads.push(workload);
                summary.cells.push(PopulationCell {
                    workload,
                    design: report.design.clone(),
                    hidden_dim: report.hidden_dim,
                    population: report.population,
                    solved: report.solved,
                    solve_rate: report.solve_rate,
                    episodes_to_solve: report.episodes_to_solve.clone(),
                    mean_greedy_eval_return: report.mean_greedy_eval_return,
                });
            }
            Err(_) => summary.unreadable.push(workload.slug().to_string()),
        }
    }
    Ok(summary)
}

/// Markdown rendering of the population table: one row per (workload,
/// design) population with solve rate and episode quantiles.
pub fn population_to_markdown(summary: &PopulationSummary) -> String {
    let headers = [
        "workload",
        "design",
        "hidden",
        "K",
        "solved",
        "p25",
        "p50",
        "p75",
        "p90",
        "eval return",
    ];
    let rows: Vec<Vec<String>> = summary
        .cells
        .iter()
        .map(|cell| {
            let q = &cell.episodes_to_solve;
            vec![
                cell.workload.to_string(),
                cell.design.clone(),
                cell.hidden_dim.to_string(),
                cell.population.to_string(),
                format!("{}/{}", cell.solved, cell.population),
                crate::report::fmt_opt(q.p25),
                crate::report::fmt_opt(q.p50),
                crate::report::fmt_opt(q.p75),
                crate::report::fmt_opt(q.p90),
                crate::report::fmt_opt(cell.mean_greedy_eval_return),
            ]
        })
        .collect();
    crate::report::markdown_table(&headers, &rows)
}

/// Markdown rendering: one row per design, one column pair per workload
/// (`modeled s` and `solve rate`), `-` where a workload was not aggregated.
pub fn to_markdown(summary: &Summary) -> String {
    let mut headers: Vec<String> = vec!["design".into()];
    for w in &summary.workloads {
        headers.push(format!("{w} modeled s"));
        headers.push(format!("{w} solve rate"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut designs: Vec<&str> = Vec::new();
    for cell in &summary.cells {
        if !designs.contains(&cell.design.as_str()) {
            designs.push(&cell.design);
        }
    }
    let rows: Vec<Vec<String>> = designs
        .iter()
        .map(|design| {
            let mut row = vec![design.to_string()];
            for w in &summary.workloads {
                let cell = summary
                    .cells
                    .iter()
                    .find(|c| c.design == *design && c.workload == *w);
                row.push(crate::report::fmt_opt(
                    cell.and_then(|c| c.mean_time_to_complete),
                ));
                row.push(match cell {
                    Some(c) => format!("{}/{}", c.solved_trials, c.trials),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    crate::report::markdown_table(&header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig5;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("elmrl_summary_{tag}_{}", std::process::id()))
    }

    #[test]
    fn collects_written_fig5_results_and_reports_missing_ones() {
        let root = tmp_root("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        // Write a tiny real fig5.json for two workloads only.
        for workload in [Workload::CartPole, Workload::Acrobot] {
            let fig = fig5::generate(
                workload,
                &[8],
                &[Design::OsElmL2Lipschitz, Design::Dqn],
                1,
                2,
                5,
            );
            crate::report::write_json(&root.join(workload.slug()), "fig5.json", &fig).unwrap();
        }

        // A stale artefact from an older schema must be skipped, not fatal.
        crate::report::write_text(
            &root.join("pendulum"),
            "fig5.json",
            "{\"workload\": \"Pendulum\"}",
        )
        .unwrap();

        let summary = collect(&root).unwrap();
        assert_eq!(
            summary.workloads,
            vec![Workload::CartPole, Workload::Acrobot]
        );
        assert_eq!(summary.missing, vec!["mountain-car"]);
        assert_eq!(summary.unreadable, vec!["pendulum"]);
        // 2 designs × 2 aggregated workloads.
        assert_eq!(summary.cells.len(), 4);
        for cell in &summary.cells {
            assert_eq!(cell.trials, 1);
            assert!((0.0..=1.0).contains(&cell.solve_rate));
        }

        let md = to_markdown(&summary);
        assert!(md.contains("design"));
        assert!(md.contains("cart-pole modeled s"));
        assert!(md.contains("acrobot solve rate"));
        assert!(md.contains("OS-ELM-L2-Lipschitz"));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn collects_population_reports_into_the_cross_workload_table() {
        use elmrl_population::{PopulationConfig, PopulationRunner};

        let root = tmp_root("population");
        let _ = std::fs::remove_dir_all(&root);
        for (workload, design) in [
            (Workload::CartPole, Design::OsElmL2Lipschitz),
            (Workload::MountainCar, Design::Dqn),
        ] {
            let mut config = PopulationConfig::new(workload, design, 8, 3);
            config.max_episodes = 2;
            config.eval_episodes = 1;
            let report = PopulationRunner::new(config).run();
            crate::report::write_json(&root.join(workload.slug()), "population.json", &report)
                .unwrap();
        }
        // A stale artefact must be skipped, not fatal.
        crate::report::write_text(&root.join("pendulum"), "population.json", "{\"old\": true}")
            .unwrap();

        let summary = collect_population(&root).unwrap();
        assert_eq!(
            summary.workloads,
            vec![Workload::CartPole, Workload::MountainCar]
        );
        assert_eq!(summary.missing, vec!["acrobot"]);
        assert_eq!(summary.unreadable, vec!["pendulum"]);
        assert_eq!(summary.cells.len(), 2);
        assert_eq!(summary.cells[0].design, "OS-ELM-L2-Lipschitz");
        assert_eq!(summary.cells[0].population, 3);
        assert!((0.0..=1.0).contains(&summary.cells[0].solve_rate));

        let md = population_to_markdown(&summary);
        assert!(md.contains("workload"));
        assert!(md.contains("OS-ELM-L2-Lipschitz"));
        assert!(md.contains("DQN"));
        assert!(md.contains("3/3") || md.contains("/3"));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_results_root_summarises_to_nothing() {
        let root = tmp_root("empty");
        let _ = std::fs::remove_dir_all(&root);
        let summary = collect(&root).unwrap();
        assert!(summary.workloads.is_empty());
        assert!(summary.cells.is_empty());
        assert!(summary.unreadable.is_empty());
        assert_eq!(summary.missing.len(), Workload::all().len());
    }
}
