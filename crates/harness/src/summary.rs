//! Cross-environment result aggregation (the design × environment matrix the
//! paper's §5 extension table gestures at).
//!
//! [`collect`] reads every `results/<workload-slug>/fig5.json` previously
//! written by the `fig5` binary and folds the per-cell summaries into one
//! row per (design, workload) pair: trials, solve rate and mean modeled
//! time-to-complete averaged over the hidden sizes that solved. Workloads
//! whose `fig5.json` is missing are listed as skipped rather than failing
//! the aggregation, so partial sweeps still summarise.
//!
//! [`collect_population`] does the same for the population engine's
//! artefacts: every `results/<workload-slug>/population.json` written by the
//! `population` binary becomes one row of a cross-workload population table
//! (design × environment, with solve rate and episodes-to-solve quantiles)
//! — the ROADMAP's "population-level reporting" item.

use crate::fig5::Figure5;
use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_population::{PopulationReport, QuantileSummary};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One aggregated (design, workload) cell of the summary matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SummaryCell {
    /// Workload the cell aggregates.
    pub workload: Workload,
    /// Design label.
    pub design: String,
    /// Trials attempted across all hidden sizes.
    pub trials: usize,
    /// Trials that solved the task.
    pub solved_trials: usize,
    /// `solved_trials / trials`.
    pub solve_rate: f64,
    /// Mean modeled seconds to complete, averaged over the hidden-size cells
    /// that have a value (`None` when nothing solved).
    pub mean_time_to_complete: Option<f64>,
    /// Mean episodes to solve, averaged the same way.
    pub mean_episodes_to_solve: Option<f64>,
}

/// The full cross-environment summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Workloads whose `fig5.json` was found and aggregated.
    pub workloads: Vec<Workload>,
    /// Workload slugs that had no `fig5.json` under the results root.
    pub missing: Vec<String>,
    /// Workload slugs whose `fig5.json` exists but could not be parsed
    /// (typically written by an older version of the `fig5` binary) —
    /// skipped rather than failing the whole aggregation.
    pub unreadable: Vec<String>,
    /// One cell per (design, aggregated workload).
    pub cells: Vec<SummaryCell>,
}

/// Aggregate one deserialized [`Figure5`] into per-design summary cells.
fn aggregate(fig: &Figure5) -> Vec<SummaryCell> {
    Design::all_designs()
        .iter()
        .filter_map(|design| {
            let cells: Vec<_> = fig.cells.iter().filter(|c| c.design == *design).collect();
            if cells.is_empty() {
                return None;
            }
            let trials: usize = cells.iter().map(|c| c.trials).sum();
            let solved: usize = cells.iter().map(|c| c.solved_trials).sum();
            let mean = |values: Vec<f64>| {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            };
            Some(SummaryCell {
                workload: fig.workload,
                design: design.label().to_string(),
                trials,
                solved_trials: solved,
                solve_rate: if trials > 0 {
                    solved as f64 / trials as f64
                } else {
                    0.0
                },
                mean_time_to_complete: mean(
                    cells
                        .iter()
                        .filter_map(|c| c.mean_time_to_complete)
                        .collect(),
                ),
                mean_episodes_to_solve: mean(
                    cells
                        .iter()
                        .filter_map(|c| c.mean_episodes_to_solve)
                        .collect(),
                ),
            })
        })
        .collect()
}

/// Read every `<results_root>/<slug>/fig5.json` and build the summary.
pub fn collect(results_root: &Path) -> std::io::Result<Summary> {
    let mut summary = Summary {
        workloads: Vec::new(),
        missing: Vec::new(),
        unreadable: Vec::new(),
        cells: Vec::new(),
    };
    for workload in Workload::all() {
        let path = results_root.join(workload.slug()).join("fig5.json");
        if !path.exists() {
            summary.missing.push(workload.slug().to_string());
            continue;
        }
        let json = std::fs::read_to_string(&path)?;
        // A parse failure usually means the artefact predates the current
        // Figure5 schema; skip that workload instead of failing the whole
        // aggregation so the remaining fig5 runs still summarise.
        match serde_json::from_str::<Figure5>(&json) {
            Ok(fig) => {
                summary.workloads.push(workload);
                summary.cells.extend(aggregate(&fig));
            }
            Err(_) => summary.unreadable.push(workload.slug().to_string()),
        }
    }
    Ok(summary)
}

/// One checkpoint of a population's convergence curve: the distribution of
/// per-replica returns at a fixed episode index, over the replicas that ran
/// at least that many episodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Episode index (1-based: "after `episode` episodes").
    pub episode: usize,
    /// Replicas that ran at least `episode` episodes.
    pub replicas: usize,
    /// Mean return of episode `episode` over those replicas.
    pub mean_return: f64,
    /// Median return of episode `episode` over those replicas.
    pub median_return: f64,
    /// Fraction of the whole population already solved before or at this
    /// episode.
    pub solved_by: f64,
}

/// Episode checkpoints the convergence table samples (clipped to the
/// episodes a population actually ran).
const CONVERGENCE_CHECKPOINTS: [usize; 10] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000];

/// Fold the per-replica learning curves of one population report into a
/// convergence table: at each checkpoint episode, the mean/median return
/// across the replicas still running and the fraction of the population
/// already solved. Empty when the report predates per-replica curves.
pub fn convergence_table(report: &PopulationReport) -> Vec<ConvergencePoint> {
    let longest = report
        .replicas
        .iter()
        .map(|r| r.returns.len())
        .max()
        .unwrap_or(0);
    CONVERGENCE_CHECKPOINTS
        .iter()
        .copied()
        .filter(|&e| e <= longest)
        .map(|episode| {
            let mut at_episode: Vec<f64> = report
                .replicas
                .iter()
                .filter_map(|r| r.returns.get(episode - 1).copied())
                .collect();
            at_episode.sort_by(|a, b| a.partial_cmp(b).expect("finite returns"));
            let n = at_episode.len();
            let solved_by = report
                .replicas
                .iter()
                .filter(|r| r.solved_at_episode.is_some_and(|s| s < episode))
                .count() as f64
                / report.replicas.len().max(1) as f64;
            ConvergencePoint {
                episode,
                replicas: n,
                mean_return: at_episode.iter().sum::<f64>() / n.max(1) as f64,
                median_return: at_episode[(n - 1) / 2],
                solved_by,
            }
        })
        .collect()
}

/// One row of the cross-workload population table: the aggregate outcome of
/// one `population` run (K replicas of one design on one workload).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopulationCell {
    /// Workload the population ran on.
    pub workload: Workload,
    /// Replicated design label.
    pub design: String,
    /// Hidden width of every replica.
    pub hidden_dim: usize,
    /// Population size K.
    pub population: usize,
    /// Parallel training episodes per replica the run used.
    pub train_envs: usize,
    /// Replicas that met the solve criterion.
    pub solved: usize,
    /// `solved / population`.
    pub solve_rate: f64,
    /// Episodes-to-solve quantiles over the solved replicas.
    pub episodes_to_solve: QuantileSummary,
    /// Mean greedy-evaluation return over all replicas, if evaluated.
    pub mean_greedy_eval_return: Option<f64>,
    /// Convergence checkpoints folded from the per-replica learning curves.
    pub convergence: Vec<ConvergencePoint>,
}

/// The cross-workload population summary (design × environment).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopulationSummary {
    /// Workloads whose `population.json` was found and aggregated.
    pub workloads: Vec<Workload>,
    /// Workload slugs that had no `population.json` under the results root.
    pub missing: Vec<String>,
    /// Workload slugs whose `population.json` exists but does not parse
    /// (older schema) — skipped rather than fatal.
    pub unreadable: Vec<String>,
    /// One cell per aggregated workload (a `population.json` holds one
    /// design; rerunning the binary with another `--design` overwrites it).
    pub cells: Vec<PopulationCell>,
}

/// Read every `<results_root>/<slug>/population.json` and build the
/// cross-workload population table.
pub fn collect_population(results_root: &Path) -> std::io::Result<PopulationSummary> {
    let mut summary = PopulationSummary {
        workloads: Vec::new(),
        missing: Vec::new(),
        unreadable: Vec::new(),
        cells: Vec::new(),
    };
    for workload in Workload::all() {
        let path = results_root.join(workload.slug()).join("population.json");
        if !path.exists() {
            summary.missing.push(workload.slug().to_string());
            continue;
        }
        let json = std::fs::read_to_string(&path)?;
        match serde_json::from_str::<PopulationReport>(&json) {
            Ok(report) => {
                summary.workloads.push(workload);
                summary.cells.push(PopulationCell {
                    workload,
                    design: report.design.clone(),
                    hidden_dim: report.hidden_dim,
                    population: report.population,
                    train_envs: report.train_envs,
                    solved: report.solved,
                    solve_rate: report.solve_rate,
                    episodes_to_solve: report.episodes_to_solve.clone(),
                    mean_greedy_eval_return: report.mean_greedy_eval_return,
                    convergence: convergence_table(&report),
                });
            }
            Err(_) => summary.unreadable.push(workload.slug().to_string()),
        }
    }
    Ok(summary)
}

/// Markdown rendering of the population table: one row per (workload,
/// design) population with solve rate and episode quantiles, followed by
/// one convergence table per population (mean/median per-episode return
/// across replicas at fixed checkpoints — the population analogue of a
/// Figure 4 learning curve).
pub fn population_to_markdown(summary: &PopulationSummary) -> String {
    let headers = [
        "workload",
        "design",
        "hidden",
        "K",
        "E",
        "solved",
        "p25",
        "p50",
        "p75",
        "p90",
        "eval return",
    ];
    let rows: Vec<Vec<String>> = summary
        .cells
        .iter()
        .map(|cell| {
            let q = &cell.episodes_to_solve;
            vec![
                cell.workload.to_string(),
                cell.design.clone(),
                cell.hidden_dim.to_string(),
                cell.population.to_string(),
                cell.train_envs.to_string(),
                format!("{}/{}", cell.solved, cell.population),
                crate::report::fmt_opt(q.p25),
                crate::report::fmt_opt(q.p50),
                crate::report::fmt_opt(q.p75),
                crate::report::fmt_opt(q.p90),
                crate::report::fmt_opt(cell.mean_greedy_eval_return),
            ]
        })
        .collect();
    let mut out = crate::report::markdown_table(&headers, &rows);
    for cell in &summary.cells {
        if cell.convergence.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "\n\n### Convergence — {} × {} on {}\n\n",
            cell.population, cell.design, cell.workload
        ));
        let rows: Vec<Vec<String>> = cell
            .convergence
            .iter()
            .map(|p| {
                vec![
                    p.episode.to_string(),
                    p.replicas.to_string(),
                    format!("{:.1}", p.mean_return),
                    format!("{:.1}", p.median_return),
                    format!("{:.2}", p.solved_by),
                ]
            })
            .collect();
        out.push_str(&crate::report::markdown_table(
            &[
                "episode",
                "replicas running",
                "mean return",
                "median return",
                "solved by",
            ],
            &rows,
        ));
    }
    out
}

/// One row of the cross-workload stabilisation-ablation table: an A1
/// configuration's outcome on one workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationCell {
    /// Workload the ablation ran on.
    pub workload: Workload,
    /// Whether Q-value clipping was enabled.
    pub clipping: bool,
    /// Whether the random-update rule gated sequential training.
    pub random_update: bool,
    /// Whether the configuration solved the task.
    pub solved: bool,
    /// Episodes run.
    pub episodes_run: usize,
    /// Final moving-average return.
    pub final_average: f64,
}

/// The cross-workload A1 fold: which §3 stabilisation techniques matter on
/// which workload (the ROADMAP's "multi-env ablation tables").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationSummary {
    /// Workloads whose `ablation_a1.json` was found and aggregated.
    pub workloads: Vec<Workload>,
    /// Workload slugs that had no `ablation_a1.json` under the results root.
    pub missing: Vec<String>,
    /// Workload slugs whose `ablation_a1.json` does not parse — skipped.
    pub unreadable: Vec<String>,
    /// One cell per (workload, A1 configuration).
    pub cells: Vec<AblationCell>,
}

/// Read every `<results_root>/<slug>/ablation_a1.json` (as written by
/// `ablation`, e.g. under `--workload all`) and fold them into the
/// cross-workload stabilisation table.
pub fn collect_ablation(results_root: &Path) -> std::io::Result<AblationSummary> {
    let mut summary = AblationSummary {
        workloads: Vec::new(),
        missing: Vec::new(),
        unreadable: Vec::new(),
        cells: Vec::new(),
    };
    for workload in Workload::all() {
        let path = results_root.join(workload.slug()).join("ablation_a1.json");
        if !path.exists() {
            summary.missing.push(workload.slug().to_string());
            continue;
        }
        let json = std::fs::read_to_string(&path)?;
        match serde_json::from_str::<Vec<crate::ablation::StabilisationAblationRow>>(&json) {
            Ok(rows) => {
                summary.workloads.push(workload);
                summary.cells.extend(rows.iter().map(|r| AblationCell {
                    workload,
                    clipping: r.clipping,
                    random_update: r.random_update,
                    solved: r.solved,
                    episodes_run: r.episodes_run,
                    final_average: r.final_average,
                }));
            }
            Err(_) => summary.unreadable.push(workload.slug().to_string()),
        }
    }
    Ok(summary)
}

/// Markdown rendering of the ablation fold: one row per A1 configuration,
/// one column pair per workload (`solved` and `final avg`), so which
/// technique is load-bearing where is readable at a glance.
pub fn ablation_to_markdown(summary: &AblationSummary) -> String {
    let mut headers: Vec<String> = vec!["clipping".into(), "random update".into()];
    for w in &summary.workloads {
        headers.push(format!("{w} solved"));
        headers.push(format!("{w} final avg"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let combos = [(true, true), (true, false), (false, true), (false, false)];
    let rows: Vec<Vec<String>> = combos
        .iter()
        .map(|&(clipping, random_update)| {
            let mut row = vec![clipping.to_string(), random_update.to_string()];
            for w in &summary.workloads {
                let cell = summary.cells.iter().find(|c| {
                    c.workload == *w && c.clipping == clipping && c.random_update == random_update
                });
                row.push(match cell {
                    Some(c) => c.solved.to_string(),
                    None => "-".into(),
                });
                row.push(match cell {
                    Some(c) => format!("{:.1}", c.final_average),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    crate::report::markdown_table(&header_refs, &rows)
}

/// Markdown rendering: one row per design, one column pair per workload
/// (`modeled s` and `solve rate`), `-` where a workload was not aggregated.
pub fn to_markdown(summary: &Summary) -> String {
    let mut headers: Vec<String> = vec!["design".into()];
    for w in &summary.workloads {
        headers.push(format!("{w} modeled s"));
        headers.push(format!("{w} solve rate"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut designs: Vec<&str> = Vec::new();
    for cell in &summary.cells {
        if !designs.contains(&cell.design.as_str()) {
            designs.push(&cell.design);
        }
    }
    let rows: Vec<Vec<String>> = designs
        .iter()
        .map(|design| {
            let mut row = vec![design.to_string()];
            for w in &summary.workloads {
                let cell = summary
                    .cells
                    .iter()
                    .find(|c| c.design == *design && c.workload == *w);
                row.push(crate::report::fmt_opt(
                    cell.and_then(|c| c.mean_time_to_complete),
                ));
                row.push(match cell {
                    Some(c) => format!("{}/{}", c.solved_trials, c.trials),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    crate::report::markdown_table(&header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig5;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("elmrl_summary_{tag}_{}", std::process::id()))
    }

    #[test]
    fn collects_written_fig5_results_and_reports_missing_ones() {
        let root = tmp_root("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        // Write a tiny real fig5.json for two workloads only.
        for workload in [Workload::CartPole, Workload::Acrobot] {
            let fig = fig5::generate(
                workload,
                &[8],
                &[Design::OsElmL2Lipschitz, Design::Dqn],
                1,
                2,
                5,
            );
            crate::report::write_json(&root.join(workload.slug()), "fig5.json", &fig).unwrap();
        }

        // A stale artefact from an older schema must be skipped, not fatal.
        crate::report::write_text(
            &root.join("pendulum"),
            "fig5.json",
            "{\"workload\": \"Pendulum\"}",
        )
        .unwrap();

        let summary = collect(&root).unwrap();
        assert_eq!(
            summary.workloads,
            vec![Workload::CartPole, Workload::Acrobot]
        );
        assert_eq!(summary.missing, vec!["mountain-car", "high-dim"]);
        assert_eq!(summary.unreadable, vec!["pendulum"]);
        // 2 designs × 2 aggregated workloads.
        assert_eq!(summary.cells.len(), 4);
        for cell in &summary.cells {
            assert_eq!(cell.trials, 1);
            assert!((0.0..=1.0).contains(&cell.solve_rate));
        }

        let md = to_markdown(&summary);
        assert!(md.contains("design"));
        assert!(md.contains("cart-pole modeled s"));
        assert!(md.contains("acrobot solve rate"));
        assert!(md.contains("OS-ELM-L2-Lipschitz"));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn collects_population_reports_into_the_cross_workload_table() {
        use elmrl_population::{PopulationConfig, PopulationRunner};

        let root = tmp_root("population");
        let _ = std::fs::remove_dir_all(&root);
        for (workload, design) in [
            (Workload::CartPole, Design::OsElmL2Lipschitz),
            (Workload::MountainCar, Design::Dqn),
        ] {
            let mut config = PopulationConfig::new(workload, design, 8, 3);
            config.max_episodes = 2;
            config.eval_episodes = 1;
            let report = PopulationRunner::new(config).run();
            crate::report::write_json(&root.join(workload.slug()), "population.json", &report)
                .unwrap();
        }
        // A stale artefact must be skipped, not fatal.
        crate::report::write_text(&root.join("pendulum"), "population.json", "{\"old\": true}")
            .unwrap();

        let summary = collect_population(&root).unwrap();
        assert_eq!(
            summary.workloads,
            vec![Workload::CartPole, Workload::MountainCar]
        );
        assert_eq!(summary.missing, vec!["acrobot", "high-dim"]);
        assert_eq!(summary.unreadable, vec!["pendulum"]);
        assert_eq!(summary.cells.len(), 2);
        assert_eq!(summary.cells[0].design, "OS-ELM-L2-Lipschitz");
        assert_eq!(summary.cells[0].population, 3);
        assert!((0.0..=1.0).contains(&summary.cells[0].solve_rate));

        let md = population_to_markdown(&summary);
        assert!(md.contains("workload"));
        assert!(md.contains("OS-ELM-L2-Lipschitz"));
        assert!(md.contains("DQN"));
        assert!(md.contains("3/3") || md.contains("/3"));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn convergence_table_folds_per_replica_curves() {
        use elmrl_population::{PopulationConfig, PopulationRunner};

        let mut config = PopulationConfig::new(Workload::CartPole, Design::OsElmL2Lipschitz, 8, 4);
        config.max_episodes = 6;
        config.eval_episodes = 0;
        config.seed = 3;
        let report = PopulationRunner::new(config).run();
        let table = convergence_table(&report);
        assert!(!table.is_empty());
        // Checkpoints are clipped to the episodes actually run (≤ 6 here).
        assert!(table.iter().all(|p| p.episode <= 6));
        assert_eq!(table[0].episode, 1);
        assert_eq!(table[0].replicas, 4, "every replica runs episode 1");
        for p in &table {
            assert!(p.replicas >= 1 && p.replicas <= 4);
            assert!(p.mean_return.is_finite() && p.median_return.is_finite());
            assert!((0.0..=1.0).contains(&p.solved_by));
        }
    }

    #[test]
    fn collects_ablation_results_into_the_cross_workload_fold() {
        let root = tmp_root("ablation");
        let _ = std::fs::remove_dir_all(&root);
        for workload in [Workload::CartPole, Workload::MountainCar] {
            let rows = crate::ablation::stabilisation_ablation(workload, 8, 2, 5);
            crate::report::write_json(&root.join(workload.slug()), "ablation_a1.json", &rows)
                .unwrap();
        }
        crate::report::write_text(&root.join("pendulum"), "ablation_a1.json", "not json").unwrap();

        let summary = collect_ablation(&root).unwrap();
        assert_eq!(
            summary.workloads,
            vec![Workload::CartPole, Workload::MountainCar]
        );
        assert_eq!(summary.missing, vec!["acrobot", "high-dim"]);
        assert_eq!(summary.unreadable, vec!["pendulum"]);
        // 4 A1 configurations × 2 aggregated workloads.
        assert_eq!(summary.cells.len(), 8);

        let md = ablation_to_markdown(&summary);
        assert!(md.contains("clipping"));
        assert!(md.contains("cart-pole solved"));
        assert!(md.contains("mountain-car final avg"));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_results_root_summarises_to_nothing() {
        let root = tmp_root("empty");
        let _ = std::fs::remove_dir_all(&root);
        let summary = collect(&root).unwrap();
        assert!(summary.workloads.is_empty());
        assert!(summary.cells.is_empty());
        assert!(summary.unreadable.is_empty());
        assert_eq!(summary.missing.len(), Workload::all().len());
    }
}
