//! Cross-environment result aggregation (the design × environment matrix the
//! paper's §5 extension table gestures at).
//!
//! [`collect`] reads every `results/<workload-slug>/fig5.json` previously
//! written by the `fig5` binary and folds the per-cell summaries into one
//! row per (design, workload) pair: trials, solve rate and mean modeled
//! time-to-complete averaged over the hidden sizes that solved. Workloads
//! whose `fig5.json` is missing are listed as skipped rather than failing
//! the aggregation, so partial sweeps still summarise.

use crate::fig5::Figure5;
use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One aggregated (design, workload) cell of the summary matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SummaryCell {
    /// Workload the cell aggregates.
    pub workload: Workload,
    /// Design label.
    pub design: String,
    /// Trials attempted across all hidden sizes.
    pub trials: usize,
    /// Trials that solved the task.
    pub solved_trials: usize,
    /// `solved_trials / trials`.
    pub solve_rate: f64,
    /// Mean modeled seconds to complete, averaged over the hidden-size cells
    /// that have a value (`None` when nothing solved).
    pub mean_time_to_complete: Option<f64>,
    /// Mean episodes to solve, averaged the same way.
    pub mean_episodes_to_solve: Option<f64>,
}

/// The full cross-environment summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Workloads whose `fig5.json` was found and aggregated.
    pub workloads: Vec<Workload>,
    /// Workload slugs that had no `fig5.json` under the results root.
    pub missing: Vec<String>,
    /// Workload slugs whose `fig5.json` exists but could not be parsed
    /// (typically written by an older version of the `fig5` binary) —
    /// skipped rather than failing the whole aggregation.
    pub unreadable: Vec<String>,
    /// One cell per (design, aggregated workload).
    pub cells: Vec<SummaryCell>,
}

/// Aggregate one deserialized [`Figure5`] into per-design summary cells.
fn aggregate(fig: &Figure5) -> Vec<SummaryCell> {
    Design::all_designs()
        .iter()
        .filter_map(|design| {
            let cells: Vec<_> = fig.cells.iter().filter(|c| c.design == *design).collect();
            if cells.is_empty() {
                return None;
            }
            let trials: usize = cells.iter().map(|c| c.trials).sum();
            let solved: usize = cells.iter().map(|c| c.solved_trials).sum();
            let mean = |values: Vec<f64>| {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            };
            Some(SummaryCell {
                workload: fig.workload,
                design: design.label().to_string(),
                trials,
                solved_trials: solved,
                solve_rate: if trials > 0 {
                    solved as f64 / trials as f64
                } else {
                    0.0
                },
                mean_time_to_complete: mean(
                    cells
                        .iter()
                        .filter_map(|c| c.mean_time_to_complete)
                        .collect(),
                ),
                mean_episodes_to_solve: mean(
                    cells
                        .iter()
                        .filter_map(|c| c.mean_episodes_to_solve)
                        .collect(),
                ),
            })
        })
        .collect()
}

/// Read every `<results_root>/<slug>/fig5.json` and build the summary.
pub fn collect(results_root: &Path) -> std::io::Result<Summary> {
    let mut summary = Summary {
        workloads: Vec::new(),
        missing: Vec::new(),
        unreadable: Vec::new(),
        cells: Vec::new(),
    };
    for workload in Workload::all() {
        let path = results_root.join(workload.slug()).join("fig5.json");
        if !path.exists() {
            summary.missing.push(workload.slug().to_string());
            continue;
        }
        let json = std::fs::read_to_string(&path)?;
        // A parse failure usually means the artefact predates the current
        // Figure5 schema; skip that workload instead of failing the whole
        // aggregation so the remaining fig5 runs still summarise.
        match serde_json::from_str::<Figure5>(&json) {
            Ok(fig) => {
                summary.workloads.push(workload);
                summary.cells.extend(aggregate(&fig));
            }
            Err(_) => summary.unreadable.push(workload.slug().to_string()),
        }
    }
    Ok(summary)
}

/// Markdown rendering: one row per design, one column pair per workload
/// (`modeled s` and `solve rate`), `-` where a workload was not aggregated.
pub fn to_markdown(summary: &Summary) -> String {
    let mut headers: Vec<String> = vec!["design".into()];
    for w in &summary.workloads {
        headers.push(format!("{w} modeled s"));
        headers.push(format!("{w} solve rate"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut designs: Vec<&str> = Vec::new();
    for cell in &summary.cells {
        if !designs.contains(&cell.design.as_str()) {
            designs.push(&cell.design);
        }
    }
    let rows: Vec<Vec<String>> = designs
        .iter()
        .map(|design| {
            let mut row = vec![design.to_string()];
            for w in &summary.workloads {
                let cell = summary
                    .cells
                    .iter()
                    .find(|c| c.design == *design && c.workload == *w);
                row.push(crate::report::fmt_opt(
                    cell.and_then(|c| c.mean_time_to_complete),
                ));
                row.push(match cell {
                    Some(c) => format!("{}/{}", c.solved_trials, c.trials),
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    crate::report::markdown_table(&header_refs, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig5;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("elmrl_summary_{tag}_{}", std::process::id()))
    }

    #[test]
    fn collects_written_fig5_results_and_reports_missing_ones() {
        let root = tmp_root("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        // Write a tiny real fig5.json for two workloads only.
        for workload in [Workload::CartPole, Workload::Acrobot] {
            let fig = fig5::generate(
                workload,
                &[8],
                &[Design::OsElmL2Lipschitz, Design::Dqn],
                1,
                2,
                5,
            );
            crate::report::write_json(&root.join(workload.slug()), "fig5.json", &fig).unwrap();
        }

        // A stale artefact from an older schema must be skipped, not fatal.
        crate::report::write_text(
            &root.join("pendulum"),
            "fig5.json",
            "{\"workload\": \"Pendulum\"}",
        )
        .unwrap();

        let summary = collect(&root).unwrap();
        assert_eq!(
            summary.workloads,
            vec![Workload::CartPole, Workload::Acrobot]
        );
        assert_eq!(summary.missing, vec!["mountain-car"]);
        assert_eq!(summary.unreadable, vec!["pendulum"]);
        // 2 designs × 2 aggregated workloads.
        assert_eq!(summary.cells.len(), 4);
        for cell in &summary.cells {
            assert_eq!(cell.trials, 1);
            assert!((0.0..=1.0).contains(&cell.solve_rate));
        }

        let md = to_markdown(&summary);
        assert!(md.contains("design"));
        assert!(md.contains("cart-pole modeled s"));
        assert!(md.contains("acrobot solve rate"));
        assert!(md.contains("OS-ELM-L2-Lipschitz"));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_results_root_summarises_to_nothing() {
        let root = tmp_root("empty");
        let _ = std::fs::remove_dir_all(&root);
        let summary = collect(&root).unwrap();
        assert!(summary.workloads.is_empty());
        assert!(summary.cells.is_empty());
        assert!(summary.unreadable.is_empty());
        assert_eq!(summary.missing.len(), Workload::all().len());
    }
}
