//! Experiment E1 — Table 3: FPGA resource utilization of the OS-ELM core.

use crate::report::markdown_table;
use elmrl_fpga::resources::{ResourceModel, ResourceUtilization};
use serde::{Deserialize, Serialize};

/// The full Table 3 reproduction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per hidden size (32 … 256).
    pub rows: Vec<ResourceUtilization>,
    /// The paper's reported BRAM percentages, for side-by-side comparison.
    pub paper_bram_pct: Vec<(usize, Option<f64>)>,
}

/// Paper-reported BRAM utilization (Table 3); `None` marks the 256-unit row
/// the paper could not implement.
pub const PAPER_BRAM_PCT: [(usize, Option<f64>); 5] = [
    (32, Some(2.86)),
    (64, Some(11.43)),
    (128, Some(45.71)),
    (192, Some(91.43)),
    (256, None),
];

/// Generate the Table 3 reproduction from the analytical resource model.
pub fn generate() -> Table3 {
    let model = ResourceModel::pynq_z1();
    Table3 {
        rows: model.table3(),
        paper_bram_pct: PAPER_BRAM_PCT.to_vec(),
    }
}

/// Render the table as Markdown, including the paper's BRAM column.
pub fn to_markdown(table: &Table3) -> String {
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            let paper = table
                .paper_bram_pct
                .iter()
                .find(|(n, _)| *n == r.hidden_dim)
                .and_then(|(_, v)| *v);
            vec![
                r.hidden_dim.to_string(),
                if r.fits {
                    format!("{:.2}", r.bram_pct)
                } else {
                    "does not fit".into()
                },
                paper
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "—".into()),
                format!("{:.2}", r.dsp_pct),
                format!("{:.2}", r.ff_pct),
                format!("{:.2}", r.lut_pct),
                if r.fits { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    markdown_table(
        &[
            "Units",
            "BRAM % (model)",
            "BRAM % (paper)",
            "DSP %",
            "FF %",
            "LUT %",
            "fits",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_rows_and_matches_fit_pattern() {
        let t = generate();
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows[..4].iter().all(|r| r.fits));
        assert!(!t.rows[4].fits);
    }

    #[test]
    fn markdown_contains_every_hidden_size_and_paper_column() {
        let t = generate();
        let md = to_markdown(&t);
        for n in [32, 64, 128, 192, 256] {
            assert!(md.contains(&format!("| {n} |")), "missing row for {n}");
        }
        assert!(md.contains("11.43"), "paper BRAM column should be present");
        assert!(md.contains("does not fit") || md.contains("| no |"));
    }
}
