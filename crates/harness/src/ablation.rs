//! Design-choice ablations (DESIGN.md experiments A1–A3).
//!
//! * **A1 — stabilisation techniques**: OS-ELM-L2-Lipschitz with Q-value
//!   clipping and/or the random-update rule disabled, quantifying how much
//!   each §3 technique contributes.
//! * **A2 — fixed-point precision**: quantisation error of an OS-ELM update
//!   pipeline at Q8/Q16/Q20/Q24 against the `f64` reference, justifying the
//!   paper's choice of Q20.
//! * **A3 — arithmetic backend**: the same workload trained end to end by
//!   the `f64` OS-ELM-L2-Lipschitz learner and by the Q20 fixed-point FPGA
//!   core from the same seed, showing the quantised datapath matches the
//!   float backend's learning behaviour while its modeled device time drops
//!   (the paper's Table 3 claim, now an explicit ablation axis).

use crate::runner::{run_trial, TrialSpec};
use elmrl_core::designs::Design;
use elmrl_core::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
use elmrl_core::trainer::{Trainer, TrainerConfig};
use elmrl_fixed::analysis::{quantization_report, QuantizationReport};
use elmrl_gym::{Workload, WorkloadOptions};
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One A1 configuration and its outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StabilisationAblationRow {
    /// Whether Q-value clipping was enabled.
    pub clipping: bool,
    /// Whether the random-update rule gated sequential training.
    pub random_update: bool,
    /// Whether the trial solved the task within the budget.
    pub solved: bool,
    /// Episodes run.
    pub episodes_run: usize,
    /// Final 100-episode average return.
    pub final_average: f64,
    /// Number of sequential updates performed.
    pub seq_train_count: u64,
}

/// Run the A1 ablation: the four combinations of {clipping, random update}
/// on OS-ELM-L2-Lipschitz at the given hidden size, on a workload with the
/// default [`WorkloadOptions`].
pub fn stabilisation_ablation(
    workload: Workload,
    hidden_dim: usize,
    max_episodes: usize,
    seed: u64,
) -> Vec<StabilisationAblationRow> {
    stabilisation_ablation_with(
        workload,
        WorkloadOptions::default(),
        hidden_dim,
        max_episodes,
        seed,
        1,
    )
}

/// Run the A1 ablation with explicit workload variant knobs and
/// `train_envs` parallel training episodes per configuration (1 = the
/// paper's scalar protocol, E > 1 the batched episode driver).
pub fn stabilisation_ablation_with(
    workload: Workload,
    options: WorkloadOptions,
    hidden_dim: usize,
    max_episodes: usize,
    seed: u64,
    train_envs: usize,
) -> Vec<StabilisationAblationRow> {
    let spec = workload.spec_with(options);
    let mut rows = Vec::new();
    for &clipping in &[true, false] {
        for &random_update in &[true, false] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut config = OsElmQNetConfig::for_workload(&spec, hidden_dim, 0.5, true);
            config.target.clip = clipping;
            config.random_update = random_update;
            let mut agent = OsElmQNet::new(config, &mut rng);
            let trainer = Trainer::new(TrainerConfig {
                max_episodes,
                ..TrainerConfig::for_workload(&spec)
            });
            let result = if train_envs > 1 {
                let mut vec_env = elmrl_gym::VecEnv::from_spec(&spec, train_envs);
                trainer.run_vec(&mut agent, &mut vec_env, &mut rng)
            } else {
                let mut env = spec.make_env();
                trainer.run(&mut agent, env.as_mut(), &mut rng)
            };
            rows.push(StabilisationAblationRow {
                clipping,
                random_update,
                solved: result.solved,
                episodes_run: result.episodes_run,
                final_average: result.stats.current_average().unwrap_or(0.0),
                seq_train_count: result.op_counts.count(elmrl_core::ops::OpKind::SeqTrain),
            });
        }
    }
    rows
}

/// One A2 precision row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrecisionAblationRow {
    /// Number of fractional bits of the format.
    pub frac_bits: u32,
    /// Quantisation report of a representative OS-ELM `P` matrix.
    pub p_matrix_report: QuantizationReport,
    /// Quantisation report of a representative `β` matrix.
    pub beta_report: QuantizationReport,
}

/// Run the A2 precision ablation on a representative trained OS-ELM state
/// (default [`WorkloadOptions`]).
pub fn precision_ablation(
    workload: Workload,
    hidden_dim: usize,
    seed: u64,
) -> Vec<PrecisionAblationRow> {
    precision_ablation_with(workload, WorkloadOptions::default(), hidden_dim, seed)
}

/// Run the A2 precision ablation with explicit workload variant knobs.
pub fn precision_ablation_with(
    workload: Workload,
    options: WorkloadOptions,
    hidden_dim: usize,
    seed: u64,
) -> Vec<PrecisionAblationRow> {
    // Produce a representative trained state by running a short session on
    // the workload with the float agent, then quantising its P and β.
    let spec = workload.spec_with(options);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut agent = OsElmQNet::new(
        OsElmQNetConfig::for_workload(&spec, hidden_dim, 0.5, true),
        &mut rng,
    );
    let mut env = spec.make_env();
    let trainer = Trainer::new(TrainerConfig {
        max_episodes: 30,
        stop_when_solved: false,
        ..TrainerConfig::for_workload(&spec)
    });
    let _ = trainer.run(&mut agent, env.as_mut(), &mut rng);
    let beta: Matrix<f64> = agent.online().model().beta().clone();
    let p: Matrix<f64> = agent
        .online()
        .p_matrix()
        .cloned()
        .unwrap_or_else(|| Matrix::identity(hidden_dim));

    vec![
        row::<8>(&p, &beta),
        row::<16>(&p, &beta),
        row::<20>(&p, &beta),
        row::<24>(&p, &beta),
    ]
}

/// One A3 backend row: one arithmetic backend trained on the workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BackendAblationRow {
    /// Human-readable backend label (`"f64"` or `"Q20"`).
    pub backend: String,
    /// Hidden width `Ñ` the trial ran at.
    pub hidden_dim: usize,
    /// Whether the trial solved the task within the budget.
    pub solved: bool,
    /// Episodes run.
    pub episodes_run: usize,
    /// Final 100-episode average return.
    pub final_average: f64,
    /// Number of sequential (RLS) updates performed.
    pub seq_train_updates: u64,
    /// Modeled on-device seconds (CPU for the float backend, PL+CPU for the
    /// quantised one) — the Table 3 execution-time axis.
    pub modeled_seconds: f64,
    /// For the Q20 backend: total simulated seconds from the cycle-accurate
    /// core (predict + seq_train + initial training). `None` for `f64`.
    pub simulated_device_seconds: Option<f64>,
}

/// Run the A3 backend ablation (default [`WorkloadOptions`], scalar
/// episode loop): `f64` OS-ELM-L2-Lipschitz vs the Q20 FPGA core, same
/// workload, hidden size and seed.
pub fn backend_ablation(
    workload: Workload,
    hidden_dim: usize,
    max_episodes: usize,
    seed: u64,
) -> Vec<BackendAblationRow> {
    backend_ablation_with(
        workload,
        WorkloadOptions::default(),
        hidden_dim,
        max_episodes,
        seed,
        1,
    )
}

/// Run the A3 backend ablation with explicit workload variant knobs and
/// `train_envs` parallel training episodes per backend. At
/// `hidden_dim = 256` — the paper's BRAM capacity bound — this is the
/// end-to-end float-vs-fixed comparison the quantised backend is gated on.
pub fn backend_ablation_with(
    workload: Workload,
    options: WorkloadOptions,
    hidden_dim: usize,
    max_episodes: usize,
    seed: u64,
    train_envs: usize,
) -> Vec<BackendAblationRow> {
    [("f64", Design::OsElmL2Lipschitz), ("Q20", Design::Fpga)]
        .iter()
        .map(|&(backend, design)| {
            let spec = TrialSpec::for_workload(workload, design, hidden_dim, seed)
                .with_options(options)
                .with_max_episodes(max_episodes)
                .with_train_envs(train_envs);
            let result = run_trial(&spec);
            BackendAblationRow {
                backend: backend.to_string(),
                hidden_dim,
                solved: result.training.solved,
                episodes_run: result.training.episodes_run,
                final_average: result.training.stats.current_average().unwrap_or(0.0),
                seq_train_updates: result
                    .training
                    .op_counts
                    .count(elmrl_core::ops::OpKind::SeqTrain),
                modeled_seconds: result.modeled.total_seconds,
                simulated_device_seconds: result
                    .fpga_simulated_seconds
                    .map(|(predict, seq_train, init)| predict + seq_train + init),
            }
        })
        .collect()
}

/// Markdown rendering of the A3 backend ablation.
pub fn backend_to_markdown(a3: &[BackendAblationRow]) -> String {
    let mut out = String::from("## A3 — arithmetic backend (f64 vs Q20 fixed-point)\n\n");
    let rows: Vec<Vec<String>> = a3
        .iter()
        .map(|r| {
            vec![
                r.backend.clone(),
                r.hidden_dim.to_string(),
                r.solved.to_string(),
                r.episodes_run.to_string(),
                format!("{:.1}", r.final_average),
                r.seq_train_updates.to_string(),
                format!("{:.3}", r.modeled_seconds),
                r.simulated_device_seconds
                    .map(|s| format!("{s:.3}"))
                    .unwrap_or_else(|| "—".to_string()),
            ]
        })
        .collect();
    out.push_str(&crate::report::markdown_table(
        &[
            "backend",
            "hidden",
            "solved",
            "episodes",
            "final avg",
            "seq_train updates",
            "modeled s",
            "simulated device s",
        ],
        &rows,
    ));
    out
}

fn row<const FRAC: u32>(p: &Matrix<f64>, beta: &Matrix<f64>) -> PrecisionAblationRow {
    PrecisionAblationRow {
        frac_bits: FRAC,
        p_matrix_report: quantization_report::<FRAC>(p),
        beta_report: quantization_report::<FRAC>(beta),
    }
}

/// Markdown rendering of both ablations.
pub fn to_markdown(a1: &[StabilisationAblationRow], a2: &[PrecisionAblationRow]) -> String {
    let mut out = String::from("## A1 — stabilisation techniques (OS-ELM-L2-Lipschitz)\n\n");
    let rows: Vec<Vec<String>> = a1
        .iter()
        .map(|r| {
            vec![
                r.clipping.to_string(),
                r.random_update.to_string(),
                r.solved.to_string(),
                r.episodes_run.to_string(),
                format!("{:.1}", r.final_average),
                r.seq_train_count.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::report::markdown_table(
        &[
            "clipping",
            "random update",
            "solved",
            "episodes",
            "final avg",
            "seq_train calls",
        ],
        &rows,
    ));
    out.push_str("\n## A2 — fixed-point precision\n\n");
    let rows: Vec<Vec<String>> = a2
        .iter()
        .map(|r| {
            vec![
                format!("Q{}", r.frac_bits),
                format!("{:.2e}", r.p_matrix_report.rms_error),
                format!("{:.2e}", r.beta_report.rms_error),
                r.p_matrix_report.saturated_elements.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::report::markdown_table(
        &["format", "P RMS error", "β RMS error", "saturated elements"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilisation_ablation_covers_all_four_combinations() {
        let rows = stabilisation_ablation(Workload::CartPole, 8, 3, 5);
        assert_eq!(rows.len(), 4);
        let combos: Vec<(bool, bool)> =
            rows.iter().map(|r| (r.clipping, r.random_update)).collect();
        assert!(combos.contains(&(true, true)));
        assert!(combos.contains(&(false, false)));
        // disabling the random-update gate must produce at least as many
        // sequential updates as keeping it (probability 0.5)
        let gated = rows.iter().find(|r| r.clipping && r.random_update).unwrap();
        let ungated = rows
            .iter()
            .find(|r| r.clipping && !r.random_update)
            .unwrap();
        assert!(ungated.seq_train_count >= gated.seq_train_count);
    }

    #[test]
    fn precision_ablation_error_decreases_with_more_bits() {
        let rows = precision_ablation(Workload::CartPole, 8, 6);
        assert_eq!(rows.len(), 4);
        assert!(rows[0].beta_report.rms_error >= rows[2].beta_report.rms_error);
        assert!(rows[1].p_matrix_report.rms_error >= rows[3].p_matrix_report.rms_error);
        let md = to_markdown(&stabilisation_ablation(Workload::CartPole, 8, 2, 1), &rows);
        assert!(md.contains("Q20"));
        assert!(md.contains("random update"));
    }

    #[test]
    fn ablations_run_on_other_workloads() {
        let rows = stabilisation_ablation(Workload::MountainCar, 8, 2, 3);
        assert_eq!(rows.len(), 4);
        let rows = precision_ablation(Workload::Pendulum, 8, 3);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn backend_ablation_compares_float_and_fixed_point() {
        let rows = backend_ablation(Workload::CartPole, 16, 3, 11);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].backend, "f64");
        assert_eq!(rows[1].backend, "Q20");
        for r in &rows {
            assert_eq!(r.episodes_run, 3);
            assert!(r.final_average.is_finite());
            assert!(r.modeled_seconds > 0.0);
        }
        // Only the quantised backend reports cycle-accurate device seconds.
        assert!(rows[0].simulated_device_seconds.is_none());
        assert!(rows[1].simulated_device_seconds.unwrap() > 0.0);
        let md = backend_to_markdown(&rows);
        assert!(md.contains("Q20"));
        assert!(md.contains("simulated device s"));
    }

    #[test]
    fn backend_ablation_runs_at_the_papers_bram_limit() {
        // hidden = 256 is the BRAM bound the quantised backend is sized for;
        // both backends must run end to end at that width on every axis the
        // CLI exposes (here: the batched E = 2 episode driver). Pendulum's
        // fixed 200-step episodes guarantee the 256-sample store phase
        // completes, so the Q20 core really runs at that width.
        let rows =
            backend_ablation_with(Workload::Pendulum, WorkloadOptions::default(), 256, 2, 4, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.hidden_dim, 256);
            assert_eq!(r.episodes_run, 2);
            assert!(r.final_average.is_finite());
        }
        assert!(rows[1].simulated_device_seconds.unwrap() > 0.0);
    }
}
