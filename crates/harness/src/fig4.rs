//! Experiment E2 — Figure 4: training curves of the six software designs.
//!
//! For every (design, hidden size) cell the paper plots the per-episode
//! number of surviving steps (light line) and its 100-episode moving average
//! (dark line). This module runs one representative trial per cell (the paper
//! likewise "picks up a representative result") for a configurable number of
//! episodes without early stopping and exports both series.

use crate::runner::{run_trials_checkpointed, CheckpointOptions, TrialResult, TrialSpec};
use elmrl_core::designs::Design;
use elmrl_gym::{Workload, WorkloadOptions};
use serde::{Deserialize, Serialize};

/// One training curve: the data behind one line pair of Figure 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Curve {
    /// Design label.
    pub design: String,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Per-episode returns (steps survived).
    pub returns: Vec<f64>,
    /// 100-episode moving average.
    pub moving_average: Vec<f64>,
    /// Episode at which the solve criterion fired, if it did.
    pub solved_at_episode: Option<usize>,
}

impl From<&TrialResult> for Curve {
    fn from(r: &TrialResult) -> Self {
        Curve {
            design: r.training.design.clone(),
            hidden_dim: r.training.hidden_dim,
            returns: r.training.stats.returns.clone(),
            moving_average: r.training.stats.moving_averages.clone(),
            solved_at_episode: r.training.solved_at_episode,
        }
    }
}

/// The full Figure 4 reproduction: one curve per (design, hidden size).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure4 {
    /// Workload the curves were collected on.
    pub workload: Workload,
    /// Workload variant knobs the curves used.
    pub options: WorkloadOptions,
    /// All curves, in design-major order.
    pub curves: Vec<Curve>,
    /// Episode budget used per curve.
    pub episodes: usize,
    /// Parallel training episodes per curve (`--train-envs`; 1 = the
    /// paper's scalar protocol).
    pub train_envs: usize,
    /// The effective RLS chunk cap the OS-ELM curves trained under (the
    /// CLI's `--chunk-cap`, or [`elmrl_core::DEFAULT_CHUNK_CAP`] once
    /// `train_envs > 1` engages the chunked path); `None` when every
    /// update was single-transition. Skipped when absent so pre-existing
    /// artifacts stay byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chunk_cap: Option<usize>,
}

/// Generate Figure 4 curves on a workload for the given hidden sizes and
/// episode budget, using one seed per cell and the default
/// [`WorkloadOptions`].
pub fn generate(workload: Workload, hidden_sizes: &[usize], episodes: usize, seed: u64) -> Figure4 {
    generate_with(
        workload,
        WorkloadOptions::default(),
        hidden_sizes,
        episodes,
        seed,
        1,
    )
}

/// Generate Figure 4 curves with explicit workload variant knobs and
/// `train_envs` parallel training episodes per curve.
pub fn generate_with(
    workload: Workload,
    options: WorkloadOptions,
    hidden_sizes: &[usize],
    episodes: usize,
    seed: u64,
    train_envs: usize,
) -> Figure4 {
    generate_checkpointed(
        workload,
        options,
        hidden_sizes,
        episodes,
        seed,
        train_envs,
        None,
        None,
    )
    .expect("a sweep without checkpointing cannot fail")
    .expect("a sweep without checkpointing cannot stop early")
}

/// Generate Figure 4 curves under checkpoint control (the CLI's
/// `--checkpoint-dir` / `--resume` / `--checkpoint-every` / `--stop-after`
/// flags). Returns `Ok(None)` when the fault-injection stop abandoned the
/// sweep early — resume from the checkpoints to finish it byte-identically.
/// `chunk_cap` is the CLI's `--chunk-cap` RLS batch-width cap (`None`
/// defers to [`elmrl_core::DEFAULT_CHUNK_CAP`]).
#[allow(clippy::too_many_arguments)] // mirrors the CLI surface one-to-one
pub fn generate_checkpointed(
    workload: Workload,
    options: WorkloadOptions,
    hidden_sizes: &[usize],
    episodes: usize,
    seed: u64,
    train_envs: usize,
    chunk_cap: Option<usize>,
    ckpt: Option<&CheckpointOptions>,
) -> Result<Option<Figure4>, String> {
    let specs: Vec<TrialSpec> = hidden_sizes
        .iter()
        .flat_map(|&h| {
            Design::software_designs().into_iter().map(move |d| {
                TrialSpec::for_workload(workload, d, h, seed ^ (h as u64) << 8 ^ design_salt(d))
                    .with_options(options)
                    .with_max_episodes(episodes)
                    .with_train_envs(train_envs)
                    .with_chunk_cap(chunk_cap)
                    .collect_full_curve()
            })
        })
        .collect();
    let outcomes = run_trials_checkpointed(&specs, ckpt)?;
    if outcomes.iter().any(|(_, complete)| !complete) {
        return Ok(None);
    }
    let results: Vec<TrialResult> = outcomes.into_iter().map(|(r, _)| r).collect();
    Ok(Some(Figure4 {
        workload,
        options,
        curves: results.iter().map(Curve::from).collect(),
        episodes,
        train_envs,
        chunk_cap: results.iter().find_map(|r| r.spec.chunk_cap),
    }))
}

fn design_salt(d: Design) -> u64 {
    Design::all_designs()
        .iter()
        .position(|&x| x == d)
        .unwrap_or(0) as u64
}

/// CSV rows: `design,hidden,episode,return,moving_average`.
pub fn to_csv(fig: &Figure4) -> String {
    let mut rows = Vec::new();
    for c in &fig.curves {
        for (i, (&ret, &avg)) in c.returns.iter().zip(c.moving_average.iter()).enumerate() {
            rows.push(vec![
                c.design.clone(),
                c.hidden_dim.to_string(),
                i.to_string(),
                format!("{ret}"),
                format!("{avg:.2}"),
            ]);
        }
    }
    crate::report::csv_table(
        &["design", "hidden", "episode", "return", "moving_average"],
        &rows,
    )
}

/// A compact Markdown summary of the final moving average per cell (the
/// quantity the paper's prose discusses: which designs "acquire correct
/// actions").
pub fn to_markdown_summary(fig: &Figure4) -> String {
    let rows: Vec<Vec<String>> = fig
        .curves
        .iter()
        .map(|c| {
            vec![
                c.design.clone(),
                c.hidden_dim.to_string(),
                format!("{:.1}", c.moving_average.last().copied().unwrap_or(0.0)),
                format!("{:.0}", c.returns.iter().copied().fold(0.0_f64, f64::max)),
                c.solved_at_episode
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "—".into()),
            ]
        })
        .collect();
    crate::report::markdown_table(
        &[
            "design",
            "hidden",
            "final 100-ep avg",
            "best episode",
            "solved at episode",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_figure4_produces_all_cells() {
        let fig = generate(Workload::CartPole, &[8], 3, 7);
        assert_eq!(fig.curves.len(), 6);
        assert_eq!(fig.workload, Workload::CartPole);
        for c in &fig.curves {
            assert_eq!(c.returns.len(), 3);
            assert_eq!(c.moving_average.len(), 3);
            assert_eq!(c.hidden_dim, 8);
        }
        let csv = to_csv(&fig);
        assert_eq!(csv.lines().count(), 1 + 6 * 3);
        let md = to_markdown_summary(&fig);
        assert!(md.contains("OS-ELM-L2-Lipschitz"));
        assert!(md.contains("DQN"));
    }

    #[test]
    fn figure4_runs_on_non_cartpole_workloads() {
        let fig = generate(Workload::MountainCar, &[8], 2, 9);
        assert_eq!(fig.workload, Workload::MountainCar);
        assert_eq!(fig.curves.len(), 6);
        for c in &fig.curves {
            assert_eq!(c.returns.len(), 2);
            // MountainCar returns are −1 per step, never positive.
            assert!(c.returns.iter().all(|&r| (-200.0..=0.0).contains(&r)));
        }
    }
}
