//! Regenerate Figure 6 (execution-time detail of the FPGA design) on any
//! registered workload.
//!
//! Run `fig6 --help` for the flag list; the `ELMRL_*` environment variables
//! are honoured as fallbacks.
use elmrl_harness::{cli, fig6, report, telemetry};

fn main() {
    let args = cli::parse_or_exit(
        "fig6",
        "Figure 6 — execution-time detail of the FPGA design",
        &cli::CliDefaults {
            trials: 3,
            episodes: 2000,
            hidden: vec![32, 64],
        },
    );
    args.warn_unused_population_flags("fig6");
    args.warn_unused_serve_flags("fig6");
    args.reject_workload_all("fig6");
    telemetry::init(&args);
    eprintln!(
        "figure 6 on {}: hidden {:?}, {} trials/cell, {} episode budget, \
         {} training env(s)",
        args.workload, args.hidden, args.trials, args.episodes, args.train_envs
    );
    let ckpt = args.checkpoint_options();
    let fig = fig6::generate_checkpointed(
        args.workload,
        args.workload_options(),
        &args.hidden,
        args.trials,
        args.episodes,
        args.seed,
        args.train_envs,
        ckpt.as_ref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("fig6: {e}");
        std::process::exit(2);
    });
    let Some(fig) = fig else {
        eprintln!(
            "fig6: stopped by --stop-after with checkpoints in {}; \
             rerun with --resume (and without --stop-after) to finish",
            args.checkpoint_dir
                .as_ref()
                .expect("--stop-after requires --checkpoint-dir")
                .display()
        );
        telemetry::finish("fig6", &args);
        return;
    };
    println!(
        "# Figure 6 — FPGA execution-time detail ({})\n\n{}",
        args.workload,
        fig6::to_markdown(&fig)
    );
    let dir = args.out_dir();
    report::write_json(&dir, "fig6.json", &fig).expect("write fig6.json");
    report::write_text(&dir, "fig6.md", &fig6::to_markdown(&fig)).expect("write fig6.md");
    eprintln!("wrote {}/fig6.{{md,json}}", dir.display());
    telemetry::finish("fig6", &args);
}
