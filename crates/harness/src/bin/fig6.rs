//! Regenerate Figure 6 (execution-time detail of the FPGA design).
//!
//! Scale knobs: `ELMRL_HIDDEN` (default "32,64"), `ELMRL_TRIALS` (default 3),
//! `ELMRL_EPISODES` (default 2000), `ELMRL_SEED`.
use elmrl_harness::{env_hidden_sizes, env_usize, fig6, report};

fn main() {
    let hidden = env_hidden_sizes(&[32, 64]);
    let trials = env_usize("ELMRL_TRIALS", 3);
    let episodes = env_usize("ELMRL_EPISODES", 2000);
    let seed = env_usize("ELMRL_SEED", 42) as u64;
    eprintln!("figure 6: hidden {hidden:?}, {trials} trials/cell, {episodes} episode budget");
    let fig = fig6::generate(&hidden, trials, episodes, seed);
    println!(
        "# Figure 6 — FPGA execution-time detail\n\n{}",
        fig6::to_markdown(&fig)
    );
    let dir = report::default_results_dir();
    report::write_json(&dir, "fig6.json", &fig).expect("write fig6.json");
    report::write_text(&dir, "fig6.md", &fig6::to_markdown(&fig)).expect("write fig6.md");
    eprintln!("wrote {}/fig6.{{json,md}}", dir.display());
}
