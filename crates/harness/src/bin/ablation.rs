//! Run the DESIGN.md ablations (A1 stabilisation techniques, A2 precision).
//!
//! Scale knobs: `ELMRL_HIDDEN_ONE` (default 64), `ELMRL_EPISODES` (default 600),
//! `ELMRL_SEED`.
use elmrl_harness::{ablation, env_usize, report};

fn main() {
    let hidden = env_usize("ELMRL_HIDDEN_ONE", 64);
    let episodes = env_usize("ELMRL_EPISODES", 600);
    let seed = env_usize("ELMRL_SEED", 42) as u64;
    eprintln!("ablations at hidden = {hidden}, {episodes} episodes");
    let a1 = ablation::stabilisation_ablation(hidden, episodes, seed);
    let a2 = ablation::precision_ablation(hidden, seed);
    let md = ablation::to_markdown(&a1, &a2);
    println!("# Ablations\n\n{md}");
    let dir = report::default_results_dir();
    report::write_json(&dir, "ablation_a1.json", &a1).expect("write ablation_a1.json");
    report::write_json(&dir, "ablation_a2.json", &a2).expect("write ablation_a2.json");
    report::write_text(&dir, "ablation.md", &md).expect("write ablation.md");
    eprintln!("wrote {}/ablation.{{md,json}}", dir.display());
}
