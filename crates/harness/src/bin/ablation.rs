//! Run the DESIGN.md ablations (A1 stabilisation techniques, A2 precision)
//! on any registered workload.
//!
//! Run `ablation --help` for the flag list. The ablations are single-trial
//! and use a single hidden size — the first entry of `--hidden` (the legacy
//! `ELMRL_HIDDEN_ONE` environment variable supplies the default when neither
//! `--hidden` nor `ELMRL_HIDDEN` is given); `--trials` has no effect here.
use elmrl_harness::{ablation, cli, env_usize, report};

fn main() {
    let args = cli::parse_or_exit(
        "ablation",
        "DESIGN.md ablations: A1 stabilisation techniques, A2 precision \
         (single-trial, single hidden size; --trials is ignored)",
        &cli::CliDefaults {
            trials: 1,
            episodes: 600,
            // Flags and ELMRL_HIDDEN override this ELMRL_HIDDEN_ONE default.
            hidden: vec![env_usize("ELMRL_HIDDEN_ONE", 64)],
        },
    );
    args.warn_unused_population_flags("ablation");
    let hidden = args.hidden[0];
    if args.hidden.len() > 1 {
        eprintln!(
            "ablation: note — using only the first hidden size ({hidden}) of {:?}",
            args.hidden
        );
    }
    eprintln!(
        "ablations on {} at hidden = {hidden}, {} episodes",
        args.workload, args.episodes
    );
    let a1 = ablation::stabilisation_ablation_with(
        args.workload,
        args.workload_options(),
        hidden,
        args.episodes,
        args.seed,
    );
    let a2 = ablation::precision_ablation_with(
        args.workload,
        args.workload_options(),
        hidden,
        args.seed,
    );
    let md = ablation::to_markdown(&a1, &a2);
    println!("# Ablations ({})\n\n{md}", args.workload);
    let dir = args.out_dir();
    report::write_json(&dir, "ablation_a1.json", &a1).expect("write ablation_a1.json");
    report::write_json(&dir, "ablation_a2.json", &a2).expect("write ablation_a2.json");
    report::write_text(&dir, "ablation.md", &md).expect("write ablation.md");
    eprintln!("wrote {}/ablation.{{md,json}}", dir.display());
}
