//! Run the DESIGN.md ablations (A1 stabilisation techniques, A2 precision,
//! A3 arithmetic backend) on any registered workload — or on **all** of them
//! (`--workload all`), which writes one `results/<slug>/ablation_*.json` set
//! per workload so `summary` can fold them into the cross-workload
//! stabilisation table.
//!
//! Run `ablation --help` for the flag list. The ablations are single-trial
//! and use a single hidden size — the first entry of `--hidden` (the legacy
//! `ELMRL_HIDDEN_ONE` environment variable supplies the default when neither
//! `--hidden` nor `ELMRL_HIDDEN` is given); `--trials` has no effect here.
use elmrl_harness::{ablation, cli, env_usize, report, telemetry};

fn main() {
    let args = cli::parse_or_exit(
        "ablation",
        "DESIGN.md ablations: A1 stabilisation techniques, A2 precision, \
         A3 arithmetic backend (single-trial, single hidden size; --trials \
         is ignored; --workload all loops over the whole registry)",
        &cli::CliDefaults {
            trials: 1,
            episodes: 600,
            // Flags and ELMRL_HIDDEN override this ELMRL_HIDDEN_ONE default.
            hidden: vec![env_usize("ELMRL_HIDDEN_ONE", 64)],
        },
    );
    args.warn_unused_population_flags("ablation");
    args.warn_unused_checkpoint_flags("ablation");
    args.warn_unused_serve_flags("ablation");
    telemetry::init(&args);
    let hidden = args.hidden[0];
    if args.hidden.len() > 1 {
        eprintln!(
            "ablation: note — using only the first hidden size ({hidden}) of {:?}",
            args.hidden
        );
    }
    for workload in args.workloads() {
        eprintln!(
            "ablations on {workload} at hidden = {hidden}, {} episodes, {} training env(s)",
            args.episodes, args.train_envs
        );
        let a1 = ablation::stabilisation_ablation_with(
            workload,
            args.workload_options(),
            hidden,
            args.episodes,
            args.seed,
            args.train_envs,
        );
        let a2 =
            ablation::precision_ablation_with(workload, args.workload_options(), hidden, args.seed);
        let a3 = ablation::backend_ablation_with(
            workload,
            args.workload_options(),
            hidden,
            args.episodes,
            args.seed,
            args.train_envs,
        );
        let mut md = ablation::to_markdown(&a1, &a2);
        md.push('\n');
        md.push_str(&ablation::backend_to_markdown(&a3));
        println!("# Ablations ({workload})\n\n{md}");
        // Under --workload all, an explicit --out becomes the root of one
        // subdirectory per workload; a single workload keeps writing to
        // --out directly (or the per-workload default).
        let dir = if args.workload_all {
            args.out
                .clone()
                .unwrap_or_else(report::default_results_dir)
                .join(workload.slug())
        } else {
            args.out
                .clone()
                .unwrap_or_else(|| report::results_dir_for(workload))
        };
        report::write_json(&dir, "ablation_a1.json", &a1).expect("write ablation_a1.json");
        report::write_json(&dir, "ablation_a2.json", &a2).expect("write ablation_a2.json");
        report::write_json(&dir, "ablation_a3.json", &a3).expect("write ablation_a3.json");
        report::write_text(&dir, "ablation.md", &md).expect("write ablation.md");
        eprintln!("wrote {}/ablation.{{md,json}}", dir.display());
    }
    telemetry::finish("ablation", &args);
}
