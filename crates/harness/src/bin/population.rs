//! Run the population execution engine: K replicated agents of one design on
//! one workload, sharded across threads, reported as solve-rate and
//! episodes-to-solve quantiles.
//!
//! Run `population --help` for the flag list. The aggregate
//! `results/<workload>/population.json` is byte-identical for any `--shards`
//! value at the same `--seed` (per-replica RNG streams are split from the
//! master seed by global replica index).
use elmrl_harness::{cli, report, telemetry};
use elmrl_population::{PopulationConfig, PopulationRunner, ShardManifest};

fn main() {
    let args = cli::parse_or_exit(
        "population",
        "Population runner — K replicated agents of one design on one workload.\n\
         Uses the first --hidden entry; --trials is ignored",
        &cli::CliDefaults {
            trials: 1,
            episodes: 2000,
            hidden: vec![64],
        },
    );
    let hidden = args.hidden[0];
    if args.hidden.len() > 1 {
        eprintln!(
            "population: note — using only the first hidden size ({hidden}) of {:?}",
            args.hidden
        );
    }
    args.reject_workload_all("population");
    args.warn_unused_serve_flags("population");
    telemetry::init(&args);
    if args.stop_after.is_some() {
        eprintln!(
            "population: note — --stop-after only affects the trial binaries; \
             use --fail-shard k@e to fault-inject a population run"
        );
    }
    let mut config = PopulationConfig::new(args.workload, args.design, hidden, args.population);
    config.options = args.workload_options();
    config.shards = args.shards;
    config.seed = args.seed;
    config.max_episodes = args.episodes;
    config.train_envs = args.train_envs;
    config.chunk_cap = args.chunk_cap;
    eprintln!(
        "population on {}: {} × {} (hidden {hidden}), {} shard(s) on {} thread(s), \
         {} episode budget, {} training env(s)/replica, seed {}",
        args.workload,
        args.population,
        args.design.label(),
        args.shards,
        rayon::current_num_threads(),
        args.episodes,
        args.train_envs,
        args.seed
    );

    // Checkpointing: with --checkpoint-dir the run writes one manifest per
    // shard (the durable custody record of every finished replica); --resume
    // reloads them and skips the recorded replicas, and --fail-shard k@e
    // kills shard k after e episodes to exercise the requeue path. All three
    // leave population.json byte-identical to an undisturbed run.
    let manifest_dir = args.checkpoint_dir.clone();
    let resumed: Vec<ShardManifest> = match (&manifest_dir, args.resume) {
        (Some(dir), true) => ShardManifest::load_dir(dir).unwrap_or_else(|e| {
            eprintln!("population: load manifests from {}: {e}", dir.display());
            std::process::exit(2);
        }),
        _ => Vec::new(),
    };
    if !resumed.is_empty() {
        let done: usize = resumed.iter().map(|m| m.completed.len()).sum();
        eprintln!(
            "population: resuming from {} manifest(s) covering {} finished replica(s)",
            resumed.len(),
            done
        );
    }
    if let Some(fault) = args.fail_shard {
        eprintln!(
            "population: fault injection — shard {} dies after {} episode(s)",
            fault.shard, fault.at_episode
        );
    }

    let start = std::time::Instant::now();
    let run = PopulationRunner::new(config).run_checkpointed(args.fail_shard, &resumed);
    eprintln!(
        "population finished in {:.2}s host wall time",
        start.elapsed().as_secs_f64()
    );
    if let Some(dir) = &manifest_dir {
        std::fs::create_dir_all(dir).expect("create checkpoint dir");
        for manifest in &run.manifests {
            manifest.save(dir).expect("write shard manifest");
        }
        eprintln!(
            "wrote {} shard manifest(s) to {}",
            run.manifests.len(),
            dir.display()
        );
    }
    let report = run.report;

    let q = &report.episodes_to_solve;
    let table = report::markdown_table(
        &["metric", "value"],
        &[
            vec!["population".into(), report.population.to_string()],
            vec!["solved".into(), report.solved.to_string()],
            vec!["solve rate".into(), format!("{:.3}", report.solve_rate)],
            vec!["episodes-to-solve mean".into(), report::fmt_opt(q.mean)],
            vec!["episodes-to-solve p25".into(), report::fmt_opt(q.p25)],
            vec!["episodes-to-solve p50".into(), report::fmt_opt(q.p50)],
            vec!["episodes-to-solve p75".into(), report::fmt_opt(q.p75)],
            vec!["episodes-to-solve p90".into(), report::fmt_opt(q.p90)],
            vec![
                "mean greedy eval return".into(),
                report::fmt_opt(report.mean_greedy_eval_return),
            ],
        ],
    );
    println!(
        "# Population — {} × {} on {} (hidden {hidden})\n\n{table}",
        report.population, report.design, args.workload
    );

    let dir = args.out_dir();
    report::write_json(&dir, "population.json", &report).expect("write population.json");
    report::write_text(&dir, "population.md", &table).expect("write population.md");
    eprintln!("wrote {}/population.{{md,json}}", dir.display());
    telemetry::finish("population", &args);
}
