//! Aggregate every `results/<workload>/fig5.json` into one design ×
//! environment matrix (`results/summary.json` + a stdout table), and every
//! `results/<workload>/population.json` into the cross-workload population
//! table (`results/population_summary.json`: solve rate + episodes-to-solve
//! quantiles per design × env).
//!
//! Flags: `--results <dir>` (default `results`) names the root the
//! artefacts were written under; `--out <dir>` (default: the results root)
//! names where the summaries go; `--telemetry`, `--metrics-out <file>` and
//! `--trace-out <file>` enable the shared telemetry registry (mostly useful
//! to confirm the aggregation itself is cheap); `--help` prints usage.
use elmrl_harness::{report, summary, telemetry};
use std::path::PathBuf;

const USAGE: &str = "Cross-environment summary - design x environment matrices from fig5 and\n\
     population results.\n\n\
     Usage: summary [OPTIONS]\n\n\
     Options:\n\
     \x20 --results <dir>      results root holding <workload>/fig5.json and/or\n\
     \x20                      <workload>/population.json (default: results)\n\
     \x20 --out <dir>          output directory (default: the results root)\n\
     \x20 --telemetry          collect metrics; print the latency table on exit\n\
     \x20 --metrics-out <file> write the metric snapshot JSON (implies --telemetry)\n\
     \x20 --trace-out <file>   write a chrome://tracing span trace (implies --telemetry)\n\
     \x20 --help               print this help and exit";

fn main() {
    let mut results_root = PathBuf::from("results");
    let mut out: Option<PathBuf> = None;
    let mut telemetry_on = false;
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--results" => match iter.next() {
                Some(dir) => results_root = PathBuf::from(dir),
                None => exit_with("--results requires a value"),
            },
            "--out" => match iter.next() {
                Some(dir) => out = Some(PathBuf::from(dir)),
                None => exit_with("--out requires a value"),
            },
            "--telemetry" => telemetry_on = true,
            "--metrics-out" => match iter.next() {
                Some(path) => metrics_out = Some(PathBuf::from(path)),
                None => exit_with("--metrics-out requires a value"),
            },
            "--trace-out" => match iter.next() {
                Some(path) => trace_out = Some(PathBuf::from(path)),
                None => exit_with("--trace-out requires a value"),
            },
            other => exit_with(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if metrics_out.is_some() || trace_out.is_some() {
        telemetry_on = true;
    }
    telemetry::init_with(telemetry_on, trace_out.is_some());

    let summary = match summary::collect(&results_root) {
        Ok(s) => s,
        Err(e) => exit_with(&format!(
            "failed to read fig5 results under {}: {e}",
            results_root.display()
        )),
    };
    for slug in &summary.missing {
        eprintln!(
            "summary: no {}/{slug}/fig5.json — run `fig5 --workload {slug}` to fill it in",
            results_root.display()
        );
    }
    for slug in &summary.unreadable {
        eprintln!(
            "summary: {}/{slug}/fig5.json does not parse (older schema?) — skipped; \
             re-run `fig5 --workload {slug}` to refresh it",
            results_root.display()
        );
    }
    let population = match summary::collect_population(&results_root) {
        Ok(p) => p,
        Err(e) => exit_with(&format!(
            "failed to read population results under {}: {e}",
            results_root.display()
        )),
    };
    for slug in &population.missing {
        eprintln!(
            "summary: no {}/{slug}/population.json — run `population --workload {slug}` \
             to fill it in",
            results_root.display()
        );
    }
    for slug in &population.unreadable {
        eprintln!(
            "summary: {}/{slug}/population.json does not parse (older schema?) — skipped",
            results_root.display()
        );
    }
    let ablation = match summary::collect_ablation(&results_root) {
        Ok(a) => a,
        Err(e) => exit_with(&format!(
            "failed to read ablation results under {}: {e}",
            results_root.display()
        )),
    };
    for slug in &ablation.missing {
        eprintln!(
            "summary: no {}/{slug}/ablation_a1.json — run `ablation --workload {slug}` \
             (or `--workload all`) to fill it in",
            results_root.display()
        );
    }
    for slug in &ablation.unreadable {
        eprintln!(
            "summary: {}/{slug}/ablation_a1.json does not parse (older schema?) — skipped",
            results_root.display()
        );
    }
    if summary.workloads.is_empty()
        && population.workloads.is_empty()
        && ablation.workloads.is_empty()
    {
        exit_with(&format!(
            "no fig5.json, population.json or ablation_a1.json found under {} for any \
             registered workload",
            results_root.display()
        ));
    }

    let dir = out.unwrap_or(results_root);
    if !summary.workloads.is_empty() {
        let md = summary::to_markdown(&summary);
        println!("# Design × environment summary\n\n{md}");
        report::write_json(&dir, "summary.json", &summary).expect("write summary.json");
        report::write_text(&dir, "summary.md", &md).expect("write summary.md");
        eprintln!("wrote {}/summary.{{md,json}}", dir.display());
    }
    if !population.workloads.is_empty() {
        let md = summary::population_to_markdown(&population);
        println!("\n# Cross-workload population table\n\n{md}");
        report::write_json(&dir, "population_summary.json", &population)
            .expect("write population_summary.json");
        report::write_text(&dir, "population_summary.md", &md)
            .expect("write population_summary.md");
        eprintln!("wrote {}/population_summary.{{md,json}}", dir.display());
    }
    if !ablation.workloads.is_empty() {
        let md = summary::ablation_to_markdown(&ablation);
        println!("\n# Cross-workload stabilisation ablation (A1)\n\n{md}");
        report::write_json(&dir, "ablation_summary.json", &ablation)
            .expect("write ablation_summary.json");
        report::write_text(&dir, "ablation_summary.md", &md).expect("write ablation_summary.md");
        eprintln!("wrote {}/ablation_summary.{{md,json}}", dir.display());
    }
    telemetry::finish_with("summary", metrics_out.as_deref(), trace_out.as_deref());
}

fn exit_with(message: &str) -> ! {
    eprintln!("summary: {message}");
    std::process::exit(2);
}
