//! Regenerate Table 3 (FPGA resource utilization of the OS-ELM core).
//!
//! The resource table is workload-independent; the binary still accepts the
//! shared flag set (`table3 --help`) so `--out <dir>` can redirect output.
use elmrl_harness::{cli, report, table3, telemetry};

fn main() {
    let args = cli::parse_or_exit(
        "table3",
        "Table 3 — FPGA resource utilization of the OS-ELM core (xc7z020).\n\
         The table is workload-independent and covers the paper's full hidden\n\
         sweep; only --out has an effect here",
        &cli::CliDefaults {
            trials: 1,
            episodes: 0,
            hidden: vec![32, 64, 128, 192],
        },
    );
    args.warn_unused_population_flags("table3");
    args.warn_unused_checkpoint_flags("table3");
    args.warn_unused_serve_flags("table3");
    telemetry::init(&args);
    let table = table3::generate();
    let md = table3::to_markdown(&table);
    println!("# Table 3 — FPGA resource utilization (xc7z020)\n\n{md}");
    // Workload-independent artefact: default to the shared results/ root
    // rather than a per-workload subdirectory.
    let dir = args.out.clone().unwrap_or_else(report::default_results_dir);
    report::write_json(&dir, "table3.json", &table).expect("write table3.json");
    report::write_text(&dir, "table3.md", &md).expect("write table3.md");
    eprintln!("wrote {}/table3.{{md,json}}", dir.display());
    telemetry::finish("table3", &args);
}
