//! Regenerate Table 3 (FPGA resource utilization of the OS-ELM core).
use elmrl_harness::{report, table3};

fn main() {
    let table = table3::generate();
    let md = table3::to_markdown(&table);
    println!("# Table 3 — FPGA resource utilization (xc7z020)\n\n{md}");
    let dir = report::default_results_dir();
    report::write_json(&dir, "table3.json", &table).expect("write table3.json");
    report::write_text(&dir, "table3.md", &md).expect("write table3.md");
    eprintln!("wrote {}/table3.{{json,md}}", dir.display());
}
