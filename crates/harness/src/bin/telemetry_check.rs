//! CI validator for the telemetry artefacts: checks that a `--metrics-out`
//! snapshot and a `--trace-out` chrome trace parse and match the schema the
//! exporters promise, so a drift in either format fails the smoke job
//! instead of silently producing files Perfetto cannot open.
//!
//! Usage:
//!
//! ```text
//! telemetry_check --metrics results/metrics.json --trace results/trace.json \
//!     --expect-hist env.step --expect-hist op.seq_train
//! ```
//!
//! Exit status 0 when every check passes; 1 with one line per failure on
//! stderr otherwise.
use serde::Value;
use std::path::PathBuf;

const USAGE: &str = "Validate telemetry artefacts (metrics snapshot + chrome trace).\n\n\
     Usage: telemetry_check [OPTIONS]\n\n\
     Options:\n\
     \x20 --metrics <file>      metrics snapshot JSON to validate\n\
     \x20 --trace <file>        chrome://tracing JSON to validate\n\
     \x20 --expect-hist <name>  require a histogram with this name and count > 0\n\
     \x20                       (repeatable; implies --metrics)\n\
     \x20 --help                print this help and exit";

fn main() {
    let mut metrics: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut expect_hists: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--metrics" => match iter.next() {
                Some(path) => metrics = Some(PathBuf::from(path)),
                None => usage_error("--metrics requires a value"),
            },
            "--trace" => match iter.next() {
                Some(path) => trace = Some(PathBuf::from(path)),
                None => usage_error("--trace requires a value"),
            },
            "--expect-hist" => match iter.next() {
                Some(name) => expect_hists.push(name.clone()),
                None => usage_error("--expect-hist requires a value"),
            },
            other => usage_error(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    if metrics.is_none() && trace.is_none() {
        usage_error("nothing to check: pass --metrics and/or --trace");
    }
    if metrics.is_none() && !expect_hists.is_empty() {
        usage_error("--expect-hist requires --metrics");
    }

    let mut failures: Vec<String> = Vec::new();
    if let Some(path) = &metrics {
        match load(path) {
            Ok(value) => check_metrics(&value, &expect_hists, &mut failures),
            Err(e) => failures.push(e),
        }
    }
    if let Some(path) = &trace {
        match load(path) {
            Ok(value) => check_trace(&value, &mut failures),
            Err(e) => failures.push(e),
        }
    }

    if failures.is_empty() {
        println!("telemetry_check: ok");
    } else {
        for f in &failures {
            eprintln!("telemetry_check: {f}");
        }
        std::process::exit(1);
    }
}

fn load(path: &std::path::Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

/// Validate the `MetricsSnapshot::to_json` schema: a version-1 object whose
/// `histograms` entries carry name/count/total_ns/p50_ns/p90_ns/p99_ns and
/// whose `counters`/`gauges` entries carry name/value.
fn check_metrics(value: &Value, expect_hists: &[String], failures: &mut Vec<String>) {
    match value.get_field("version").and_then(Value::as_i128) {
        Some(1) => {}
        Some(v) => failures.push(format!("metrics: unknown schema version {v} (expected 1)")),
        None => failures.push("metrics: missing integer `version` field".to_string()),
    }
    let hists = match value.get_field("histograms") {
        Some(Value::Seq(items)) => items.as_slice(),
        _ => {
            failures.push("metrics: missing `histograms` array".to_string());
            &[]
        }
    };
    for (i, h) in hists.iter().enumerate() {
        if h.get_field("name").and_then(Value::as_str).is_none() {
            failures.push(format!("metrics: histograms[{i}] has no string `name`"));
        }
        for key in ["count", "total_ns", "p50_ns", "p90_ns", "p99_ns"] {
            if h.get_field(key).and_then(Value::as_i128).is_none() {
                failures.push(format!("metrics: histograms[{i}] has no integer `{key}`"));
            }
        }
    }
    for (section, keys) in [("counters", "value"), ("gauges", "value")] {
        let items = match value.get_field(section) {
            Some(Value::Seq(items)) => items.as_slice(),
            _ => {
                failures.push(format!("metrics: missing `{section}` array"));
                continue;
            }
        };
        for (i, item) in items.iter().enumerate() {
            if item.get_field("name").and_then(Value::as_str).is_none() {
                failures.push(format!("metrics: {section}[{i}] has no string `name`"));
            }
            if item.get_field(keys).and_then(Value::as_i128).is_none() {
                failures.push(format!("metrics: {section}[{i}] has no integer `{keys}`"));
            }
        }
    }
    for name in expect_hists {
        let found = hists
            .iter()
            .find(|h| h.get_field("name").and_then(Value::as_str) == Some(name.as_str()));
        match found {
            None => failures.push(format!("metrics: expected histogram `{name}` is missing")),
            Some(h) => {
                let count = h.get_field("count").and_then(Value::as_i128).unwrap_or(0);
                if count <= 0 {
                    failures.push(format!("metrics: histogram `{name}` has count 0"));
                }
            }
        }
    }
}

/// Validate the chrome trace: a JSON array of complete (`ph: "X"`) duration
/// events with string `name`/`cat`, numeric `ts`/`dur` and integer
/// `pid`/`tid` — the subset chrome://tracing and Perfetto require.
fn check_trace(value: &Value, failures: &mut Vec<String>) {
    let events = match value {
        Value::Seq(items) => items.as_slice(),
        _ => {
            failures.push("trace: top level is not a JSON array".to_string());
            return;
        }
    };
    if events.is_empty() {
        failures.push("trace: no events recorded (is tracing enabled?)".to_string());
    }
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "cat"] {
            if e.get_field(key).and_then(Value::as_str).is_none() {
                failures.push(format!("trace: events[{i}] has no string `{key}`"));
            }
        }
        if e.get_field("ph").and_then(Value::as_str) != Some("X") {
            failures.push(format!(
                "trace: events[{i}] is not a complete (`ph: \"X\"`) event"
            ));
        }
        for key in ["ts", "dur"] {
            if e.get_field(key).and_then(Value::as_f64).is_none() {
                failures.push(format!("trace: events[{i}] has no numeric `{key}`"));
            }
        }
        for key in ["pid", "tid"] {
            if e.get_field(key).and_then(Value::as_i128).is_none() {
                failures.push(format!("trace: events[{i}] has no integer `{key}`"));
            }
        }
        if failures.len() > 20 {
            failures.push("trace: too many failures; stopping".to_string());
            return;
        }
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("telemetry_check: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}
