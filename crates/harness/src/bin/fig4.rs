//! Regenerate Figure 4 (training curves of the six software designs) on any
//! registered workload.
//!
//! Run `fig4 --help` for the flag list; the `ELMRL_*` environment variables
//! are honoured as fallbacks.
use elmrl_harness::{cli, fig4, report, telemetry};

fn main() {
    let args = cli::parse_or_exit(
        "fig4",
        "Figure 4 — training curves of the six software designs.\n\
         Plots one representative curve per (design, hidden) cell, as the\n\
         paper does; --trials is ignored",
        &cli::CliDefaults {
            trials: 1,
            episodes: 600,
            hidden: vec![32, 64],
        },
    );
    args.warn_unused_population_flags("fig4");
    args.warn_unused_serve_flags("fig4");
    args.reject_workload_all("fig4");
    telemetry::init(&args);
    eprintln!(
        "figure 4 on {}: hidden sizes {:?}, {} episodes per curve, \
         {} training env(s)",
        args.workload, args.hidden, args.episodes, args.train_envs
    );
    let ckpt = args.checkpoint_options();
    let fig = fig4::generate_checkpointed(
        args.workload,
        args.workload_options(),
        &args.hidden,
        args.episodes,
        args.seed,
        args.train_envs,
        args.chunk_cap,
        ckpt.as_ref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("fig4: {e}");
        std::process::exit(2);
    });
    let Some(fig) = fig else {
        eprintln!(
            "fig4: stopped by --stop-after with checkpoints in {}; \
             rerun with --resume (and without --stop-after) to finish",
            args.checkpoint_dir
                .as_ref()
                .expect("--stop-after requires --checkpoint-dir")
                .display()
        );
        telemetry::finish("fig4", &args);
        return;
    };
    println!(
        "# Figure 4 — training curves ({})\n\n{}",
        args.workload,
        fig4::to_markdown_summary(&fig)
    );
    let dir = args.out_dir();
    report::write_json(&dir, "fig4.json", &fig).expect("write fig4.json");
    report::write_text(&dir, "fig4.csv", &fig4::to_csv(&fig)).expect("write fig4.csv");
    eprintln!("wrote {}/fig4.{{json,csv}}", dir.display());
    telemetry::finish("fig4", &args);
}
