//! Regenerate Figure 4 (training curves of the six software designs).
//!
//! Scale knobs: `ELMRL_HIDDEN` (default "32,64"), `ELMRL_EPISODES` (default 600),
//! `ELMRL_SEED`.
use elmrl_harness::{env_hidden_sizes, env_usize, fig4, report};

fn main() {
    let hidden = env_hidden_sizes(&[32, 64]);
    let episodes = env_usize("ELMRL_EPISODES", 600);
    let seed = env_usize("ELMRL_SEED", 42) as u64;
    eprintln!("figure 4: hidden sizes {hidden:?}, {episodes} episodes per curve");
    let fig = fig4::generate(&hidden, episodes, seed);
    println!(
        "# Figure 4 — training curves\n\n{}",
        fig4::to_markdown_summary(&fig)
    );
    let dir = report::default_results_dir();
    report::write_json(&dir, "fig4.json", &fig).expect("write fig4.json");
    report::write_text(&dir, "fig4.csv", &fig4::to_csv(&fig)).expect("write fig4.csv");
    eprintln!("wrote {}/fig4.{{json,csv}}", dir.display());
}
