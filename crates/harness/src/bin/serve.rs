//! Run the request/response inference engine: N simulated client sessions
//! against a shared pool of agent workers with latency-budgeted dynamic
//! batching.
//!
//! Run `serve --help` for the flag list. With `--virtual-clock` (and
//! `ELMRL_ZERO_WALL_TIME=1` to blank the host-dependent fields) the
//! `results/<workload>/serve.json` artifact is byte-identical for any
//! `--workers` value at the same `--seed` — the CI `serve_smoke` golden.
use elmrl_harness::{cli, report, telemetry};
use elmrl_serve::{run_serve, ServeConfig};

fn main() {
    let args = cli::parse_or_exit(
        "serve",
        "Serving engine — client sessions against a worker pool with dynamic\n\
         batching. Uses the first --hidden entry; --trials/--episodes are ignored",
        &cli::CliDefaults {
            trials: 1,
            episodes: 2000,
            hidden: vec![64],
        },
    );
    let hidden = args.hidden[0];
    if args.hidden.len() > 1 {
        eprintln!(
            "serve: note — using only the first hidden size ({hidden}) of {:?}",
            args.hidden
        );
    }
    args.reject_workload_all("serve");
    args.warn_unused_checkpoint_flags("serve");
    if args.population_flags_used && (args.population != 32 || args.shards != 4) {
        eprintln!("serve: note — --population/--shards only affect the `population` binary");
    }
    telemetry::init(&args);

    let spec = args.workload.spec_with(args.workload_options());
    let mut config = ServeConfig::new(&spec, args.design, hidden);
    config.sessions = args.sessions;
    config.workers = args.workers;
    config.max_batch = args.max_batch;
    config.batch_window_us = args.batch_window_us;
    config.duration_ticks = args.duration_ticks;
    config.seed = args.seed;
    config.virtual_clock = args.virtual_clock;
    config.think_ticks = args.think_ticks;
    config.warmup_episodes = args.warmup_episodes;

    eprintln!(
        "serve on {}: {} session(s) → {} × {} worker(s) (hidden {hidden}) on {} thread(s), \
         max batch {}, window {}µs, {} round(s) on the {} clock, seed {}",
        args.workload,
        config.sessions,
        config.workers,
        args.design.label(),
        rayon::current_num_threads(),
        config.max_batch,
        config.batch_window_us,
        config.duration_ticks,
        if config.virtual_clock {
            "virtual"
        } else {
            "wall"
        },
        config.seed
    );

    let outcome = run_serve(&spec, &config, elmrl_harness::deterministic_artifacts());
    let r = &outcome.report;

    let table = report::markdown_table(
        &["metric", "value"],
        &[
            vec!["requests".into(), r.requests.to_string()],
            vec!["responses".into(), r.responses.to_string()],
            vec!["batches".into(), r.batches.to_string()],
            vec![
                "mean batch size".into(),
                format!("{:.2}", r.mean_batch_size),
            ],
            vec!["latency p50 (µs)".into(), r.latency.p50_us.to_string()],
            vec!["latency p90 (µs)".into(), r.latency.p90_us.to_string()],
            vec!["latency p99 (µs)".into(), r.latency.p99_us.to_string()],
            vec!["queue depth peak".into(), r.queue_depth_peak.to_string()],
            vec![
                "episodes completed".into(),
                r.episodes_completed.to_string(),
            ],
            vec![
                "mean episode return".into(),
                report::fmt_opt(r.mean_episode_return),
            ],
            vec![
                "requests/sec (wall)".into(),
                format!("{:.0}", r.requests_per_second),
            ],
        ],
    );
    println!(
        "# Serve — {} session(s) of {} on {} (hidden {hidden})\n\n{table}",
        r.sessions, r.design, args.workload
    );

    let dir = args.out_dir();
    report::write_json(&dir, "serve.json", r).expect("write serve.json");
    report::write_text(&dir, "serve.md", &table).expect("write serve.md");
    eprintln!("wrote {}/serve.{{md,json}}", dir.display());
    telemetry::finish("serve", &args);
}
