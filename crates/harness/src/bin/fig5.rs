//! Regenerate Figure 5 (execution time to complete) and the §4.4 speedups.
//!
//! Scale knobs: `ELMRL_HIDDEN` (default "32,64"), `ELMRL_TRIALS` (default 3),
//! `ELMRL_EPISODES` (default 2000), `ELMRL_SEED`.
use elmrl_core::designs::Design;
use elmrl_harness::{env_hidden_sizes, env_usize, fig5, report};

fn main() {
    let hidden = env_hidden_sizes(&[32, 64]);
    let trials = env_usize("ELMRL_TRIALS", 3);
    let episodes = env_usize("ELMRL_EPISODES", 2000);
    let seed = env_usize("ELMRL_SEED", 42) as u64;
    eprintln!("figure 5: hidden {hidden:?}, {trials} trials/cell, {episodes} episode budget");
    let fig = fig5::generate(&hidden, &Design::all_designs(), trials, episodes, seed);
    println!(
        "# Figure 5 — execution time to complete\n\n{}",
        fig5::to_markdown(&fig)
    );
    println!(
        "\n## Speedups vs DQN (§4.4)\n\n{}",
        fig5::speedups_to_markdown(&fig)
    );
    let dir = report::default_results_dir();
    report::write_json(&dir, "fig5.json", &fig).expect("write fig5.json");
    report::write_text(&dir, "fig5.md", &fig5::to_markdown(&fig)).expect("write fig5.md");
    eprintln!("wrote {}/fig5.{{json,md}}", dir.display());
}
