//! Regenerate Figure 5 (execution time to complete) and the §4.4 speedups on
//! any registered workload.
//!
//! Run `fig5 --help` for the flag list; the `ELMRL_*` environment variables
//! are honoured as fallbacks.
use elmrl_core::designs::Design;
use elmrl_harness::{cli, fig5, report, telemetry};

fn main() {
    let args = cli::parse_or_exit(
        "fig5",
        "Figure 5 — execution time to complete the task, all seven designs",
        &cli::CliDefaults {
            trials: 3,
            episodes: 2000,
            hidden: vec![32, 64],
        },
    );
    args.warn_unused_population_flags("fig5");
    args.warn_unused_serve_flags("fig5");
    args.reject_workload_all("fig5");
    telemetry::init(&args);
    eprintln!(
        "figure 5 on {}: hidden {:?}, {} trials/cell, {} episode budget, \
         {} training env(s)",
        args.workload, args.hidden, args.trials, args.episodes, args.train_envs
    );
    let ckpt = args.checkpoint_options();
    let fig = fig5::generate_checkpointed(
        args.workload,
        args.workload_options(),
        &args.hidden,
        &Design::all_designs(),
        args.trials,
        args.episodes,
        args.seed,
        args.train_envs,
        args.chunk_cap,
        ckpt.as_ref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("fig5: {e}");
        std::process::exit(2);
    });
    let Some(fig) = fig else {
        eprintln!(
            "fig5: stopped by --stop-after with checkpoints in {}; \
             rerun with --resume (and without --stop-after) to finish",
            args.checkpoint_dir
                .as_ref()
                .expect("--stop-after requires --checkpoint-dir")
                .display()
        );
        telemetry::finish("fig5", &args);
        return;
    };
    println!(
        "# Figure 5 — execution time to complete ({})\n\n{}",
        args.workload,
        fig5::to_markdown(&fig)
    );
    println!(
        "\n## Speedups vs DQN (§4.4)\n\n{}",
        fig5::speedups_to_markdown(&fig)
    );
    let dir = args.out_dir();
    report::write_json(&dir, "fig5.json", &fig).expect("write fig5.json");
    report::write_text(&dir, "fig5.md", &fig5::to_markdown(&fig)).expect("write fig5.md");
    eprintln!("wrote {}/fig5.{{md,json}}", dir.display());
    telemetry::finish("fig5", &args);
}
