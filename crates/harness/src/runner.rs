//! Seeded, pool-parallel trial execution shared by every experiment.
//!
//! The runner is environment-generic: a [`TrialSpec`] names a registered
//! [`Workload`] and the environment, protocol defaults and cost-model
//! geometry are all resolved through the workload registry, so the full
//! 7-design matrix runs on every registered environment through this single
//! code path. Since PR 4 the `par_iter` below executes on a real
//! work-sharing thread pool (`--threads` / `ELMRL_THREADS` size it), so a
//! figure's independent seeded trials genuinely run concurrently; each
//! trial owns its RNG stream, so parallelism never changes results.

use crate::timing::{CostModel, ModeledTime};
use elmrl_core::checkpoint::RunCheckpoint;
use elmrl_core::designs::{Design, DesignConfig};
use elmrl_core::trainer::{CheckpointCtl, Trainer, TrainerConfig, TrainingResult};
use elmrl_fpga::{FpgaAgent, FpgaAgentConfig};
use elmrl_gym::{Workload, WorkloadOptions};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One trial specification: which design, on which workload, at which hidden
/// size, with which seed and episode protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrialSpec {
    /// Workload (environment) under test.
    pub workload: Workload,
    /// Workload variant knobs (e.g. the Pendulum torque discretisation).
    pub options: WorkloadOptions,
    /// Design under test.
    pub design: Design,
    /// Hidden width `Ñ`.
    pub hidden_dim: usize,
    /// RNG seed (environment and agent share the stream, as on the device).
    pub seed: u64,
    /// Parallel training episodes (the CLI's `--train-envs`). 1 — the
    /// default everywhere — runs the paper's scalar B = 1 episode loop
    /// byte-for-byte; E > 1 drives E concurrent episodes through
    /// [`elmrl_gym::VecEnv`] with batch-B updates
    /// ([`Trainer::run_vec`](elmrl_core::trainer::Trainer::run_vec)).
    pub train_envs: usize,
    /// RLS batch-width cap for the chunked OS-ELM designs (the CLI's
    /// `--chunk-cap`): ticks with more than this many stored transitions
    /// are split into cap-sized RLS chunks. `None` defers to
    /// [`elmrl_core::DEFAULT_CHUNK_CAP`]; result artifacts record the
    /// effective cap. Skipped when absent so artifacts from before the
    /// knob existed round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chunk_cap: Option<usize>,
    /// Trainer protocol.
    pub trainer: TrainerConfig,
}

impl TrialSpec {
    /// A CartPole spec with the default trainer protocol — shorthand for
    /// [`TrialSpec::for_workload`] with [`Workload::CartPole`].
    pub fn new(design: Design, hidden_dim: usize, seed: u64) -> Self {
        Self::for_workload(Workload::CartPole, design, hidden_dim, seed)
    }

    /// A spec using the workload's own trainer protocol (solve criterion,
    /// reward shaping, reset rule and episode budget from the registry) and
    /// the default [`WorkloadOptions`].
    pub fn for_workload(workload: Workload, design: Design, hidden_dim: usize, seed: u64) -> Self {
        let mut trainer = TrainerConfig::for_workload(&workload.spec());
        // The paper resets only the ELM/OS-ELM designs (§4.3).
        if design == Design::Dqn {
            trainer.reset_after_episodes = None;
        }
        Self {
            workload,
            options: WorkloadOptions::default(),
            design,
            hidden_dim,
            seed,
            train_envs: 1,
            chunk_cap: None,
            trainer,
        }
    }

    /// Override the workload variant knobs (the CLI's `--torque-levels` /
    /// `--solve-threshold` axes). The trainer's solve criterion is
    /// re-resolved from the re-optioned spec, so a `--solve-threshold`
    /// override reaches the episode loop; call this before any manual
    /// `trainer.solve_criterion` customisation.
    pub fn with_options(mut self, options: WorkloadOptions) -> Self {
        self.options = options;
        self.trainer.solve_criterion = self.workload.spec_with(options).solve_criterion;
        self
    }

    /// Override the number of parallel training episodes (the CLI's
    /// `--train-envs` axis). The workload's solve criterion and reward
    /// shaping are unchanged; only the episode driver switches from the
    /// scalar loop to the E-parallel one.
    pub fn with_train_envs(mut self, train_envs: usize) -> Self {
        self.train_envs = train_envs.max(1);
        self
    }

    /// Override the RLS batch-width cap (the CLI's `--chunk-cap`). Only
    /// meaningful for the chunked OS-ELM designs with `train_envs > 1`;
    /// `None` defers to [`elmrl_core::DEFAULT_CHUNK_CAP`].
    pub fn with_chunk_cap(mut self, chunk_cap: Option<usize>) -> Self {
        self.chunk_cap = chunk_cap.map(|c| c.max(1));
        self
    }

    /// Override the episode budget.
    pub fn with_max_episodes(mut self, max_episodes: usize) -> Self {
        self.trainer.max_episodes = max_episodes;
        self
    }

    /// Keep running after the solve criterion fires (full Figure 4 curves).
    pub fn collect_full_curve(mut self) -> Self {
        self.trainer.stop_when_solved = false;
        self
    }
}

/// The outcome of one trial, augmented with the on-device cost model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrialResult {
    /// The spec that produced this result.
    pub spec: TrialSpec,
    /// Raw training outcome (curves, op counts, host wall time).
    pub training: TrainingResult,
    /// Modeled on-device seconds (CPU for software designs, PL+CPU for FPGA).
    pub modeled: ModeledTime,
    /// For the FPGA design: simulated seconds from the cycle-accurate core
    /// (predict, seq_train, init_train) — `None` for software designs.
    pub fpga_simulated_seconds: Option<(f64, f64, f64)>,
}

impl TrialResult {
    /// The time-to-complete number used in Figure 5: modeled on-device
    /// seconds when the trial solved, `None` otherwise ("impossible").
    pub fn time_to_complete(&self) -> Option<f64> {
        if self.training.solved {
            Some(self.modeled.total_seconds)
        } else {
            None
        }
    }
}

/// Checkpoint/resume options for the checkpointed trial driver (the CLI's
/// `--checkpoint-dir` / `--checkpoint-every` / `--resume` / `--stop-after`
/// flags). Each trial writes its latest [`RunCheckpoint`] to one JSON file
/// in [`CheckpointOptions::dir`], named from the spec
/// ([`checkpoint_file_name`]), so a resumed sweep pairs every trial with its
/// own checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointOptions {
    /// Directory per-trial checkpoints are written to.
    pub dir: PathBuf,
    /// Capture a checkpoint every this many completed episodes.
    pub every: usize,
    /// Continue from the existing per-trial checkpoints in `dir` (trials
    /// without a checkpoint file start fresh).
    pub resume: bool,
    /// Fault injection: abandon every trial once this many episodes have
    /// completed. The boundary checkpoint is captured first, so
    /// `stop_after: Some(n)` with `every` dividing `n` simulates a crash at
    /// episode `n` with its checkpoint safely on disk.
    pub stop_after: Option<usize>,
}

/// The checkpoint file name for one trial spec: every axis that changes the
/// trajectory (workload, design, hidden size, seed, train-envs) is encoded,
/// so no two trials of one sweep share a file.
pub fn checkpoint_file_name(spec: &TrialSpec) -> String {
    let design_slug: String = spec
        .design
        .label()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    // An explicit chunk cap changes the trajectory whenever B exceeds it,
    // so it gets its own suffix; the absent default keeps the historical
    // name, so pre-existing checkpoints keep resuming.
    let cap_suffix = spec.chunk_cap.map(|c| format!("-c{c}")).unwrap_or_default();
    format!(
        "trial-{}-{}-h{}-s{}-e{}{}.json",
        spec.workload.slug(),
        design_slug,
        spec.hidden_dim,
        spec.seed,
        spec.train_envs,
        cap_suffix
    )
}

/// Run one trial. With `train_envs == 1` (the default) this is the paper's
/// scalar episode loop, byte-for-byte; with `train_envs > 1` the trial
/// drives E concurrent episodes through a [`elmrl_gym::VecEnv`] and trains
/// in batch-B chunks ([`Trainer::run_vec`]).
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    run_trial_checkpointed(spec, None)
        .expect("a trial without checkpointing cannot fail")
        .0
}

/// Run one trial under checkpoint control. Returns the result and whether
/// the trial ran to its natural end (`false` when the fault-injection
/// `stop_after` abandoned it early — the partial result must not enter any
/// artefact; resume from the checkpoint instead).
///
/// The determinism contract is inherited from
/// [`Trainer::run_checkpointed`](elmrl_core::trainer::Trainer): a trial
/// resumed from a checkpoint continues bit-for-bit identically to one that
/// never stopped, so artefacts built from resumed trials are byte-identical
/// to straight-through runs (host wall-clock aside — see
/// [`crate::deterministic_artifacts`]).
pub fn run_trial_checkpointed(
    spec: &TrialSpec,
    opts: Option<&CheckpointOptions>,
) -> Result<(TrialResult, bool), String> {
    let env_spec = spec.workload.spec_with(spec.options);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let trainer = Trainer::new(spec.trainer.clone());
    let cost = CostModel::for_workload(&env_spec, spec.hidden_dim);

    let path = opts.map(|o| o.dir.join(checkpoint_file_name(spec)));
    let resumed = match (opts, &path) {
        (Some(o), Some(p)) if o.resume && p.exists() => Some(RunCheckpoint::load(p)?),
        _ => None,
    };
    let save_path = path.clone();
    let mut sink = move |ckpt: RunCheckpoint| {
        if let Some(p) = &save_path {
            ckpt.save(p).expect("write trial checkpoint");
        }
    };
    let mut ctl = CheckpointCtl::default();
    if let Some(o) = opts {
        ctl.every = o.every.max(1);
        ctl.stop_after = o.stop_after;
        ctl.sink = Some(&mut sink);
    }
    ctl.resume = resumed.as_ref();

    let (training, fpga_simulated_seconds) = if spec.train_envs > 1 {
        let mut vec_env = elmrl_gym::VecEnv::from_spec(&env_spec, spec.train_envs);
        if spec.design == Design::Fpga {
            let mut agent = FpgaAgent::new(
                FpgaAgentConfig::for_workload(&env_spec, spec.hidden_dim),
                &mut rng,
            );
            let training =
                trainer.run_vec_checkpointed(&mut agent, &mut vec_env, &mut rng, &mut ctl)?;
            let breakdown = agent.simulated_breakdown_seconds();
            (training, Some(breakdown))
        } else {
            let mut config = DesignConfig::for_workload(&env_spec, spec.hidden_dim);
            config.chunk_cap = spec.chunk_cap;
            let mut agent = spec.design.build_batch(&config, &mut rng);
            (
                trainer.run_vec_checkpointed(agent.as_mut(), &mut vec_env, &mut rng, &mut ctl)?,
                None,
            )
        }
    } else {
        let mut env = env_spec.make_env();
        if spec.design == Design::Fpga {
            let mut agent = FpgaAgent::new(
                FpgaAgentConfig::for_workload(&env_spec, spec.hidden_dim),
                &mut rng,
            );
            let training =
                trainer.run_checkpointed(&mut agent, env.as_mut(), &mut rng, &mut ctl)?;
            let breakdown = agent.simulated_breakdown_seconds();
            (training, Some(breakdown))
        } else {
            let mut config = DesignConfig::for_workload(&env_spec, spec.hidden_dim);
            config.chunk_cap = spec.chunk_cap;
            let mut agent = spec.design.build(&config, &mut rng);
            (
                trainer.run_checkpointed(agent.as_mut(), env.as_mut(), &mut rng, &mut ctl)?,
                None,
            )
        }
    };
    let modeled = if spec.design == Design::Fpga {
        cost.model_fpga(&training.op_counts)
    } else {
        cost.model_software(&training.op_counts)
    };
    let complete = training.episodes_run >= spec.trainer.max_episodes
        || (spec.trainer.stop_when_solved && training.solved);
    // Record the *effective* RLS chunk cap in the artifact: the explicit
    // knob when given, otherwise the default — but only where the cap is
    // live at all (chunked OS-ELM designs driving batch-B ticks). Scalar
    // and non-RLS runs keep `None`, so pre-existing artifacts stay
    // byte-identical.
    let mut result_spec = spec.clone();
    if result_spec.chunk_cap.is_none() && spec.train_envs > 1 && spec.design.uses_chunked_rls() {
        result_spec.chunk_cap = Some(elmrl_core::DEFAULT_CHUNK_CAP);
    }
    Ok((
        TrialResult {
            spec: result_spec,
            modeled,
            fpga_simulated_seconds,
            training,
        },
        complete,
    ))
}

/// Run a batch of trials in parallel (one rayon task per trial).
pub fn run_trials(specs: &[TrialSpec]) -> Vec<TrialResult> {
    specs.par_iter().map(run_trial).collect()
}

/// Run a batch of trials in parallel under shared checkpoint control (the
/// checkpoint directory is created on demand). Each element carries the
/// trial's completion flag — see [`run_trial_checkpointed`].
pub fn run_trials_checkpointed(
    specs: &[TrialSpec],
    opts: Option<&CheckpointOptions>,
) -> Result<Vec<(TrialResult, bool)>, String> {
    if let Some(o) = opts {
        std::fs::create_dir_all(&o.dir)
            .map_err(|e| format!("create checkpoint dir {}: {e}", o.dir.display()))?;
    }
    let results: Vec<Result<(TrialResult, bool), String>> = specs
        .par_iter()
        .map(|spec| run_trial_checkpointed(spec, opts))
        .collect();
    results.into_iter().collect()
}

/// Aggregate statistics of one (workload, design, hidden size) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellSummary {
    /// Workload the cell ran on.
    pub workload: Workload,
    /// Design under test.
    pub design: Design,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Number of trials run.
    pub trials: usize,
    /// Number of trials that solved the task.
    pub solved_trials: usize,
    /// Mean modeled seconds to complete, over the solved trials.
    pub mean_time_to_complete: Option<f64>,
    /// Mean host wall-clock seconds over the solved trials.
    pub mean_wall_seconds: Option<f64>,
    /// Mean episodes to solve over the solved trials.
    pub mean_episodes_to_solve: Option<f64>,
    /// Mean modeled seconds per operation class, averaged over solved trials.
    pub mean_per_op_seconds: std::collections::BTreeMap<String, f64>,
}

/// Summarise a set of trials of the same cell.
pub fn summarize_cell(
    workload: Workload,
    design: Design,
    hidden_dim: usize,
    results: &[TrialResult],
) -> CellSummary {
    let solved: Vec<&TrialResult> = results.iter().filter(|r| r.training.solved).collect();
    let mean = |values: Vec<f64>| {
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    };
    let mut per_op: std::collections::BTreeMap<String, f64> = Default::default();
    if !solved.is_empty() {
        for r in &solved {
            for (k, v) in &r.modeled.per_op_seconds {
                *per_op.entry(k.clone()).or_insert(0.0) += v;
            }
        }
        for v in per_op.values_mut() {
            *v /= solved.len() as f64;
        }
    }
    CellSummary {
        workload,
        design,
        hidden_dim,
        trials: results.len(),
        solved_trials: solved.len(),
        mean_time_to_complete: mean(solved.iter().map(|r| r.modeled.total_seconds).collect()),
        // Host wall-clock is the one nondeterministic number in fig5.json;
        // the deterministic-artifact mode zeroes it so checkpoint/resume
        // pairs (and reruns in general) compare byte-for-byte.
        mean_wall_seconds: if crate::deterministic_artifacts() {
            if solved.is_empty() {
                None
            } else {
                Some(0.0)
            }
        } else {
            mean(solved.iter().map(|r| r.training.wall_seconds()).collect())
        },
        mean_episodes_to_solve: mean(
            solved
                .iter()
                .filter_map(|r| r.training.solved_at_episode.map(|e| e as f64 + 1.0))
                .collect(),
        ),
        mean_per_op_seconds: per_op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_spec_disables_resets_for_dqn_only() {
        assert!(TrialSpec::new(Design::Dqn, 16, 0)
            .trainer
            .reset_after_episodes
            .is_none());
        assert!(TrialSpec::new(Design::OsElmL2, 16, 0)
            .trainer
            .reset_after_episodes
            .is_some());
        // …for every workload, not just CartPole.
        for workload in Workload::all() {
            assert!(
                TrialSpec::for_workload(workload, Design::Dqn, 16, 0)
                    .trainer
                    .reset_after_episodes
                    .is_none(),
                "{workload:?}"
            );
        }
    }

    #[test]
    fn new_defaults_to_the_cartpole_workload() {
        let spec = TrialSpec::new(Design::OsElmL2, 16, 0);
        assert_eq!(spec.workload, Workload::CartPole);
        assert_eq!(spec.trainer, TrainerConfig::default());
    }

    #[test]
    fn software_and_fpga_trials_produce_consistent_results() {
        let spec_sw = TrialSpec::new(Design::OsElmL2Lipschitz, 8, 3).with_max_episodes(5);
        let r_sw = run_trial(&spec_sw);
        assert_eq!(r_sw.training.episodes_run, 5);
        assert!(r_sw.modeled.total_seconds > 0.0);
        assert!(r_sw.fpga_simulated_seconds.is_none());

        let spec_hw = TrialSpec::new(Design::Fpga, 8, 3).with_max_episodes(5);
        let r_hw = run_trial(&spec_hw);
        assert_eq!(r_hw.training.design, "FPGA");
        assert!(r_hw.fpga_simulated_seconds.is_some());
        // FPGA-modeled time must beat the CPU-modeled time for the same design
        // family at equal hidden size (the op mix is similar).
        assert!(r_hw.modeled.total_seconds < r_sw.modeled.total_seconds * 2.0);
    }

    #[test]
    fn every_design_runs_on_every_workload() {
        // The acceptance criterion of the environment-generic refactor: the
        // full design matrix × the full registry through one code path.
        let specs: Vec<TrialSpec> = Workload::all()
            .into_iter()
            .flat_map(|w| {
                Design::all_designs()
                    .into_iter()
                    .map(move |d| TrialSpec::for_workload(w, d, 8, 17).with_max_episodes(2))
            })
            .collect();
        let results = run_trials(&specs);
        assert_eq!(results.len(), Workload::all().len() * 7);
        for r in &results {
            assert_eq!(r.training.episodes_run, 2, "{:?}", r.spec);
            assert!(r.training.total_steps > 0);
            assert!(r.modeled.total_seconds > 0.0);
            assert!(r.training.stats.returns.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn workload_trials_are_deterministic_given_seed() {
        for workload in [Workload::MountainCar, Workload::Pendulum] {
            let spec =
                TrialSpec::for_workload(workload, Design::OsElmL2, 8, 5).with_max_episodes(3);
            let a = run_trial(&spec);
            let b = run_trial(&spec);
            assert_eq!(a.training.stats.returns, b.training.stats.returns);
            assert_eq!(a.training.total_steps, b.training.total_steps);
        }
    }

    #[test]
    fn workload_options_thread_through_to_the_environment() {
        let base =
            TrialSpec::for_workload(Workload::Pendulum, Design::OsElmL2, 8, 5).with_max_episodes(2);
        assert_eq!(base.options, WorkloadOptions::default());
        let coarse = run_trial(&base);
        let fine = run_trial(&base.clone().with_options(WorkloadOptions {
            torque_levels: 9,
            ..WorkloadOptions::default()
        }));
        assert_eq!(coarse.training.episodes_run, 2);
        assert_eq!(fine.training.episodes_run, 2);
        // A 9-level torque set changes the policy's action draws, so the
        // trajectories must diverge from the 3-level default.
        assert_ne!(coarse.training.stats.returns, fine.training.stats.returns);
    }

    #[test]
    fn train_envs_trials_run_every_design_deterministically() {
        // The E-parallel driver must cover the whole design matrix (incl.
        // the FPGA fixed-point agent through its BatchAgent impl) and stay
        // a pure function of the spec.
        for design in [Design::OsElmL2Lipschitz, Design::Dqn, Design::Fpga] {
            let spec = TrialSpec::new(design, 8, 13)
                .with_max_episodes(4)
                .with_train_envs(3);
            assert_eq!(spec.train_envs, 3);
            let a = run_trial(&spec);
            let b = run_trial(&spec);
            assert_eq!(
                a.training.stats.returns, b.training.stats.returns,
                "{design:?}"
            );
            assert_eq!(a.training.episodes_run, 4, "{design:?}");
            assert!(a.training.total_steps >= 4, "{design:?}");
            if design == Design::Fpga {
                assert!(a.fpga_simulated_seconds.is_some());
            }
            // The batched act path must feed the Figure 5/6 prediction
            // counters exactly like the scalar `act`, so the modeled
            // execution times stay design-comparable at any E.
            use elmrl_core::ops::OpKind;
            let predictions = a.training.op_counts.count(OpKind::Predict1)
                + a.training.op_counts.count(OpKind::PredictInit)
                + a.training.op_counts.count(OpKind::PredictSeq);
            assert!(
                predictions as usize >= a.training.total_steps,
                "{design:?}: every E-parallel decision must be counted"
            );
            // And E must actually change the trajectory vs. the scalar loop.
            let scalar = run_trial(&spec.clone().with_train_envs(1));
            assert_ne!(
                scalar.training.stats.returns, a.training.stats.returns,
                "{design:?}: E > 1 must not silently replay the scalar loop"
            );
        }
    }

    #[test]
    fn solve_threshold_option_reaches_the_trainer() {
        let base = TrialSpec::for_workload(Workload::MountainCar, Design::OsElmL2, 8, 5);
        assert_eq!(
            base.trainer.solve_criterion,
            elmrl_gym::SolveCriterion::EpisodeReturn { threshold: -150.0 }
        );
        let overridden = base.with_options(WorkloadOptions {
            solve_threshold: Some(-120.0),
            ..WorkloadOptions::default()
        });
        assert_eq!(
            overridden.trainer.solve_criterion,
            elmrl_gym::SolveCriterion::EpisodeReturn { threshold: -120.0 }
        );
    }

    #[test]
    fn parallel_trials_and_cell_summary() {
        let specs: Vec<TrialSpec> = (0..3)
            .map(|s| TrialSpec::new(Design::OsElmL2, 8, s).with_max_episodes(4))
            .collect();
        let results = run_trials(&specs);
        assert_eq!(results.len(), 3);
        let summary = summarize_cell(Workload::CartPole, Design::OsElmL2, 8, &results);
        assert_eq!(summary.trials, 3);
        assert_eq!(summary.workload, Workload::CartPole);
        assert!(summary.solved_trials <= 3);
        if summary.solved_trials == 0 {
            assert!(summary.mean_time_to_complete.is_none());
        }
    }

    #[test]
    fn unsolved_trials_report_no_completion_time() {
        let spec = TrialSpec::new(Design::OsElm, 8, 1).with_max_episodes(2);
        let r = run_trial(&spec);
        if !r.training.solved {
            assert!(r.time_to_complete().is_none());
        }
    }

    #[test]
    fn result_spec_records_the_effective_chunk_cap() {
        // Scalar runs: the cap is inert — stays None, so artifacts written
        // before the knob existed keep their exact bytes.
        let scalar = run_trial(&TrialSpec::new(Design::OsElmL2, 8, 3).with_max_episodes(2));
        assert_eq!(scalar.spec.chunk_cap, None);

        // Chunked OS-ELM runs record the default when the knob was absent…
        let batched = run_trial(
            &TrialSpec::new(Design::OsElmL2, 8, 3)
                .with_max_episodes(2)
                .with_train_envs(3),
        );
        assert_eq!(batched.spec.chunk_cap, Some(elmrl_core::DEFAULT_CHUNK_CAP));

        // …and the explicit knob when given.
        let capped = run_trial(
            &TrialSpec::new(Design::OsElmL2, 8, 3)
                .with_max_episodes(2)
                .with_train_envs(3)
                .with_chunk_cap(Some(2)),
        );
        assert_eq!(capped.spec.chunk_cap, Some(2));

        // Designs without the chunked RLS update never record a cap.
        let dqn = run_trial(
            &TrialSpec::new(Design::Dqn, 8, 3)
                .with_max_episodes(2)
                .with_train_envs(3),
        );
        assert_eq!(dqn.spec.chunk_cap, None);
    }

    #[test]
    fn chunk_cap_below_the_tick_width_stays_deterministic() {
        // B = 3 ticks with a cap of 1 split every tick into single-row RLS
        // chunks (Eq. 6 applied per chunk is algebraically equivalent, so
        // the behaviour may coincide at short horizons — the float-level
        // divergence is pinned at the core layer where β is observable).
        // The capped run must complete and stay a pure function of the
        // spec.
        let capped = TrialSpec::new(Design::OsElmL2Lipschitz, 8, 13)
            .with_max_episodes(4)
            .with_train_envs(3)
            .with_chunk_cap(Some(1));
        let a = run_trial(&capped);
        let b = run_trial(&capped);
        assert_eq!(a.training.stats.returns, b.training.stats.returns);
        assert_eq!(a.training.episodes_run, 4);
        assert_eq!(a.spec.chunk_cap, Some(1));
    }

    #[test]
    fn checkpoint_names_keep_historical_form_without_a_cap() {
        let spec = TrialSpec::new(Design::OsElmL2Lipschitz, 16, 7).with_train_envs(4);
        assert_eq!(
            checkpoint_file_name(&spec),
            "trial-cart-pole-os-elm-l2-lipschitz-h16-s7-e4.json"
        );
        // An explicit cap changes the trajectory, so it gets its own file.
        assert_eq!(
            checkpoint_file_name(&spec.with_chunk_cap(Some(8))),
            "trial-cart-pole-os-elm-l2-lipschitz-h16-s7-e4-c8.json"
        );
    }

    #[test]
    fn high_dim_workload_runs_the_full_trial_path() {
        let spec = TrialSpec::for_workload(Workload::HighDim, Design::OsElmL2Lipschitz, 8, 21)
            .with_options(WorkloadOptions {
                obs_dim: Some(16),
                ..WorkloadOptions::default()
            })
            .with_max_episodes(2);
        let r = run_trial(&spec);
        assert_eq!(r.training.episodes_run, 2);
        assert!(r.training.total_steps > 0);
        assert!(r.training.stats.returns.iter().all(|v| v.is_finite()));
        // The padded width reaches the agent: a different obs_dim changes
        // the RNG consumption and therefore the trajectory.
        let wider = run_trial(&spec.clone().with_options(WorkloadOptions {
            obs_dim: Some(32),
            ..WorkloadOptions::default()
        }));
        assert_ne!(r.training.stats.returns, wider.training.stats.returns);
    }
}
