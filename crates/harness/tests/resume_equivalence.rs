//! Resume equivalence — the PR 6 acceptance criterion, end to end.
//!
//! A sweep stopped at episode N (the fault-injection `--stop-after` path,
//! boundary checkpoint on disk) and finished under `--resume` must produce
//! artefact bytes identical to a sweep that never stopped, for N at the
//! first, middle and last episode and for both the scalar (`--train-envs 1`)
//! and vectorized (`--train-envs 4`) drivers. Likewise the population
//! engine: a `--fail-shard` kill, a manifest-resume after a driver crash,
//! or any shard count must leave `population.json` byte-identical.
//!
//! Artefacts are compared through the same serializer the binaries use
//! (`serde_json::to_string_pretty`, what `report::write_json` writes), with
//! `ELMRL_ZERO_WALL_TIME` set: host wall-clock is the one measured (hence
//! irreproducible) number in fig5.json, and the deterministic-artifact mode
//! exists precisely so the CI `cmp` job can hold the rest to byte identity.

use elmrl_core::designs::Design;
use elmrl_gym::{Workload, WorkloadOptions};
use elmrl_harness::runner::CheckpointOptions;
use elmrl_harness::{fig4, fig5};
use elmrl_population::{FaultPlan, PopulationConfig, PopulationRunner, ShardManifest};
use std::path::PathBuf;

const DESIGNS: [Design; 3] = [Design::OsElmL2Lipschitz, Design::Dqn, Design::Fpga];
const EPISODES: usize = 6;
const TRIALS: usize = 2;
const SEED: u64 = 77;

fn zero_wall_time() {
    // Process-global, but every test in this binary wants it on.
    std::env::set_var("ELMRL_ZERO_WALL_TIME", "1");
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elmrl-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fig5_json(train_envs: usize, ckpt: Option<&CheckpointOptions>) -> Option<String> {
    fig5::generate_checkpointed(
        Workload::CartPole,
        WorkloadOptions::default(),
        &[8],
        &DESIGNS,
        TRIALS,
        EPISODES,
        SEED,
        train_envs,
        None,
        ckpt,
    )
    .expect("sweep must not error")
    .map(|fig| serde_json::to_string_pretty(&fig).expect("serialize fig5"))
}

#[test]
fn fig5_resume_is_byte_identical_at_first_middle_and_last_episode() {
    zero_wall_time();
    for train_envs in [1, 4] {
        let straight = fig5_json(train_envs, None).expect("straight-through sweep completes");
        for stop_at in [1, EPISODES / 2, EPISODES] {
            let dir = scratch_dir(&format!("fig5-e{train_envs}-n{stop_at}"));
            // Phase 1: run to episode `stop_at`, checkpoint, abandon.
            let first = fig5_json(
                train_envs,
                Some(&CheckpointOptions {
                    dir: dir.clone(),
                    every: 1,
                    resume: false,
                    stop_after: Some(stop_at),
                }),
            );
            if stop_at < EPISODES {
                assert!(
                    first.is_none(),
                    "e{train_envs}/n{stop_at}: a stopped sweep must not emit an artefact"
                );
            } else {
                // Stopping at the last episode is a completed run.
                assert_eq!(first.as_deref(), Some(straight.as_str()));
            }
            // Phase 2: resume from the checkpoints and finish.
            let resumed = fig5_json(
                train_envs,
                Some(&CheckpointOptions {
                    dir: dir.clone(),
                    every: 1,
                    resume: true,
                    stop_after: None,
                }),
            )
            .expect("resumed sweep completes");
            assert_eq!(
                resumed, straight,
                "e{train_envs}/n{stop_at}: resumed fig5.json must be byte-identical"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn fig4_resume_reproduces_the_training_curves_byte_for_byte() {
    zero_wall_time();
    let straight = fig4::generate_with(
        Workload::CartPole,
        WorkloadOptions::default(),
        &[8],
        4,
        SEED,
        1,
    );
    let straight = serde_json::to_string_pretty(&straight).unwrap();
    let dir = scratch_dir("fig4");
    let stopped = fig4::generate_checkpointed(
        Workload::CartPole,
        WorkloadOptions::default(),
        &[8],
        4,
        SEED,
        1,
        None,
        Some(&CheckpointOptions {
            dir: dir.clone(),
            every: 2,
            resume: false,
            stop_after: Some(2),
        }),
    )
    .unwrap();
    assert!(stopped.is_none());
    let resumed = fig4::generate_checkpointed(
        Workload::CartPole,
        WorkloadOptions::default(),
        &[8],
        4,
        SEED,
        1,
        None,
        Some(&CheckpointOptions {
            dir: dir.clone(),
            every: 2,
            resume: true,
            stop_after: None,
        }),
    )
    .unwrap()
    .expect("resumed fig4 completes");
    assert_eq!(serde_json::to_string_pretty(&resumed).unwrap(), straight);
    let _ = std::fs::remove_dir_all(&dir);
}

fn tiny_population(shards: usize, train_envs: usize) -> PopulationConfig {
    let mut config = PopulationConfig::new(Workload::CartPole, Design::OsElmL2Lipschitz, 8, 6);
    config.shards = shards;
    config.seed = 11;
    config.max_episodes = 4;
    config.eval_episodes = 2;
    config.train_envs = train_envs;
    config
}

#[test]
fn population_json_survives_shard_failure_at_any_shard_count() {
    zero_wall_time();
    for train_envs in [1, 4] {
        let baseline = PopulationRunner::new(tiny_population(2, train_envs)).run();
        let baseline = serde_json::to_string_pretty(&baseline).unwrap();
        for shards in [2, 3] {
            let faulted = PopulationRunner::new(tiny_population(shards, train_envs))
                .run_checkpointed(
                    Some(FaultPlan {
                        shard: shards - 1,
                        at_episode: 2,
                    }),
                    &[],
                );
            assert_eq!(
                serde_json::to_string_pretty(&faulted.report).unwrap(),
                baseline,
                "shards={shards}, train_envs={train_envs}: population.json must \
                 be byte-identical under shard failure"
            );
        }
    }
}

#[test]
fn population_manifest_resume_round_trips_through_disk() {
    zero_wall_time();
    let baseline = PopulationRunner::new(tiny_population(3, 1)).run();
    let baseline = serde_json::to_string_pretty(&baseline).unwrap();

    // Crash scenario: shard 1 dies immediately, and the driver dies before
    // the requeue wave — only the wave-1 survivors' manifests reach disk.
    let crashed = PopulationRunner::new(tiny_population(3, 1)).run_checkpointed(
        Some(FaultPlan {
            shard: 1,
            at_episode: 0,
        }),
        &[],
    );
    let dir = scratch_dir("population-manifests");
    std::fs::create_dir_all(&dir).unwrap();
    for manifest in &crashed.manifests {
        // Drop the requeued outcomes to simulate the driver dying before
        // wave 2 finished: keep only replicas each shard originally owned.
        let mut partial = manifest.clone();
        partial
            .completed
            .retain(|o| manifest.assigned.contains(&o.replica));
        partial.save(&dir).unwrap();
    }

    let resumed_from = ShardManifest::load_dir(&dir).unwrap();
    assert_eq!(resumed_from.len(), 3);
    let resumed =
        PopulationRunner::new(tiny_population(3, 1)).run_checkpointed(None, &resumed_from);
    assert_eq!(
        serde_json::to_string_pretty(&resumed.report).unwrap(),
        baseline,
        "a manifest-resumed population run must reproduce population.json exactly"
    );
    // The re-written manifests cover the whole population with no shard
    // marked failed.
    let replicas: usize = resumed.manifests.iter().map(|m| m.completed.len()).sum();
    assert_eq!(replicas, 6);
    assert!(resumed.manifests.iter().all(|m| !m.failed));
    let _ = std::fs::remove_dir_all(&dir);
}
