//! The engine's notion of time: a real wall clock for production runs and a
//! deterministic virtual clock for tests, goldens and CI.
//!
//! Every latency-budget decision in the coalescer ([`crate::ServeEngine`])
//! and every reported request latency reads microseconds from a
//! [`ServeClock`], never from [`Instant`] directly. In virtual mode the
//! clock advances by exactly [`VIRTUAL_ROUND_US`] per engine round and is
//! frozen *within* a round, so batch composition, flush decisions and the
//! reported latency of every ticket are pure functions of the request
//! sequence — byte-identical at any `--workers` count and on any host.

use std::time::Instant;

/// Modeled microseconds one engine round (submit → pump → respond) takes on
/// the virtual clock. The absolute value is arbitrary — it only needs to be
/// positive so queue ages grow and latency quantiles are non-trivial — but
/// it is part of the golden artifacts, so changing it is a schema change.
pub const VIRTUAL_ROUND_US: u64 = 100;

/// A microsecond clock: real (`Wall`) or deterministic (`Virtual`).
#[derive(Debug)]
pub enum ServeClock {
    /// Deterministic mode: time is `rounds elapsed × VIRTUAL_ROUND_US`.
    Virtual {
        /// Current virtual time in microseconds.
        now_us: u64,
    },
    /// Real mode: time is microseconds since engine start.
    Wall {
        /// The instant the clock was created.
        start: Instant,
    },
}

impl ServeClock {
    /// A deterministic clock starting at 0 µs.
    pub fn virtual_clock() -> Self {
        ServeClock::Virtual { now_us: 0 }
    }

    /// A real clock starting now.
    pub fn wall() -> Self {
        ServeClock::Wall {
            start: Instant::now(),
        }
    }

    /// Build from the CLI's `--virtual-clock` flag.
    pub fn from_flag(virtual_clock: bool) -> Self {
        if virtual_clock {
            Self::virtual_clock()
        } else {
            Self::wall()
        }
    }

    /// Whether this is the deterministic clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self, ServeClock::Virtual { .. })
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            ServeClock::Virtual { now_us } => *now_us,
            ServeClock::Wall { start } => start.elapsed().as_micros() as u64,
        }
    }

    /// Mark the start of one engine round. The virtual clock jumps forward
    /// by [`VIRTUAL_ROUND_US`] and then stands still until the next round;
    /// the wall clock ignores this (real time just passes).
    pub fn advance_round(&mut self) {
        if let ServeClock::Virtual { now_us } = self {
            *now_us += VIRTUAL_ROUND_US;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_by_fixed_rounds() {
        let mut clock = ServeClock::virtual_clock();
        assert!(clock.is_virtual());
        assert_eq!(clock.now_us(), 0);
        clock.advance_round();
        assert_eq!(clock.now_us(), VIRTUAL_ROUND_US);
        // Frozen within a round: repeated reads are identical.
        assert_eq!(clock.now_us(), VIRTUAL_ROUND_US);
        clock.advance_round();
        assert_eq!(clock.now_us(), 2 * VIRTUAL_ROUND_US);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let mut clock = ServeClock::wall();
        assert!(!clock.is_virtual());
        let a = clock.now_us();
        clock.advance_round(); // no-op
        let b = clock.now_us();
        assert!(b >= a);
    }
}
