//! The `serve.json` result artifact: configuration echo, throughput,
//! batch composition, latency digest and client-side episode statistics.
//!
//! Everything except the two wall-clock fields is a pure function of the
//! configuration and seed, so a virtual-clock run serialized with
//! `zero_wall_time` (the harness's `ELMRL_ZERO_WALL_TIME` convention) is
//! byte-identical across hosts and `--workers` values — the CI golden.

use crate::session::SessionStats;
use crate::stats::{BatchSizeBucket, LatencySummary, ServeStats};
use crate::ServeConfig;
use serde::Serialize;

/// The serialized outcome of one serve run.
#[derive(Clone, Debug, Serialize)]
pub struct ServeReport {
    /// Workload slug the sessions ran.
    pub workload: String,
    /// Served design label.
    pub design: String,
    /// Hidden width of the served policy.
    pub hidden_dim: usize,
    /// Number of client sessions.
    pub sessions: usize,
    /// Number of agent workers.
    pub workers: usize,
    /// Batch-size cap (`--max-batch`).
    pub max_batch: usize,
    /// Latency budget (`--batch-window-us`).
    pub batch_window_us: u64,
    /// Engine rounds driven (`--duration-ticks`).
    pub duration_ticks: u64,
    /// Master seed.
    pub seed: u64,
    /// Whether the deterministic virtual clock was used.
    pub virtual_clock: bool,
    /// Maximum think-time rounds between a response and the session's next
    /// request (0 = closed loop).
    pub think_ticks: u64,
    /// Warm-up training episodes behind the served policy.
    pub warmup_episodes: usize,
    /// Requests accepted.
    pub requests: u64,
    /// Responses routed back.
    pub responses: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
    /// Batch-composition table (non-empty sizes only).
    pub batch_sizes: Vec<BatchSizeBucket>,
    /// Enqueue→response latency digest on the engine clock.
    pub latency: LatencySummary,
    /// Deepest request queue observed at a round boundary.
    pub queue_depth_peak: usize,
    /// Client-side episodes finished across all sessions.
    pub episodes_completed: u64,
    /// Client-side environment steps across all sessions.
    pub env_steps: u64,
    /// Mean return per completed episode (`None` before any completes).
    pub mean_episode_return: Option<f64>,
    /// Host wall-clock seconds of the serve loop (0 when zeroed for golden
    /// comparison).
    pub wall_seconds: f64,
    /// Responses per host wall-clock second (0 when zeroed).
    pub requests_per_second: f64,
}

impl ServeReport {
    /// Assemble the artifact. `wall_seconds` is the measured loop time;
    /// pass `zero_wall_time` to blank both host-dependent fields (the
    /// harness sets it from `ELMRL_ZERO_WALL_TIME`).
    pub fn assemble(
        config: &ServeConfig,
        engine_stats: &ServeStats,
        session_stats: &SessionStats,
        wall_seconds: f64,
        zero_wall_time: bool,
    ) -> Self {
        let (wall_seconds, requests_per_second) = if zero_wall_time || wall_seconds <= 0.0 {
            (0.0, 0.0)
        } else {
            (wall_seconds, engine_stats.responses as f64 / wall_seconds)
        };
        Self {
            workload: config.workload_slug.clone(),
            design: config.design.label().to_string(),
            hidden_dim: config.hidden_dim,
            sessions: config.sessions,
            workers: config.workers,
            max_batch: config.max_batch,
            batch_window_us: config.batch_window_us,
            duration_ticks: config.duration_ticks,
            seed: config.seed,
            virtual_clock: config.virtual_clock,
            think_ticks: config.think_ticks,
            warmup_episodes: config.warmup_episodes,
            requests: engine_stats.requests,
            responses: engine_stats.responses,
            batches: engine_stats.batches,
            mean_batch_size: engine_stats.mean_batch_size(),
            batch_sizes: engine_stats.batch_size_buckets(),
            latency: engine_stats.latency.summary(),
            queue_depth_peak: engine_stats.queue_depth_peak,
            episodes_completed: session_stats.episodes_completed,
            env_steps: session_stats.env_steps,
            mean_episode_return: session_stats.mean_episode_return(),
            wall_seconds,
            requests_per_second,
        }
    }
}
