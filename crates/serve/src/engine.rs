//! The serve engine: ticketed request queue, latency-budgeted batch
//! coalescer, and worker dispatch.
//!
//! # Data flow
//!
//! ```text
//! session ──enqueue(obs)──► staging row + FIFO ticket queue
//!                                   │ pump()
//!                     coalescer: flush when a batch is full
//!                     (≥ max_batch) or the oldest ticket's age
//!                     reaches batch_window_us
//!                                   │ ≤ workers batches per wave
//!                     workers: predict_batch_into + greedy argmax
//!                     (PR-4 pool when more than one worker)
//!                                   │
//! session ◄──Response { ticket, action, latency }── response buffer
//! ```
//!
//! # Determinism
//!
//! Batches are composed *centrally*, by popping the FIFO queue in ticket
//! order — the worker count only decides how many of those batches run
//! concurrently in one wave, never what is in them. All worker policies are
//! bit-identical and inference consumes no RNG, so on the virtual clock the
//! full response stream is byte-identical at any `--workers` value (pinned
//! by `tests/determinism.rs` and the CI `serve_smoke` `cmp`).
//!
//! # Allocation discipline
//!
//! Everything is preallocated at construction: the staging matrix holds one
//! row per session, the queue's ring buffer holds one slot per session
//! (each session has at most one ticket in flight), and every worker owns
//! its batch/Q/action scratch. With one worker the hot loop (enqueue →
//! coalesce → predict → respond) performs **zero** heap allocations at
//! steady state (counting-allocator test); with several workers the only
//! allocations are the pool-dispatch list of one `par_iter` call per wave,
//! the same plumbing every PR-4 parallel section pays.

use crate::clock::ServeClock;
use crate::stats::ServeStats;
use crate::worker::Worker;
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One pending inference request: which session asked, when, and the ticket
/// the response will carry. The observation itself lives in the engine's
/// staging matrix (one row per session — a session has at most one request
/// in flight).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Monotonically increasing ticket (unique per request).
    pub ticket: u64,
    /// Index of the submitting session.
    pub session: usize,
    /// Clock reading at enqueue (µs).
    pub enqueued_us: u64,
}

/// One routed response: the greedy action for a session's observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Response {
    /// Ticket of the request this answers.
    pub ticket: u64,
    /// The session the response routes back to.
    pub session: usize,
    /// Greedy action under the served policy.
    pub action: usize,
    /// Enqueue→response latency (µs) on the engine clock.
    pub latency_us: u64,
}

/// Coalescing knobs of a [`ServeEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum rows per dispatched batch (`--max-batch`). 1 degenerates to
    /// per-request dispatch — the bench baseline.
    pub max_batch: usize,
    /// Latency budget (`--batch-window-us`): a partial batch is held back
    /// until its oldest ticket is this old, then flushed regardless of
    /// size. 0 flushes everything pending on every pump.
    pub batch_window_us: u64,
}

/// The request/response inference engine (see the module docs).
pub struct ServeEngine {
    config: EngineConfig,
    obs_dim: usize,
    /// One staged observation row per session.
    staging: elmrl_linalg::Matrix<f64>,
    /// Whether a session currently has a ticket in the queue.
    in_flight: Vec<bool>,
    /// FIFO of pending requests (ring buffer, capacity = sessions).
    queue: VecDeque<Request>,
    /// Worker shards; `Mutex` so a wave can run them via `par_iter` over
    /// `&[Mutex<Worker>]` (the rayon shim has no mutable parallel
    /// iteration). Uncontended by construction — each wave locks a worker
    /// exactly once.
    workers: Vec<Mutex<Worker>>,
    /// Responses of the current pump, in batch-composition order.
    responses: Vec<Response>,
    next_ticket: u64,
    stats: ServeStats,
}

impl ServeEngine {
    /// An engine for `sessions` clients over the given (pre-warmed) workers.
    pub fn new(
        sessions: usize,
        obs_dim: usize,
        workers: Vec<Worker>,
        config: EngineConfig,
    ) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(!workers.is_empty(), "need at least one worker");
        Self {
            config,
            obs_dim,
            staging: elmrl_linalg::Matrix::zeros(sessions.max(1), obs_dim),
            in_flight: vec![false; sessions],
            queue: VecDeque::with_capacity(sessions + 1),
            workers: workers.into_iter().map(Mutex::new).collect(),
            responses: Vec::with_capacity(sessions),
            next_ticket: 0,
            stats: ServeStats::new(config.max_batch),
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Requests waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Aggregate counters and latency distribution so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Accept one observation from `session`; returns the response ticket.
    ///
    /// Panics if the session already has a request in flight (the engine
    /// stores exactly one staged observation per session).
    pub fn enqueue(&mut self, session: usize, obs: &[f64], now_us: u64) -> u64 {
        assert!(
            !self.in_flight[session],
            "session {session} already has a request in flight"
        );
        assert_eq!(obs.len(), self.obs_dim, "observation width mismatch");
        self.staging.row_mut(session).copy_from_slice(obs);
        self.in_flight[session] = true;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.queue.push_back(Request {
            ticket,
            session,
            enqueued_us: now_us,
        });
        self.stats.requests += 1;
        elmrl_telemetry::counter!("serve.requests").inc();
        ticket
    }

    /// Should the batch at the queue head flush now? Full batches always
    /// flush; partial ones wait out the latency budget of their oldest
    /// ticket.
    fn head_flushable(&self, now_us: u64) -> bool {
        match self.queue.front() {
            None => false,
            Some(_) if self.queue.len() >= self.config.max_batch => true,
            Some(front) => now_us.saturating_sub(front.enqueued_us) >= self.config.batch_window_us,
        }
    }

    /// One engine round: advance the clock, then repeatedly coalesce
    /// flush-ready batches (ticket order, ≤ `max_batch` rows) and dispatch
    /// them across the workers in waves until nothing else may flush.
    /// Returns the responses of this round in batch-composition order.
    pub fn pump(&mut self, clock: &mut ServeClock) -> &[Response] {
        self.responses.clear();
        clock.advance_round();
        self.stats.queue_depth_peak = self.stats.queue_depth_peak.max(self.queue.len());
        elmrl_telemetry::gauge!("serve.queue_depth").set(self.queue.len() as i64);

        loop {
            let now_us = clock.now_us();
            if !self.head_flushable(now_us) {
                break;
            }
            // Compose up to `workers` batches for this wave, strictly in
            // ticket order.
            let mut wave = 0;
            while wave < self.workers.len() && self.head_flushable(now_us) {
                let size = self.queue.len().min(self.config.max_batch);
                let worker = self.workers[wave].get_mut().expect("worker lock poisoned");
                worker.begin_batch(size, self.obs_dim);
                for _ in 0..size {
                    let request = self.queue.pop_front().expect("sized above");
                    worker.push_row(request, self.staging.row(request.session));
                }
                self.stats.batches += 1;
                self.stats.batch_size_counts[size] += 1;
                elmrl_telemetry::hist!("serve.batch_size").record_ns(size as u64);
                wave += 1;
            }
            // Dispatch the wave. A single batch runs inline (this keeps the
            // one-worker hot loop allocation-free); a multi-batch wave fans
            // out over the PR-4 pool. Which path runs never affects
            // results: batches were already composed above.
            {
                let _span = elmrl_telemetry::hist!("serve.dispatch").span();
                if wave == 1 {
                    self.workers[0]
                        .get_mut()
                        .expect("worker lock poisoned")
                        .run_batch();
                } else {
                    self.workers[..wave].par_iter().for_each(|slot| {
                        slot.lock().expect("worker lock poisoned").run_batch();
                    });
                }
            }
            // Route responses in batch-composition order.
            let response_us = clock.now_us();
            for slot in &mut self.workers[..wave] {
                let worker = slot.get_mut().expect("worker lock poisoned");
                for (request, action) in worker.results() {
                    let latency_us = response_us.saturating_sub(request.enqueued_us);
                    self.responses.push(Response {
                        ticket: request.ticket,
                        session: request.session,
                        action,
                        latency_us,
                    });
                    self.in_flight[request.session] = false;
                    self.stats.responses += 1;
                    self.stats.latency.record_us(latency_us);
                    elmrl_telemetry::hist!("serve.request").record_ns(latency_us * 1_000);
                }
            }
        }
        &self.responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::build_workers;
    use elmrl_core::designs::Design;
    use elmrl_gym::Workload;

    fn engine(sessions: usize, workers: usize, config: EngineConfig) -> ServeEngine {
        let spec = Workload::CartPole.spec();
        let pool = build_workers(
            Design::OsElmL2Lipschitz,
            &spec,
            16,
            workers,
            config.max_batch,
            11,
            2,
        );
        ServeEngine::new(sessions, spec.observation_dim, pool, config)
    }

    #[test]
    fn full_batches_flush_immediately() {
        let mut engine = engine(
            8,
            1,
            EngineConfig {
                max_batch: 4,
                batch_window_us: 1_000_000, // window would hold partials ~forever
            },
        );
        let mut clock = ServeClock::virtual_clock();
        let obs = [0.0, 0.1, 0.0, -0.1];
        for s in 0..4 {
            engine.enqueue(s, &obs, clock.now_us());
        }
        let responses = engine.pump(&mut clock);
        assert_eq!(responses.len(), 4, "a full batch must not wait the window");
        assert_eq!(engine.stats().batch_size_counts[4], 1);
    }

    #[test]
    fn partial_batches_wait_out_the_window() {
        let mut engine = engine(
            8,
            1,
            EngineConfig {
                max_batch: 4,
                batch_window_us: 250, // 3 virtual rounds at 100 µs each
            },
        );
        let mut clock = ServeClock::virtual_clock();
        let obs = [0.0, 0.1, 0.0, -0.1];
        engine.enqueue(0, &obs, clock.now_us());
        assert_eq!(engine.pump(&mut clock).len(), 0, "age 100 < 250: held");
        assert_eq!(engine.pump(&mut clock).len(), 0, "age 200 < 250: held");
        let responses = engine.pump(&mut clock);
        assert_eq!(responses.len(), 1, "age 300 ≥ 250: flushed");
        assert_eq!(responses[0].latency_us, 300);
        assert_eq!(engine.stats().batch_size_counts[1], 1);
    }

    #[test]
    fn tickets_route_back_to_their_sessions() {
        let mut engine = engine(
            6,
            2,
            EngineConfig {
                max_batch: 2,
                batch_window_us: 0,
            },
        );
        let mut clock = ServeClock::virtual_clock();
        let mut tickets = Vec::new();
        for s in 0..6 {
            let obs = [s as f64 * 0.01, 0.0, 0.02, 0.0];
            tickets.push((engine.enqueue(s, &obs, clock.now_us()), s));
        }
        let responses: Vec<Response> = engine.pump(&mut clock).to_vec();
        assert_eq!(responses.len(), 6);
        for (ticket, session) in tickets {
            let r = responses
                .iter()
                .find(|r| r.ticket == ticket)
                .expect("every ticket answered");
            assert_eq!(r.session, session);
        }
        // 6 requests at max_batch 2 → 3 batches over 2 workers (2 waves).
        assert_eq!(engine.stats().batches, 3);
        assert_eq!(engine.stats().batch_size_counts[2], 3);
    }

    #[test]
    #[should_panic(expected = "already has a request in flight")]
    fn double_enqueue_is_rejected() {
        let mut engine = engine(
            2,
            1,
            EngineConfig {
                max_batch: 4,
                batch_window_us: 100,
            },
        );
        let obs = [0.0; 4];
        engine.enqueue(0, &obs, 0);
        engine.enqueue(0, &obs, 0);
    }
}
