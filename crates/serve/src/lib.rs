//! `elmrl-serve` — the long-lived request/response inference engine
//! (ROADMAP item 1: "Q-serving with dynamic batching").
//!
//! N simulated client sessions (each an environment + episode cursor with a
//! private SplitMix64 RNG stream) submit observations to a shared pool of
//! agent workers. A coalescer gathers pending tickets into
//! [`elmrl_core::batch::BatchAgent::predict_batch_into`] calls under a
//! configurable latency budget (`max_batch` / `batch_window_us`), workers
//! evaluate on the PR-4 thread pool with per-worker preallocated scratch,
//! and responses route back to their sessions by ticket.
//!
//! The engine is deterministic by construction on the virtual clock:
//! batches are composed centrally in ticket order, worker policies are
//! bit-identical, and inference consumes no RNG — so the full response
//! stream (and the serialized [`ServeReport`]) is byte-identical at any
//! worker count. See the module docs of [`engine`], [`clock`] and
//! [`session`] for the individual contracts.
//!
//! Entry points: [`run_serve`] executes a complete run from a
//! [`ServeConfig`]; the pieces ([`ServeEngine`], [`SessionDriver`],
//! [`worker::build_workers`]) are public for benches and tests that need
//! finer control.

pub mod clock;
pub mod engine;
pub mod report;
pub mod session;
pub mod stats;
pub mod worker;

pub use clock::{ServeClock, VIRTUAL_ROUND_US};
pub use engine::{EngineConfig, Request, Response, ServeEngine};
pub use report::ServeReport;
pub use session::{SessionDriver, SessionStats};
pub use stats::{BatchSizeBucket, LatencyHistogram, LatencySummary, ServeStats};
pub use worker::{build_workers, Worker};

use elmrl_core::designs::Design;
use elmrl_gym::EnvSpec;
use std::time::Instant;

/// Complete configuration of one serve run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Workload slug (echoed into the report; the spec is passed to
    /// [`run_serve`] separately so variant options stay with the caller).
    pub workload_slug: String,
    /// Served design.
    pub design: Design,
    /// Hidden width of the served policy.
    pub hidden_dim: usize,
    /// Number of client sessions.
    pub sessions: usize,
    /// Number of agent workers (policy replicas).
    pub workers: usize,
    /// Batch-size cap of the coalescer (1 = per-request dispatch).
    pub max_batch: usize,
    /// Latency budget: a partial batch flushes once its oldest ticket is
    /// this many µs old (0 = flush everything pending on every pump).
    pub batch_window_us: u64,
    /// Engine rounds to drive.
    pub duration_ticks: u64,
    /// Master seed (sessions and workers split private streams from it).
    pub seed: u64,
    /// Use the deterministic virtual clock instead of wall time.
    pub virtual_clock: bool,
    /// Maximum think-time rounds between a session's response and its next
    /// request (0 = closed loop, >0 draws per session).
    pub think_ticks: u64,
    /// Training episodes used to warm the served policy.
    pub warmup_episodes: usize,
}

impl ServeConfig {
    /// A small, fast default configuration for the given workload/design.
    pub fn new(spec: &EnvSpec, design: Design, hidden_dim: usize) -> Self {
        Self {
            workload_slug: spec.slug.to_string(),
            design,
            hidden_dim,
            sessions: 64,
            workers: 1,
            max_batch: 64,
            batch_window_us: 200,
            duration_ticks: 200,
            seed: 42,
            virtual_clock: false,
            think_ticks: 0,
            warmup_episodes: 5,
        }
    }
}

/// The outcome of [`run_serve`]: the serialized artifact plus the raw
/// response stream digest for callers that assert on it.
pub struct ServeOutcome {
    /// The `serve.json` payload.
    pub report: ServeReport,
    /// Engine-side counters (borrowable before serialization).
    pub engine_stats: ServeStats,
    /// Client-side counters.
    pub session_stats: SessionStats,
    /// FNV-1a digest over the full `(ticket, session, action, latency)`
    /// response stream, in order — a compact determinism witness.
    pub response_digest: u64,
}

/// Run a complete serve session: warm the workers, drive
/// `duration_ticks` rounds of submit → pump → respond, and assemble the
/// report. `zero_wall_time` blanks the host-dependent fields (golden runs).
pub fn run_serve(spec: &EnvSpec, config: &ServeConfig, zero_wall_time: bool) -> ServeOutcome {
    let _span = elmrl_telemetry::hist!("serve.run").span();
    let workers = build_workers(
        config.design,
        spec,
        config.hidden_dim,
        config.workers,
        config.max_batch,
        config.seed,
        config.warmup_episodes,
    );
    let mut engine = ServeEngine::new(
        config.sessions,
        spec.observation_dim,
        workers,
        EngineConfig {
            max_batch: config.max_batch,
            batch_window_us: config.batch_window_us,
        },
    );
    let mut driver = SessionDriver::new(spec, config.sessions, config.seed, config.think_ticks);
    let mut clock = ServeClock::from_flag(config.virtual_clock);

    fn fold(digest: &mut u64, v: u64) {
        *digest ^= v;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let start = Instant::now();
    for _ in 0..config.duration_ticks {
        driver.submit_ready(&mut engine, clock.now_us());
        let responses = engine.pump(&mut clock);
        for r in responses {
            fold(&mut digest, r.ticket);
            fold(&mut digest, r.session as u64);
            fold(&mut digest, r.action as u64);
            fold(&mut digest, r.latency_us);
        }
        driver.apply_responses(responses);
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    let engine_stats = engine.stats().clone();
    let session_stats = driver.stats();
    let report = ServeReport::assemble(
        config,
        &engine_stats,
        &session_stats,
        wall_seconds,
        zero_wall_time,
    );
    ServeOutcome {
        report,
        engine_stats,
        session_stats,
        response_digest: digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmrl_gym::Workload;

    #[test]
    fn run_serve_answers_every_request_under_window_zero() {
        let spec = Workload::CartPole.spec();
        let mut config = ServeConfig::new(&spec, Design::OsElmL2Lipschitz, 16);
        config.sessions = 12;
        config.duration_ticks = 30;
        config.batch_window_us = 0;
        config.virtual_clock = true;
        config.warmup_episodes = 2;
        let outcome = run_serve(&spec, &config, true);
        assert_eq!(outcome.report.requests, 12 * 30);
        assert_eq!(outcome.report.responses, 12 * 30);
        assert_eq!(outcome.report.wall_seconds, 0.0);
        assert_eq!(outcome.report.requests_per_second, 0.0);
        assert!(outcome.report.mean_batch_size > 1.0);
    }
}
