//! Deterministic serve-side statistics: an exact-bucket latency histogram
//! and the aggregate counters behind the `serve.json` report.
//!
//! The PR-8 telemetry registry already ships log₂ latency histograms, but
//! those are opt-in observability (`--telemetry`) and deliberately coarse.
//! The serve report is a *result artifact* — golden-`cmp`'d in CI — so it
//! needs its own always-on, allocation-free, bit-deterministic quantiles:
//! 1 µs-exact linear buckets for the common range plus log₂ tail buckets,
//! nearest-rank quantile readout (the convention of
//! `elmrl_population::QuantileSummary`).

use serde::Serialize;

/// Width of the exact region: latencies below this many µs land in 1 µs
/// buckets, so virtual-clock latencies (multiples of
/// [`crate::clock::VIRTUAL_ROUND_US`], well under this bound at sane queue
/// depths) are recorded exactly.
const LINEAR_US: usize = 4096;
/// log₂ tail buckets above the linear region (covers up to 2^(12+52) µs —
/// effectively unbounded).
const TAIL_BUCKETS: usize = 52;

/// Fixed-shape latency histogram over microseconds.
///
/// All storage is allocated at construction; recording is a bucket
/// increment, so the engine hot loop stays allocation-free.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram with all buckets preallocated.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; LINEAR_US + TAIL_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        if (us as usize) < LINEAR_US {
            us as usize
        } else {
            // 2^12 .. : bucket by the position of the leading bit past the
            // linear region.
            let shift = 64 - us.leading_zeros() as usize; // bit length
            (LINEAR_US + (shift - 13)).min(LINEAR_US + TAIL_BUCKETS - 1)
        }
    }

    /// Lower bound (µs) of the bucket a recorded value fell into — the value
    /// quantile readout reports. Exact below [`LINEAR_US`].
    fn bucket_floor(index: usize) -> u64 {
        if index < LINEAR_US {
            index as u64
        } else {
            1u64 << (index - LINEAR_US + 12)
        }
    }

    /// Record one latency in microseconds. The running sum saturates at
    /// `u64::MAX` (≈ 584k years of µs), so a pathological value degrades the
    /// mean instead of panicking.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile in µs: the bucket floor of the value at rank
    /// `⌈q·N⌉` (0 when empty). Exact for values below `LINEAR_US` (4096) µs.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max_us
    }

    /// Largest recorded value, exactly (not bucketed).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The five-number summary the serve report embeds.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.mean_us(),
            p50_us: self.quantile_us(0.50),
            p90_us: self.quantile_us(0.90),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us(),
        }
    }
}

/// Serialized latency digest: nearest-rank p50/p90/p99 (bucket floors, µs).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Number of responses measured.
    pub count: u64,
    /// Mean enqueue→response latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// 90th-percentile latency (µs).
    pub p90_us: u64,
    /// 99th-percentile tail latency (µs).
    pub p99_us: u64,
    /// Worst observed latency (µs, exact).
    pub max_us: u64,
}

/// Aggregate engine counters, updated in place by the hot loop (all storage
/// preallocated at construction).
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Requests accepted by [`crate::ServeEngine::enqueue`].
    pub requests: u64,
    /// Responses routed back to sessions.
    pub responses: u64,
    /// Coalesced batches dispatched to workers.
    pub batches: u64,
    /// `batch_size_counts[b]` = number of dispatched batches of size `b`
    /// (length `max_batch + 1`).
    pub batch_size_counts: Vec<u64>,
    /// Enqueue→response latency distribution.
    pub latency: LatencyHistogram,
    /// Deepest queue observed at a round boundary.
    pub queue_depth_peak: usize,
}

impl ServeStats {
    /// Empty stats for a given batch-size cap.
    pub fn new(max_batch: usize) -> Self {
        Self {
            requests: 0,
            responses: 0,
            batches: 0,
            batch_size_counts: vec![0; max_batch + 1],
            latency: LatencyHistogram::new(),
            queue_depth_peak: 0,
        }
    }

    /// Mean dispatched batch size (0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.responses as f64 / self.batches as f64
        }
    }

    /// The non-empty `(size, count)` pairs, smallest size first — the
    /// report's batch-composition table (kept as a struct list; the JSON
    /// shim only supports string map keys).
    pub fn batch_size_buckets(&self) -> Vec<BatchSizeBucket> {
        self.batch_size_counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(size, &count)| BatchSizeBucket { size, count })
            .collect()
    }
}

/// One row of the batch-composition table.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct BatchSizeBucket {
    /// Dispatched batch size.
    pub size: usize,
    /// How many batches of exactly this size ran.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_in_linear_range() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 50);
        assert_eq!(h.quantile_us(0.90), 90);
        assert_eq!(h.quantile_us(0.99), 99);
        assert_eq!(h.max_us(), 100);
        assert!((h.mean_us() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn tail_values_land_in_log2_buckets() {
        let mut h = LatencyHistogram::new();
        h.record_us(5_000); // 2^12 ≤ 5000 < 2^13
        h.record_us(1_000_000);
        assert_eq!(h.quantile_us(0.5), 4096);
        assert_eq!(h.max_us(), 1_000_000);
        // A value far past the table still lands in the last bucket.
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn batch_size_buckets_skip_empty_sizes() {
        let mut stats = ServeStats::new(8);
        stats.batch_size_counts[1] = 3;
        stats.batch_size_counts[8] = 2;
        stats.batches = 5;
        stats.responses = 19;
        assert_eq!(
            stats.batch_size_buckets(),
            vec![
                BatchSizeBucket { size: 1, count: 3 },
                BatchSizeBucket { size: 8, count: 2 },
            ]
        );
        assert!((stats.mean_batch_size() - 3.8).abs() < 1e-12);
    }
}
