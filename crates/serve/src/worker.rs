//! Agent workers: one warmed policy replica plus preallocated batch scratch.
//!
//! Every worker owns an identical copy of the served policy (same design,
//! same weights — see [`build_workers`]), a `B × obs_dim` staging matrix for
//! the batch it was assigned, a `B × A` Q output buffer, and the per-row
//! greedy actions. Because the policy is frozen during serving (pure
//! inference, no RNG draws) and every worker's weights are bit-identical,
//! *which* worker executes a batch can never change a response — the
//! property the `--workers`-invariance determinism test pins.

use crate::engine::Request;
use elmrl_core::batch::BatchAgent;
use elmrl_core::designs::{Design, DesignConfig};
use elmrl_core::policy::argmax;
use elmrl_core::trainer::{Trainer, TrainerConfig};
use elmrl_fpga::{FpgaAgent, FpgaAgentConfig};
use elmrl_gym::{EnvSpec, VecEnv};
use elmrl_linalg::Matrix;
use elmrl_population::split_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Seed-stream tag of the worker policy (construction + warm-up training).
/// Offset keeps serve streams disjoint from the population replica layout
/// (streams `2i`/`2i+1`) at any realistic replica count.
const WORKER_STREAM: u64 = 0x5345_5256_0000_0000;
/// Seed-stream tag of per-session RNGs: session `i` draws from
/// `SESSION_STREAM_BASE + i`.
pub(crate) const SESSION_STREAM_BASE: u64 = 0x5345_5353_0000_0000;

/// One agent worker: a policy replica plus its preallocated batch scratch.
pub struct Worker {
    agent: Box<dyn BatchAgent + Send>,
    /// `B × obs_dim` staging for the assigned batch (capacity reused).
    batch: Matrix<f64>,
    /// `B × A` Q output of the last dispatch (capacity reused).
    q: Matrix<f64>,
    /// The requests of the assigned batch, in dispatch order.
    tickets: Vec<Request>,
    /// Greedy action per batch row (capacity reused).
    actions: Vec<usize>,
}

impl Worker {
    /// Wrap a warmed agent with empty scratch sized for `max_batch`.
    pub fn new(agent: Box<dyn BatchAgent + Send>, max_batch: usize, obs_dim: usize) -> Self {
        Self {
            agent,
            batch: Matrix::zeros(max_batch.max(1), obs_dim),
            q: Matrix::zeros(1, 1),
            tickets: Vec::with_capacity(max_batch.max(1)),
            actions: Vec::with_capacity(max_batch.max(1)),
        }
    }

    /// Start assembling a batch of exactly `size` rows.
    pub(crate) fn begin_batch(&mut self, size: usize, obs_dim: usize) {
        self.batch.resize_zeroed(size, obs_dim);
        self.tickets.clear();
        self.actions.clear();
    }

    /// Stage one request's observation as the next batch row.
    pub(crate) fn push_row(&mut self, request: Request, obs: &[f64]) {
        let row = self.tickets.len();
        self.batch.row_mut(row).copy_from_slice(obs);
        self.tickets.push(request);
    }

    /// Evaluate the staged batch: one [`BatchAgent::predict_batch_into`]
    /// pass plus a greedy argmax per row. Allocation-free once the scratch
    /// has seen the steady-state batch shape.
    pub(crate) fn run_batch(&mut self) {
        debug_assert_eq!(self.batch.rows(), self.tickets.len());
        self.agent.predict_batch_into(&self.batch, &mut self.q);
        self.actions.clear();
        for i in 0..self.q.rows() {
            self.actions.push(argmax(self.q.row(i)));
        }
    }

    /// The `(request, action)` pairs of the last [`Worker::run_batch`].
    pub(crate) fn results(&self) -> impl Iterator<Item = (&Request, usize)> {
        self.tickets.iter().zip(self.actions.iter().copied())
    }
}

/// Build the served policy for a design (the population engine's factory
/// split: `Design::Fpga` lives in `elmrl-fpga`, everything else behind
/// [`Design::build_batch`]).
fn build_agent(
    design: Design,
    spec: &EnvSpec,
    hidden_dim: usize,
    rng: &mut SmallRng,
) -> Box<dyn BatchAgent + Send> {
    match design {
        Design::Fpga => Box::new(FpgaAgent::new(
            FpgaAgentConfig::for_workload(spec, hidden_dim),
            rng,
        )),
        software => {
            let config = DesignConfig::for_workload(spec, hidden_dim);
            software.build_batch(&config, rng)
        }
    }
}

/// Build `workers` bit-identical policy replicas: each is constructed from
/// the same [`split_seed`] stream and warmed by the same `warmup_episodes`
/// training run, so every replica ends at exactly the same weights (the
/// whole pipeline is deterministic in its seeds). Warm-up cost is per
/// worker but independent of the session count.
pub fn build_workers(
    design: Design,
    spec: &EnvSpec,
    hidden_dim: usize,
    workers: usize,
    max_batch: usize,
    seed: u64,
    warmup_episodes: usize,
) -> Vec<Worker> {
    let trainer = Trainer::new(TrainerConfig {
        max_episodes: warmup_episodes,
        reset_after_episodes: None,
        stop_when_solved: false,
        solve_criterion: spec.solve_criterion,
        solved_window: 100,
        reward_shaping: spec.reward_shaping,
    });
    (0..workers)
        .map(|_| {
            let mut build_rng = SmallRng::seed_from_u64(split_seed(seed, WORKER_STREAM));
            let mut agent = build_agent(design, spec, hidden_dim, &mut build_rng);
            if warmup_episodes > 0 {
                let mut train_rng = SmallRng::seed_from_u64(split_seed(seed, WORKER_STREAM + 1));
                let mut vec_env = VecEnv::from_spec(spec, 1);
                trainer.run_vec(agent.as_mut(), &mut vec_env, &mut train_rng);
            }
            Worker::new(agent, max_batch, spec.observation_dim)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmrl_gym::Workload;

    #[test]
    fn warmed_workers_are_bit_identical() {
        let spec = Workload::CartPole.spec();
        let mut workers = build_workers(Design::OsElmL2Lipschitz, &spec, 16, 2, 4, 7, 3);
        let states = Matrix::from_fn(3, spec.observation_dim, |i, j| {
            0.05 * (i as f64 + 1.0) - 0.02 * j as f64
        });
        let qs: Vec<Matrix<f64>> = workers
            .iter_mut()
            .map(|w| w.agent.predict_batch(&states))
            .collect();
        assert_eq!(qs[0].as_slice(), qs[1].as_slice());
    }

    #[test]
    fn run_batch_matches_scalar_argmax() {
        let spec = Workload::CartPole.spec();
        let mut workers = build_workers(Design::OsElmL2Lipschitz, &spec, 16, 1, 8, 7, 2);
        let w = &mut workers[0];
        let obs = vec![0.1, -0.2, 0.03, 0.4];
        w.begin_batch(2, spec.observation_dim);
        w.push_row(
            Request {
                ticket: 1,
                session: 0,
                enqueued_us: 0,
            },
            &obs,
        );
        w.push_row(
            Request {
                ticket: 2,
                session: 1,
                enqueued_us: 0,
            },
            &obs,
        );
        w.run_batch();
        let results: Vec<(u64, usize)> = w.results().map(|(r, a)| (r.ticket, a)).collect();
        assert_eq!(results.len(), 2);
        // Identical rows must produce identical actions.
        assert_eq!(results[0].1, results[1].1);
        let expected = argmax(w.agent.predict_batch(&Matrix::from_rows(&[obs])).row(0));
        assert_eq!(results[0].1, expected);
    }
}
