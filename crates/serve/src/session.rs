//! Simulated client sessions: each owns an environment, an episode cursor
//! and a private SplitMix64-derived RNG stream.
//!
//! A session is a tiny request/response client: it holds its latest
//! observation, submits it to the engine when ready, and on receiving the
//! greedy action steps its environment (auto-resetting finished episodes) to
//! produce the next observation. All per-session randomness — environment
//! dynamics and optional think-time draws — comes from the session's own
//! stream (`split_seed(master, SESSION_STREAM_BASE + index)`, the PR-3
//! seed-splitting scheme), so the whole client population replays
//! bit-identically at any engine parallelism.

use crate::engine::{Response, ServeEngine};
use crate::worker::SESSION_STREAM_BASE;
use elmrl_gym::{EnvSpec, Environment};
use elmrl_population::split_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One simulated client.
struct Session {
    env: Box<dyn Environment>,
    rng: SmallRng,
    /// The observation to submit next (refilled after every step/reset).
    observation: Vec<f64>,
    /// Engine round at which this session may submit again; `None` while a
    /// request is in flight.
    ready_at_round: Option<u64>,
    episode_return: f64,
    /// Sum of returns over *completed* episodes.
    completed_return: f64,
    episodes_completed: u64,
    env_steps: u64,
}

/// Aggregate client-side statistics of a serve run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionStats {
    /// Episodes finished (terminated or truncated) across all sessions.
    pub episodes_completed: u64,
    /// Environment steps taken across all sessions.
    pub env_steps: u64,
    /// Sum of returns of the completed episodes.
    pub completed_return: f64,
}

impl SessionStats {
    /// Mean return per completed episode (`None` before any completes).
    pub fn mean_episode_return(&self) -> Option<f64> {
        if self.episodes_completed == 0 {
            None
        } else {
            Some(self.completed_return / self.episodes_completed as f64)
        }
    }
}

/// Drives N sessions against a [`ServeEngine`], one submit/apply pair per
/// engine round.
pub struct SessionDriver {
    sessions: Vec<Session>,
    /// Maximum think-time rounds a session idles after a response (0 =
    /// resubmit immediately; >0 draws uniformly from its own stream).
    think_rounds: u64,
    round: u64,
}

impl SessionDriver {
    /// Create and reset `count` sessions on the given workload.
    pub fn new(spec: &EnvSpec, count: usize, master_seed: u64, think_rounds: u64) -> Self {
        let sessions = (0..count)
            .map(|i| {
                let mut rng = SmallRng::seed_from_u64(split_seed(
                    master_seed,
                    SESSION_STREAM_BASE + i as u64,
                ));
                let mut env = spec.make_env();
                let observation = env.reset(&mut rng);
                Session {
                    env,
                    rng,
                    observation,
                    ready_at_round: Some(0),
                    episode_return: 0.0,
                    completed_return: 0.0,
                    episodes_completed: 0,
                    env_steps: 0,
                }
            })
            .collect();
        Self {
            sessions,
            think_rounds,
            round: 0,
        }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the driver has no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Submit the observation of every ready session (ascending session
    /// order — part of the deterministic request sequence).
    pub fn submit_ready(&mut self, engine: &mut ServeEngine, now_us: u64) {
        for (index, session) in self.sessions.iter_mut().enumerate() {
            if session.ready_at_round.is_some_and(|r| r <= self.round) {
                engine.enqueue(index, &session.observation, now_us);
                session.ready_at_round = None;
            }
        }
    }

    /// Apply one round's responses: step each answered session's
    /// environment with the served action, auto-reset finished episodes,
    /// and schedule the session's next submission. Ends the round.
    pub fn apply_responses(&mut self, responses: &[Response]) {
        for response in responses {
            let session = &mut self.sessions[response.session];
            let outcome = session.env.step(response.action, &mut session.rng);
            session.env_steps += 1;
            session.episode_return += outcome.reward;
            if outcome.done || outcome.truncated {
                session.episodes_completed += 1;
                session.completed_return += session.episode_return;
                session.episode_return = 0.0;
                session.observation = session.env.reset(&mut session.rng);
            } else {
                session.observation = outcome.observation;
            }
            let think = if self.think_rounds == 0 {
                0
            } else {
                session.rng.gen_range(0..=self.think_rounds)
            };
            session.ready_at_round = Some(self.round + 1 + think);
        }
        self.round += 1;
    }

    /// Aggregate client-side statistics.
    pub fn stats(&self) -> SessionStats {
        let mut stats = SessionStats::default();
        for session in &self.sessions {
            stats.episodes_completed += session.episodes_completed;
            stats.env_steps += session.env_steps;
            stats.completed_return += session.completed_return;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ServeClock;
    use crate::engine::EngineConfig;
    use crate::worker::build_workers;
    use elmrl_core::designs::Design;
    use elmrl_gym::Workload;

    #[test]
    fn sessions_step_and_complete_episodes() {
        let spec = Workload::CartPole.spec();
        let workers = build_workers(Design::OsElmL2Lipschitz, &spec, 16, 1, 16, 3, 2);
        let mut engine = ServeEngine::new(
            8,
            spec.observation_dim,
            workers,
            EngineConfig {
                max_batch: 16,
                batch_window_us: 0,
            },
        );
        let mut driver = SessionDriver::new(&spec, 8, 3, 0);
        let mut clock = ServeClock::virtual_clock();
        for _ in 0..120 {
            driver.submit_ready(&mut engine, clock.now_us());
            let responses = engine.pump(&mut clock);
            assert_eq!(responses.len(), 8, "window 0: every round answers all");
            driver.apply_responses(responses);
        }
        let stats = driver.stats();
        assert_eq!(stats.env_steps, 8 * 120);
        // An untrained-ish policy on CartPole fails well within 120 steps.
        assert!(stats.episodes_completed > 0);
        assert!(stats.mean_episode_return().is_some());
    }

    #[test]
    fn think_time_spaces_out_submissions() {
        let spec = Workload::CartPole.spec();
        let workers = build_workers(Design::OsElmL2Lipschitz, &spec, 16, 1, 16, 3, 0);
        let mut engine = ServeEngine::new(
            4,
            spec.observation_dim,
            workers,
            EngineConfig {
                max_batch: 16,
                batch_window_us: 0,
            },
        );
        let mut driver = SessionDriver::new(&spec, 4, 3, 3);
        let mut clock = ServeClock::virtual_clock();
        let mut responded = 0u64;
        for _ in 0..40 {
            driver.submit_ready(&mut engine, clock.now_us());
            let responses = engine.pump(&mut clock);
            responded += responses.len() as u64;
            driver.apply_responses(responses);
        }
        let stats = driver.stats();
        assert_eq!(stats.env_steps, responded);
        // With think-time up to 3 rounds, sessions cannot submit every
        // round: strictly fewer steps than the think-free case.
        assert!(stats.env_steps < 4 * 40);
        assert!(stats.env_steps > 0);
    }
}
