//! Worker-count invariance — the serve analogue of the population engine's
//! shard-invariance contract.
//!
//! On the virtual clock, the full serialized report (request/batch counts,
//! batch composition, latency digest, episode statistics) and the FNV
//! digest over the ordered `(ticket, session, action, latency)` response
//! stream must be **byte-identical** at any `--workers` value: batches are
//! composed centrally in ticket order, all worker policies carry identical
//! weights, and inference draws no RNG. The CI `serve_smoke` job `cmp`s the
//! same property end-to-end through the `serve` binary against a committed
//! golden.

use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_serve::{run_serve, ServeConfig, ServeOutcome};

fn outcome(
    workers: usize,
    sessions: usize,
    max_batch: usize,
    window_us: u64,
    think: u64,
) -> ServeOutcome {
    let spec = Workload::CartPole.spec();
    let mut config = ServeConfig::new(&spec, Design::OsElmL2Lipschitz, 16);
    config.sessions = sessions;
    config.workers = workers;
    config.max_batch = max_batch;
    config.batch_window_us = window_us;
    config.duration_ticks = 60;
    config.seed = 2026;
    config.virtual_clock = true;
    config.think_ticks = think;
    config.warmup_episodes = 3;
    run_serve(&spec, &config, true)
}

fn report_json(outcome: &ServeOutcome) -> String {
    serde_json::to_string(&outcome.report).expect("serve report serializes")
}

/// The serialized reports differ only in the echoed `workers` field; mask it
/// so the remaining bytes can be compared verbatim.
fn masked(json: &str, workers: usize) -> String {
    json.replace(&format!("\"workers\":{workers}"), "\"workers\":MASKED")
}

#[test]
fn responses_are_byte_identical_across_worker_counts() {
    let sessions = 48;
    let baseline = outcome(1, sessions, 16, 300, 0);
    let json_1 = masked(&report_json(&baseline), 1);
    for workers in [2usize, 4] {
        let run = outcome(workers, sessions, 16, 300, 0);
        assert_eq!(
            run.response_digest, baseline.response_digest,
            "response stream must not depend on worker count (workers {workers})"
        );
        assert_eq!(
            masked(&report_json(&run), workers),
            json_1,
            "serve report must be byte-identical at workers {workers}"
        );
    }
}

#[test]
fn think_time_runs_are_worker_invariant_too() {
    // Think-time draws come from per-session streams, so a sparse, ragged
    // request pattern (window 0 flushes whatever is pending) must replay
    // identically at any worker count.
    let a = outcome(1, 32, 8, 0, 4);
    let b = outcome(4, 32, 8, 0, 4);
    assert_eq!(a.response_digest, b.response_digest);
    assert_eq!(masked(&report_json(&a), 1), masked(&report_json(&b), 4));
    // Sanity: the ragged pattern actually exercised partial batches.
    assert!(
        a.report.batch_sizes.len() > 1,
        "think-time run should produce mixed batch sizes, got {:?}",
        a.report.batch_sizes
    );
}

#[test]
fn same_config_replays_bit_for_bit() {
    let a = outcome(2, 24, 8, 200, 2);
    let b = outcome(2, 24, 8, 200, 2);
    assert_eq!(a.response_digest, b.response_digest);
    assert_eq!(report_json(&a), report_json(&b));
}

#[test]
fn coalescing_knobs_change_batch_composition() {
    // Negative control: max_batch genuinely shapes the batches (so the
    // invariance above is not vacuous).
    let coalesced = outcome(1, 48, 16, 300, 0);
    let per_request = outcome(1, 48, 1, 0, 0);
    assert_eq!(coalesced.report.responses, per_request.report.responses);
    assert!(coalesced.report.mean_batch_size > per_request.report.mean_batch_size);
    assert_eq!(per_request.report.mean_batch_size, 1.0);
    assert!(per_request.report.batches > coalesced.report.batches);
}

#[test]
fn seed_changes_the_run() {
    let spec = Workload::CartPole.spec();
    let mut config = ServeConfig::new(&spec, Design::OsElmL2Lipschitz, 16);
    config.sessions = 16;
    config.duration_ticks = 40;
    config.virtual_clock = true;
    config.warmup_episodes = 3;
    config.think_ticks = 2;
    let a = run_serve(&spec, &config, true);
    config.seed += 1;
    let b = run_serve(&spec, &config, true);
    assert_ne!(
        a.response_digest, b.response_digest,
        "different seeds must produce different client trajectories"
    );
}
