//! Counting-allocator proof of the serve-engine hot-loop contract: once the
//! queue ring, staging matrix and worker scratch have reached steady size, a
//! full engine round — enqueue every session's observation, coalesce into
//! batches, `predict_batch_into`, route responses — performs **zero** heap
//! allocations (single-worker dispatch; the multi-worker wave additionally
//! pays only the PR-4 pool's per-`par_iter` plumbing, like every other
//! parallel section).
//!
//! The session driver itself is deliberately *outside* the measured loop:
//! stepping a Gym environment returns freshly allocated observation vectors
//! by API design, so the test plays the client role with a fixed observation
//! per session — exactly the engine-side surface (enqueue → coalesce →
//! predict → respond) the ISSUE scopes.
//!
//! Counter scoping per `crates/core/tests/alloc_steady_state.rs`: only the
//! measuring thread counts, so libtest's harness threads cannot perturb the
//! zero assert.

use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_serve::{build_workers, EngineConfig, ServeClock, ServeEngine};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serialises the tests in this file (the telemetry variant toggles the
/// process-global enabled flag).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// System allocator wrapper that counts (re)allocations made by threads
/// that have opted in via [`COUNTING`].
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Whether the current thread's allocations are being counted. The
    /// `const` initialiser guarantees first access performs no lazy-init
    /// allocation (which would recurse into the allocator).
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_measuring() {
    // `try_with`: a thread past TLS destruction must not panic inside alloc.
    let _ = COUNTING.try_with(|flag| {
        if flag.get() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

// An allocator is inherently unsafe plumbing; this one only forwards to the
// system allocator and bumps a counter on opted-in threads.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_measuring();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_measuring();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const SESSIONS: usize = 32;

/// Build a warm single-worker engine plus one fixed observation per session.
fn warm_engine(max_batch: usize, window_us: u64) -> (ServeEngine, Vec<Vec<f64>>, ServeClock) {
    let spec = Workload::CartPole.spec();
    let workers = build_workers(Design::OsElmL2Lipschitz, &spec, 16, 1, max_batch, 5, 3);
    let mut engine = ServeEngine::new(
        SESSIONS,
        spec.observation_dim,
        workers,
        EngineConfig {
            max_batch,
            batch_window_us: window_us,
        },
    );
    let observations: Vec<Vec<f64>> = (0..SESSIONS)
        .map(|s| {
            vec![
                0.01 * s as f64,
                -0.02,
                0.005 * (s % 7) as f64,
                0.01 * (s % 3) as f64,
            ]
        })
        .collect();
    let mut clock = ServeClock::virtual_clock();
    // Warm-up: let the queue ring, staging rows, batch/Q scratch, response
    // buffer and telemetry call-site caches all reach steady capacity.
    for _ in 0..16 {
        for (s, obs) in observations.iter().enumerate() {
            engine.enqueue(s, obs, clock.now_us());
        }
        let responses = engine.pump(&mut clock);
        assert_eq!(responses.len(), SESSIONS, "window must flush every round");
    }
    (engine, observations, clock)
}

fn measure_rounds(
    engine: &mut ServeEngine,
    observations: &[Vec<f64>],
    clock: &mut ServeClock,
) -> u64 {
    COUNTING.with(|flag| flag.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..64 {
        for (s, obs) in observations.iter().enumerate() {
            engine.enqueue(s, obs, clock.now_us());
        }
        let responses = engine.pump(clock);
        std::hint::black_box(responses.len());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.with(|flag| flag.set(false));
    after - before
}

#[test]
fn steady_state_serve_round_allocates_nothing() {
    let _serial = serial();
    // max_batch 8 over 32 sessions: 4 full batches per round, so the test
    // crosses the coalescer's multi-wave path, not just one flush.
    let (mut engine, observations, mut clock) = warm_engine(8, 200);
    let allocations = measure_rounds(&mut engine, &observations, &mut clock);
    assert_eq!(
        allocations, 0,
        "steady-state enqueue → coalesce → predict_batch → respond must not \
         allocate ({allocations} allocations over 64 rounds)"
    );
    assert_eq!(engine.stats().batch_size_counts[8], (16 + 64) * 4);
}

#[test]
fn steady_state_serve_round_allocates_nothing_with_telemetry_on() {
    // The PR-8 no-perturbation contract extends to the serve layer: with
    // the registry enabled, the measured loop still allocates zero — the
    // serve.batch_size/serve.request histograms, the queue-depth gauge and
    // the request counters were all registered during warm-up.
    let _serial = serial();
    elmrl_telemetry::set_enabled(true);
    let (mut engine, observations, mut clock) = warm_engine(8, 200);
    let allocations = measure_rounds(&mut engine, &observations, &mut clock);
    let recorded = elmrl_telemetry::snapshot()
        .histogram("serve.batch_size")
        .map(|h| h.count)
        .unwrap_or(0);
    elmrl_telemetry::set_enabled(false);
    assert!(
        recorded > 0,
        "telemetry must actually have recorded during the measured loop"
    );
    assert_eq!(
        allocations, 0,
        "steady-state serve round with telemetry on must not allocate \
         ({allocations} allocations over 64 rounds)"
    );
}

#[test]
fn per_request_dispatch_is_also_allocation_free() {
    // The bench baseline (max_batch = 1) runs the same hot loop, just with
    // B = 1 batches — it must not gain an unfair allocation handicap.
    let _serial = serial();
    let (mut engine, observations, mut clock) = warm_engine(1, 0);
    let allocations = measure_rounds(&mut engine, &observations, &mut clock);
    assert_eq!(
        allocations, 0,
        "steady-state per-request dispatch must not allocate \
         ({allocations} allocations over 64 rounds)"
    );
    assert_eq!(engine.stats().batch_size_counts[1], (16 + 64) * 32);
}
