//! # elmrl-nn
//!
//! A from-scratch feed-forward neural-network substrate: dense layers,
//! backpropagation, ReLU/tanh/sigmoid activations, SGD and Adam optimisers,
//! MSE and Huber losses, and an experience-replay buffer.
//!
//! This crate exists to give the paper's **baseline** a faithful
//! implementation: the comparison system in §4 is a three-layer DQN trained
//! with Adam (learning rate 0.01) and the Huber loss, using experience replay
//! and a fixed target network. Everything here is ordinary
//! backpropagation-based deep learning — exactly the machinery the paper's
//! OS-ELM approach is designed to avoid on-device — implemented over the same
//! [`elmrl_linalg::Matrix`] type as the rest of the workspace so the two
//! approaches share their numeric substrate.
//!
//! ```
//! use elmrl_nn::{Activation, Adam, Loss, Mlp, MlpConfig};
//! use elmrl_linalg::Matrix;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let config = MlpConfig::new(&[2, 16, 1])
//!     .with_hidden_activation(Activation::ReLU)
//!     .with_output_activation(Activation::Identity);
//! let mut net = Mlp::new(config, &mut rng);
//! let mut opt = Adam::new(0.01);
//!
//! // learn y = x0 + x1 on a tiny dataset
//! let x = Matrix::from_rows(&[vec![0.1, 0.2], vec![0.5, 0.3], vec![0.9, 0.7]]);
//! let t = Matrix::from_rows(&[vec![0.3], vec![0.8], vec![1.6]]);
//! for _ in 0..500 {
//!     net.train_step(&x, &t, Loss::Mse, &mut opt);
//! }
//! let pred = net.forward(&x);
//! assert!((pred[(0, 0)] - 0.3).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod activation;
pub mod layer;
pub mod loss;
pub mod mlp;
pub mod optimizer;
pub mod replay;

pub use activation::Activation;
pub use layer::DenseLayer;
pub use loss::Loss;
pub use mlp::{Mlp, MlpConfig, MlpScratch};
pub use optimizer::{Adam, MomentState, Optimizer, Sgd};
pub use replay::{ReplayBuffer, Transition};
