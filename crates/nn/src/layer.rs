//! A fully-connected (dense) layer with cached activations for backprop.

use crate::activation::Activation;
use elmrl_linalg::random::xavier_uniform;
use elmrl_linalg::Matrix;
use rand::Rng;

/// One dense layer: `y = G(x·W + b)` with `W ∈ R^{in×out}`, `b ∈ R^{1×out}`.
///
/// The layer caches its last input and pre-activation during
/// [`DenseLayer::forward_training`] so that [`DenseLayer::backward`] can
/// compute parameter gradients without re-running the forward pass.
#[derive(Clone, Debug)]
pub struct DenseLayer {
    weights: Matrix<f64>,
    bias: Matrix<f64>,
    activation: Activation,
    // caches for backprop
    last_input: Option<Matrix<f64>>,
    last_preact: Option<Matrix<f64>>,
    grad_weights: Matrix<f64>,
    grad_bias: Matrix<f64>,
}

impl DenseLayer {
    /// Create a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self {
            weights: xavier_uniform(input_dim, output_dim, rng),
            bias: Matrix::zeros(1, output_dim),
            activation,
            last_input: None,
            last_preact: None,
            grad_weights: Matrix::zeros(input_dim, output_dim),
            grad_bias: Matrix::zeros(1, output_dim),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable access to the weight matrix.
    pub fn weights(&self) -> &Matrix<f64> {
        &self.weights
    }

    /// Immutable access to the bias row vector.
    pub fn bias(&self) -> &Matrix<f64> {
        &self.bias
    }

    /// Mutable access to the weight matrix (used by optimisers and tests).
    pub fn weights_mut(&mut self) -> &mut Matrix<f64> {
        &mut self.weights
    }

    /// Mutable access to the bias (used by optimisers and tests).
    pub fn bias_mut(&mut self) -> &mut Matrix<f64> {
        &mut self.bias
    }

    /// Gradient of the loss w.r.t. the weights, from the last `backward`.
    pub fn grad_weights(&self) -> &Matrix<f64> {
        &self.grad_weights
    }

    /// Gradient of the loss w.r.t. the bias, from the last `backward`.
    pub fn grad_bias(&self) -> &Matrix<f64> {
        &self.grad_bias
    }

    /// Number of trainable parameters in this layer.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Inference-only forward pass (no caches touched).
    pub fn forward(&self, input: &Matrix<f64>) -> Matrix<f64> {
        let mut out = Matrix::zeros(input.rows(), self.weights.cols());
        self.forward_into(input, &mut out);
        out
    }

    /// [`DenseLayer::forward`] into a caller-owned output matrix (reshaped,
    /// reusing its allocation) — the allocation-free inference form.
    /// Bit-for-bit identical to `forward`.
    pub fn forward_into(&self, input: &Matrix<f64>, out: &mut Matrix<f64>) {
        self.affine_into(input, out);
        self.activation.apply_matrix_inplace(out);
    }

    /// Forward pass that caches input and pre-activation for a subsequent
    /// [`DenseLayer::backward`] call.
    pub fn forward_training(&mut self, input: &Matrix<f64>) -> Matrix<f64> {
        let pre = self.affine(input);
        let out = self.activation.apply_matrix(&pre);
        self.last_input = Some(input.clone());
        self.last_preact = Some(pre);
        out
    }

    fn affine(&self, input: &Matrix<f64>) -> Matrix<f64> {
        let mut pre = Matrix::zeros(input.rows(), self.weights.cols());
        self.affine_into(input, &mut pre);
        pre
    }

    /// `input·W + b` into a caller-owned matrix — the single copy of the
    /// affine arithmetic that both the allocating and the workspace forward
    /// paths share (keeping them bit-for-bit identical by construction).
    fn affine_into(&self, input: &Matrix<f64>, out: &mut Matrix<f64>) {
        assert_eq!(
            input.cols(),
            self.weights.rows(),
            "dense layer: input has {} features, expected {}",
            input.cols(),
            self.weights.rows()
        );
        input.matmul_into(&self.weights, out);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v += self.bias[(0, c)];
            }
        }
    }

    /// Back-propagate `grad_output` (∂L/∂y of this layer) and return
    /// ∂L/∂x for the previous layer. Parameter gradients are stored in the
    /// layer until the optimiser applies them.
    ///
    /// Panics if called before `forward_training`.
    pub fn backward(&mut self, grad_output: &Matrix<f64>) -> Matrix<f64> {
        let input = self
            .last_input
            .as_ref()
            .expect("backward called before forward_training");
        let preact = self
            .last_preact
            .as_ref()
            .expect("missing pre-activation cache");
        assert_eq!(
            grad_output.shape(),
            preact.shape(),
            "backward: grad shape mismatch"
        );

        // dL/dz = dL/dy ⊙ G'(z)
        let dz = grad_output
            .zip_map(&self.activation.derivative_matrix(preact), |g, d| g * d)
            .expect("shapes checked above");

        // dL/dW = xᵀ · dz ; dL/db = column sums of dz ; dL/dx = dz · Wᵀ
        self.grad_weights = input.t_matmul(&dz);
        let mut gb = Matrix::zeros(1, dz.cols());
        for r in 0..dz.rows() {
            for c in 0..dz.cols() {
                gb[(0, c)] += dz[(r, c)];
            }
        }
        self.grad_bias = gb;
        dz.matmul_t(&self.weights)
    }

    /// Copy the weights and bias from another layer (target-network sync).
    pub fn copy_parameters_from(&mut self, other: &DenseLayer) {
        assert_eq!(
            self.weights.shape(),
            other.weights.shape(),
            "copy: weight shape mismatch"
        );
        self.weights = other.weights.clone();
        self.bias = other.bias.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn layer(activation: Activation) -> DenseLayer {
        let mut rng = SmallRng::seed_from_u64(5);
        DenseLayer::new(3, 2, activation, &mut rng)
    }

    #[test]
    fn shapes_and_parameter_count() {
        let l = layer(Activation::ReLU);
        assert_eq!(l.input_dim(), 3);
        assert_eq!(l.output_dim(), 2);
        assert_eq!(l.parameter_count(), 3 * 2 + 2);
        assert_eq!(l.activation(), Activation::ReLU);
        let x = Matrix::<f64>::ones(4, 3);
        assert_eq!(l.forward(&x).shape(), (4, 2));
    }

    #[test]
    fn forward_identity_layer_is_affine() {
        let mut l = layer(Activation::Identity);
        // set known weights/bias
        *l.weights_mut() = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        *l.bias_mut() = Matrix::from_rows(&[vec![0.5, -0.5]]);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let y = l.forward(&x);
        assert!((y[(0, 0)] - 4.5).abs() < 1e-12);
        assert!((y[(0, 1)] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn training_forward_matches_inference_forward() {
        let mut l = layer(Activation::Tanh);
        let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3], vec![1.0, 0.5, -1.0]]);
        let inference = l.forward(&x);
        let training = l.forward_training(&x);
        assert!(inference.max_abs_diff(&training) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "backward called before forward_training")]
    fn backward_without_forward_panics() {
        let mut l = layer(Activation::ReLU);
        let _ = l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut l = DenseLayer::new(4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[vec![0.3, -0.1, 0.7, 0.2], vec![-0.5, 0.4, 0.1, -0.9]]);
        let target = Matrix::from_rows(&[vec![0.1, 0.2, 0.3], vec![-0.1, 0.0, 0.5]]);
        let loss = |l: &DenseLayer, x: &Matrix<f64>| {
            let y = l.forward(x);
            let d = &y - &target;
            d.iter().map(|&v| v * v).sum::<f64>() * 0.5
        };

        // analytic gradients
        let y = l.forward_training(&x);
        let grad_out = &y - &target; // dL/dy for 0.5·Σ(y−t)²
        let grad_in = l.backward(&grad_out);

        let h = 1e-6;
        // check dL/dW for a few entries
        for (r, c) in [(0usize, 0usize), (2, 1), (3, 2)] {
            let orig = l.weights()[(r, c)];
            l.weights_mut()[(r, c)] = orig + h;
            let plus = loss(&l, &x);
            l.weights_mut()[(r, c)] = orig - h;
            let minus = loss(&l, &x);
            l.weights_mut()[(r, c)] = orig;
            let numeric = (plus - minus) / (2.0 * h);
            assert!(
                (numeric - l.grad_weights()[(r, c)]).abs() < 1e-5,
                "dW({r},{c}): numeric {numeric} vs {}",
                l.grad_weights()[(r, c)]
            );
        }
        // check dL/db
        for c in 0..3 {
            let orig = l.bias()[(0, c)];
            l.bias_mut()[(0, c)] = orig + h;
            let plus = loss(&l, &x);
            l.bias_mut()[(0, c)] = orig - h;
            let minus = loss(&l, &x);
            l.bias_mut()[(0, c)] = orig;
            let numeric = (plus - minus) / (2.0 * h);
            assert!((numeric - l.grad_bias()[(0, c)]).abs() < 1e-5, "db({c})");
        }
        // check dL/dx for one entry
        {
            let mut xp = x.clone();
            xp[(0, 1)] += h;
            let plus = loss(&l, &xp);
            let mut xm = x.clone();
            xm[(0, 1)] -= h;
            let minus = loss(&l, &xm);
            let numeric = (plus - minus) / (2.0 * h);
            assert!((numeric - grad_in[(0, 1)]).abs() < 1e-5, "dx(0,1)");
        }
    }

    #[test]
    fn copy_parameters_syncs_target_layer() {
        let mut rng = SmallRng::seed_from_u64(9);
        let a = DenseLayer::new(3, 2, Activation::ReLU, &mut rng);
        let mut b = DenseLayer::new(3, 2, Activation::ReLU, &mut rng);
        assert!(a.weights().max_abs_diff(b.weights()) > 0.0);
        b.copy_parameters_from(&a);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    #[should_panic(expected = "input has 2 features, expected 3")]
    fn wrong_input_width_panics() {
        let l = layer(Activation::ReLU);
        let _ = l.forward(&Matrix::<f64>::ones(1, 2));
    }
}
