//! Multi-layer perceptron assembled from [`DenseLayer`]s.
//!
//! The DQN baseline in the paper is a three-layer network (§4.1, design (6)):
//! state in, one hidden layer of `Ñ` ReLU units, Q-values per action out.
//! [`Mlp`] supports any depth so the harness can also build deeper ablations.

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::loss::Loss;
use crate::optimizer::Optimizer;
use elmrl_linalg::Matrix;
use rand::Rng;

/// Configuration describing an MLP's layer sizes and activations.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpConfig {
    /// Layer widths, including input and output (`len ≥ 2`).
    pub layer_sizes: Vec<usize>,
    /// Activation applied to every hidden layer.
    pub hidden_activation: Activation,
    /// Activation applied to the output layer (Identity for Q-value heads).
    pub output_activation: Activation,
}

impl MlpConfig {
    /// Config with the given layer widths, ReLU hidden activations and an
    /// identity output layer.
    pub fn new(layer_sizes: &[usize]) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        assert!(
            layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        Self {
            layer_sizes: layer_sizes.to_vec(),
            hidden_activation: Activation::ReLU,
            output_activation: Activation::Identity,
        }
    }

    /// Override the hidden-layer activation.
    pub fn with_hidden_activation(mut self, a: Activation) -> Self {
        self.hidden_activation = a;
        self
    }

    /// Override the output-layer activation.
    pub fn with_output_activation(mut self, a: Activation) -> Self {
        self.output_activation = a;
        self
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        *self.layer_sizes.last().unwrap()
    }
}

/// Reusable workspaces for [`Mlp::forward_one_into`]: a `1 × n` staging row
/// for the input plus two ping-pong activation buffers. All three keep
/// their allocations across calls.
#[derive(Clone, Debug, Default)]
pub struct MlpScratch {
    x: Matrix<f64>,
    bufs: [Matrix<f64>; 2],
}

/// A feed-forward network with dense layers and backpropagation training.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    config: MlpConfig,
}

impl Mlp {
    /// Build a network with Xavier-initialised weights.
    pub fn new<R: Rng + ?Sized>(config: MlpConfig, rng: &mut R) -> Self {
        let n_layers = config.layer_sizes.len() - 1;
        let mut layers = Vec::with_capacity(n_layers);
        for i in 0..n_layers {
            let activation = if i + 1 == n_layers {
                config.output_activation
            } else {
                config.hidden_activation
            };
            layers.push(DenseLayer::new(
                config.layer_sizes[i],
                config.layer_sizes[i + 1],
                activation,
                rng,
            ));
        }
        Self { layers, config }
    }

    /// The configuration used to build this network.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Borrow the layers (e.g. for Lipschitz-constant estimation).
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Inference forward pass on a batch (`rows` = batch size).
    pub fn forward(&self, input: &Matrix<f64>) -> Matrix<f64> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Convenience: forward a single sample given as a slice.
    pub fn forward_one(&self, input: &[f64]) -> Vec<f64> {
        let out = self.forward(&Matrix::row_from_slice(input));
        out.row(0).to_vec()
    }

    /// Allocation-free single-sample inference: ping-pongs between the two
    /// workspace matrices of `scratch` and writes the output layer's row
    /// into `out` (cleared and refilled, capacity reused). Bit-for-bit
    /// identical to [`Mlp::forward_one`] — the DQN agent's per-step action
    /// selection runs through here so the training loop stays free of
    /// matrix heap allocations at steady state.
    pub fn forward_one_into(&self, input: &[f64], scratch: &mut MlpScratch, out: &mut Vec<f64>) {
        scratch.x.resize_zeroed(1, input.len());
        scratch.x.set_row(0, input);
        let (ping, pong) = scratch.bufs.split_at_mut(1);
        let (ping, pong) = (&mut ping[0], &mut pong[0]);
        self.layers[0].forward_into(&scratch.x, ping);
        let mut ping_is_current = true;
        for layer in &self.layers[1..] {
            if ping_is_current {
                layer.forward_into(ping, pong);
            } else {
                layer.forward_into(pong, ping);
            }
            ping_is_current = !ping_is_current;
        }
        let last = if ping_is_current { &*ping } else { &*pong };
        out.clear();
        out.extend_from_slice(last.row(0));
    }

    /// Allocation-free batched inference: the `B`-row generalisation of
    /// [`Mlp::forward_one_into`], ping-ponging whole `B × n` activations
    /// through the workspace matrices and leaving the output layer in `out`
    /// (resized in place, capacity reused). Bit-for-bit identical to
    /// [`Mlp::forward`] — the layer kernels accumulate each batch row
    /// independently — so the serve engine's ticketed dispatch can keep a
    /// warm DQN worker free of matrix heap allocations at steady state.
    pub fn forward_batch_into(
        &self,
        input: &Matrix<f64>,
        scratch: &mut MlpScratch,
        out: &mut Matrix<f64>,
    ) {
        let (ping, pong) = scratch.bufs.split_at_mut(1);
        let (ping, pong) = (&mut ping[0], &mut pong[0]);
        self.layers[0].forward_into(input, ping);
        let mut ping_is_current = true;
        for layer in &self.layers[1..] {
            if ping_is_current {
                layer.forward_into(ping, pong);
            } else {
                layer.forward_into(pong, ping);
            }
            ping_is_current = !ping_is_current;
        }
        let last = if ping_is_current { &*ping } else { &*pong };
        out.resize_zeroed(last.rows(), last.cols());
        out.as_mut_slice().copy_from_slice(last.as_slice());
    }

    /// One optimisation step on a batch: forward, loss gradient, backward,
    /// and parameter update. Returns the scalar loss before the update.
    pub fn train_step<O: Optimizer>(
        &mut self,
        input: &Matrix<f64>,
        target: &Matrix<f64>,
        loss: Loss,
        optimizer: &mut O,
    ) -> f64 {
        // forward with caches
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward_training(&x);
        }
        let loss_value = loss.value(&x, target);

        // backward
        let mut grad = loss.gradient(&x, target);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }

        // update (two slots per layer: weights then bias)
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let gw = layer.grad_weights().clone();
            let gb = layer.grad_bias().clone();
            optimizer.update(2 * i, layer.weights_mut(), &gw);
            optimizer.update(2 * i + 1, layer.bias_mut(), &gb);
        }
        loss_value
    }

    /// Export every layer's parameters as `(weights, bias)` pairs, in layer
    /// order — the serialisable half of checkpointing a network. Rebuild the
    /// architecture from its [`MlpConfig`] and feed the pairs back through
    /// [`Mlp::import_parameters`] to restore the exact parameter state.
    pub fn export_parameters(&self) -> Vec<(Matrix<f64>, Matrix<f64>)> {
        self.layers
            .iter()
            .map(|l| (l.weights().clone(), l.bias().clone()))
            .collect()
    }

    /// Overwrite every layer's parameters from [`Mlp::export_parameters`]
    /// output. Panics when the layer count or any shape disagrees with this
    /// network's architecture.
    pub fn import_parameters(&mut self, params: &[(Matrix<f64>, Matrix<f64>)]) {
        assert_eq!(
            self.layers.len(),
            params.len(),
            "import_parameters: layer count mismatch"
        );
        for (layer, (w, b)) in self.layers.iter_mut().zip(params) {
            assert_eq!(
                layer.weights().shape(),
                w.shape(),
                "import_parameters: weight shape mismatch"
            );
            assert_eq!(
                layer.bias().shape(),
                b.shape(),
                "import_parameters: bias shape mismatch"
            );
            layer.weights_mut().clone_from(w);
            layer.bias_mut().clone_from(b);
        }
    }

    /// Copy all parameters from another network of identical architecture.
    /// This is the DQN fixed-target-network synchronisation (`θ₂ ← θ₁`).
    pub fn copy_parameters_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.config.layer_sizes, other.config.layer_sizes,
            "copy_parameters_from: architecture mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(other.layers.iter()) {
            dst.copy_parameters_from(src);
        }
    }

    /// Upper bound on the network's Lipschitz constant: the product over
    /// layers of `σ_max(W)` times the activation's Lipschitz constant (§2.5).
    pub fn lipschitz_upper_bound(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| {
                let sigma =
                    elmrl_linalg::norms::spectral_norm_exact(l.weights()).unwrap_or(f64::INFINITY);
                sigma * l.activation().lipschitz_constant()
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Adam, Sgd};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix<f64>, Matrix<f64>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let t = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![0.0]]);
        (x, t)
    }

    #[test]
    fn config_validation_and_accessors() {
        let c = MlpConfig::new(&[4, 8, 2]);
        assert_eq!(c.input_dim(), 4);
        assert_eq!(c.output_dim(), 2);
        assert_eq!(c.hidden_activation, Activation::ReLU);
        assert_eq!(c.output_activation, Activation::Identity);
        let c2 = c
            .clone()
            .with_hidden_activation(Activation::Tanh)
            .with_output_activation(Activation::Sigmoid);
        assert_eq!(c2.hidden_activation, Activation::Tanh);
        assert_eq!(c2.output_activation, Activation::Sigmoid);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_layer_config_rejected() {
        let _ = MlpConfig::new(&[4]);
    }

    #[test]
    fn network_shapes_and_parameter_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = Mlp::new(MlpConfig::new(&[5, 64, 2]), &mut rng);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.parameter_count(), 5 * 64 + 64 + 64 * 2 + 2);
        let y = net.forward(&Matrix::<f64>::ones(3, 5));
        assert_eq!(y.shape(), (3, 2));
        assert_eq!(net.forward_one(&[1.0; 5]).len(), 2);
    }

    #[test]
    fn learns_xor_with_adam() {
        let mut rng = SmallRng::seed_from_u64(7);
        let config = MlpConfig::new(&[2, 16, 1]).with_hidden_activation(Activation::Tanh);
        let mut net = Mlp::new(config, &mut rng);
        let mut opt = Adam::new(0.02);
        let (x, t) = xor_data();
        let mut final_loss = f64::INFINITY;
        for _ in 0..2000 {
            final_loss = net.train_step(&x, &t, Loss::Mse, &mut opt);
        }
        assert!(final_loss < 0.02, "XOR did not converge: loss {final_loss}");
        let pred = net.forward(&x);
        assert!(pred[(0, 0)] < 0.3 && pred[(3, 0)] < 0.3);
        assert!(pred[(1, 0)] > 0.7 && pred[(2, 0)] > 0.7);
    }

    #[test]
    fn learns_linear_function_with_sgd_and_huber() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut net = Mlp::new(MlpConfig::new(&[1, 8, 1]), &mut rng);
        let mut opt = Sgd::new(0.01);
        let x = Matrix::from_fn(20, 1, |i, _| i as f64 / 20.0);
        let t = x.map(|v| 2.0 * v - 0.5);
        for _ in 0..3000 {
            net.train_step(&x, &t, Loss::Huber, &mut opt);
        }
        let pred = net.forward(&x);
        assert!(pred.max_abs_diff(&t) < 0.15);
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut net = Mlp::new(MlpConfig::new(&[2, 12, 1]), &mut rng);
        let mut opt = Adam::new(0.01);
        let (x, t) = xor_data();
        let first = net.train_step(&x, &t, Loss::Mse, &mut opt);
        let mut last = first;
        for _ in 0..300 {
            last = net.train_step(&x, &t, Loss::Mse, &mut opt);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn target_network_copy_makes_outputs_identical() {
        let mut rng = SmallRng::seed_from_u64(4);
        let config = MlpConfig::new(&[3, 10, 2]);
        let a = Mlp::new(config.clone(), &mut rng);
        let mut b = Mlp::new(config, &mut rng);
        let x = Matrix::from_rows(&[vec![0.5, -0.5, 1.0]]);
        assert!(a.forward(&x).max_abs_diff(&b.forward(&x)) > 1e-9);
        b.copy_parameters_from(&a);
        assert!(a.forward(&x).max_abs_diff(&b.forward(&x)) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn copy_between_different_architectures_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = Mlp::new(MlpConfig::new(&[3, 10, 2]), &mut rng);
        let mut b = Mlp::new(MlpConfig::new(&[3, 11, 2]), &mut rng);
        b.copy_parameters_from(&a);
    }

    #[test]
    fn lipschitz_bound_is_finite_and_positive() {
        let mut rng = SmallRng::seed_from_u64(6);
        let net = Mlp::new(MlpConfig::new(&[4, 32, 2]), &mut rng);
        let k = net.lipschitz_upper_bound();
        assert!(k.is_finite() && k > 0.0);
        // Empirically verify the bound on random input pairs.
        let mut max_ratio: f64 = 0.0;
        for i in 0..20 {
            let x1 = elmrl_linalg::random::uniform_matrix::<f64, _>(1, 4, -1.0, 1.0, &mut rng);
            let x2 = elmrl_linalg::random::uniform_matrix::<f64, _>(1, 4, -1.0, 1.0, &mut rng);
            let dy = (&net.forward(&x1) - &net.forward(&x2)).frobenius_norm();
            let dx = (&x1 - &x2).frobenius_norm();
            if dx > 1e-9 {
                max_ratio = max_ratio.max(dy / dx);
            }
            let _ = i;
        }
        assert!(
            max_ratio <= k + 1e-9,
            "observed ratio {max_ratio} exceeds bound {k}"
        );
    }
}
