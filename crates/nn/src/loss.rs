//! Loss functions: mean squared error and the Huber loss.
//!
//! The paper's DQN baseline uses the Huber function (Equations 14–15):
//! quadratic inside `|x − y| < 1`, linear outside, averaged over the batch.
//! The ELM/OS-ELM approaches implicitly minimise a squared error (their
//! analytic solve), so MSE is provided for parity and for the supervised
//! examples.

use elmrl_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Loss function selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error `mean((x − y)²)`.
    Mse,
    /// Huber loss with threshold 1 (Equations 14–15 of the paper).
    Huber,
}

impl Loss {
    /// Scalar loss value for predictions `pred` against targets `target`,
    /// averaged over every element.
    pub fn value(self, pred: &Matrix<f64>, target: &Matrix<f64>) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "loss: shape mismatch");
        let n = pred.len() as f64;
        let mut acc = 0.0;
        for (&p, &t) in pred.iter().zip(target.iter()) {
            let d = p - t;
            acc += match self {
                Loss::Mse => d * d,
                Loss::Huber => {
                    if d.abs() < 1.0 {
                        0.5 * d * d
                    } else {
                        d.abs() - 0.5
                    }
                }
            };
        }
        acc / n
    }

    /// Gradient of the loss with respect to `pred`, already divided by the
    /// number of elements (so the optimiser sees the mean gradient).
    pub fn gradient(self, pred: &Matrix<f64>, target: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(
            pred.shape(),
            target.shape(),
            "loss gradient: shape mismatch"
        );
        let n = pred.len() as f64;
        pred.zip_map(target, |p, t| {
            let d = p - t;
            let g = match self {
                Loss::Mse => 2.0 * d,
                Loss::Huber => {
                    if d.abs() < 1.0 {
                        d
                    } else {
                        d.signum()
                    }
                }
            };
            g / n
        })
        .expect("shapes already checked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_matrices_is_zero() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(Loss::Mse.value(&a, &a), 0.0);
        assert_eq!(Loss::Huber.value(&a, &a), 0.0);
    }

    #[test]
    fn huber_is_quadratic_inside_and_linear_outside() {
        let pred = Matrix::from_rows(&[vec![0.5]]);
        let target = Matrix::from_rows(&[vec![0.0]]);
        // |d| = 0.5 < 1 → 0.5 · d²
        assert!((Loss::Huber.value(&pred, &target) - 0.125).abs() < 1e-12);
        let pred2 = Matrix::from_rows(&[vec![3.0]]);
        // |d| = 3 ≥ 1 → |d| − 0.5
        assert!((Loss::Huber.value(&pred2, &target) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn huber_gradient_is_clipped() {
        let target = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]);
        let pred = Matrix::from_rows(&[vec![0.5, 5.0, -5.0]]);
        let g = Loss::Huber.gradient(&pred, &target);
        // divided by n = 3
        assert!((g[(0, 0)] - 0.5 / 3.0).abs() < 1e-12);
        assert!((g[(0, 1)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((g[(0, 2)] + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let target = Matrix::from_rows(&[vec![0.3, -0.7], vec![1.2, 0.0]]);
        let pred = Matrix::from_rows(&[vec![0.5, -0.2], vec![0.4, 2.0]]);
        let h = 1e-6;
        for loss in [Loss::Mse, Loss::Huber] {
            let g = loss.gradient(&pred, &target);
            for r in 0..2 {
                for c in 0..2 {
                    let mut plus = pred.clone();
                    plus[(r, c)] += h;
                    let mut minus = pred.clone();
                    minus[(r, c)] -= h;
                    let numeric =
                        (loss.value(&plus, &target) - loss.value(&minus, &target)) / (2.0 * h);
                    assert!(
                        (numeric - g[(r, c)]).abs() < 1e-5,
                        "{loss:?} ({r},{c}): numeric {numeric} vs {}",
                        g[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn mse_penalises_large_errors_more_than_huber() {
        let target = Matrix::from_rows(&[vec![0.0]]);
        let pred = Matrix::from_rows(&[vec![10.0]]);
        assert!(Loss::Mse.value(&pred, &target) > Loss::Huber.value(&pred, &target));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::from_rows(&[vec![1.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let _ = Loss::Mse.value(&a, &b);
    }
}
