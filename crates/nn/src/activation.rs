//! Activation functions and their derivatives.
//!
//! The paper uses ReLU throughout (`G(x) = x if x ≥ 0 else 0`, §4.1). The DQN
//! baseline and the ELM hidden layer both draw from this enum so that the
//! experiment harness can switch activations in one place.

use elmrl_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Supported element-wise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — the function used by the paper for both the DQN and the
    /// ELM/OS-ELM hidden layer.
    ReLU,
    /// Hyperbolic tangent (1-Lipschitz, mentioned in §2.5).
    Tanh,
    /// Logistic sigmoid, the classical ELM activation.
    Sigmoid,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyReLU,
    /// Identity (no non-linearity) — used for output layers.
    Identity,
}

impl Activation {
    /// Apply the activation to a single value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => {
                if x >= 0.0 {
                    x
                } else {
                    0.0
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::LeakyReLU => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the *pre-activation* input `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::ReLU => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::LeakyReLU => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Apply element-wise to a matrix.
    pub fn apply_matrix(self, m: &Matrix<f64>) -> Matrix<f64> {
        m.map(|x| self.apply(x))
    }

    /// Apply element-wise in place — the allocation-free form used by the
    /// inference workspace passes. Identical results to
    /// [`Activation::apply_matrix`].
    pub fn apply_matrix_inplace(self, m: &mut Matrix<f64>) {
        m.map_inplace(|x| self.apply(x));
    }

    /// Element-wise derivative of a matrix of pre-activations.
    pub fn derivative_matrix(self, m: &Matrix<f64>) -> Matrix<f64> {
        m.map(|x| self.derivative(x))
    }

    /// The Lipschitz constant of the activation (§2.5: ≤ 1 for ReLU and tanh).
    pub fn lipschitz_constant(self) -> f64 {
        match self {
            Activation::ReLU | Activation::Tanh | Activation::Identity | Activation::LeakyReLU => {
                1.0
            }
            Activation::Sigmoid => 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 5] = [
        Activation::ReLU,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::LeakyReLU,
        Activation::Identity,
    ];

    #[test]
    fn relu_matches_paper_definition() {
        let a = Activation::ReLU;
        assert_eq!(a.apply(3.0), 3.0);
        assert_eq!(a.apply(-3.0), 0.0);
        assert_eq!(a.apply(0.0), 0.0);
        assert_eq!(a.derivative(2.0), 1.0);
        assert_eq!(a.derivative(-2.0), 0.0);
    }

    #[test]
    fn sigmoid_and_tanh_ranges() {
        for x in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            let s = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&s));
            let t = Activation::Tanh.apply(x);
            assert!((-1.0..=1.0).contains(&t));
        }
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Tanh.apply(0.0).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in ALL {
            for x in [-2.3, -0.7, 0.4, 1.9] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn lipschitz_constants_bound_slopes() {
        for act in ALL {
            let k = act.lipschitz_constant();
            for x in [-3.0, -0.5, 0.0, 0.5, 3.0] {
                assert!(act.derivative(x).abs() <= k + 1e-12, "{act:?}");
            }
        }
    }

    #[test]
    fn matrix_application() {
        let m = Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.5, -0.5]]);
        let r = Activation::ReLU.apply_matrix(&m);
        assert_eq!(r[(0, 0)], 0.0);
        assert_eq!(r[(0, 1)], 2.0);
        let d = Activation::ReLU.derivative_matrix(&m);
        assert_eq!(d[(0, 0)], 0.0);
        assert_eq!(d[(1, 0)], 1.0);
    }
}
