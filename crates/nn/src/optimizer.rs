//! Gradient-descent optimisers: plain SGD and Adam.
//!
//! The paper's DQN baseline is trained with Adam at learning rate 0.01
//! (§4.1). The optimiser owns its per-parameter state (first/second moment
//! estimates), keyed by a caller-provided slot index so one optimiser
//! instance can serve every layer of a network.

use elmrl_linalg::Matrix;

/// Common interface for parameter-update rules.
pub trait Optimizer {
    /// Apply one update to `param` given its gradient. `slot` identifies the
    /// parameter tensor (layer index × {weights, bias}) so stateful
    /// optimisers can keep per-tensor moments.
    fn update(&mut self, slot: usize, param: &mut Matrix<f64>, grad: &Matrix<f64>);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;
}

/// Stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Option<Matrix<f64>>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn slot_velocity(&mut self, slot: usize, shape: (usize, usize)) -> &mut Matrix<f64> {
        if self.velocity.len() <= slot {
            self.velocity.resize(slot + 1, None);
        }
        self.velocity[slot].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1))
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, slot: usize, param: &mut Matrix<f64>, grad: &Matrix<f64>) {
        assert_eq!(param.shape(), grad.shape(), "sgd: shape mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in param.as_mut_slice().iter_mut().zip(grad.iter()) {
                *p -= self.lr * g;
            }
            return;
        }
        let momentum = self.momentum;
        let lr = self.lr;
        let v = self.slot_velocity(slot, param.shape());
        assert_eq!(
            v.shape(),
            param.shape(),
            "sgd: slot reused with a different shape"
        );
        for ((p, vel), &g) in param
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice().iter_mut())
            .zip(grad.iter())
        {
            *vel = momentum * *vel - lr * g;
            *p += *vel;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Per-slot Adam state: (first moment, second moment, step count).
pub type MomentState = (Matrix<f64>, Matrix<f64>, u64);

/// Adam (Kingma & Ba, 2015) with the standard default moment decays.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    /// Lazily initialised per-slot moments.
    state: Vec<Option<MomentState>>,
}

impl Adam {
    /// Adam with the paper's defaults: β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps,
            state: Vec::new(),
        }
    }

    /// Reset all moment estimates (used when re-initialising an agent).
    pub fn reset(&mut self) {
        self.state.clear();
    }

    /// Export the per-slot moment estimates for checkpointing. Together with
    /// [`Adam::import_state`] this resumes the optimiser mid-run bit for bit
    /// (the bias-correction step count is part of each slot's state).
    pub fn export_state(&self) -> Vec<Option<MomentState>> {
        self.state.clone()
    }

    /// Restore moment estimates captured by [`Adam::export_state`].
    pub fn import_state(&mut self, state: Vec<Option<MomentState>>) {
        self.state = state;
    }
}

impl Optimizer for Adam {
    fn update(&mut self, slot: usize, param: &mut Matrix<f64>, grad: &Matrix<f64>) {
        assert_eq!(param.shape(), grad.shape(), "adam: shape mismatch");
        if self.state.len() <= slot {
            self.state.resize(slot + 1, None);
        }
        let (rows, cols) = param.shape();
        let entry = self.state[slot]
            .get_or_insert_with(|| (Matrix::zeros(rows, cols), Matrix::zeros(rows, cols), 0));
        assert_eq!(
            entry.0.shape(),
            param.shape(),
            "adam: slot reused with a different shape"
        );
        entry.2 += 1;
        let t = entry.2 as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);

        for i in 0..param.len() {
            let g = grad.as_slice()[i];
            let m = &mut entry.0.as_mut_slice()[i];
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            let v = &mut entry.1.as_mut_slice()[i];
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            param.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)² starting from 0 and check convergence.
    fn minimise_quadratic<O: Optimizer>(opt: &mut O, steps: usize) -> f64 {
        let mut x = Matrix::zeros(1, 1);
        for _ in 0..steps {
            let grad = Matrix::from_rows(&[vec![2.0 * (x[(0, 0)] - 3.0)]]);
            opt.update(0, &mut x, &grad);
        }
        x[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimise_quadratic(&mut Sgd::new(0.1), 200);
        assert!((x - 3.0).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn sgd_with_momentum_converges_faster_than_plain() {
        let plain = minimise_quadratic(&mut Sgd::new(0.01), 100);
        let momentum = minimise_quadratic(&mut Sgd::with_momentum(0.01, 0.9), 100);
        assert!((momentum - 3.0).abs() < (plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimise_quadratic(&mut Adam::new(0.1), 500);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn adam_handles_sparse_like_gradients() {
        // A dimension with rare gradients should still move thanks to the
        // second-moment normalisation.
        let mut opt = Adam::new(0.05);
        let mut x = Matrix::zeros(1, 2);
        for step in 0..400 {
            let g0 = 2.0 * (x[(0, 0)] - 1.0);
            let g1 = if step % 10 == 0 {
                2.0 * (x[(0, 1)] - 1.0)
            } else {
                0.0
            };
            let grad = Matrix::from_rows(&[vec![g0, g1]]);
            opt.update(0, &mut x, &grad);
        }
        assert!((x[(0, 0)] - 1.0).abs() < 1e-2);
        assert!((x[(0, 1)] - 1.0).abs() < 0.2);
    }

    #[test]
    fn separate_slots_have_independent_state() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(2, 2);
        let ga = Matrix::from_rows(&[vec![1.0]]);
        let gb = Matrix::<f64>::ones(2, 2);
        opt.update(0, &mut a, &ga);
        opt.update(1, &mut b, &gb);
        // both moved in the negative gradient direction
        assert!(a[(0, 0)] < 0.0);
        assert!(b[(1, 1)] < 0.0);
        opt.reset();
        assert!(opt.state.is_empty());
    }

    #[test]
    fn learning_rate_accessors() {
        assert_eq!(Sgd::new(0.5).learning_rate(), 0.5);
        assert_eq!(Adam::new(0.01).learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_gradient_shape_panics() {
        let mut opt = Sgd::new(0.1);
        let mut p = Matrix::<f64>::zeros(2, 2);
        let g = Matrix::<f64>::zeros(1, 1);
        opt.update(0, &mut p, &g);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn invalid_momentum_rejected() {
        let _ = Sgd::with_momentum(0.1, 1.5);
    }
}
