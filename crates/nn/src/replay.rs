//! Experience replay buffer.
//!
//! DQNs record `(sₜ, aₜ, rₜ, sₜ₊₁, done)` transitions and sample random
//! mini-batches to break temporal correlation (§2.4). The paper's core
//! argument is that this buffer is exactly what a resource-limited edge
//! device cannot afford — the OS-ELM Q-Network replaces it with the *random
//! update* technique — so this implementation exists for the DQN baseline and
//! for the memory-footprint comparison in the harness.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One stored transition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State observed before acting.
    pub state: Vec<f64>,
    /// Action taken (discrete index).
    pub action: usize,
    /// Reward received.
    pub reward: f64,
    /// State observed after acting.
    pub next_state: Vec<f64>,
    /// Whether the episode terminated at this step.
    pub done: bool,
}

/// A bounded FIFO replay buffer with uniform random sampling.
///
/// Serialisable so a DQN checkpoint can carry its full replay history —
/// resuming with an empty buffer would change which mini-batches the
/// restored run samples and break byte-identical resume.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayBuffer {
    buffer: VecDeque<Transition>,
    capacity: usize,
}

impl ReplayBuffer {
    /// Create a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        Self {
            buffer: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// `true` when no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// `true` when the buffer holds `capacity` transitions.
    pub fn is_full(&self) -> bool {
        self.buffer.len() == self.capacity
    }

    /// Append a transition, evicting the oldest one when full.
    pub fn push(&mut self, t: Transition) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back(t);
    }

    /// Uniformly sample `batch_size` transitions (with replacement when the
    /// buffer is smaller than the batch). Returns an empty vector when the
    /// buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, batch_size: usize, rng: &mut R) -> Vec<&Transition> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        (0..batch_size)
            .map(|_| &self.buffer[rng.gen_range(0..self.buffer.len())])
            .collect()
    }

    /// Iterate over the stored transitions from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.buffer.iter()
    }

    /// Remove every stored transition.
    pub fn clear(&mut self) {
        self.buffer.clear();
    }

    /// Approximate memory footprint of the stored transitions in bytes. The
    /// harness uses this to contrast DQN's buffer requirement with the
    /// OS-ELM random-update approach (which needs no buffer at all).
    pub fn approximate_bytes(&self) -> usize {
        self.buffer
            .iter()
            .map(|t| {
                std::mem::size_of::<Transition>()
                    + (t.state.len() + t.next_state.len()) * std::mem::size_of::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn transition(i: usize) -> Transition {
        Transition {
            state: vec![i as f64; 4],
            action: i % 2,
            reward: 1.0,
            next_state: vec![i as f64 + 1.0; 4],
            done: false,
        }
    }

    #[test]
    fn push_and_len() {
        let mut buf = ReplayBuffer::new(3);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 3);
        for i in 0..2 {
            buf.push(transition(i));
        }
        assert_eq!(buf.len(), 2);
        assert!(!buf.is_full());
        buf.push(transition(2));
        assert!(buf.is_full());
    }

    #[test]
    fn eviction_is_fifo() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(transition(i));
        }
        assert_eq!(buf.len(), 3);
        let states: Vec<f64> = buf.iter().map(|t| t.state[0]).collect();
        assert_eq!(states, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sampling_returns_requested_count() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..10 {
            buf.push(transition(i));
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let batch = buf.sample(32, &mut rng);
        assert_eq!(batch.len(), 32);
        assert!(batch.iter().all(|t| t.state[0] < 10.0));
        assert!(buf.sample(4, &mut rng).len() == 4);
    }

    #[test]
    fn sampling_from_empty_buffer_is_empty() {
        let buf = ReplayBuffer::new(4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(buf.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn sampling_covers_the_buffer_eventually() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(transition(i));
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for t in buf.sample(400, &mut rng) {
            seen[t.state[0] as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampling should hit every slot"
        );
    }

    #[test]
    fn clear_and_bytes() {
        let mut buf = ReplayBuffer::new(4);
        buf.push(transition(0));
        assert!(buf.approximate_bytes() > 8 * std::mem::size_of::<f64>());
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.approximate_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
