//! # elmrl-population
//!
//! The population execution engine: K replicated agents of one design
//! training on one workload, sharded across a genuinely concurrent
//! work-sharing thread pool (`--threads` / `ELMRL_THREADS` size it),
//! stepped in lockstep through vectorized environments, and driven with
//! batched Q-network inference on both the training (`act_row`) and the
//! greedy-evaluation (`predict_batch`) side.
//!
//! The paper evaluates a single agent per trial; the ROADMAP's next scaling
//! step is sharding one trial's agents across threads for population-style
//! runs. This crate is that subsystem:
//!
//! * [`runner`] — [`PopulationRunner`]: the sharded lockstep executor built
//!   on [`elmrl_gym::VecEnv`] and [`elmrl_core::batch::BatchAgent`], plus the
//!   shard-invariant [`PopulationReport`] aggregate (solve rate,
//!   episodes-to-solve quantiles, greedy-evaluation returns);
//! * [`seed`] — SplitMix64 seed-splitting, deriving every replica's RNG
//!   streams from the master seed and the replica's global index so the run
//!   replays identically for any shard count.
//!
//! ```
//! use elmrl_core::designs::Design;
//! use elmrl_gym::Workload;
//! use elmrl_population::{PopulationConfig, PopulationRunner};
//!
//! let mut config =
//!     PopulationConfig::new(Workload::CartPole, Design::OsElmL2Lipschitz, 8, 4);
//! config.max_episodes = 3; // tiny budget for the doctest
//! config.eval_episodes = 2;
//! config.shards = 2;
//! let report = PopulationRunner::new(config).run();
//! assert_eq!(report.replicas.len(), 4);
//! assert!((0.0..=1.0).contains(&report.solve_rate));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod runner;
pub mod seed;

pub use runner::{
    FaultPlan, PopulationConfig, PopulationReport, PopulationRun, PopulationRunner,
    QuantileSummary, ReplicaOutcome, ShardManifest, MANIFEST_VERSION,
};
pub use seed::{replica_eval_seed, replica_train_seed, split_seed};
