//! Seed-splitting: derive independent per-replica RNG streams from one
//! master seed.
//!
//! The population runner must replay identically no matter how its replicas
//! are sharded across threads, so no RNG state may be shared between
//! replicas or owned by a shard. Instead every replica derives its streams
//! from the master seed and its **global replica index** alone, using the
//! SplitMix64 output function — the same generator `rand`'s `SmallRng`
//! seeding is built on, so derived seeds are well-mixed even for adjacent
//! indices.
//!
//! Stream layout per replica `i` (fixed, documented, relied on by the
//! shard-invariance tests):
//!
//! * stream `2·i` — the **training** stream, shared by the replica's agent
//!   construction, ε-policy draws and environment dynamics (mirroring how
//!   `run_trial` shares one stream between agent and environment);
//! * stream `2·i + 1` — the **evaluation** stream, seeding the greedy
//!   evaluation episodes so evaluation never perturbs training replay.

/// SplitMix64's Weyl-sequence increment (the "golden gamma").
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64's output mixing function.
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of logical `stream` from `master` — SplitMix64 evaluated
/// at the `stream + 1`-th state after `master`. Depends only on the two
/// arguments, never on shard layout or thread count.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    mix(master.wrapping_add(stream.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

/// The training-stream seed of replica `i` (stream `2·i`).
pub fn replica_train_seed(master: u64, replica: usize) -> u64 {
    split_seed(master, 2 * replica as u64)
}

/// The evaluation-stream seed of replica `i` (stream `2·i + 1`).
pub fn replica_eval_seed(master: u64, replica: usize) -> u64 {
    split_seed(master, 2 * replica as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0));
        let mut seen = std::collections::BTreeSet::new();
        for master in [0u64, 1, 42, u64::MAX] {
            for replica in 0..64 {
                seen.insert(replica_train_seed(master, replica));
                seen.insert(replica_eval_seed(master, replica));
            }
        }
        // 4 masters × 64 replicas × 2 streams, all distinct.
        assert_eq!(seen.len(), 4 * 64 * 2);
    }

    #[test]
    fn train_and_eval_streams_never_collide() {
        for replica in 0..100 {
            assert_ne!(
                replica_train_seed(7, replica),
                replica_eval_seed(7, replica)
            );
        }
    }

    #[test]
    fn master_seed_changes_every_stream() {
        assert_ne!(replica_train_seed(1, 0), replica_train_seed(2, 0));
        assert_ne!(replica_eval_seed(1, 5), replica_eval_seed(2, 5));
    }
}
