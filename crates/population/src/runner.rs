//! The population execution engine.
//!
//! [`PopulationRunner`] trains K replicated agents of **one design** on
//! **one workload**, sharded across the `rayon`-shim work-sharing thread
//! pool — since PR 4 the shards genuinely run concurrently (`--threads`
//! / `ELMRL_THREADS` size the pool), making `--shards` a real wall-clock
//! lever. Each shard drives its replicas **in lockstep** through an
//! [`elmrl_gym::VecEnv`] — one environment step per replica per engine
//! tick, auto-reset on episode end — rather than looping whole trials, so
//! the engine is the serving-shaped execution path the ROADMAP's
//! batch/replicated-serving item asks for.
//!
//! Reproducibility: all randomness is derived from the master seed and each
//! replica's **global index** (see [`crate::seed`]); the shared
//! [`EnvSpec`] is read-only, and shard results are stitched back in shard
//! order. The aggregate [`PopulationReport`] is therefore byte-identical
//! for any `--shards` **and any `--threads`** value, which the determinism
//! tests and the CI smoke run assert.
//!
//! Inference is batched on both sides of training: the per-tick ε-greedy
//! **training** decision goes through [`BatchAgent::act_row`] (the batched
//! forward kernel, one stacked matmul per decision), and after training
//! every replica's final policy is scored by a **greedy evaluation pass**
//! in which `eval_episodes` environments step in lockstep while the
//! replica's network evaluates all still-running episodes in one batched
//! forward ([`BatchAgent::predict_batch`] over
//! [`Matrix::gather_rows`]-packed states) — the batched-inference path the
//! `population_throughput` benchmark measures in isolation.

use crate::seed::{replica_eval_seed, replica_train_seed};
use elmrl_core::agent::Observation;
use elmrl_core::batch::BatchAgent;
use elmrl_core::designs::{Design, DesignConfig};
use elmrl_core::trainer::{CheckpointCtl, Trainer, TrainerConfig};
use elmrl_fpga::{FpgaAgent, FpgaAgentConfig};
use elmrl_gym::{EnvSpec, SolveCriterion, VecEnv, Workload, WorkloadOptions};
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;

/// Schema version of the per-shard checkpoint manifests.
pub const MANIFEST_VERSION: u32 = 1;

/// Configuration of one population run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Workload every replica trains on.
    pub workload: Workload,
    /// Workload variant knobs (e.g. Pendulum torque discretisation).
    pub options: WorkloadOptions,
    /// The replicated design.
    pub design: Design,
    /// Hidden width `Ñ` of every replica.
    pub hidden_dim: usize,
    /// Number of replicas K.
    pub population: usize,
    /// Number of shards the replicas are partitioned into (each shard is
    /// one task on the work-sharing pool, so up to `min(shards, threads)`
    /// run concurrently). Affects scheduling only — never results.
    pub shards: usize,
    /// Master seed; per-replica streams are split from it.
    pub seed: u64,
    /// Episode budget per replica.
    pub max_episodes: usize,
    /// Parallel training episodes per replica (the CLI's `--train-envs`).
    /// 1 — the default — is the paper's scalar protocol (one episode at a
    /// time per replica, byte-identical to previous releases); E > 1 gives
    /// every replica its own E-slot [`VecEnv`] so it trains E episodes in
    /// lockstep with batch-B updates.
    pub train_envs: usize,
    /// RLS batch-width cap for the chunked OS-ELM designs (the CLI's
    /// `--chunk-cap`; `None` defers to [`elmrl_core::DEFAULT_CHUNK_CAP`]
    /// once `train_envs > 1` engages the chunked path). Skipped when
    /// absent so pre-existing manifests round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chunk_cap: Option<usize>,
    /// Lockstep greedy-evaluation episodes per replica after training
    /// (0 disables the evaluation pass).
    pub eval_episodes: usize,
}

impl PopulationConfig {
    /// A configuration using the workload's registry defaults (episode
    /// budget from the spec; reset rule resolved per design at run time).
    pub fn new(workload: Workload, design: Design, hidden_dim: usize, population: usize) -> Self {
        let spec = workload.spec();
        Self {
            workload,
            options: WorkloadOptions::default(),
            design,
            hidden_dim,
            population,
            shards: 1,
            seed: 42,
            max_episodes: spec.defaults.max_episodes,
            train_envs: 1,
            chunk_cap: None,
            eval_episodes: 8,
        }
    }
}

/// The outcome of one replica — the population analogue of a trial result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplicaOutcome {
    /// Global replica index (stable across shard layouts).
    pub replica: usize,
    /// The replica's training-stream seed.
    pub seed: u64,
    /// Whether the solve criterion fired within the episode budget.
    pub solved: bool,
    /// Episode index (0-based) at which the criterion fired.
    pub solved_at_episode: Option<usize>,
    /// Episodes actually run.
    pub episodes_run: usize,
    /// Environment steps taken.
    pub total_steps: usize,
    /// Times the reset rule fired.
    pub resets: usize,
    /// Mean raw return of the post-training greedy evaluation episodes
    /// (`None` when the evaluation pass is disabled).
    pub greedy_eval_return: Option<f64>,
    /// Per-episode raw returns of this replica's training run, in episode
    /// order — the per-replica learning curve behind the population
    /// convergence table.
    pub returns: Vec<f64>,
}

/// Aggregate statistics over the whole population. Everything in this report
/// (and in the per-replica list) is independent of the shard count, so the
/// serialized JSON is byte-identical for any `shards` setting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PopulationReport {
    /// Workload the population ran on.
    pub workload: Workload,
    /// Workload variant knobs the run used.
    pub options: WorkloadOptions,
    /// Design label of every replica.
    pub design: String,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Population size K.
    pub population: usize,
    /// Master seed.
    pub seed: u64,
    /// Episode budget per replica.
    pub max_episodes: usize,
    /// Parallel training episodes per replica (`--train-envs`).
    pub train_envs: usize,
    /// The effective RLS chunk cap the replicas trained under (the CLI's
    /// `--chunk-cap`, or [`elmrl_core::DEFAULT_CHUNK_CAP`] once
    /// `train_envs > 1` engages the chunked path); `None` when every
    /// update was single-transition. Skipped when absent so pre-existing
    /// artifacts stay byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chunk_cap: Option<usize>,
    /// The effective completion rule of the run (registry default or the
    /// `--solve-threshold` override).
    pub solve_criterion: SolveCriterion,
    /// Greedy-evaluation episodes per replica.
    pub eval_episodes: usize,
    /// Fraction of replicas that solved the task.
    pub solve_rate: f64,
    /// Number of replicas that solved the task.
    pub solved: usize,
    /// Quantiles of episodes-to-solve over the solved replicas
    /// (p25/p50/p75/p90, nearest-rank; `None` when nothing solved).
    pub episodes_to_solve: QuantileSummary,
    /// Mean greedy evaluation return over all replicas (`None` when the
    /// evaluation pass is disabled).
    pub mean_greedy_eval_return: Option<f64>,
    /// Per-replica outcomes in global replica order.
    pub replicas: Vec<ReplicaOutcome>,
}

/// Nearest-rank quantiles of a sample (empty sample ⇒ all `None`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    /// Sample size.
    pub count: usize,
    /// Sample mean.
    pub mean: Option<f64>,
    /// 25th percentile.
    pub p25: Option<f64>,
    /// Median.
    pub p50: Option<f64>,
    /// 75th percentile.
    pub p75: Option<f64>,
    /// 90th percentile.
    pub p90: Option<f64>,
}

impl QuantileSummary {
    /// Summarise a sample (order irrelevant).
    pub fn of(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantiles need ordered values"));
        let q = |p: f64| -> Option<f64> {
            if sorted.is_empty() {
                return None;
            }
            // Nearest-rank: the smallest value with at least p·n sample mass.
            let rank = (p * sorted.len() as f64).ceil() as usize;
            Some(sorted[rank.clamp(1, sorted.len()) - 1])
        };
        Self {
            count: sorted.len(),
            mean: if sorted.is_empty() {
                None
            } else {
                Some(sorted.iter().sum::<f64>() / sorted.len() as f64)
            },
            p25: q(0.25),
            p50: q(0.50),
            p75: q(0.75),
            p90: q(0.90),
        }
    }
}

/// Fault-injection plan (the CLI's `--fail-shard k@e`): shard `shard` is
/// killed once `at_episode` training episodes have completed across its
/// replicas. A killed shard produces no outcomes — its replicas are requeued
/// deterministically onto the surviving shards and re-run from their
/// index-derived seeds, so the aggregate report is byte-identical to a run
/// without the failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Index of the shard to kill (into the current shard layout).
    pub shard: usize,
    /// Shard-local episode count at which the kill fires (0 kills the shard
    /// before it does any work).
    pub at_episode: usize,
}

impl FaultPlan {
    /// Parse the CLI form `k@e` (shard index `@` episode count).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (shard, episode) = s
            .split_once('@')
            .ok_or_else(|| format!("--fail-shard expects k@e, got `{s}`"))?;
        Ok(Self {
            shard: shard
                .trim()
                .parse()
                .map_err(|_| format!("--fail-shard: bad shard index `{shard}`"))?,
            at_episode: episode
                .trim()
                .parse()
                .map_err(|_| format!("--fail-shard: bad episode count `{episode}`"))?,
        })
    }
}

/// Per-shard checkpoint manifest: which replicas the shard owns under the
/// current layout and the outcomes it holds (its own completed replicas,
/// replicas adopted from prior manifests on resume, and orphans it re-ran
/// after another shard failed). The union of all manifests' outcomes is the
/// durable state of the population run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Manifest schema version.
    pub version: u32,
    /// Shard index under the layout of the run that wrote the manifest.
    pub shard: usize,
    /// Global replica indices assigned to the shard by that layout.
    pub assigned: Vec<usize>,
    /// Replica outcomes in this shard's custody, in global replica order.
    pub completed: Vec<ReplicaOutcome>,
    /// Whether fault injection killed this shard during the run.
    pub failed: bool,
}

impl ShardManifest {
    /// Serialize to the versioned JSON schema.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parse a manifest, rejecting unknown schema versions.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let m: Self = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if m.version != MANIFEST_VERSION {
            return Err(format!(
                "unsupported manifest version {} (expected {MANIFEST_VERSION})",
                m.version
            ));
        }
        Ok(m)
    }

    /// Write the manifest to `<dir>/shard-<k>.json`.
    pub fn save(&self, dir: &Path) -> Result<std::path::PathBuf, String> {
        let path = dir.join(format!("shard-{}.json", self.shard));
        std::fs::write(&path, self.to_json()?).map_err(|e| e.to_string())?;
        Ok(path)
    }

    /// Load every `shard-*.json` manifest found in `dir`, in shard order.
    pub fn load_dir(dir: &Path) -> Result<Vec<Self>, String> {
        let mut manifests = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| e.to_string())?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with("shard-") && name.ends_with(".json") {
                let json = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
                manifests.push(Self::from_json(&json)?);
            }
        }
        manifests.sort_by_key(|m| m.shard);
        Ok(manifests)
    }
}

/// The full outcome of a population execution: the aggregate report plus the
/// per-shard manifests describing what ran where (for checkpointing and
/// post-mortems).
#[derive(Clone, Debug, PartialEq)]
pub struct PopulationRun {
    /// The shard-layout-independent aggregate (what `population.json` holds).
    pub report: PopulationReport,
    /// Per-shard custody manifests for the execution, in shard order.
    pub manifests: Vec<ShardManifest>,
}

/// The sharded lockstep executor.
#[derive(Clone, Debug)]
pub struct PopulationRunner {
    config: PopulationConfig,
}

impl PopulationRunner {
    /// Create a runner. Panics on an empty population or zero shards.
    pub fn new(config: PopulationConfig) -> Self {
        assert!(config.population > 0, "population must be positive");
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.train_envs > 0, "need at least one training env");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Contiguous replica ranges, one per (non-empty) shard.
    fn shard_ranges(&self) -> Vec<Range<usize>> {
        let k = self.config.population;
        let s = self.config.shards.min(k);
        let base = k / s;
        let extra = k % s;
        let mut ranges = Vec::with_capacity(s);
        let mut start = 0;
        for shard in 0..s {
            let len = base + usize::from(shard < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Execute the population and aggregate the report.
    pub fn run(&self) -> PopulationReport {
        self.run_checkpointed(None, &[]).report
    }

    /// Execute with fault injection and/or resume from prior manifests.
    ///
    /// * `fault` — kill one shard mid-run; its replicas (the ones without a
    ///   resumed outcome) are requeued round-robin onto the surviving shards
    ///   and re-run from their index-derived seeds, so the report is
    ///   byte-identical to a failure-free run.
    /// * `resume` — manifests from an earlier (possibly killed) run. Outcomes
    ///   they hold are adopted without re-running. The replica set is
    ///   **elastic** across resumes: outcomes for indices beyond the current
    ///   `population` are dropped (shrink) and missing indices are run fresh
    ///   (grow); because every replica's RNG streams derive from its global
    ///   index, the report never depends on the failure/migration history.
    pub fn run_checkpointed(
        &self,
        fault: Option<FaultPlan>,
        resume: &[ShardManifest],
    ) -> PopulationRun {
        let spec = self.config.workload.spec_with(self.config.options);
        let ranges = self.shard_ranges();

        // Outcomes adopted from prior manifests (elastic shrink: indices
        // beyond the current population are dropped).
        let mut outcomes: BTreeMap<usize, ReplicaOutcome> = resume
            .iter()
            .flat_map(|m| m.completed.iter())
            .filter(|r| r.replica < self.config.population)
            .map(|r| (r.replica, r.clone()))
            .collect();

        // Wave 1: every shard runs its assigned replicas that lack an
        // adopted outcome. A shard named by the fault plan is killed once it
        // crosses the episode threshold and produces nothing.
        let pending: Vec<Vec<usize>> = ranges
            .iter()
            .map(|range| {
                range
                    .clone()
                    .filter(|i| !outcomes.contains_key(i))
                    .collect()
            })
            .collect();
        let shard_jobs: Vec<(usize, &Vec<usize>)> = pending.iter().enumerate().collect();
        let wave1: Vec<Option<Vec<ReplicaOutcome>>> = shard_jobs
            .par_iter()
            .map(|&(shard, replicas)| {
                let abort = fault.filter(|f| f.shard == shard).map(|f| f.at_episode);
                run_shard_instrumented(&spec, &self.config, replicas, abort)
            })
            .collect();

        // Wave 2: requeue the killed shard's replicas round-robin (replica
        // order over survivor order) and re-run them on the survivors.
        let survivors: Vec<usize> = (0..ranges.len()).filter(|&s| wave1[s].is_some()).collect();
        let orphans: Vec<usize> = (0..ranges.len())
            .filter(|&s| wave1[s].is_none())
            .flat_map(|s| pending[s].iter().copied())
            .collect();
        // Requeue events are worth watching live: a nonzero count means a
        // shard died and its replicas re-ran on the survivors.
        elmrl_telemetry::counter!("population.requeued_replicas").add(orphans.len() as u64);
        let lanes = survivors.len().max(1);
        let mut requeued: Vec<Vec<usize>> = vec![Vec::new(); lanes];
        for (i, replica) in orphans.iter().enumerate() {
            requeued[i % lanes].push(*replica);
        }
        let wave2: Vec<Option<Vec<ReplicaOutcome>>> = requeued
            .par_iter()
            .map(|replicas| run_shard_instrumented(&spec, &self.config, replicas, None))
            .collect();

        // Custody: shard → outcomes it holds. Fresh results stay with the
        // shard that produced them; adopted outcomes live with the current
        // layout's owner; requeued outcomes with the survivor that re-ran
        // them (the whole point of the manifest being durable).
        let mut custody: Vec<Vec<usize>> = vec![Vec::new(); ranges.len()];
        for (shard, range) in ranges.iter().enumerate() {
            for i in range.clone() {
                if outcomes.contains_key(&i) {
                    custody[shard].push(i);
                }
            }
        }
        for (shard, produced) in wave1.iter().enumerate() {
            if let Some(list) = produced {
                for outcome in list {
                    custody[shard].push(outcome.replica);
                    outcomes.insert(outcome.replica, outcome.clone());
                }
            }
        }
        for (slot, produced) in wave2.iter().enumerate() {
            let list = produced
                .as_ref()
                .expect("requeue wave runs without fault injection");
            // With no survivors (every shard failed) slot 0 acts as the
            // restarted driver itself; custody goes to the layout's owner.
            for outcome in list {
                let shard = survivors.get(slot).copied().unwrap_or_else(|| {
                    ranges
                        .iter()
                        .position(|r| r.contains(&outcome.replica))
                        .unwrap_or(0)
                });
                custody[shard].push(outcome.replica);
                outcomes.insert(outcome.replica, outcome.clone());
            }
        }

        let manifests: Vec<ShardManifest> = ranges
            .iter()
            .enumerate()
            .map(|(shard, range)| {
                let mut held = custody[shard].clone();
                held.sort_unstable();
                ShardManifest {
                    version: MANIFEST_VERSION,
                    shard,
                    assigned: range.clone().collect(),
                    completed: held.iter().map(|i| outcomes[i].clone()).collect(),
                    failed: wave1[shard].is_none(),
                }
            })
            .collect();

        let replicas: Vec<ReplicaOutcome> = outcomes.into_values().collect();
        PopulationRun {
            report: self.aggregate(&spec, replicas),
            manifests,
        }
    }

    /// Fold per-replica outcomes (in global replica order) into the
    /// layout-independent aggregate report.
    fn aggregate(&self, spec: &EnvSpec, replicas: Vec<ReplicaOutcome>) -> PopulationReport {
        let solved: Vec<&ReplicaOutcome> = replicas.iter().filter(|r| r.solved).collect();
        let episodes: Vec<f64> = solved
            .iter()
            .filter_map(|r| r.solved_at_episode.map(|e| e as f64 + 1.0))
            .collect();
        let eval_returns: Vec<f64> = replicas
            .iter()
            .filter_map(|r| r.greedy_eval_return)
            .collect();
        PopulationReport {
            workload: self.config.workload,
            options: self.config.options,
            design: self.config.design.label().to_string(),
            hidden_dim: self.config.hidden_dim,
            population: self.config.population,
            seed: self.config.seed,
            max_episodes: self.config.max_episodes,
            train_envs: self.config.train_envs,
            chunk_cap: effective_chunk_cap(&self.config),
            solve_criterion: spec.solve_criterion,
            eval_episodes: self.config.eval_episodes,
            solve_rate: solved.len() as f64 / replicas.len() as f64,
            solved: solved.len(),
            episodes_to_solve: QuantileSummary::of(&episodes),
            mean_greedy_eval_return: if eval_returns.is_empty() {
                None
            } else {
                Some(eval_returns.iter().sum::<f64>() / eval_returns.len() as f64)
            },
            replicas,
        }
    }
}

/// The chunk cap the replicas actually train under: the explicit knob when
/// given, otherwise the default — but only where the cap is live at all
/// (chunked OS-ELM designs driving batch-B ticks). Scalar and non-RLS runs
/// keep `None`, so pre-existing artifacts stay byte-identical.
fn effective_chunk_cap(config: &PopulationConfig) -> Option<usize> {
    if config.chunk_cap.is_none() && config.train_envs > 1 && config.design.uses_chunked_rls() {
        Some(elmrl_core::DEFAULT_CHUNK_CAP)
    } else {
        config.chunk_cap
    }
}

/// Build one replica's agent behind the batched-inference interface.
/// `chunk_cap` is the RLS batch-width cap for the chunked OS-ELM designs
/// (inert for the scalar protocol and for DQN/FPGA replicas).
fn build_replica_agent(
    design: Design,
    spec: &EnvSpec,
    hidden_dim: usize,
    chunk_cap: Option<usize>,
    rng: &mut SmallRng,
) -> Box<dyn BatchAgent + Send> {
    match design {
        Design::Fpga => Box::new(FpgaAgent::new(
            FpgaAgentConfig::for_workload(spec, hidden_dim),
            rng,
        )),
        software => {
            let mut config = DesignConfig::for_workload(spec, hidden_dim);
            config.chunk_cap = chunk_cap;
            software.build_batch(&config, rng)
        }
    }
}

/// Per-replica bookkeeping while the shard steps in lockstep.
struct ReplicaState {
    episode_return: f64,
    returns: Vec<f64>,
    episodes_since_reset: usize,
    episodes_run: usize,
    total_steps: usize,
    resets: usize,
    solved_at: Option<usize>,
    active: bool,
}

/// [`run_shard`] wrapped in shard-level telemetry: a `population.shard`
/// latency span plus per-shard throughput counters (completed episodes and
/// environment steps across the shard's replicas). The wrapper is what the
/// wave drivers call; a killed shard records its span but no throughput.
fn run_shard_instrumented(
    spec: &EnvSpec,
    config: &PopulationConfig,
    replicas: &[usize],
    abort_after_episodes: Option<usize>,
) -> Option<Vec<ReplicaOutcome>> {
    let _span = elmrl_telemetry::hist!("population.shard").span();
    let out = run_shard(spec, config, replicas, abort_after_episodes);
    if elmrl_telemetry::enabled() {
        if let Some(list) = &out {
            let episodes: u64 = list.iter().map(|o| o.episodes_run as u64).sum();
            let steps: u64 = list.iter().map(|o| o.total_steps as u64).sum();
            elmrl_telemetry::counter!("population.episodes").add(episodes);
            elmrl_telemetry::counter!("population.steps").add(steps);
        }
    }
    out
}

/// Train the shard's replicas in lockstep and evaluate their final policies.
///
/// `replicas` holds the global indices to run (not necessarily contiguous —
/// requeued orphans land here too); every replica's RNG streams derive from
/// its global index alone, so *where* it runs never changes *what* it
/// computes. `abort_after_episodes` is the fault-injection kill switch: once
/// that many episodes have completed across the shard's replicas the shard
/// "dies" and returns `None` — no partial outcomes escape.
fn run_shard(
    spec: &EnvSpec,
    config: &PopulationConfig,
    replicas: &[usize],
    abort_after_episodes: Option<usize>,
) -> Option<Vec<ReplicaOutcome>> {
    let b = replicas.len();
    if abort_after_episodes == Some(0) {
        return None;
    }
    if b == 0 {
        return Some(Vec::new());
    }
    // The paper resets only the ELM/OS-ELM designs (§4.3), as in `run_trial`.
    let reset_after = if config.design == Design::Dqn {
        None
    } else {
        spec.defaults.reset_after_episodes
    };

    // E > 1: every replica trains its own E-slot VecEnv through the core
    // E-parallel episode driver (batch-B updates per tick). Replicas remain
    // self-contained — agent, environments and RNG streams derive from the
    // replica's global index alone — so the report stays byte-identical for
    // any shard and thread count, exactly as in the scalar path below.
    if config.train_envs > 1 {
        let trainer = Trainer::new(TrainerConfig {
            max_episodes: config.max_episodes,
            reset_after_episodes: reset_after,
            stop_when_solved: true,
            solve_criterion: spec.solve_criterion,
            solved_window: 100,
            reward_shaping: spec.reward_shaping,
        });
        let mut shard_episodes = 0usize;
        let mut outcomes = Vec::with_capacity(b);
        for &replica in replicas {
            let train_seed = replica_train_seed(config.seed, replica);
            let mut rng = SmallRng::seed_from_u64(train_seed);
            let mut agent = build_replica_agent(
                config.design,
                spec,
                config.hidden_dim,
                config.chunk_cap,
                &mut rng,
            );
            let mut vec_env = VecEnv::from_spec(spec, config.train_envs);
            let mut ctl = CheckpointCtl::default();
            if let Some(limit) = abort_after_episodes {
                ctl.stop_after = Some(limit - shard_episodes);
            }
            let result = trainer
                .run_vec_checkpointed(agent.as_mut(), &mut vec_env, &mut rng, &mut ctl)
                .expect("no resume/sink: the vectorized driver cannot fail");
            shard_episodes += result.episodes_run;
            if abort_after_episodes.is_some_and(|limit| shard_episodes >= limit) {
                return None;
            }
            outcomes.push(ReplicaOutcome {
                replica,
                seed: train_seed,
                solved: result.solved,
                solved_at_episode: result.solved_at_episode,
                episodes_run: result.episodes_run,
                total_steps: result.total_steps,
                resets: result.resets,
                greedy_eval_return: greedy_eval(
                    agent.as_mut(),
                    spec,
                    replica_eval_seed(config.seed, replica),
                    config.eval_episodes,
                ),
                returns: result.stats.returns,
            });
        }
        return Some(outcomes);
    }

    let train_seeds: Vec<u64> = replicas
        .iter()
        .map(|&i| replica_train_seed(config.seed, i))
        .collect();
    let mut rngs: Vec<SmallRng> = train_seeds
        .iter()
        .map(|&s| SmallRng::seed_from_u64(s))
        .collect();
    let mut agents: Vec<Box<dyn BatchAgent + Send>> = rngs
        .iter_mut()
        .map(|rng| {
            build_replica_agent(
                config.design,
                spec,
                config.hidden_dim,
                config.chunk_cap,
                rng,
            )
        })
        .collect();

    let mut vec_env = VecEnv::from_spec(spec, b);
    vec_env.reset_all(&mut rngs);
    // Reused `1 × obs_dim` staging row: training-time ε-greedy prediction
    // goes through `BatchAgent::act_row`, i.e. the same batched forward
    // kernel the greedy evaluation uses (one stacked matmul per decision
    // instead of one matvec chain per candidate action). Replicas cannot
    // share one matmul — each has its own weights — so the batching win is
    // per replica, across its action set.
    let mut state_row = Matrix::zeros(1, vec_env.obs_dim());
    let mut states: Vec<ReplicaState> = (0..b)
        .map(|_| ReplicaState {
            episode_return: 0.0,
            returns: Vec::new(),
            episodes_since_reset: 0,
            episodes_run: 0,
            total_steps: 0,
            resets: 0,
            solved_at: None,
            active: config.max_episodes > 0,
        })
        .collect();

    let mut shard_episodes = 0usize;
    while states.iter().any(|s| s.active) {
        // Determine: each replica acts on its own slot from its own stream,
        // Q evaluated through the batched kernel (`act_row` selects exactly
        // the action the scalar `act` would — same Q bit for bit, same RNG
        // draws — so sharded, threaded and scalar execution stay identical).
        let mut pre_step: Vec<Option<(Vec<f64>, usize)>> = Vec::with_capacity(b);
        for j in 0..b {
            pre_step.push(states[j].active.then(|| {
                let state = vec_env.state(j).to_vec();
                state_row.set_row(0, &state);
                let action = agents[j].act_row(&state_row, &mut rngs[j]);
                (state, action)
            }));
        }
        let actions: Vec<Option<usize>> = pre_step
            .iter()
            .map(|p| p.as_ref().map(|&(_, a)| a))
            .collect();

        // Observe: one lockstep environment tick with auto-reset.
        let outs = vec_env.step(&actions, &mut rngs);

        // Store/Update + episode bookkeeping per replica.
        for j in 0..b {
            let (Some((state, action)), Some(step)) = (&pre_step[j], &outs[j]) else {
                continue;
            };
            let st = &mut states[j];
            st.total_steps += 1;
            st.episode_return += step.outcome.reward;
            let shaped = spec.reward_shaping.shape(
                step.outcome.reward,
                step.outcome.done,
                step.outcome.truncated,
            );
            agents[j].observe(
                &Observation {
                    state: state.clone(),
                    action: *action,
                    reward: shaped,
                    next_state: step.outcome.observation.clone(),
                    done: step.outcome.done,
                    truncated: step.outcome.truncated,
                },
                &mut rngs[j],
            );
            if !step.auto_reset {
                continue;
            }
            // Episode finished (the slot already holds the next episode's
            // initial observation): same protocol as the scalar trainer.
            let episode = st.episodes_run;
            agents[j].end_episode(episode);
            st.episodes_run += 1;
            st.episodes_since_reset += 1;
            shard_episodes += 1;
            st.returns.push(st.episode_return);
            let episode_return = st.episode_return;
            st.episode_return = 0.0;
            if st.solved_at.is_none() && spec.solve_criterion.met(&st.returns, episode_return) {
                st.solved_at = Some(episode);
                st.active = false;
            } else if st.episodes_run >= config.max_episodes {
                st.active = false;
            } else if st.solved_at.is_none() {
                if let Some(after) = reset_after {
                    if st.episodes_since_reset >= after {
                        agents[j].reset(&mut rngs[j]);
                        st.resets += 1;
                        st.episodes_since_reset = 0;
                    }
                }
            }
        }
        if abort_after_episodes.is_some_and(|limit| shard_episodes >= limit) {
            // The injected fault fires: the shard dies at the end of this
            // tick and none of its (even finished) replicas report back.
            return None;
        }
    }

    // Evaluate: batched greedy rollout of each replica's final policy.
    let outcomes = replicas
        .iter()
        .copied()
        .zip(states)
        .zip(agents.iter_mut())
        .zip(train_seeds)
        .map(|(((replica, st), agent), seed)| ReplicaOutcome {
            replica,
            seed,
            solved: st.solved_at.is_some(),
            solved_at_episode: st.solved_at,
            episodes_run: st.episodes_run,
            total_steps: st.total_steps,
            resets: st.resets,
            greedy_eval_return: greedy_eval(
                agent.as_mut(),
                spec,
                replica_eval_seed(config.seed, replica),
                config.eval_episodes,
            ),
            returns: st.returns,
        })
        .collect();
    Some(outcomes)
}

/// Run `episodes` greedy episodes in lockstep, scoring every still-running
/// episode with **one** batched forward pass per tick, and return the mean
/// raw return. This is where `predict_batch` earns its matmul: B states ×
/// A actions collapse into a single `(B·A) × n` product.
fn greedy_eval(
    agent: &mut dyn BatchAgent,
    spec: &EnvSpec,
    eval_seed: u64,
    episodes: usize,
) -> Option<f64> {
    if episodes == 0 {
        return None;
    }
    let mut rngs: Vec<SmallRng> = (0..episodes)
        .map(|e| SmallRng::seed_from_u64(crate::seed::split_seed(eval_seed, e as u64)))
        .collect();
    let mut vec_env = VecEnv::from_spec(spec, episodes);
    vec_env.reset_all(&mut rngs);
    let mut finished = vec![false; episodes];
    let mut returns = vec![0.0f64; episodes];
    while finished.iter().any(|f| !f) {
        let running: Vec<usize> = (0..episodes).filter(|&e| !finished[e]).collect();
        // One batched forward for every running episode.
        let batch: Matrix<f64> = vec_env.states().gather_rows(&running);
        let greedy = agent.act_batch_greedy(&batch);
        let mut actions: Vec<Option<usize>> = vec![None; episodes];
        for (row, &e) in running.iter().enumerate() {
            actions[e] = Some(greedy[row]);
        }
        let outs = vec_env.step(&actions, &mut rngs);
        for (e, out) in outs.iter().enumerate() {
            let Some(step) = out else { continue };
            returns[e] += step.outcome.reward;
            if step.auto_reset {
                // Exactly one episode per slot: stop at the first finish.
                finished[e] = true;
            }
        }
    }
    Some(returns.iter().sum::<f64>() / episodes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(shards: usize) -> PopulationConfig {
        let mut config = PopulationConfig::new(Workload::CartPole, Design::OsElmL2Lipschitz, 8, 6);
        config.shards = shards;
        config.seed = 11;
        config.max_episodes = 4;
        config.eval_episodes = 3;
        config
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let q = QuantileSummary::of(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(q.count, 4);
        assert_eq!(q.mean, Some(25.0));
        assert_eq!(q.p25, Some(10.0));
        assert_eq!(q.p50, Some(20.0));
        assert_eq!(q.p75, Some(30.0));
        assert_eq!(q.p90, Some(40.0));
        let empty = QuantileSummary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p50, None);
        let one = QuantileSummary::of(&[7.0]);
        assert_eq!(one.p25, Some(7.0));
        assert_eq!(one.p90, Some(7.0));
    }

    #[test]
    fn shard_ranges_partition_the_population() {
        let mut config = tiny_config(4);
        config.population = 10;
        let runner = PopulationRunner::new(config);
        let ranges = runner.shard_ranges();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..3);
        assert_eq!(ranges[1], 3..6);
        assert_eq!(ranges[2], 6..8);
        assert_eq!(ranges[3], 8..10);
        // More shards than replicas: clamped, never empty.
        let mut config = tiny_config(9);
        config.population = 3;
        let ranges = PopulationRunner::new(config).shard_ranges();
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn report_covers_every_replica_in_order() {
        let report = PopulationRunner::new(tiny_config(2)).run();
        assert_eq!(report.population, 6);
        assert_eq!(report.replicas.len(), 6);
        for (i, r) in report.replicas.iter().enumerate() {
            assert_eq!(r.replica, i);
            assert_eq!(r.seed, replica_train_seed(11, i));
            assert!(r.episodes_run >= 1 && r.episodes_run <= 4);
            assert!(r.total_steps >= r.episodes_run);
            assert!(r.greedy_eval_return.is_some());
        }
        assert_eq!(
            report.solved,
            report.replicas.iter().filter(|r| r.solved).count()
        );
        assert!((0.0..=1.0).contains(&report.solve_rate));
        assert_eq!(report.design, "OS-ELM-L2-Lipschitz");
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let baseline = PopulationRunner::new(tiny_config(1)).run();
        for shards in [2, 3, 6] {
            let sharded = PopulationRunner::new(tiny_config(shards)).run();
            assert_eq!(baseline, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn replicas_carry_their_learning_curves() {
        let report = PopulationRunner::new(tiny_config(1)).run();
        for r in &report.replicas {
            assert_eq!(
                r.returns.len(),
                r.episodes_run,
                "one return per completed episode"
            );
            assert!(r.returns.iter().all(|v| v.is_finite()));
        }
        assert_eq!(report.train_envs, 1);
    }

    #[test]
    fn train_envs_population_is_shard_invariant_and_recorded() {
        let config_with = |shards: usize| {
            let mut config = tiny_config(shards);
            config.train_envs = 3;
            config
        };
        let baseline = PopulationRunner::new(config_with(1)).run();
        assert_eq!(baseline.train_envs, 3);
        assert_eq!(baseline.replicas.len(), 6);
        for r in &baseline.replicas {
            assert_eq!(r.returns.len(), r.episodes_run);
            assert!(r.episodes_run <= 4);
            assert!(r.total_steps >= r.episodes_run);
        }
        for shards in [2, 6] {
            let sharded = PopulationRunner::new(config_with(shards)).run();
            assert_eq!(baseline, sharded, "shards = {shards}");
        }
        // E changes the learning trajectory relative to the scalar path.
        let scalar = PopulationRunner::new(tiny_config(1)).run();
        assert_ne!(
            scalar.replicas, baseline.replicas,
            "E > 1 must not silently replay the scalar protocol"
        );
    }

    #[test]
    fn report_records_the_effective_chunk_cap() {
        // Scalar protocol: the cap is inert and stays unrecorded.
        let scalar = PopulationRunner::new(tiny_config(1)).run();
        assert_eq!(scalar.chunk_cap, None);

        // E > 1 on a chunked OS-ELM design: the default cap is live and
        // recorded even though no explicit knob was set.
        let mut config = tiny_config(1);
        config.train_envs = 3;
        assert_eq!(config.chunk_cap, None);
        let defaulted = PopulationRunner::new(config.clone()).run();
        assert_eq!(defaulted.chunk_cap, Some(elmrl_core::DEFAULT_CHUNK_CAP));

        // An explicit cap is recorded verbatim and changes the trained
        // trajectory once a tick is wide enough to split (E = 3 ticks stay
        // under cap 2 only when an episode ends mid-tick, so just pin the
        // recorded value plus determinism here; the trajectory-level
        // divergence is pinned at the core level).
        config.chunk_cap = Some(2);
        let capped = PopulationRunner::new(config.clone()).run();
        assert_eq!(capped.chunk_cap, Some(2));
        let capped_again = PopulationRunner::new(config).run();
        assert_eq!(capped, capped_again, "capped runs stay deterministic");
    }

    #[test]
    fn fault_plan_parses_the_cli_form() {
        assert_eq!(
            FaultPlan::parse("2@15"),
            Ok(FaultPlan {
                shard: 2,
                at_episode: 15
            })
        );
        assert_eq!(
            FaultPlan::parse(" 0 @ 0 "),
            Ok(FaultPlan {
                shard: 0,
                at_episode: 0
            })
        );
        assert!(FaultPlan::parse("3").is_err());
        assert!(FaultPlan::parse("a@b").is_err());
    }

    #[test]
    fn killed_shard_replicas_requeue_onto_survivors_byte_identically() {
        let baseline = PopulationRunner::new(tiny_config(3)).run();
        for (shard, at_episode) in [(0, 0), (1, 2), (2, 5)] {
            let faulted = PopulationRunner::new(tiny_config(3))
                .run_checkpointed(Some(FaultPlan { shard, at_episode }), &[]);
            assert_eq!(
                baseline, faulted.report,
                "fail-shard {shard}@{at_episode} changed the report"
            );
            assert!(faulted.manifests[shard].failed);
            assert!(faulted.manifests[shard].completed.is_empty());
            // Every replica still reports: the orphans live in survivor
            // manifests.
            let held: usize = faulted.manifests.iter().map(|m| m.completed.len()).sum();
            assert_eq!(held, 6);
            // JSON byte identity — the property the CI job cmp-checks.
            assert_eq!(
                serde_json::to_string(&baseline).unwrap(),
                serde_json::to_string(&faulted.report).unwrap()
            );
        }
    }

    #[test]
    fn fault_injection_is_byte_identical_for_train_envs_gt_one() {
        let config_with = |shards: usize| {
            let mut config = tiny_config(shards);
            config.train_envs = 2;
            config
        };
        let baseline = PopulationRunner::new(config_with(3)).run();
        let faulted = PopulationRunner::new(config_with(3)).run_checkpointed(
            Some(FaultPlan {
                shard: 1,
                at_episode: 3,
            }),
            &[],
        );
        assert_eq!(baseline, faulted.report);
    }

    #[test]
    fn manifests_cover_the_population_and_round_trip_through_json() {
        let run = PopulationRunner::new(tiny_config(2)).run_checkpointed(None, &[]);
        assert_eq!(run.manifests.len(), 2);
        let mut seen = Vec::new();
        for m in &run.manifests {
            assert_eq!(m.version, MANIFEST_VERSION);
            assert!(!m.failed);
            assert_eq!(
                m.assigned,
                m.completed.iter().map(|r| r.replica).collect::<Vec<_>>()
            );
            seen.extend(m.assigned.iter().copied());
            let back = ShardManifest::from_json(&m.to_json().unwrap()).unwrap();
            assert_eq!(&back, m);
        }
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        // Unknown versions are rejected.
        let mut bad = run.manifests[0].clone();
        bad.version = 99;
        assert!(ShardManifest::from_json(&bad.to_json().unwrap())
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn resume_from_manifests_skips_completed_replicas() {
        // A killed run leaves partial manifests; resuming from them must
        // produce the same report as a straight-through run.
        let baseline = PopulationRunner::new(tiny_config(3)).run();
        let crashed = PopulationRunner::new(tiny_config(3)).run_checkpointed(
            Some(FaultPlan {
                shard: 2,
                at_episode: 0,
            }),
            &[],
        );
        // Simulate the driver dying before the requeue wave: strip the
        // requeued outcomes back out so only shards 0 and 1 have custody.
        let mut partial = crashed.manifests.clone();
        for m in &mut partial {
            m.completed.retain(|r| m.assigned.contains(&r.replica));
        }
        let held: usize = partial.iter().map(|m| m.completed.len()).sum();
        assert!(held < 6, "the crash must actually lose replicas");

        let resumed = PopulationRunner::new(tiny_config(3)).run_checkpointed(None, &partial);
        assert_eq!(baseline, resumed.report);
    }

    #[test]
    fn replica_set_grows_and_shrinks_elastically_across_resumes() {
        let manifests = PopulationRunner::new(tiny_config(2))
            .run_checkpointed(None, &[])
            .manifests;

        // Grow 6 → 9: adopted outcomes for 0..6, fresh runs for 6..9, and
        // the report matches a fresh 9-replica run byte for byte.
        let grow = |mut c: PopulationConfig| {
            c.population = 9;
            c
        };
        let fresh9 = PopulationRunner::new(grow(tiny_config(2))).run();
        let grown = PopulationRunner::new(grow(tiny_config(2))).run_checkpointed(None, &manifests);
        assert_eq!(fresh9, grown.report);

        // Shrink 6 → 4: extra outcomes are dropped.
        let shrink = |mut c: PopulationConfig| {
            c.population = 4;
            c
        };
        let fresh4 = PopulationRunner::new(shrink(tiny_config(2))).run();
        let shrunk =
            PopulationRunner::new(shrink(tiny_config(2))).run_checkpointed(None, &manifests);
        assert_eq!(fresh4, shrunk.report);
        assert_eq!(shrunk.report.replicas.len(), 4);
    }

    #[test]
    fn manifests_save_and_load_from_a_directory() {
        let dir = std::env::temp_dir().join(format!("elmrl-manifests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run = PopulationRunner::new(tiny_config(3)).run_checkpointed(None, &[]);
        for m in &run.manifests {
            m.save(&dir).unwrap();
        }
        let loaded = ShardManifest::load_dir(&dir).unwrap();
        assert_eq!(loaded, run.manifests);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fpga_design_runs_through_the_population_path() {
        let mut config = tiny_config(2);
        config.design = Design::Fpga;
        config.population = 2;
        config.max_episodes = 2;
        let report = PopulationRunner::new(config).run();
        assert_eq!(report.design, "FPGA");
        assert_eq!(report.replicas.len(), 2);
    }

    #[test]
    fn eval_pass_can_be_disabled() {
        let mut config = tiny_config(1);
        config.eval_episodes = 0;
        config.population = 2;
        config.max_episodes = 2;
        let report = PopulationRunner::new(config).run();
        assert!(report.mean_greedy_eval_return.is_none());
        assert!(report
            .replicas
            .iter()
            .all(|r| r.greedy_eval_return.is_none()));
    }
}
