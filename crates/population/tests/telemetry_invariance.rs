//! The PR-8 no-perturbation contract at the artefact level: a population run
//! with telemetry **and** span tracing enabled must serialize to the exact
//! same bytes as one with telemetry off. Spans only read the clock and write
//! to their own sinks — RNG streams, update order and accumulation order are
//! untouched — so the report (the golden `population.json` content) cannot
//! move. The FPGA design is included to drive the guarded-RLS stat flush and
//! the `fpga.*` spans through the quantized path.

use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_population::{PopulationConfig, PopulationRunner};

fn report_json(workload: Workload, design: Design) -> String {
    let mut config = PopulationConfig::new(workload, design, 6, 5);
    config.shards = 3;
    config.seed = 2026;
    config.max_episodes = 3;
    config.eval_episodes = 2;
    serde_json::to_string_pretty(&PopulationRunner::new(config).run())
        .expect("population report serializes")
}

#[test]
fn telemetry_on_produces_byte_identical_reports() {
    for (workload, design) in [
        (Workload::CartPole, Design::Fpga),
        (Workload::CartPole, Design::OsElmL2Lipschitz),
        (Workload::MountainCar, Design::Dqn),
    ] {
        elmrl_telemetry::set_enabled(false);
        let off = report_json(workload, design);

        elmrl_telemetry::enable_tracing(elmrl_telemetry::DEFAULT_TRACE_CAPACITY);
        let on = report_json(workload, design);
        elmrl_telemetry::set_enabled(false);

        assert_eq!(
            off, on,
            "{workload:?}/{design:?}: telemetry perturbed the population report"
        );
        assert!(off.contains("\"replicas\""));
    }

    // Sanity that the telemetry-on leg really recorded: the spans and the
    // population counters must be populated, or the comparison proved
    // nothing.
    let snap = elmrl_telemetry::snapshot();
    assert!(snap
        .histogram("population.shard")
        .is_some_and(|h| h.count > 0));
    assert!(snap.counter("population.episodes").is_some_and(|c| c > 0));
    assert!(snap.counter("fixed.rls.calls").is_some_and(|c| c > 0));
}
