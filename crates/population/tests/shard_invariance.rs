//! Deterministic population smoke test: the same master seed must produce a
//! **byte-identical** aggregate JSON report regardless of the shard count
//! *and* of the thread-pool size — the properties the `--shards` and
//! `--threads` flags advertise and CI smokes. Scheduling must never leak
//! into results.

use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_population::{PopulationConfig, PopulationRunner};

fn report_json(workload: Workload, design: Design, shards: usize) -> String {
    let mut config = PopulationConfig::new(workload, design, 8, 5);
    config.shards = shards;
    config.seed = 2026;
    config.max_episodes = 3;
    config.eval_episodes = 2;
    serde_json::to_string_pretty(&PopulationRunner::new(config).run())
        .expect("population report serializes")
}

#[test]
fn same_seed_any_shards_same_json() {
    for (workload, design) in [
        (Workload::CartPole, Design::OsElmL2Lipschitz),
        (Workload::MountainCar, Design::Dqn),
        (Workload::Acrobot, Design::OsElm),
    ] {
        let single = report_json(workload, design, 1);
        for shards in [2, 4, 5, 7] {
            assert_eq!(
                single,
                report_json(workload, design, shards),
                "{workload:?}/{design:?} diverged at {shards} shards"
            );
        }
        // Sanity: the JSON is a real report, not an empty object.
        assert!(single.contains("\"replicas\""));
        assert!(single.contains("\"solve_rate\""));
    }
}

#[test]
fn thread_count_never_changes_the_bytes() {
    // Fixed shards, varying pool size: `--threads 1` (true sequential path)
    // vs `--threads 4` (genuinely concurrent shards) must serialize to the
    // exact same bytes. Per-replica RNG streams are split from the master
    // seed by global replica index and shard results are stitched in shard
    // order, so only scheduling — never arithmetic — changes with threads.
    rayon::set_num_threads(1);
    let sequential = report_json(Workload::CartPole, Design::OsElmL2Lipschitz, 4);
    rayon::set_num_threads(4);
    let threaded = report_json(Workload::CartPole, Design::OsElmL2Lipschitz, 4);
    rayon::set_num_threads(1);
    assert_eq!(
        sequential, threaded,
        "thread pool size leaked into the population report"
    );
    assert!(sequential.contains("\"replicas\""));
}

#[test]
fn different_seeds_change_the_run() {
    let mut a = PopulationConfig::new(Workload::CartPole, Design::OsElmL2Lipschitz, 8, 3);
    a.max_episodes = 3;
    let mut b = a.clone();
    b.seed = a.seed + 1;
    let ra = PopulationRunner::new(a).run();
    let rb = PopulationRunner::new(b).run();
    assert_ne!(
        ra.replicas
            .iter()
            .map(|r| r.total_steps)
            .collect::<Vec<_>>(),
        rb.replicas
            .iter()
            .map(|r| r.total_steps)
            .collect::<Vec<_>>(),
        "a different master seed must perturb the trajectories"
    );
}
