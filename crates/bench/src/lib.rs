//! # elmrl-bench
//!
//! Criterion benchmark harness: one benchmark group per table/figure of the
//! paper, kernel microbenchmarks, a cross-environment group (`cross_env`)
//! tracking the generic pipeline's per-trial and per-step cost on every
//! registered workload, and a population-serving group
//! (`population_throughput`) comparing batched Q inference against the
//! per-sample loop at B ∈ {1, 8, 32, 128}. The benches use reduced trial counts and episode
//! budgets so that `cargo bench --workspace` completes in minutes; the full
//! paper protocol is driven by the `elmrl-harness` binaries instead.

#![warn(missing_docs)]
#![deny(unsafe_code)]
