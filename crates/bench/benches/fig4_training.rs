//! Benchmark E2: per-episode training cost of each software design
//! (the work behind one point of a Figure 4 curve).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_core::designs::{Design, DesignConfig};
use elmrl_core::trainer::{Trainer, TrainerConfig};
use elmrl_gym::CartPole;
use rand::{rngs::SmallRng, SeedableRng};

fn bench_training_episodes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_training_episodes");
    group.sample_size(10);
    for design in [
        Design::OsElmL2Lipschitz,
        Design::OsElm,
        Design::Elm,
        Design::Dqn,
    ] {
        for hidden in [32usize, 64] {
            let id = BenchmarkId::new(design.label(), hidden);
            group.bench_with_input(id, &(design, hidden), |b, &(design, hidden)| {
                b.iter(|| {
                    let mut rng = SmallRng::seed_from_u64(7);
                    let mut agent = design.build(&DesignConfig::new(hidden), &mut rng);
                    let mut env = CartPole::new();
                    let trainer = Trainer::new(TrainerConfig::quick(5));
                    trainer.run(agent.as_mut(), &mut env, &mut rng)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_training_episodes
}
criterion_main!(benches);
