//! Benchmark E5 (PR 7): the quantized-backend promotion.
//!
//! Two comparisons, both written to `BENCH_PR7.json` in the workspace root:
//!
//! 1. **Agent steps/sec** — the integer-kernel [`FpgaAgent`] hot path
//!    (`act` + `observe` with the update gate forced open: batched Q20
//!    predict, float target forward, fused Q20 RLS update, zero steady-state
//!    allocations) against the pre-PR-7 **allocating `Matrix<Q20>` path**,
//!    reproduced verbatim below: per-call `Matrix` temporaries for the
//!    hidden layer, `P·hᵀ`, `h·P` and the post-update `P·hᵀ`, plus fresh
//!    encoding/quantisation vectors per action. The PR's acceptance gate is
//!    the hidden = 256 ratio (the paper's BRAM limit): the new path must be
//!    ≥ 3× the old one — and the new number even carries the float
//!    target-network forward the baseline is not charged for.
//! 2. **Kernel throughput** — raw Q20 (`matmul_packed_q_into` on `i32`
//!    words) vs `f64` (`matmul_packed_into`) square matmul at
//!    n ∈ {64, 128, 256}, reported as Gop/s (2n³ multiply–adds per product),
//!    quantifying the cost of saturating fixed-point arithmetic per element.
//!
//! The baseline core is bit-for-bit the old datapath (same saturating Q20
//! arithmetic), so the comparison isolates the memory/dispatch win of the
//! integer kernels from any numerical change — there is none.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_core::agent::{Agent, Observation};
use elmrl_elm::{OsElm, OsElmConfig};
use elmrl_fixed::kernels::matmul_packed_q_into;
use elmrl_fixed::Q20;
use elmrl_fpga::{FpgaAgent, FpgaAgentConfig};
use elmrl_gym::Workload;
use elmrl_linalg::random::uniform_matrix;
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

const HIDDEN: [usize; 2] = [64, 256];
/// CartPole's action count — the A predicts every ε-greedy decision costs.
const ACTIONS: usize = 2;

/// The pre-PR-7 fixed-point core, reproduced verbatim: every call builds
/// `Matrix<Q20>` temporaries and goes through the generic (bounds-checked,
/// allocating) `Matrix` operators. Numerically identical to the new core.
struct AllocatingCore {
    alpha: Matrix<Q20>,
    bias: Matrix<Q20>,
    beta: Matrix<Q20>,
    p: Matrix<Q20>,
}

impl AllocatingCore {
    fn from_f64_parts(
        alpha: &Matrix<f64>,
        bias: &Matrix<f64>,
        beta: &Matrix<f64>,
        p: &Matrix<f64>,
    ) -> Self {
        Self {
            alpha: alpha.cast(),
            bias: bias.cast(),
            beta: beta.cast(),
            p: p.cast(),
        }
    }

    fn hidden(&self, x: &[Q20]) -> Matrix<Q20> {
        let xm = Matrix::row_from_slice(x);
        let mut pre = xm.matmul(&self.alpha);
        for c in 0..pre.cols() {
            pre[(0, c)] += self.bias[(0, c)];
            if pre[(0, c)] < Q20::ZERO {
                pre[(0, c)] = Q20::ZERO;
            }
        }
        pre
    }

    fn predict(&mut self, x: &[Q20]) -> Vec<Q20> {
        let h = self.hidden(x);
        let y = h.matmul(&self.beta);
        y.row(0).to_vec()
    }

    fn seq_train(&mut self, x: &[Q20], target: &[Q20]) {
        let nh = self.alpha.cols();
        let m = self.beta.cols();
        let h = self.hidden(x);

        let ph = self.p.matmul_t(&h);
        let hp = h.matmul(&self.p);
        let mut denom = Q20::ONE;
        for i in 0..nh {
            denom += h[(0, i)] * ph[(i, 0)];
        }
        let inv_denom = Q20::ONE / denom;

        for r in 0..nh {
            let scale = ph[(r, 0)] * inv_denom;
            for c in 0..nh {
                let sub = scale * hp[(0, c)];
                self.p[(r, c)] -= sub;
            }
        }

        let pred = h.matmul(&self.beta);
        let ph_new = self.p.matmul_t(&h);
        for r in 0..nh {
            for c in 0..m {
                let add = ph_new[(r, 0)] * (target[c] - pred[(0, c)]);
                self.beta[(r, c)] += add;
            }
        }
    }
}

/// Build the baseline core from a short CPU-side initial training, exactly
/// like the agent's store phase does (input width 5 = CartPole state +
/// scalar action).
fn build_allocating_core(hidden: usize) -> AllocatingCore {
    let mut rng = SmallRng::seed_from_u64(3);
    let cfg = OsElmConfig::new(5, hidden, 1)
        .with_l2_delta(0.5)
        .with_relative_l2(true)
        .with_spectral_normalization(true);
    let mut os = OsElm::<f64>::new(&cfg, &mut rng);
    let x0 = Matrix::from_fn(hidden, 5, |i, j| (((i * 7 + j) % 19) as f64 / 19.0) - 0.5);
    let t0 = Matrix::from_fn(hidden, 1, |i, _| if i % 3 == 0 { -1.0 } else { 0.0 });
    os.init_train(&x0, &t0).unwrap();
    AllocatingCore::from_f64_parts(
        os.model().alpha(),
        os.model().bias(),
        os.model().beta(),
        os.p_matrix().unwrap(),
    )
}

/// One steady-state step of the old path: encode + quantise each action
/// (fresh vectors, as the old agent did), A predicts, one RLS update.
fn allocating_step(core: &mut AllocatingCore, state: &[f64], step: usize) {
    let mut best = Q20::from_f64(f64::NEG_INFINITY);
    for a in 0..ACTIONS {
        let mut enc: Vec<f64> = state.to_vec();
        enc.push(a as f64);
        let xq: Vec<Q20> = enc.iter().map(|&v| Q20::from_f64(v)).collect();
        let y = core.predict(&xq);
        if y[0] > best {
            best = y[0];
        }
    }
    let mut enc: Vec<f64> = state.to_vec();
    enc.push((step % ACTIONS) as f64);
    let xq: Vec<Q20> = enc.iter().map(|&v| Q20::from_f64(v)).collect();
    core.seq_train(&xq, &[Q20::from_f64(0.5)]);
    std::hint::black_box(best);
}

fn transition(i: usize) -> Observation {
    Observation {
        state: vec![0.01 * i as f64, -0.02, 0.03, 0.01 * (i % 5) as f64],
        action: i % ACTIONS,
        reward: if i % 7 == 0 { -1.0 } else { 0.0 },
        next_state: vec![0.01 * i as f64 + 0.005, -0.01, 0.02, 0.01],
        done: i % 7 == 0,
        truncated: false,
    }
}

/// Build the PR-7 agent with its Q20 core loaded and warmed to steady state.
fn build_quantized_agent(hidden: usize) -> (FpgaAgent, SmallRng) {
    let spec = Workload::CartPole.spec();
    let mut config = FpgaAgentConfig::for_workload(&spec, hidden);
    config.update_prob = 1.0; // every observe runs the Q20 RLS update
    let mut rng = SmallRng::seed_from_u64(99);
    let mut agent = FpgaAgent::new(config, &mut rng);
    for i in 0..hidden {
        agent.observe(&transition(i), &mut rng);
    }
    assert!(agent.core_loaded());
    let obs = transition(1);
    for _ in 0..16 {
        let a = agent.act(&obs.state, &mut rng);
        std::hint::black_box(a);
        agent.observe(&obs, &mut rng);
    }
    (agent, rng)
}

/// One steady-state step of the new path: the real agent `act` + `observe`
/// (batched Q20 predict, float target forward, fused integer-kernel RLS).
fn quantized_step(agent: &mut FpgaAgent, rng: &mut SmallRng, obs: &Observation) {
    let a = agent.act(&obs.state, rng);
    std::hint::black_box(a);
    agent.observe(obs, rng);
}

fn bench_backend_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_backend");
    group.sample_size(10);
    let state = [0.02, -0.01, 0.04, 0.03];
    for hidden in HIDDEN {
        group.bench_with_input(
            BenchmarkId::new("allocating_matrix_q20", hidden),
            &hidden,
            |b, &h| {
                let mut core = build_allocating_core(h);
                let mut step = 0usize;
                b.iter(|| {
                    allocating_step(&mut core, &state, step);
                    step += 1;
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("integer_kernel_agent", hidden),
            &hidden,
            |b, &h| {
                let (mut agent, mut rng) = build_quantized_agent(h);
                let obs = transition(1);
                b.iter(|| quantized_step(&mut agent, &mut rng, &obs))
            },
        );
    }
    group.finish();
}

fn bench_kernel_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("q20_vs_f64_matmul");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(9);
    for n in [64usize, 128, 256] {
        let af = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        let bf = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        let aq: Vec<i32> = af
            .as_slice()
            .iter()
            .map(|&v| Q20::from_f64(v).to_raw())
            .collect();
        let bq: Vec<i32> = bf
            .as_slice()
            .iter()
            .map(|&v| Q20::from_f64(v).to_raw())
            .collect();
        group.bench_with_input(BenchmarkId::new("f64_packed", n), &n, |bench, &n| {
            let mut pack = Vec::new();
            let mut out = Matrix::<f64>::zeros(n, n);
            bench.iter(|| {
                af.matmul_packed_into(&bf, &mut pack, &mut out);
                out[(0, 0)]
            })
        });
        group.bench_with_input(BenchmarkId::new("q20_packed", n), &n, |bench, &n| {
            let mut pack = Vec::new();
            let mut out = vec![0i32; n * n];
            bench.iter(|| {
                matmul_packed_q_into::<20>(n, n, n, &aq, &bq, &mut pack, &mut out);
                out[0]
            })
        });
    }
    group.finish();
}

#[derive(Serialize)]
struct BackendEntry {
    hidden: usize,
    allocating_steps_per_second: f64,
    quantized_steps_per_second: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct KernelEntry {
    n: usize,
    f64_gops: f64,
    q20_gops: f64,
    q20_vs_f64: f64,
}

#[derive(Serialize)]
struct BenchTrajectory {
    pr: usize,
    benchmark: String,
    host_available_parallelism: usize,
    pool_threads: usize,
    quantized_backend: Vec<BackendEntry>,
    kernel_throughput: Vec<KernelEntry>,
}

/// Best-of-3 wall time of `reps` invocations of `f`.
fn best_of_3(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Assemble and write `BENCH_PR7.json` — the PR-7 perf-trajectory entry
/// (after `BENCH_PR4.json` / `BENCH_PR5.json`), consumed by CI as the
/// quantized-backend acceptance gate.
fn write_trajectory(_c: &mut Criterion) {
    let mut backend = Vec::new();
    for hidden in HIDDEN {
        // Step counts sized so each timing window is a few hundred ms.
        let reps = if hidden >= 256 { 400 } else { 4000 };
        let state = [0.02, -0.01, 0.04, 0.03];

        let mut core = build_allocating_core(hidden);
        let mut step = 0usize;
        allocating_step(&mut core, &state, step); // warm-up
        let old_wall = best_of_3(reps, || {
            allocating_step(&mut core, &state, step);
            step += 1;
        });

        let (mut agent, mut rng) = build_quantized_agent(hidden);
        let obs = transition(1);
        let new_wall = best_of_3(reps, || quantized_step(&mut agent, &mut rng, &obs));

        let old_sps = reps as f64 / old_wall;
        let new_sps = reps as f64 / new_wall;
        backend.push(BackendEntry {
            hidden,
            allocating_steps_per_second: old_sps,
            quantized_steps_per_second: new_sps,
            speedup: new_sps / old_sps,
        });
    }

    let mut kernels = Vec::new();
    let mut rng = SmallRng::seed_from_u64(9);
    for n in [64usize, 128, 256] {
        let reps = if n >= 256 { 8 } else { 64 };
        let af = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        let bf = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        let aq: Vec<i32> = af
            .as_slice()
            .iter()
            .map(|&v| Q20::from_f64(v).to_raw())
            .collect();
        let bq: Vec<i32> = bf
            .as_slice()
            .iter()
            .map(|&v| Q20::from_f64(v).to_raw())
            .collect();
        let ops = 2.0 * (n as f64).powi(3);

        let mut pack_f = Vec::new();
        let mut out_f = Matrix::<f64>::zeros(n, n);
        let f64_wall = best_of_3(reps, || {
            af.matmul_packed_into(&bf, &mut pack_f, &mut out_f);
            std::hint::black_box(out_f[(0, 0)]);
        });

        let mut pack_q = Vec::new();
        let mut out_q = vec![0i32; n * n];
        let q20_wall = best_of_3(reps, || {
            matmul_packed_q_into::<20>(n, n, n, &aq, &bq, &mut pack_q, &mut out_q);
            std::hint::black_box(out_q[0]);
        });

        let f64_gops = ops * reps as f64 / f64_wall / 1e9;
        let q20_gops = ops * reps as f64 / q20_wall / 1e9;
        kernels.push(KernelEntry {
            n,
            f64_gops,
            q20_gops,
            q20_vs_f64: q20_gops / f64_gops,
        });
    }

    let trajectory = BenchTrajectory {
        pr: 7,
        benchmark: "quantized backend: FpgaAgent act+observe steps/sec vs the pre-PR-7 \
                    allocating Matrix<Q20> core at hidden ∈ {64, 256}; packed Q20 vs f64 \
                    matmul Gop/s at n ∈ {64, 128, 256}"
            .to_string(),
        host_available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pool_threads: rayon::current_num_threads(),
        quantized_backend: backend,
        kernel_throughput: kernels,
    };
    let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    std::fs::write(path, &json).expect("write BENCH_PR7.json");
    eprintln!("wrote BENCH_PR7.json:\n{json}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_backend_steps, bench_kernel_throughput, write_trajectory
}
criterion_main!(benches);
