//! Kernel microbenchmarks (M1): the dense linear-algebra primitives the
//! OS-ELM update is built from.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_fixed::kernels::{matmul_packed_q_into, seq_train_q_into, RlsScratch};
use elmrl_fixed::Q20;
use elmrl_linalg::random::uniform_matrix;
use elmrl_linalg::solve::{inverse_spd, pseudo_inverse};
use elmrl_linalg::Matrix;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let mut group = c.benchmark_group("linalg_kernels");
    for n in [32usize, 64, 128, 256] {
        let a = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        let b = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul_naive", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
        group.bench_with_input(BenchmarkId::new("matmul_blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul_blocked(&b, 64))
        });
        group.bench_with_input(BenchmarkId::new("matmul_packed", n), &n, |bench, _| {
            bench.iter(|| a.matmul_packed(&b))
        });
        // The steady-state form of the hot paths: workspace reuse, no
        // allocation inside the timed region.
        group.bench_with_input(BenchmarkId::new("matmul_packed_into", n), &n, |bench, _| {
            let mut pack = Vec::new();
            let mut out = Matrix::<f64>::zeros(n, n);
            bench.iter(|| {
                a.matmul_packed_into(&b, &mut pack, &mut out);
                out[(0, 0)]
            })
        });
        let spd = &a.t_matmul(&a) + &Matrix::identity(n).scale(0.5);
        group.bench_with_input(BenchmarkId::new("inverse_spd", n), &n, |bench, _| {
            bench.iter(|| inverse_spd(&spd).unwrap())
        });

        // The Q20 integer twins (PR 7): the packed fixed-point matmul next
        // to its f64 counterpart, and the fused RLS update that replaces
        // matmul + downdate + matmul on the quantized FpgaCore path.
        let aq: Vec<i32> = (0..n * n)
            .map(|_| Q20::from_f64(rng.gen_range(-1.0..1.0)).to_raw())
            .collect();
        let bq: Vec<i32> = (0..n * n)
            .map(|_| Q20::from_f64(rng.gen_range(-1.0..1.0)).to_raw())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("matmul_packed_q20_into", n),
            &n,
            |bench, _| {
                let mut pack = Vec::new();
                let mut out = vec![0i32; n * n];
                bench.iter(|| {
                    matmul_packed_q_into::<20>(n, n, n, &aq, &bq, &mut pack, &mut out);
                    out[0]
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("seq_train_q20", n), &n, |bench, _| {
            let h: Vec<i32> = (0..n)
                .map(|_| Q20::from_f64(rng.gen_range(0.0..0.2)).to_raw())
                .collect();
            let mut p: Vec<i32> = (0..n * n)
                .map(|i| Q20::from_f64(if i % (n + 1) == 0 { 0.5 } else { 0.001 }).to_raw())
                .collect();
            let mut beta = vec![Q20::from_f64(0.01).to_raw(); n];
            let target = vec![Q20::from_f64(0.5).to_raw()];
            let mut ws = RlsScratch::new();
            bench.iter(|| {
                seq_train_q_into::<20>(n, 1, &h, &target, &mut p, &mut beta, &mut ws);
                p[0]
            })
        });
    }
    let tall = uniform_matrix::<f64, _>(96, 32, -1.0, 1.0, &mut rng);
    group.bench_function("pseudo_inverse_96x32", |bench| {
        bench.iter(|| pseudo_inverse(&tall, 1e-10).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(benches);
