//! Kernel microbenchmarks (M1): the dense linear-algebra primitives the
//! OS-ELM update is built from.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_linalg::random::uniform_matrix;
use elmrl_linalg::solve::{inverse_spd, pseudo_inverse};
use elmrl_linalg::Matrix;
use rand::{rngs::SmallRng, SeedableRng};

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let mut group = c.benchmark_group("linalg_kernels");
    for n in [32usize, 64, 128, 256] {
        let a = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        let b = uniform_matrix::<f64, _>(n, n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul_naive", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
        group.bench_with_input(BenchmarkId::new("matmul_blocked", n), &n, |bench, _| {
            bench.iter(|| a.matmul_blocked(&b, 64))
        });
        group.bench_with_input(BenchmarkId::new("matmul_packed", n), &n, |bench, _| {
            bench.iter(|| a.matmul_packed(&b))
        });
        // The steady-state form of the hot paths: workspace reuse, no
        // allocation inside the timed region.
        group.bench_with_input(BenchmarkId::new("matmul_packed_into", n), &n, |bench, _| {
            let mut pack = Vec::new();
            let mut out = Matrix::<f64>::zeros(n, n);
            bench.iter(|| {
                a.matmul_packed_into(&b, &mut pack, &mut out);
                out[(0, 0)]
            })
        });
        let spd = &a.t_matmul(&a) + &Matrix::identity(n).scale(0.5);
        group.bench_with_input(BenchmarkId::new("inverse_spd", n), &n, |bench, _| {
            bench.iter(|| inverse_spd(&spd).unwrap())
        });
    }
    let tall = uniform_matrix::<f64, _>(96, 32, -1.0, 1.0, &mut rng);
    group.bench_function("pseudo_inverse_96x32", |bench| {
        bench.iter(|| pseudo_inverse(&tall, 1e-10).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(benches);
