//! Population-serving throughput: batched Q inference vs the per-sample
//! loop, at batch sizes B ∈ {1, 8, 32, 128}.
//!
//! Two groups over the same packed `B × obs_dim` state matrices (CartPole
//! observations, OS-ELM-L2-Lipschitz at Ñ = 64 — the paper's recommended
//! software design at its headline hidden size):
//!
//! * `population_batched` — one `BatchAgent::predict_batch` call: the whole
//!   batch collapses into a single `(B·A) × n · n × Ñ` matmul chain;
//! * `population_per_sample` — the scalar fallback: B separate `q_values`
//!   calls, one matvec chain per state per action.
//!
//! The acceptance bar for the population engine is batched beating the
//! per-sample loop for B ≥ 8 (at B = 1 they do identical work, so any gap
//! is call overhead). A third group, `population_engine_step`, measures one
//! full lockstep tick of the `PopulationRunner`'s greedy-evaluation path —
//! VecEnv step + gather + batched forward — in steps per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_core::batch::BatchAgent;
use elmrl_core::oselm_qnet::{OsElmQNet, OsElmQNetConfig};
use elmrl_core::Agent;
use elmrl_gym::{VecEnv, Workload};
use elmrl_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];
const HIDDEN: usize = 64;

/// A trained OS-ELM-L2-Lipschitz agent (β non-zero so the forward pass is
/// representative) plus a packed batch of plausible states.
fn trained_agent_and_states(batch: usize) -> (OsElmQNet, Matrix<f64>) {
    let spec = Workload::CartPole.spec();
    let mut rng = SmallRng::seed_from_u64(17);
    let mut agent = OsElmQNet::new(
        OsElmQNetConfig::for_workload(&spec, HIDDEN, 0.5, true),
        &mut rng,
    );
    for i in 0..HIDDEN {
        let state: Vec<f64> = (0..spec.observation_dim)
            .map(|_| rng.gen_range(-0.2..0.2))
            .collect();
        agent.observe(
            &elmrl_core::Observation {
                next_state: state.iter().map(|v| v + 0.01).collect(),
                state,
                action: i % spec.num_actions,
                reward: if i % 9 == 0 { -1.0 } else { 0.0 },
                done: i % 9 == 0,
                truncated: false,
            },
            &mut rng,
        );
    }
    assert!(agent.is_initialized());
    let states = Matrix::from_fn(batch, spec.observation_dim, |_, _| rng.gen_range(-0.2..0.2));
    (agent, states)
}

fn bench_batched_vs_per_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_batched");
    for &b in &BATCH_SIZES {
        group.bench_with_input(BenchmarkId::new("predict_batch", b), &b, |bench, &b| {
            let (mut agent, states) = trained_agent_and_states(b);
            bench.iter(|| agent.predict_batch(&states))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("population_per_sample");
    for &b in &BATCH_SIZES {
        group.bench_with_input(BenchmarkId::new("q_values_loop", b), &b, |bench, &b| {
            let (mut agent, states) = trained_agent_and_states(b);
            bench.iter(|| {
                (0..states.rows())
                    .map(|i| agent.q_values(states.row(i)))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

fn bench_engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_engine_step");
    for &b in &BATCH_SIZES {
        group.bench_with_input(BenchmarkId::new("greedy_lockstep", b), &b, |bench, &b| {
            let spec = Workload::CartPole.spec();
            let (mut agent, _) = trained_agent_and_states(1);
            let mut rngs: Vec<SmallRng> = (0..b)
                .map(|i| SmallRng::seed_from_u64(100 + i as u64))
                .collect();
            let mut vec_env = VecEnv::from_spec(&spec, b);
            vec_env.reset_all(&mut rngs);
            bench.iter(|| {
                // One engine tick: pack states, one batched forward for the
                // whole population slice, one lockstep env step (auto-reset).
                let states = vec_env.states();
                let actions = agent.act_batch_greedy(&states);
                vec_env.step_all(&actions, &mut rngs).len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batched_vs_per_sample, bench_engine_step
}
criterion_main!(benches);
