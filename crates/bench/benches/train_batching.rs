//! Training-throughput scaling over the batch width E — the PR-5 acceptance
//! benchmark, and the writer of the second perf-trajectory entry
//! (`BENCH_PR5.json`).
//!
//! One fixed trial shape — CartPole at `Ñ = 64`, a fixed episode budget —
//! is executed end to end per design at E ∈ {1, 4, 16} parallel training
//! episodes. E = 1 is the paper's scalar episode loop (`Trainer::run`);
//! E > 1 is the E-parallel driver (`Trainer::run_vec`): per engine tick one
//! batched ε-greedy decision per slot and **one** batch-B update — a single
//! chunked Eq. 6 RLS recursion for the OS-ELM designs, one minibatch SGD
//! step for DQN — instead of E scalar updates. Throughput is reported as
//! environment steps per wall-clock second; the batching win is algorithmic
//! (fewer, wider updates and fewer matvec chains), so it shows on a
//! single-core container too, unlike the thread-scaling numbers of
//! `BENCH_PR4.json`.
//!
//! After the criterion group, the trajectory entry is assembled from
//! explicit timing loops (not the criterion samples) and written to
//! `BENCH_PR5.json` in the workspace root: steps/sec per (design, E) plus
//! the speedup of every E over that design's E = 1 baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_harness::runner::{run_trial, TrialSpec};
use serde::Serialize;
use std::time::Instant;

const TRAIN_ENVS: [usize; 3] = [1, 4, 16];
const DESIGNS: [Design; 2] = [Design::OsElmL2Lipschitz, Design::Dqn];

/// The benchmarked trial: one design at one batch width, fixed budget.
fn spec(design: Design, train_envs: usize) -> TrialSpec {
    let mut spec = TrialSpec::for_workload(Workload::CartPole, design, 64, 2026)
        .with_max_episodes(96)
        .with_train_envs(train_envs);
    // Throughput benchmark: always run the full budget.
    spec.trainer.stop_when_solved = false;
    spec
}

fn bench_train_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_batching");
    group.sample_size(5);
    for design in DESIGNS {
        for &e in &TRAIN_ENVS {
            group.bench_with_input(BenchmarkId::new(design.label(), e), &e, |bench, &e| {
                bench.iter(|| run_trial(&spec(design, e)).training.total_steps)
            });
        }
    }
    group.finish();
}

#[derive(Serialize)]
struct BatchingEntry {
    design: String,
    train_envs: usize,
    wall_seconds: f64,
    total_steps: usize,
    steps_per_second: f64,
    speedup_vs_e1: f64,
}

#[derive(Serialize)]
struct BenchTrajectory {
    pr: usize,
    benchmark: String,
    host_available_parallelism: usize,
    pool_threads: usize,
    train_batching: Vec<BatchingEntry>,
}

/// Time one full trial and return (wall seconds, environment steps).
fn timed_run(design: Design, train_envs: usize) -> (f64, usize) {
    let start = Instant::now();
    let result = run_trial(&spec(design, train_envs));
    (start.elapsed().as_secs_f64(), result.training.total_steps)
}

/// Assemble and write `BENCH_PR5.json` — the second entry of the repo's
/// perf trajectory (after `BENCH_PR4.json`), consumed by CI and by later
/// PRs as the comparison baseline.
fn write_trajectory(_c: &mut Criterion) {
    let mut entries = Vec::new();
    for design in DESIGNS {
        let mut e1_steps_per_second = f64::NAN;
        for &e in &TRAIN_ENVS {
            let (_, _) = timed_run(design, e); // warm-up
            let (mut best_wall, mut best_steps) = timed_run(design, e);
            for _ in 0..2 {
                // Best-of-3: the minimum wall time is the least
                // noise-contaminated estimate of the true cost.
                let (wall, steps) = timed_run(design, e);
                if wall < best_wall {
                    best_wall = wall;
                    best_steps = steps;
                }
            }
            let steps_per_second = best_steps as f64 / best_wall;
            if e == 1 {
                e1_steps_per_second = steps_per_second;
            }
            entries.push(BatchingEntry {
                design: design.label().to_string(),
                train_envs: e,
                wall_seconds: best_wall,
                total_steps: best_steps,
                steps_per_second,
                speedup_vs_e1: steps_per_second / e1_steps_per_second,
            });
        }
    }

    let trajectory = BenchTrajectory {
        pr: 5,
        benchmark: "train_batching cart-pole hidden=64, 96-episode budget, E ∈ {1, 4, 16}"
            .to_string(),
        host_available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pool_threads: rayon::current_num_threads(),
        train_batching: entries,
    };
    let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    // Anchor to the workspace root — `cargo bench` runs with the package
    // directory as the working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    std::fs::write(path, &json).expect("write BENCH_PR5.json");
    eprintln!("wrote BENCH_PR5.json:\n{json}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_train_batching, write_trajectory
}
criterion_main!(benches);
