//! Benchmark E4: the fixed-point FPGA core's predict and seq_train modules
//! across hidden sizes (the operations Figure 6 breaks down).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_elm::{OsElm, OsElmConfig};
use elmrl_fixed::Q20;
use elmrl_fpga::FpgaCore;
use elmrl_linalg::Matrix;
use rand::{rngs::SmallRng, SeedableRng};

fn build_core(hidden: usize) -> FpgaCore {
    let mut rng = SmallRng::seed_from_u64(3);
    let cfg = OsElmConfig::new(5, hidden, 1)
        .with_l2_delta(0.5)
        .with_relative_l2(true)
        .with_spectral_normalization(true);
    let mut os = OsElm::<f64>::new(&cfg, &mut rng);
    let x0 = Matrix::from_fn(hidden, 5, |i, j| (((i * 7 + j) % 19) as f64 / 19.0) - 0.5);
    let t0 = Matrix::from_fn(hidden, 1, |i, _| if i % 3 == 0 { -1.0 } else { 0.0 });
    os.init_train(&x0, &t0).unwrap();
    FpgaCore::from_f64_parts(
        os.model().alpha(),
        os.model().bias(),
        os.model().beta(),
        os.p_matrix().unwrap(),
    )
}

fn bench_core_modules(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fpga_core");
    for hidden in [32usize, 64, 128, 192, 256] {
        let x = vec![Q20::from_f64(0.1); 5];
        group.bench_with_input(BenchmarkId::new("predict", hidden), &hidden, |b, &h| {
            let mut core = build_core(h);
            b.iter(|| core.predict(&x))
        });
        group.bench_with_input(BenchmarkId::new("seq_train", hidden), &hidden, |b, &h| {
            let mut core = build_core(h);
            b.iter(|| core.seq_train(&x, &[Q20::from_f64(0.5)]))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_core_modules
}
criterion_main!(benches);
