//! Benchmark E1: generating the Table 3 resource model across hidden sizes.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_fpga::resources::ResourceModel;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_resources");
    let model = ResourceModel::pynq_z1();
    for hidden in [32usize, 64, 128, 192, 256] {
        group.bench_with_input(BenchmarkId::new("utilization", hidden), &hidden, |b, &h| {
            b.iter(|| model.utilization(h))
        });
    }
    group.bench_function("full_table", |b| b.iter(|| model.table3()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table3
}
criterion_main!(benches);
