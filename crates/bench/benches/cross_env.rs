//! Cross-environment benchmark: the generic pipeline's per-trial cost on
//! every registered workload, so the perf trajectory covers CartPole,
//! MountainCar and Pendulum rather than CartPole alone.
//!
//! Two groups:
//!
//! * `cross_env_trial` — a short seeded training trial of the paper's
//!   recommended software design (OS-ELM-L2-Lipschitz) through the full
//!   workload-generic runner (environment factory, normalisation wrapper,
//!   per-workload protocol);
//! * `cross_env_step` — the bare per-step environment cost (reset + step)
//!   without any agent, isolating the environment dynamics themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_harness::runner::{run_trial, TrialSpec};
use rand::{rngs::SmallRng, SeedableRng};

fn bench_cross_env_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_env_trial");
    for workload in Workload::all() {
        group.bench_with_input(
            BenchmarkId::new("oselm_l2_lipschitz", workload.slug()),
            &workload,
            |b, &w| {
                let spec = TrialSpec::for_workload(w, Design::OsElmL2Lipschitz, 16, 7)
                    .with_max_episodes(3);
                b.iter(|| run_trial(&spec))
            },
        );
    }
    group.finish();
}

fn bench_cross_env_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_env_step");
    for workload in Workload::all() {
        group.bench_with_input(
            BenchmarkId::new("env_step", workload.slug()),
            &workload,
            |b, &w| {
                let spec = w.spec();
                let mut rng = SmallRng::seed_from_u64(3);
                let mut env = spec.make_env();
                env.reset(&mut rng);
                let mut step = 0usize;
                b.iter(|| {
                    let out = env.step(step % spec.num_actions, &mut rng);
                    step += 1;
                    if out.finished() {
                        env.reset(&mut rng);
                    }
                    out.reward
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cross_env_trial, bench_cross_env_step
}
criterion_main!(benches);
