//! Benchmark E7 (PR 10): the serving engine's dynamic-batching payoff.
//!
//! Drives the `elmrl-serve` engine directly (fixed observations, no client
//! env stepping, exactly the zero-alloc hot loop the counting-allocator
//! suite pins) with 4 agent workers on a 4-thread PR-4 pool — the serving
//! deployment shape — in two dispatch modes that differ only in `max_batch`:
//!
//! * **coalesced** — `max_batch` 128 under a 200µs window: the coalescer
//!   packs pending tickets into `predict_batch_into` calls, so each pool
//!   handoff (one wave across the workers) carries ~512 requests;
//! * **per-request** — `max_batch` 1: every ticket dispatches alone, the
//!   classical request-at-a-time server — the same wave machinery hands
//!   a *single request per worker* across the pool each time.
//!
//! The per-row inference cost is identical in both modes (same kernels, same
//! weights); what coalescing amortises is the dispatch boundary — wave
//! composition, worker handoff, scratch reshaping, per-batch accounting —
//! which is exactly the cost a request-at-a-time server pays per request.
//!
//! The PR's acceptance gate reads the resulting `BENCH_PR10.json`: at ≥ 10³
//! sessions, coalesced requests/sec must be ≥ 2× per-request. A second
//! sweep holds the session count at 10⁴ and varies `batch_window_us`,
//! recording the p50/p99 enqueue→response latency per window — the
//! latency-budget knob's measured trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elmrl_core::designs::Design;
use elmrl_gym::Workload;
use elmrl_serve::{build_workers, EngineConfig, LatencySummary, ServeClock, ServeEngine};
use serde::Serialize;
use std::time::Instant;

const HIDDEN: usize = 64;
/// Agent workers and pool threads: the deployment shape under test. The
/// host's true core count is recorded in the JSON header (`pool_threads` /
/// `host_available_parallelism`) per the PR-10 satellite.
const WORKERS: usize = 4;
const WARMUP_EPISODES: usize = 3;
const SEED: u64 = 42;
/// Total requests each measured run aims for (rounds = TARGET / sessions).
const TARGET_REQUESTS: usize = 200_000;

/// One fixed observation per session (the client side is out of scope here;
/// the engine sees the same request pattern either way).
fn observations(sessions: usize) -> Vec<Vec<f64>> {
    (0..sessions)
        .map(|s| {
            vec![
                0.01 * (s % 97) as f64,
                -0.02,
                0.005 * (s % 7) as f64,
                0.01 * (s % 3) as f64,
            ]
        })
        .collect()
}

struct RunOutcome {
    responses: u64,
    wall_seconds: f64,
    latency: LatencySummary,
    mean_batch_size: f64,
}

/// Drive `rounds` closed-loop rounds: every answered session immediately
/// re-submits, windowed leftovers stay queued until the coalescer flushes
/// them.
fn run_engine(
    sessions: usize,
    workers: usize,
    max_batch: usize,
    window_us: u64,
    rounds: usize,
) -> RunOutcome {
    let spec = Workload::CartPole.spec();
    let pool = build_workers(
        Design::OsElmL2Lipschitz,
        &spec,
        HIDDEN,
        workers,
        max_batch,
        SEED,
        WARMUP_EPISODES,
    );
    let mut engine = ServeEngine::new(
        sessions,
        spec.observation_dim,
        pool,
        EngineConfig {
            max_batch,
            batch_window_us: window_us,
        },
    );
    let observations = observations(sessions);
    let mut clock = ServeClock::wall();
    let mut pending: Vec<usize> = (0..sessions).collect();
    let start = Instant::now();
    for _ in 0..rounds {
        for &s in &pending {
            engine.enqueue(s, &observations[s], clock.now_us());
        }
        let responses = engine.pump(&mut clock);
        pending.clear();
        pending.extend(responses.iter().map(|r| r.session));
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let stats = engine.stats();
    RunOutcome {
        responses: stats.responses,
        wall_seconds,
        latency: stats.latency.summary(),
        mean_batch_size: stats.mean_batch_size(),
    }
}

/// Best-of-3 by requests/sec (latency digest taken from the best run).
fn best_run(
    sessions: usize,
    workers: usize,
    max_batch: usize,
    window_us: u64,
) -> (RunOutcome, f64) {
    let rounds = (TARGET_REQUESTS / sessions).max(2);
    let mut best: Option<(RunOutcome, f64)> = None;
    for _ in 0..3 {
        let outcome = run_engine(sessions, workers, max_batch, window_us, rounds);
        let rps = outcome.responses as f64 / outcome.wall_seconds;
        if best.as_ref().map_or(true, |(_, b)| rps > *b) {
            best = Some((outcome, rps));
        }
    }
    best.expect("three runs measured")
}

fn bench_serve_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    rayon::set_num_threads(WORKERS);
    let workers = WORKERS;
    for &sessions in &[1_000usize] {
        for (mode, max_batch, window) in [("coalesced", 128, 200), ("per_request", 1, 0)] {
            group.bench_with_input(
                BenchmarkId::new(mode, sessions),
                &sessions,
                |b, &sessions| {
                    b.iter(|| {
                        let outcome = run_engine(sessions, workers, max_batch, window, 4);
                        std::hint::black_box(outcome.responses);
                    })
                },
            );
        }
    }
    group.finish();
}

#[derive(Serialize)]
struct DispatchEntry {
    sessions: usize,
    coalesced_requests_per_second: f64,
    per_request_requests_per_second: f64,
    speedup: f64,
    coalesced_mean_batch_size: f64,
    coalesced_latency: LatencySummary,
    per_request_latency: LatencySummary,
}

#[derive(Serialize)]
struct WindowEntry {
    batch_window_us: u64,
    requests_per_second: f64,
    mean_batch_size: f64,
    latency: LatencySummary,
}

#[derive(Serialize)]
struct BenchTrajectory {
    pr: usize,
    benchmark: String,
    host_available_parallelism: usize,
    pool_threads: usize,
    workers: usize,
    hidden: usize,
    max_batch: usize,
    dispatch: Vec<DispatchEntry>,
    window_sweep_sessions: usize,
    window_sweep: Vec<WindowEntry>,
}

/// Assemble and write `BENCH_PR10.json` — the serving entry of the perf
/// trajectory, consumed by CI as the ≥ 2×-coalescing acceptance gate's
/// evidence.
fn write_trajectory(_c: &mut Criterion) {
    rayon::set_num_threads(WORKERS);
    let workers = WORKERS;
    const MAX_BATCH: usize = 128;

    let mut dispatch = Vec::new();
    for &sessions in &[1_000usize, 10_000, 100_000] {
        let (coalesced, coalesced_rps) = best_run(sessions, workers, MAX_BATCH, 200);
        let (per_request, per_request_rps) = best_run(sessions, workers, 1, 0);
        eprintln!(
            "sessions {sessions}: coalesced {coalesced_rps:.0} req/s (mean batch \
             {:.1}), per-request {per_request_rps:.0} req/s → {:.2}x",
            coalesced.mean_batch_size,
            coalesced_rps / per_request_rps
        );
        dispatch.push(DispatchEntry {
            sessions,
            coalesced_requests_per_second: coalesced_rps,
            per_request_requests_per_second: per_request_rps,
            speedup: coalesced_rps / per_request_rps,
            coalesced_mean_batch_size: coalesced.mean_batch_size,
            coalesced_latency: coalesced.latency,
            per_request_latency: per_request.latency,
        });
    }

    let window_sweep_sessions = 10_000;
    let mut window_sweep = Vec::new();
    for &window_us in &[0u64, 100, 500, 1_000] {
        let (outcome, rps) = best_run(window_sweep_sessions, workers, MAX_BATCH, window_us);
        eprintln!(
            "window {window_us}µs: {rps:.0} req/s, p50 {}µs, p99 {}µs",
            outcome.latency.p50_us, outcome.latency.p99_us
        );
        window_sweep.push(WindowEntry {
            batch_window_us: window_us,
            requests_per_second: rps,
            mean_batch_size: outcome.mean_batch_size,
            latency: outcome.latency,
        });
    }

    let trajectory = BenchTrajectory {
        pr: 10,
        benchmark: "serving throughput: coalesced (max_batch 128, 200µs window) vs \
                    per-request dispatch requests/sec with enqueue→response p50/p99, \
                    plus a batch-window latency sweep at 10^4 sessions"
            .to_string(),
        host_available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pool_threads: rayon::current_num_threads(),
        workers,
        hidden: HIDDEN,
        max_batch: MAX_BATCH,
        dispatch,
        window_sweep_sessions,
        window_sweep,
    };
    let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    std::fs::write(path, &json).expect("write BENCH_PR10.json");
    eprintln!("wrote BENCH_PR10.json:\n{json}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_serve_dispatch, write_trajectory
}
criterion_main!(benches);
